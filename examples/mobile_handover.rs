//! Mobility at the wireless edge — the paper's §9 future work, runnable.
//!
//! Every client roams between access points (exponential dwell times).
//! Each handover drops the client's tags, forcing a re-registration from
//! the new location (§4.A), so tag traffic rises with mobility while
//! delivery stays intact — even with access-path enforcement switched on.
//!
//! ```sh
//! cargo run --release --example mobile_handover
//! ```

use tactic::net::run_scenario;
use tactic::scenario::{MobilityConfig, Scenario};
use tactic_sim::time::SimDuration;

fn run(dwell_secs: u64, ap_checks: bool) -> tactic::metrics::RunReport {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(30);
    s.access_path_enabled = ap_checks;
    if dwell_secs > 0 {
        s.mobility = Some(MobilityConfig {
            mean_dwell: SimDuration::from_secs(dwell_secs),
            mobile_fraction: 1.0,
        });
    }
    run_scenario(&s, 21)
}

fn main() {
    println!(
        "{:<28} {:>7} {:>12} {:>12} {:>14}",
        "scenario", "moves", "client ratio", "tag reqs", "mean lat (ms)"
    );
    println!("{}", "-".repeat(78));
    for (label, dwell, ap) in [
        ("static", 0, false),
        ("roaming (dwell 10s)", 10, false),
        ("roaming (dwell 4s)", 4, false),
        ("roaming 4s + AP checks", 4, true),
    ] {
        let r = run(dwell, ap);
        println!(
            "{:<28} {:>7} {:>12.4} {:>12} {:>14.1}",
            label,
            r.moves,
            r.delivery.client_ratio(),
            r.tag_requests.len(),
            r.mean_latency() * 1e3
        );
        assert!(r.delivery.attacker_ratio() < 0.01);
    }
    println!();
    println!("Faster roaming => more handovers => more tag requests (each move");
    println!("re-registers, as §4.A prescribes), while delivery stays high even");
    println!("with access-path enforcement on: the fresh tag carries the new path.");
}
