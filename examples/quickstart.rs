//! Quickstart: run a small TACTIC network end to end and print what
//! happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tactic::net::run_scenario;
use tactic::scenario::Scenario;
use tactic_sim::time::SimDuration;

fn main() {
    // A small ISP: 12 core + 4 edge routers, 2 providers, 6 clients and 3
    // attackers behind wireless access points (see `Scenario::small`).
    let mut scenario = Scenario::small();
    scenario.duration = SimDuration::from_secs(20);

    println!("Running TACTIC for {}...", scenario.duration);
    let report = run_scenario(&scenario, 42);

    println!();
    println!("simulated duration      : {}", report.duration);
    println!("engine events           : {}", report.events);
    println!();
    println!("-- Delivery (the paper's Table IV view) --");
    println!(
        "clients   : {} requested, {} received (ratio {:.4})",
        report.delivery.client_requested,
        report.delivery.client_received,
        report.delivery.client_ratio()
    );
    println!(
        "attackers : {} requested, {} received (ratio {:.4})",
        report.delivery.attacker_requested,
        report.delivery.attacker_received,
        report.delivery.attacker_ratio()
    );
    println!();
    println!("-- Tags (Fig. 6 view) --");
    println!(
        "tag requests: {} ({:.2}/s), tags received: {} ({:.2}/s)",
        report.tag_requests.len(),
        report.tag_request_rate(),
        report.tags_received.len(),
        report.tag_receive_rate()
    );
    println!();
    println!("-- Router work (Fig. 7 view) --");
    println!(
        "edge routers: {} BF lookups, {} insertions, {} signature verifications",
        report.edge_ops.bf_lookups,
        report.edge_ops.bf_insertions,
        report.edge_ops.sig_verifications
    );
    println!(
        "core routers: {} BF lookups, {} insertions, {} signature verifications",
        report.core_ops.bf_lookups,
        report.core_ops.bf_insertions,
        report.core_ops.sig_verifications
    );
    println!();
    println!(
        "mean retrieval latency  : {:.1} ms",
        report.mean_latency() * 1e3
    );

    assert!(
        report.delivery.client_ratio() > 0.9,
        "clients should be served"
    );
    assert!(
        report.delivery.attacker_ratio() < 0.05,
        "attackers should be blocked"
    );
    println!("\nOK: legitimate clients served, attackers blocked.");
}
