//! A step-by-step walkthrough of TACTIC's protocols against the public
//! API — no event engine, just the state machines: registration, tag
//! issuance, the edge router's Protocol 2, a content router's Protocol 3,
//! revocation by expiry, and a forged tag dying at signature verification.
//!
//! ```sh
//! cargo run --example protocol_walkthrough
//! ```

use tactic::access::AccessLevel;
use tactic::ext;
use tactic::provider::{registration_interest, Provider, ProviderConfig};
use tactic::router::{RouterConfig, RouterRole, TacticRouter};
use tactic_crypto::cert::{CertStore, Certificate};
use tactic_crypto::schnorr::{KeyPair, Signature};
use tactic_ndn::face::FaceId;
use tactic_ndn::packet::{Interest, Packet};
use tactic_sim::cost::CostModel;
use tactic_sim::rng::Rng;
use tactic_sim::time::SimTime;

const UPSTREAM: FaceId = FaceId::new(0);
const CLIENT: FaceId = FaceId::new(1);

fn main() {
    let mut rng = Rng::seed_from_u64(1);
    let cost = CostModel::paper();

    // ── The PKI the paper assumes (§3.B) ──
    let anchor = KeyPair::derive(b"isp-root", 0);
    let mut certs = CertStore::new();
    certs.add_anchor(anchor.public());

    // ── A provider with a 50x50 catalog (§8.A) ──
    let mut provider = Provider::new(ProviderConfig::paper("/films".parse().unwrap()));
    certs
        .register(Certificate::issue(
            "/films",
            provider.keypair().public(),
            &anchor,
        ))
        .expect("anchor-signed certificate");
    println!(
        "provider /films certified; routers hold {} provider key(s)",
        certs.len()
    );

    // ── An edge router and a core (content) router ──
    let mut edge = TacticRouter::new(RouterConfig::paper(RouterRole::Edge), certs.clone());
    edge.mark_downstream(CLIENT);
    edge.add_route("/films".parse().unwrap(), UPSTREAM, 1);
    let mut core = TacticRouter::new(RouterConfig::paper(RouterRole::Core), certs.clone());
    core.add_route("/films".parse().unwrap(), UPSTREAM, 1);

    // ── 1. Registration: client 7 obtains a tag (§4.A) ──
    provider.grant(7, AccessLevel::Level(2));
    let reg = registration_interest(&"/films".parse().unwrap(), 7, 1, 1001);
    let (replies, _) = provider.handle_interest(&reg, SimTime::ZERO, &mut rng, &cost);
    let Packet::Data(reg_resp) = &replies[0] else {
        panic!("registration answered")
    };
    let tag = ext::data_new_tag(reg_resp).expect("fresh tag");
    println!(
        "client 7 registered: tag grants {} until {}, signed by /films",
        tag.tag.access_level, tag.tag.expiry
    );
    assert!(tag.verify(&provider.keypair().public()));

    // ── 2. The tagged Interest crosses the edge router (Protocol 2) ──
    let mut interest = Interest::new("/films/obj3/c0".parse().unwrap(), 2001);
    ext::set_interest_tag(&mut interest, &tag);
    let out = edge.handle_interest(interest, CLIENT, SimTime::from_secs(1), &mut rng, &cost);
    let (fw_face, Packet::Interest(forwarded)) = (&out.sends[0].0, &out.sends[0].1) else {
        panic!("edge forwards upstream");
    };
    println!(
        "edge router: pre-check OK, BF miss -> F = {} (forwarded on {fw_face}, {} BF lookups so far)",
        ext::interest_flag_f(forwarded),
        edge.counters().bf_lookups
    );

    // ── 3. A content router holds the chunk: Protocol 3 ──
    let chunk = provider.build_chunk(3, 0);
    // (Seed the core router's cache the way a prior delivery would have.)
    let mut seed = Interest::new("/films/obj3/c0".parse().unwrap(), 1);
    ext::set_interest_tag(&mut seed, &tag);
    core.handle_interest(seed, UPSTREAM, SimTime::from_secs(1), &mut rng, &cost);
    let mut echo = chunk.clone();
    ext::set_data_tag(&mut echo, &tag);
    core.handle_data(echo, UPSTREAM, SimTime::from_secs(1), &mut rng, &cost);

    let out = core.handle_interest(
        forwarded.clone(),
        UPSTREAM,
        SimTime::from_secs(1),
        &mut rng,
        &cost,
    );
    let Packet::Data(served) = &out.sends[0].1 else {
        panic!("content served")
    };
    assert!(ext::data_nack(served).is_none());
    println!(
        "content router: cache hit, tag verified ({} verification(s)), chunk served with F echoed",
        core.counters().sig_verifications
    );

    // ── 4. Revocation: the same tag after expiry (Protocol 1) ──
    let mut stale = Interest::new("/films/obj3/c1".parse().unwrap(), 2002);
    ext::set_interest_tag(&mut stale, &tag);
    let out = edge.handle_interest(stale, CLIENT, SimTime::from_secs(999), &mut rng, &cost);
    assert!(out.sends.is_empty(), "expired tag is dropped at the edge");
    println!(
        "revocation: the expired tag died at the edge pre-check ({} rejections) — no signature work",
        edge.counters().precheck_rejections
    );

    // ── 5. A forged tag dies at signature verification ──
    let mut forged = tag.clone();
    forged.signature = Signature::forged(99);
    forged.tag.expiry = SimTime::from_secs(10_000);
    let mut evil = Interest::new("/films/obj3/c0".parse().unwrap(), 3001);
    ext::set_interest_tag(&mut evil, &forged);
    let out = core.handle_interest(evil, UPSTREAM, SimTime::from_secs(2), &mut rng, &cost);
    let Packet::Data(nacked) = &out.sends[0].1 else {
        panic!("content+NACK for routers")
    };
    assert!(ext::data_nack(nacked).is_some());
    println!(
        "forgery: bogus signature -> content-tag-NACK tuple toward routers (edges drop it before clients)"
    );

    println!("\nOK: registration, enforcement, revocation, and forgery handling all exercised.");
}
