//! Smart metering at the wireless edge — the M2M workload the paper's
//! introduction motivates (smart meters, asset tracking, surveillance).
//!
//! A utility publishes two tiers of content: public grid telemetry
//! (`AL = NULL`, cacheable by anyone) and per-neighbourhood billing data
//! (`AL = 2`). Meters are granted `AL = 2`; a "freemium" analytics box is
//! only entitled to the public tier but keeps probing the billing feeds —
//! the insufficient-access-level threat (d) of §3.C.
//!
//! ```sh
//! cargo run --release --example smart_metering
//! ```

use tactic::access::AccessLevel;
use tactic::consumer::{AttackerStrategy, ConsumerKind};
use tactic::net::run_scenario;
use tactic::scenario::{Scenario, TopologyChoice};
use tactic_sim::time::SimDuration;
use tactic_topology::roles::TopologySpec;

fn main() {
    let mut scenario = Scenario::small();
    scenario.topology = TopologyChoice::Custom(TopologySpec {
        core_routers: 16,
        edge_routers: 6,
        providers: 1, // the utility head-end
        clients: 18,  // smart meters
        attackers: 6, // under-entitled analytics boxes
    });
    scenario.duration = SimDuration::from_secs(30);
    // Alternate public telemetry and protected billing objects.
    scenario.content_levels = vec![AccessLevel::Public, AccessLevel::Level(2)];
    scenario.client_level = AccessLevel::Level(2);
    scenario.attacker_mix = vec![AttackerStrategy::InsufficientLevel];
    // Meters are tiny and chatty: small readings, short tag leases so a
    // decommissioned meter is revoked within a minute.
    scenario.chunk_size = 256;
    scenario.objects_per_provider = 24;
    scenario.chunks_per_object = 8;
    scenario.tag_validity = SimDuration::from_secs(30);

    println!("Smart-metering scenario: 18 meters, 6 under-entitled boxes, 1 utility");
    let report = run_scenario(&scenario, 7);

    println!();
    println!(
        "meters  : {:>7} readings requested, {:>7} delivered ({:.4})",
        report.delivery.client_requested,
        report.delivery.client_received,
        report.delivery.client_ratio()
    );
    println!(
        "boxes   : {:>7} probes, {:>7} delivered ({:.4})",
        report.delivery.attacker_requested,
        report.delivery.attacker_received,
        report.delivery.attacker_ratio()
    );

    // The under-entitled boxes DO get the public telemetry tier...
    let box_hits = report.delivery.attacker_received;
    println!();
    if box_hits > 0 {
        println!(
            "the boxes still fetched {box_hits} chunks — the PUBLIC telemetry tier \
             (AL = NULL needs no tag, exactly as §5 specifies),"
        );
    }
    println!("while every billing-tier probe died at a content router's pre-check");
    println!(
        "(insufficient access level; {} pre-check rejections at routers).",
        report.edge_ops.precheck_rejections + report.core_ops.precheck_rejections
    );

    // Show the per-consumer split for one attacker.
    if let Some((kind, stats)) = report.consumers.iter().find(|(k, _)| {
        matches!(
            k,
            ConsumerKind::Attacker(AttackerStrategy::InsufficientLevel)
        )
    }) {
        println!();
        println!(
            "sample box ({kind:?}): {} requested, {} received, {} timeouts",
            stats.requested_chunks, stats.received_chunks, stats.timeouts
        );
    }

    assert!(report.delivery.client_ratio() > 0.9);
    println!("\nOK: meters served; billing tier sealed off in-network.");
}
