//! Traitor tracing in action — the paper's §9 future work, runnable.
//!
//! A subscriber shares her tag with friends behind other access points.
//! Access-path *enforcement* is off (the paper's own simulation config),
//! so the shared tag works on the wire... but edge routers record
//! sightings, and the tracer convicts the shared identity from location
//! conflicts alone. The provider can then revoke, and expiry finishes the
//! job within one validity period.
//!
//! ```sh
//! cargo run --release --example traitor_hunt
//! ```

use tactic::consumer::AttackerStrategy;
use tactic::net::run_scenario;
use tactic::scenario::Scenario;
use tactic::traitor::TraitorTracer;
use tactic_sim::time::SimDuration;

fn main() {
    let mut scenario = Scenario::small();
    scenario.duration = SimDuration::from_secs(20);
    scenario.attacker_mix = vec![AttackerStrategy::SharedTag];
    scenario.access_path_enabled = false; // enforcement off — detection only
    scenario.record_sightings = true;

    println!("Running with shared-tag freeloaders, access-path ENFORCEMENT OFF...");
    let report = run_scenario(&scenario, 99);

    println!(
        "\non the wire, sharing 'works': freeloaders received {} of {} chunks ({:.1}%)",
        report.delivery.attacker_received,
        report.delivery.attacker_requested,
        100.0 * report.delivery.attacker_ratio()
    );
    println!(
        "edge routers recorded {} tag sightings",
        report.sightings.len()
    );

    // Feed the sightings (chronologically) to the tracer.
    let mut sightings = report.sightings.clone();
    sightings.sort_by_key(|s| s.at);
    let mut tracer = TraitorTracer::new(SimDuration::from_secs(10));
    let alerts = tracer.observe_all(sightings);

    println!("\n-- tracer verdicts --");
    let flagged: Vec<(u64, usize)> = tracer.flagged().collect();
    for (identity, conflicts) in &flagged {
        println!("identity {identity:#018x}: {conflicts} location conflicts");
    }
    if let Some(first) = alerts.first() {
        println!(
            "\nfirst conviction after {} of simulated time:",
            first.conflict.at
        );
        println!(
            "  seen at edge router n{} (path {}), then at edge router n{} (path {}) within {}",
            first.first.edge_router,
            first.first.observed_path,
            first.conflict.edge_router,
            first.conflict.observed_path,
            first.spread()
        );
    }

    let observed: std::collections::HashSet<u64> =
        report.sightings.iter().map(|s| s.identity).collect();
    println!(
        "\n{} of {} observed identities convicted — honest clients untouched.",
        flagged.len(),
        observed.len()
    );
    assert!(
        !flagged.is_empty(),
        "the shared identities must be convicted"
    );
    assert!(flagged.len() < observed.len(), "no blanket accusations");
    println!("Next step for a provider: revoke(identity) — expiry does the rest.");
}
