//! Video distribution at the wireless edge: why in-network enforcement
//! beats an always-online authentication server.
//!
//! Runs the *same* subscriber workload twice — once under TACTIC (cached
//! content served at routers after tag validation) and once under a
//! provider-auth baseline (every request authenticated at the origin, no
//! cache reuse) — and compares latency, origin load, and attacker leakage.
//! Then runs the client-side-AC baseline to show the bandwidth DDoS vector
//! the paper's introduction warns about.
//!
//! ```sh
//! cargo run --release --example video_edge_cache
//! ```

use tactic::net::run_scenario;
use tactic::scenario::Scenario;
use tactic_baselines::mechanism::Mechanism;
use tactic_baselines::net::run_baseline;
use tactic_sim::time::SimDuration;

fn main() {
    let mut scenario = Scenario::small();
    scenario.duration = SimDuration::from_secs(25);
    scenario.chunk_size = 16 * 1024; // video segments
    scenario.tag_validity = SimDuration::from_secs(60); // subscription lease

    println!("Workload: video segments over a small ISP, 6 subscribers, 3 freeloaders\n");

    // TACTIC.
    let tactic_report = run_scenario(&scenario, 11);
    println!("TACTIC (in-network enforcement, caches on):");
    println!(
        "  subscribers: ratio {:.4}, mean latency {:.1} ms",
        tactic_report.delivery.client_ratio(),
        tactic_report.mean_latency() * 1e3
    );
    println!(
        "  origin load: {} chunks served by providers (rest from caches)",
        tactic_report.providers.chunks_served
    );
    println!(
        "  freeloaders: {} of {} requests delivered",
        tactic_report.delivery.attacker_received, tactic_report.delivery.attacker_requested
    );

    // Always-online provider auth: no cache reuse for protected content.
    let auth = run_baseline(&scenario, Mechanism::ProviderAuthAc, 11);
    println!("\nProvider-auth baseline (always-online server, no cache reuse):");
    println!(
        "  subscribers: ratio {:.4}, mean latency {:.1} ms",
        auth.client_ratio(),
        auth.mean_latency() * 1e3
    );
    println!(
        "  origin load: {} chunks served by providers (cache hits: {})",
        auth.provider_handled, auth.cache_hits
    );
    println!(
        "  per-request authentications at origin: {}",
        auth.provider_auth_ops
    );

    // Client-side AC: everyone can pull the encrypted bits.
    let client_side = run_baseline(&scenario, Mechanism::ClientSideAc, 11);
    println!("\nClient-side-AC baseline (decryption-delegated):");
    println!(
        "  freeloaders pulled {} encrypted chunks = {:.1} MB of wasted delivery",
        client_side.attacker_received,
        client_side.attacker_bytes as f64 / 1e6
    );

    println!("\n-- Comparison --");
    println!(
        "origin requests:  TACTIC {} vs provider-auth {}  ({}x reduction via caching)",
        tactic_report.providers.chunks_served,
        auth.provider_handled,
        if tactic_report.providers.chunks_served > 0 {
            auth.provider_handled / tactic_report.providers.chunks_served.max(1)
        } else {
            0
        }
    );
    println!(
        "wasted delivery:  TACTIC {} chunks vs client-side {} chunks",
        tactic_report.delivery.attacker_received, client_side.attacker_received
    );

    assert!(tactic_report.delivery.attacker_ratio() < 0.05);
    assert!(
        client_side.attacker_ratio() > 0.5,
        "client-side AC must leak encrypted content"
    );
    assert!(auth.provider_handled > tactic_report.providers.chunks_served);
    println!("\nOK: TACTIC keeps cache benefits without the leakage or the origin load.");
}
