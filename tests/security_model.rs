//! The threat model (§3.C), attacker by attacker: each strategy isolated
//! in its own run, asserting exactly which defence stops it.

use tactic::consumer::AttackerStrategy;
use tactic::net::run_scenario;
use tactic::scenario::Scenario;
use tactic_sim::time::SimDuration;

fn run_with_mix(
    mix: Vec<AttackerStrategy>,
    ap_enabled: bool,
    seed: u64,
) -> tactic::metrics::RunReport {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(12);
    s.attacker_mix = mix;
    s.access_path_enabled = ap_enabled;
    run_scenario(&s, seed)
}

#[test]
fn threat_a_no_tag_is_blocked() {
    let r = run_with_mix(vec![AttackerStrategy::NoTag], false, 1);
    assert!(r.delivery.attacker_requested > 20);
    assert_eq!(
        r.delivery.attacker_received, 0,
        "untagged requests must never retrieve protected content"
    );
}

#[test]
fn threat_b_fake_tag_is_blocked_by_signature_verification() {
    let r = run_with_mix(vec![AttackerStrategy::FakeTag], false, 2);
    assert!(r.delivery.attacker_requested > 20);
    // Only Bloom-filter false positives may leak (≈1e-4); at this scale
    // that means zero-to-a-few.
    assert!(
        r.delivery.attacker_ratio() < 0.01,
        "fake tags must fail verification (ratio {})",
        r.delivery.attacker_ratio()
    );
    // Fake tags pass the pre-check, so routers *do* burn verifications on
    // them — the cost the Bloom filter bounds.
    assert!(r.edge_ops.sig_verifications + r.core_ops.sig_verifications > 0);
}

#[test]
fn threat_c_expired_tag_dies_at_the_edge_precheck() {
    let r = run_with_mix(vec![AttackerStrategy::ExpiredTag], false, 3);
    assert!(r.delivery.attacker_requested > 20);
    assert_eq!(r.delivery.attacker_received, 0);
    // The defence is the cheap pre-check, not signature work.
    assert!(
        r.edge_ops.precheck_rejections > 20,
        "expired tags must be caught by the pre-check ({} rejections)",
        r.edge_ops.precheck_rejections
    );
}

#[test]
fn threat_d_insufficient_level_is_blocked_at_content_routers() {
    let r = run_with_mix(vec![AttackerStrategy::InsufficientLevel], false, 4);
    assert!(r.delivery.attacker_requested > 20);
    assert_eq!(r.delivery.attacker_received, 0);
    // These principals hold GENUINE tags (they register like clients), so
    // the Q/R machinery sees them; the AL comparison rejects the content.
    let rejections = r.edge_ops.precheck_rejections + r.core_ops.precheck_rejections;
    assert!(rejections > 0, "AL mismatches must be pre-check rejections");
}

#[test]
fn threat_e_shared_tag_succeeds_without_access_paths() {
    // The paper's own simulation config (access paths off): a tag issued
    // for another location works — this is exactly the gap §4.A's access
    // path feature closes.
    let r = run_with_mix(vec![AttackerStrategy::SharedTag], false, 5);
    assert!(r.delivery.attacker_requested > 20);
    assert!(
        r.delivery.attacker_ratio() > 0.5,
        "without AP checks, shared tags pass (ratio {})",
        r.delivery.attacker_ratio()
    );
}

#[test]
fn threat_e_shared_tag_blocked_by_access_paths() {
    let r = run_with_mix(vec![AttackerStrategy::SharedTag], true, 5);
    assert!(r.delivery.attacker_requested > 20);
    assert_eq!(
        r.delivery.attacker_received, 0,
        "with AP checks the shared tag's frozen path mismatches"
    );
    assert!(
        r.edge_ops.ap_rejections > 20,
        "AP rejections: {}",
        r.edge_ops.ap_rejections
    );
}

#[test]
fn access_paths_do_not_harm_legitimate_clients() {
    let r = run_with_mix(AttackerStrategy::PAPER_MIX.to_vec(), true, 6);
    assert!(
        r.delivery.client_ratio() > 0.95,
        "clients' own tags carry matching paths (ratio {})",
        r.delivery.client_ratio()
    );
    assert_eq!(r.delivery.attacker_received, 0);
}

#[test]
fn revocation_takes_effect_within_one_validity_period() {
    // Expired-tag attackers ARE revoked clients: they hold a once-genuine
    // tag and are refused fresh ones. Their success count must be zero
    // from the very start of the run (their preset tag is already stale).
    let r = run_with_mix(vec![AttackerStrategy::ExpiredTag], false, 7);
    assert_eq!(r.delivery.attacker_received, 0);
    assert_eq!(
        r.providers.tags_issued as usize,
        r.tags_received.len() + {
            // Setup-time issuance for the preset tags (2 providers × attackers).
            let attackers = 3;
            let providers = 2;
            attackers * providers
        }
    );
}

#[test]
fn mixed_fleet_matches_table_iv_shape() {
    let r = run_with_mix(AttackerStrategy::PAPER_MIX.to_vec(), false, 8);
    assert!(r.delivery.client_ratio() > 0.95);
    assert!(r.delivery.attacker_ratio() < 0.01);
    assert!(r.delivery.attacker_requested < r.delivery.client_requested);
}
