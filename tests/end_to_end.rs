//! Cross-crate integration: the full stack (topology → routers →
//! providers → consumers → engine) exercised end to end.

use tactic::net::run_scenario;
use tactic::scenario::{Scenario, TopologyChoice};
use tactic_sim::time::SimDuration;
use tactic_topology::roles::TopologySpec;

fn quick(mut s: Scenario, secs: u64, seed: u64) -> tactic::metrics::RunReport {
    s.duration = SimDuration::from_secs(secs);
    run_scenario(&s, seed)
}

#[test]
fn clients_are_served_attackers_are_not() {
    let r = quick(Scenario::small(), 12, 1);
    assert!(r.delivery.client_requested > 100);
    assert!(
        r.delivery.client_ratio() > 0.95,
        "client ratio {}",
        r.delivery.client_ratio()
    );
    assert!(
        r.delivery.attacker_ratio() < 0.01,
        "attacker ratio {}",
        r.delivery.attacker_ratio()
    );
    // Attackers are throttled by request expiry, so they request far less
    // than clients (the paper's Table IV shape).
    assert!(r.delivery.attacker_requested < r.delivery.client_requested / 2);
}

#[test]
fn run_is_bit_deterministic() {
    let a = quick(Scenario::small(), 8, 7);
    let b = quick(Scenario::small(), 8, 7);
    assert_eq!(a.events, b.events);
    assert_eq!(a.delivery, b.delivery);
    assert_eq!(a.edge_ops, b.edge_ops);
    assert_eq!(a.core_ops, b.core_ops);
    assert_eq!(a.tag_requests.len(), b.tag_requests.len());
}

#[test]
fn registration_cycle_follows_tag_expiry() {
    let mut s = Scenario::small();
    s.tag_validity = SimDuration::from_secs(5);
    let r = quick(s, 16, 2);
    // 16 s with 5 s tags: active clients re-register at least twice.
    let per_client_q = r.tag_requests.len() as f64 / 6.0;
    assert!(
        per_client_q >= 2.0,
        "per-client registrations {per_client_q}"
    );
    // Essentially all registrations are answered.
    assert!(r.tags_received.len() * 10 >= r.tag_requests.len() * 8);
}

#[test]
fn longer_tags_mean_fewer_registrations() {
    let mut short = Scenario::small();
    short.tag_validity = SimDuration::from_secs(5);
    let mut long = Scenario::small();
    long.tag_validity = SimDuration::from_secs(60);
    let rs = quick(short, 15, 3);
    let rl = quick(long, 15, 3);
    assert!(
        rs.tag_requests.len() > rl.tag_requests.len() * 2,
        "short {} vs long {}",
        rs.tag_requests.len(),
        rl.tag_requests.len()
    );
}

#[test]
fn caches_offload_the_providers() {
    let r = quick(Scenario::small(), 12, 4);
    let served_by_network = r
        .delivery
        .client_received
        .saturating_sub(r.providers.chunks_served);
    assert!(
        served_by_network > r.delivery.client_received / 4,
        "cache hits should serve a sizeable share: origin {} of {}",
        r.providers.chunks_served,
        r.delivery.client_received
    );
}

#[test]
fn edge_routers_shoulder_the_validation_load() {
    let r = quick(Scenario::small(), 12, 5);
    assert!(r.edge_ops.bf_lookups > r.core_ops.bf_lookups);
    assert!(
        r.edge_ops.bf_lookups > 10 * r.edge_ops.sig_verifications,
        "lookups {} should dwarf verifications {}",
        r.edge_ops.bf_lookups,
        r.edge_ops.sig_verifications
    );
}

#[test]
fn public_catalog_needs_no_tags_at_all() {
    let mut s = Scenario::small();
    s.content_levels = vec![tactic::access::AccessLevel::Public];
    let r = quick(s, 10, 6);
    assert!(r.delivery.client_ratio() > 0.95);
    // Most attackers succeed too — the content is public. (Expired-tag
    // attackers are still dropped: Protocol 1 rejects a stale tag at the
    // edge before anyone knows the content is public.)
    assert!(
        r.delivery.attacker_ratio() > 0.5,
        "attacker ratio {}",
        r.delivery.attacker_ratio()
    );
    assert!(
        r.edge_ops.precheck_rejections > 0,
        "expired tags are rejected regardless of content level"
    );
}

#[test]
fn bigger_networks_scale_without_breaking_invariants() {
    let mut s = Scenario::small();
    s.topology = TopologyChoice::Custom(TopologySpec {
        core_routers: 40,
        edge_routers: 8,
        providers: 4,
        clients: 16,
        attackers: 8,
    });
    let r = quick(s, 10, 8);
    assert!(r.delivery.client_ratio() > 0.9);
    assert!(r.delivery.attacker_ratio() < 0.02);
    assert!(r.events > 50_000);
}

#[test]
fn zero_attackers_is_a_clean_network() {
    let mut s = Scenario::small();
    s.topology = TopologyChoice::Custom(TopologySpec {
        core_routers: 10,
        edge_routers: 3,
        providers: 2,
        clients: 6,
        attackers: 0,
    });
    let r = quick(s, 10, 9);
    assert_eq!(r.delivery.attacker_requested, 0);
    assert!(r.delivery.client_ratio() > 0.95);
}

#[test]
fn latency_series_covers_the_run() {
    let r = quick(Scenario::small(), 15, 10);
    let series = r.latency.per_second_means();
    assert!(series.len() >= 12, "series has {} points", series.len());
    for &(_, mean) in &series {
        assert!(mean > 0.0 && mean < 2.0, "implausible latency {mean}");
    }
}
