//! The headline determinism guarantee of the sharded PDES: a K-sharded
//! run is **byte-identical** to the sequential run — same `RunReport`
//! / `BaselineReport` debug dump, same telemetry JSONL export, same
//! transport counters — for K ∈ {2, 4, 8} on both planes.
//!
//! The sequential engine is the specification; the epoch-synchronized
//! shard fleet is the implementation under test.

use tactic::net::{run_scenario, run_scenario_sharded, run_traced_sharded};
use tactic::scenario::Scenario;
use tactic_baselines::{run_baseline, run_baseline_sharded, Mechanism};
use tactic_net::{MobilityConfig, NetCounters};
use tactic_sim::time::{SimDuration, SimTime};
use tactic_telemetry::ProtocolRecorder;
use tactic_topology::shard::ShardError;

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

fn small(secs: u64) -> Scenario {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(secs);
    s
}

/// A canonical, ordering-independent dump of [`NetCounters`] (its
/// `link_load` map iterates in hash order, so `{:?}` is not stable).
fn counters_dump(c: &NetCounters) -> String {
    let mut loads: Vec<_> = c
        .link_load
        .iter()
        .map(|(&(a, b), l)| (a, b, l.packets, l.bytes, l.busy))
        .collect();
    loads.sort();
    format!(
        "scheduled={} delivered={} dangling={} reverse={} lossy={} \
         link_down={} node_down={} rate_limited={} face_capped={} \
         handovers={} bytes={} loads={loads:?}",
        c.scheduled,
        c.delivered,
        c.dropped_dangling_face,
        c.dropped_reverse_face,
        c.dropped_lossy,
        c.dropped_link_down,
        c.dropped_node_down,
        c.dropped_rate_limited,
        c.dropped_face_capped,
        c.handovers,
        c.bytes_on_wire,
    )
}

#[test]
fn tactic_reports_are_byte_identical_across_shard_counts() {
    let scenario = small(10);
    let sequential = format!("{:#?}", run_scenario(&scenario, 42));
    for k in SHARD_COUNTS {
        let (report, stats) =
            run_scenario_sharded(&scenario, 42, k).expect("small topology fits 8 shards");
        assert_eq!(stats.k, k);
        assert_eq!(stats.per_shard_events.len(), k);
        assert_eq!(stats.per_shard_peak_queue.len(), k);
        assert_eq!(
            sequential,
            format!("{report:#?}"),
            "K={k} sharded TACTIC report diverged from sequential"
        );
    }
}

#[test]
fn baseline_reports_are_byte_identical_across_shard_counts() {
    let scenario = small(10);
    for mechanism in [
        Mechanism::NoAccessControl,
        Mechanism::ClientSideAc,
        Mechanism::ProviderAuthAc,
    ] {
        let sequential = format!("{:#?}", run_baseline(&scenario, mechanism, 42));
        for k in SHARD_COUNTS {
            let (report, _) = run_baseline_sharded(&scenario, mechanism, 42, k)
                .expect("small topology fits 8 shards");
            assert_eq!(
                sequential,
                format!("{report:#?}"),
                "K={k} sharded {mechanism:?} report diverged from sequential"
            );
        }
    }
}

#[test]
fn telemetry_and_transport_counters_merge_to_sequential() {
    let scenario = small(10);
    let (seq_report, seq_counters, seq_recorder) = tactic::Network::build_traced(
        &scenario,
        42,
        NetCounters::default(),
        ProtocolRecorder::default(),
    )
    .run_traced();
    let seq_jsonl = seq_recorder.export_registry().to_jsonl();
    let seq_dump = counters_dump(&seq_counters);

    for k in SHARD_COUNTS {
        let (report, counters, recorders, _) = run_traced_sharded(
            &scenario,
            42,
            k,
            |_| NetCounters::default(),
            |_| ProtocolRecorder::default(),
        )
        .expect("small topology fits 8 shards");
        assert_eq!(format!("{seq_report:#?}"), format!("{report:#?}"));

        let mut merged_counters = NetCounters::default();
        for c in &counters {
            merged_counters.merge(c);
        }
        assert_eq!(
            seq_dump,
            counters_dump(&merged_counters),
            "K={k} merged transport counters diverged from sequential"
        );

        let mut merged = ProtocolRecorder::default();
        for r in &recorders {
            merged.merge(r);
        }
        assert_eq!(
            seq_jsonl,
            merged.export_registry().to_jsonl(),
            "K={k} merged telemetry export diverged from sequential"
        );
    }
}

#[test]
fn mobility_runs_are_byte_identical_across_shard_counts() {
    let mut scenario = small(10);
    scenario.mobility = Some(MobilityConfig {
        mean_dwell: SimDuration::from_secs(3),
        mobile_fraction: 0.5,
    });
    let sequential = format!("{:#?}", run_scenario(&scenario, 7));
    for k in SHARD_COUNTS {
        let (report, _) =
            run_scenario_sharded(&scenario, 7, k).expect("small topology fits 8 shards");
        assert_eq!(
            sequential,
            format!("{report:#?}"),
            "K={k} sharded mobility run diverged from sequential"
        );
    }
}

#[test]
fn retransmitting_faulty_runs_are_byte_identical_across_shard_counts() {
    use tactic_net::{FaultEvent, FaultKind, LossModel, RetransmitPolicy};
    use tactic_topology::NodeId;
    let mut scenario = small(10);
    scenario.faults.loss = LossModel::Uniform { p: 0.02 };
    scenario.faults.schedule = vec![
        FaultEvent {
            at: SimTime::from_secs(2),
            kind: FaultKind::NodeDown { node: NodeId(3) },
        },
        FaultEvent {
            at: SimTime::from_secs(5),
            kind: FaultKind::NodeUp { node: NodeId(3) },
        },
    ];
    scenario.retransmit = Some(RetransmitPolicy::default());
    let sequential = format!("{:#?}", run_scenario(&scenario, 11));
    for k in SHARD_COUNTS {
        let (report, _) =
            run_scenario_sharded(&scenario, 11, k).expect("small topology fits 8 shards");
        assert_eq!(
            sequential,
            format!("{report:#?}"),
            "K={k} sharded faulty run diverged from sequential"
        );
    }
}

/// An attacked-and-defended run: the flood fleet's extra traffic and
/// the send-time defense drops (counted in the transmitting shard) must
/// merge to the sequential transport counters byte for byte, and the
/// token bucket must actually have fired.
#[test]
fn attacked_defended_transport_counters_merge_to_sequential() {
    use tactic::scenario::{AttackClass, AttackPlan};
    let mut scenario = small(8);
    scenario.attack = AttackPlan {
        class: Some(AttackClass::Flood),
        intensity: 500,
    };
    scenario.defense = tactic_experiments::attacks::armed_defense();
    let (seq_report, seq_counters, _) = tactic::Network::build_traced(
        &scenario,
        42,
        NetCounters::default(),
        ProtocolRecorder::default(),
    )
    .run_traced();
    assert!(
        seq_counters.dropped_rate_limited > 0,
        "flood at 500/s must trip the 150/s token bucket"
    );
    let seq_dump = counters_dump(&seq_counters);

    for k in SHARD_COUNTS {
        let (report, counters, _, _) = run_traced_sharded(
            &scenario,
            42,
            k,
            |_| NetCounters::default(),
            |_| ProtocolRecorder::default(),
        )
        .expect("small topology fits 8 shards");
        assert_eq!(format!("{seq_report:#?}"), format!("{report:#?}"));
        let mut merged = NetCounters::default();
        for c in &counters {
            merged.merge(c);
        }
        assert_eq!(
            seq_dump,
            counters_dump(&merged),
            "K={k} merged defense-drop counters diverged from sequential"
        );
    }
}

/// A sharded run reproduces the *checked-in* golden snapshot, not just
/// the in-process sequential dump — the full determinism chain.
#[test]
fn sharded_run_matches_checked_in_golden_snapshot() {
    let golden = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots/tactic_small_seed42.txt");
    let want = std::fs::read_to_string(&golden).expect("golden snapshot present");
    let (report, _) = run_scenario_sharded(&small(5), 42, 4).expect("small topology fits 4 shards");
    assert_eq!(
        want,
        format!("{report:#?}\n"),
        "K=4 sharded run diverged from the checked-in golden snapshot"
    );
}

#[test]
fn one_shard_matches_sequential_and_oversharding_is_rejected() {
    let scenario = small(5);
    let sequential = format!("{:#?}", run_scenario(&scenario, 42));
    let (report, stats) = run_scenario_sharded(&scenario, 42, 1).expect("K=1 always fits");
    assert_eq!(stats.k, 1);
    assert_eq!(sequential, format!("{report:#?}"));

    let routers = scenario.topology.spec().routers();
    match run_scenario_sharded(&scenario, 42, routers + 1) {
        Err(ShardError::TooManyShards { requested, .. }) => {
            assert_eq!(requested, routers + 1)
        }
        other => panic!("expected TooManyShards, got {other:?}"),
    }
}
