//! ISSUE 8's observability guarantees, end to end:
//!
//! * the sim-time sampler's `timeseries.jsonl` bytes are identical
//!   across `--threads {1,8}` × `--shards {1,4}` on both planes — the
//!   time series is a golden artifact like every report field;
//! * a *disabled* sampler (the default) leaves the checked-in golden
//!   report snapshot untouched — the observability layer is zero-cost
//!   and zero-effect when off;
//! * an *enabled* sampler never perturbs the simulation trajectory —
//!   deliveries, drops, and PIT peaks match the unsampled run exactly,
//!   only `samples` (excluded from the `Debug` dump) is new.

use tactic::net::{run_scenario, run_scenario_sharded};
use tactic::scenario::Scenario;
use tactic_baselines::{run_baseline, run_baseline_sharded, Mechanism};
use tactic_experiments::opts::Verbosity;
use tactic_experiments::runner::{run_replicas, scenario_id};
use tactic_sim::time::SimDuration;
use tactic_telemetry::timeseries_to_jsonl;
use tactic_topology::paper::PaperTopology;

fn small(secs: u64) -> Scenario {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(secs);
    s
}

fn sampled(secs: u64) -> Scenario {
    let mut s = small(secs);
    s.sample_every = Some(SimDuration::from_secs(1));
    s
}

/// The tactic plane across the full `--threads {1,8}` × `--shards
/// {1,4}` matrix: every cell's per-replica time series must be
/// byte-identical to the sequential reference.
#[test]
fn tactic_timeseries_is_byte_identical_across_threads_and_shards() {
    let scenario = sampled(8);
    let sid = scenario_id("observability", &[]);
    let dump = |threads: usize, shards: usize| -> Vec<String> {
        run_replicas(
            "obs",
            PaperTopology::Topo1,
            sid,
            &scenario,
            2,
            threads,
            &[shards],
            Verbosity::Quiet,
        )
        .iter()
        .map(|r| timeseries_to_jsonl("tactic", &r.samples))
        .collect()
    };
    let reference = dump(1, 1);
    assert!(
        reference.iter().all(|t| !t.is_empty()),
        "sampler produced no rows"
    );
    for (threads, shards) in [(8, 1), (1, 4), (8, 4)] {
        assert_eq!(
            reference,
            dump(threads, shards),
            "--threads {threads} --shards {shards} changed the timeseries bytes"
        );
    }
}

/// The baseline plane across the same matrix: sequential vs. 4-sharded,
/// each re-run under 8 concurrent worker threads.
#[test]
fn baseline_timeseries_is_byte_identical_across_threads_and_shards() {
    let scenario = sampled(8);
    let mechanism = Mechanism::NoAccessControl;
    let reference = timeseries_to_jsonl(
        "no-access-control",
        &run_baseline(&scenario, mechanism, 42).samples,
    );
    assert!(!reference.is_empty(), "sampler produced no rows");
    let (sharded, _) =
        run_baseline_sharded(&scenario, mechanism, 42, 4).expect("small topology fits 4 shards");
    assert_eq!(
        reference,
        timeseries_to_jsonl("no-access-control", &sharded.samples),
        "--shards 4 changed the baseline timeseries bytes"
    );
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let scenario = &scenario;
                scope.spawn(move || {
                    let samples = if i % 2 == 0 {
                        run_baseline(scenario, mechanism, 42).samples
                    } else {
                        run_baseline_sharded(scenario, mechanism, 42, 4)
                            .expect("fits")
                            .0
                            .samples
                    };
                    timeseries_to_jsonl("no-access-control", &samples)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(
                reference,
                h.join().expect("worker"),
                "8 concurrent workers changed the baseline timeseries bytes"
            );
        }
    });
}

/// An attacked-and-defended run's time series carries the defense drop
/// counters (cumulative and per-interval deltas), reaches a nonzero
/// rate-limited count by the end of the run, and stays byte-identical
/// across shard counts.
#[test]
fn attacked_timeseries_carries_defense_drops_and_stays_byte_identical() {
    use tactic::scenario::{AttackClass, AttackPlan};
    let mut scenario = sampled(8);
    scenario.attack = AttackPlan {
        class: Some(AttackClass::Flood),
        intensity: 500,
    };
    scenario.defense = tactic_experiments::attacks::armed_defense();
    let reference = run_scenario(&scenario, 42);
    assert!(
        reference.drops.rate_limited > 0,
        "flood at 500/s must trip the 150/s token bucket"
    );
    let jsonl = timeseries_to_jsonl("tactic", &reference.samples);
    for key in ["drops_rate_limited", "drops_face_capped", "drops_pit_full"] {
        assert!(
            jsonl.lines().all(|l| l.contains(&format!("\"{key}\":"))
                && l.contains(&format!("\"d_{key}\":"))),
            "every timeseries row must carry {key} and d_{key}"
        );
    }
    let last = jsonl.lines().last().expect("sampler produced rows");
    let cumulative: u64 = last
        .split("\"drops_rate_limited\":")
        .nth(1)
        .expect("key present")
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .expect("digits")
        .parse()
        .expect("number");
    assert!(
        cumulative > 0,
        "final sample must have accumulated rate-limited drops: {last}"
    );
    let (sharded, _) =
        run_scenario_sharded(&scenario, 42, 4).expect("small topology fits 4 shards");
    assert_eq!(
        jsonl,
        timeseries_to_jsonl("tactic", &sharded.samples),
        "--shards 4 changed the attacked timeseries bytes"
    );
}

/// The regression ISSUE 8 demands: with the sampler off (the default),
/// the report still reproduces the *checked-in* golden snapshot byte
/// for byte — the observability layer added nothing to the dump and
/// perturbed nothing in the run.
#[test]
fn disabled_sampler_leaves_golden_snapshot_untouched() {
    let golden = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots/tactic_small_seed42.txt");
    let want = std::fs::read_to_string(&golden).expect("golden snapshot present");
    let report = run_scenario(&small(5), 42);
    assert!(
        report.samples.is_empty() && report.profile.is_none(),
        "disabled sampler/profiler must collect nothing"
    );
    assert_eq!(
        want,
        format!("{report:#?}\n"),
        "a disabled sampler perturbed the golden report snapshot"
    );
}

/// An enabled sampler adds `SampleTick` engine events but must not move
/// a single packet: deliveries, drops, and table peaks are unchanged on
/// both planes, sequentially and sharded.
#[test]
fn enabled_sampler_never_perturbs_the_run() {
    let plain = run_scenario(&small(8), 42);
    let watched = run_scenario(&sampled(8), 42);
    assert!(!watched.samples.is_empty());
    assert_eq!(
        format!("{:?}", plain.delivery),
        format!("{:?}", watched.delivery)
    );
    assert_eq!(format!("{:?}", plain.drops), format!("{:?}", watched.drops));
    assert_eq!(plain.peak_pit_records, watched.peak_pit_records);
    assert_eq!(plain.peak_cs_entries, watched.peak_cs_entries);
    assert_eq!(plain.client_timeouts, watched.client_timeouts);

    let (watched_sharded, _) =
        run_scenario_sharded(&sampled(8), 42, 4).expect("small topology fits 4 shards");
    assert_eq!(
        timeseries_to_jsonl("tactic", &watched.samples),
        timeseries_to_jsonl("tactic", &watched_sharded.samples),
    );

    let plain = run_baseline(&small(8), Mechanism::ClientSideAc, 42);
    let watched = run_baseline(&sampled(8), Mechanism::ClientSideAc, 42);
    assert!(!watched.samples.is_empty());
    assert_eq!(plain.client_received, watched.client_received);
    assert_eq!(plain.client_timeouts, watched.client_timeouts);
    assert_eq!(plain.peak_pit_records, watched.peak_pit_records);
    assert_eq!(plain.peak_cs_entries, watched.peak_cs_entries);
}
