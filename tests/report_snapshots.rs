//! Golden-report snapshots guarding the shared-transport refactor.
//!
//! The files under `tests/snapshots/` were generated from the pre-refactor
//! simulation planes (`crates/core/src/net.rs` and
//! `crates/baselines/src/net.rs` before their event loops were unified into
//! `tactic-net`). These tests re-run the same small scenarios and assert the
//! aggregated reports are byte-identical, per plane and per `--threads`
//! count: the transport extraction must not perturb a single RNG draw,
//! event timestamp, or engine sequence number.
//!
//! Regenerate (only when a *deliberate* behaviour change lands) with:
//!
//! ```sh
//! SNAPSHOT_UPDATE=1 cargo test --test report_snapshots
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use tactic::metrics::RunReport;
use tactic::net::run_scenario;
use tactic::scenario::Scenario;
use tactic_baselines::mechanism::Mechanism;
use tactic_baselines::net::run_baseline;
use tactic_experiments::opts::Verbosity;
use tactic_experiments::runner::{run_replicas, scenario_id};
use tactic_sim::time::SimDuration;
use tactic_topology::paper::PaperTopology;

fn small(secs: u64) -> Scenario {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(secs);
    s
}

fn check(name: &str, got: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(name);
    if std::env::var_os("SNAPSHOT_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir");
        std::fs::write(&path, got).expect("write snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {name} ({e}); run with SNAPSHOT_UPDATE=1"));
    assert_eq!(
        want, got,
        "report for {name} diverged from the pre-refactor snapshot"
    );
}

fn dump_runs(reports: &[RunReport]) -> String {
    let mut out = String::new();
    for (i, r) in reports.iter().enumerate() {
        writeln!(out, "=== run {i} ===\n{r:#?}").expect("string write");
    }
    out
}

#[test]
fn tactic_plane_small_report_is_byte_identical() {
    let r = run_scenario(&small(5), 42);
    check("tactic_small_seed42.txt", &format!("{r:#?}\n"));
}

#[test]
fn baseline_planes_small_reports_are_byte_identical() {
    let r = run_baseline(&small(5), Mechanism::ClientSideAc, 42);
    check("baseline_client_side_seed42.txt", &format!("{r:#?}\n"));
    let r = run_baseline(&small(5), Mechanism::ProviderAuthAc, 42);
    check("baseline_provider_auth_seed42.txt", &format!("{r:#?}\n"));
}

#[test]
fn grid_reports_are_byte_identical_across_thread_counts() {
    let s = small(5);
    let sid = scenario_id("refactor-snapshot", &[]);
    let serial = run_replicas(
        "snap",
        PaperTopology::Topo1,
        sid,
        &s,
        2,
        1,
        &[1],
        Verbosity::Quiet,
    );
    let serial_dump = dump_runs(&serial);
    for threads in [4, 8] {
        let parallel = run_replicas(
            "snap",
            PaperTopology::Topo1,
            sid,
            &s,
            2,
            threads,
            &[1],
            Verbosity::Quiet,
        );
        assert_eq!(
            serial_dump,
            dump_runs(&parallel),
            "--threads 1 vs {threads} must not change any report byte"
        );
    }
    check("grid_small_2seeds.txt", &serial_dump);
}

/// Guards the snapshot *files themselves* against churn: an accidental
/// `SNAPSHOT_UPDATE=1` regeneration that changes anything fails this
/// test even though the behavioural tests above would then trivially
/// pass. Re-pinned for the sharded-PDES refactor: shard-invariant event
/// keys and per-node RNG streams re-ordered same-instant draws (and
/// `peak_queue_depth`, a per-engine quantity, left the report dump), so
/// the sequential trajectory itself legitimately changed.
#[test]
fn checked_in_snapshots_are_unchanged_from_seed() {
    use tactic_crypto::hash::Hasher64;
    let pinned: &[(&str, u64, usize)] =
        &[("tactic_small_seed42.txt", 0xBED1_760F_680E_BB95, 852_596)];
    for &(name, digest, len) in pinned {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/snapshots")
            .join(name);
        let bytes =
            std::fs::read(&path).unwrap_or_else(|e| panic!("missing snapshot {name} ({e})"));
        let mut h = Hasher64::new();
        h.update(&bytes);
        assert_eq!(
            bytes.len(),
            len,
            "{name} changed size since the seed commit"
        );
        assert_eq!(
            h.finish(),
            digest,
            "{name} diverged from the seed commit's bytes"
        );
    }
}
