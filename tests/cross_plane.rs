//! Cross-plane equivalence: the TACTIC plane and the baseline planes ride
//! the *same* shared transport, so pass-through mechanisms must agree on
//! the schedule, and transport-level invariants must hold identically on
//! both sides.

use tactic::net::Network;
use tactic::scenario::Scenario;
use tactic_baselines::net::{run_baseline, BaselineNetwork};
use tactic_baselines::Mechanism;
use tactic_net::NetCounters;
use tactic_sim::time::SimDuration;

fn scenario() -> Scenario {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(8);
    s
}

#[test]
fn pass_through_mechanisms_share_one_transport_schedule() {
    // NoAccessControl and ClientSideAc are both pass-through at the
    // forwarding layer (same names, same caching, no provider auth), so
    // on the same (topology, seed) the shared transport must produce the
    // identical event total and delivery counts — the mechanisms differ
    // only in what the received bytes *mean*.
    let a = run_baseline(&scenario(), Mechanism::NoAccessControl, 7);
    let b = run_baseline(&scenario(), Mechanism::ClientSideAc, 7);
    assert_eq!(a.events, b.events, "event totals must match");
    assert_eq!(a.client_requested, b.client_requested);
    assert_eq!(a.client_received, b.client_received);
    assert_eq!(a.attacker_requested, b.attacker_requested);
    assert_eq!(a.attacker_received, b.attacker_received);
    assert_eq!(a.attacker_bytes, b.attacker_bytes);
    assert_eq!(a.cache_hits, b.cache_hits);
    assert_eq!(a.provider_handled, b.provider_handled);
    assert!(
        a.client_received > 0,
        "the schedule must carry real traffic"
    );
}

#[test]
fn both_planes_uphold_the_transport_invariants() {
    let s = scenario();
    let (_tactic, tc) = Network::build_observed(&s, 7, NetCounters::default()).run_observed();
    let (_baseline, bc) =
        BaselineNetwork::build_observed(&s, Mechanism::NoAccessControl, 7, NetCounters::default())
            .run_observed();
    for (plane, c) in [("tactic", &tc), ("baseline", &bc)] {
        assert!(c.delivered > 0, "{plane}: no deliveries observed");
        assert!(
            c.delivered <= c.scheduled,
            "{plane}: delivered {} > scheduled {}",
            c.delivered,
            c.scheduled
        );
        assert_eq!(
            c.dropped(),
            0,
            "{plane}: a static topology must not drop packets"
        );
        assert_eq!(c.handovers, 0, "{plane}: no mobility configured");
        assert!(c.bytes_on_wire > 0, "{plane}: links must carry bytes");
    }
}
