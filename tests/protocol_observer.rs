//! Protocol-observer neutrality: attaching a recording
//! [`ProtocolRecorder`] must not perturb a single simulation byte.
//!
//! The observer contract (see DESIGN.md §Telemetry) is that hooks receive
//! references only, never draw from the simulation RNG, and never feed
//! back into protocol state. These tests enforce it end to end: the same
//! (scenario, seed) run with the default no-op observer and with a full
//! recorder must produce byte-identical `RunReport`s on both planes —
//! while the recorder itself comes back non-trivially populated, proving
//! the hooks actually fired.

use tactic::net::{run_scenario, Network};
use tactic::scenario::Scenario;
use tactic_baselines::mechanism::Mechanism;
use tactic_baselines::net::{run_baseline, BaselineNetwork};
use tactic_net::NoopObserver;
use tactic_sim::time::SimDuration;
use tactic_telemetry::ProtocolRecorder;

fn small(secs: u64) -> Scenario {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(secs);
    s
}

#[test]
fn recording_observer_leaves_tactic_plane_byte_identical() {
    let scenario = small(5);
    let plain = run_scenario(&scenario, 42);
    let (recorded, _, recorder) =
        Network::build_traced(&scenario, 42, NoopObserver, ProtocolRecorder::default())
            .run_traced();
    assert_eq!(
        format!("{plain:#?}"),
        format!("{recorded:#?}"),
        "ProtocolRecorder must not perturb the tactic plane"
    );
    let registry = recorder.export_registry();
    assert!(
        registry.counter_prefix_sum("tactic.bf_lookup.") > 0,
        "recorder saw no BF lookups — hooks not wired?"
    );
    assert!(
        registry.counter("tactic.lifecycle.completed.data") > 0,
        "recorder saw no completed retrievals"
    );
}

#[test]
fn recording_observer_leaves_baseline_planes_byte_identical() {
    let scenario = small(5);
    for mechanism in Mechanism::ALL {
        let plain = run_baseline(&scenario, mechanism, 42);
        let (recorded, _, recorder) = BaselineNetwork::build_traced(
            &scenario,
            mechanism,
            42,
            NoopObserver,
            ProtocolRecorder::default(),
        )
        .run_traced();
        assert_eq!(
            format!("{plain:#?}"),
            format!("{recorded:#?}"),
            "ProtocolRecorder must not perturb the {mechanism} baseline"
        );
        let registry = recorder.export_registry();
        assert!(
            registry.counter("tactic.lifecycle.completed.data") > 0,
            "{mechanism}: recorder saw no completed retrievals"
        );
    }
}
