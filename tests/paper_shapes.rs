//! Qualitative-shape tests: the relationships the paper's evaluation
//! reports must hold in the reproduction (who wins, in which direction,
//! roughly by how much) — independent of absolute numbers.

use tactic::consumer::AttackerStrategy;
use tactic::net::run_scenario;
use tactic::scenario::Scenario;
use tactic_baselines::mechanism::Mechanism;
use tactic_baselines::net::run_baseline;
use tactic_sim::time::SimDuration;

fn base(secs: u64) -> Scenario {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(secs);
    s
}

/// Fig. 5's driver: a saturating Bloom filter forces resets and
/// re-validation; a bigger filter absorbs more before resetting.
#[test]
fn fig8_shape_bigger_filters_reset_less() {
    let mut tiny = base(30);
    tiny.bf_capacity = 10;
    tiny.tag_validity = SimDuration::from_secs(1);
    let mut large = tiny.clone();
    large.bf_capacity = 500;
    let r_tiny = run_scenario(&tiny, 1);
    let r_large = run_scenario(&large, 1);
    assert!(
        r_tiny.edge_ops.bf_resets > r_large.edge_ops.bf_resets,
        "25-tag filter resets {} vs 500-tag {}",
        r_tiny.edge_ops.bf_resets,
        r_large.edge_ops.bf_resets
    );
    assert!(
        r_tiny.edge_ops.bf_resets >= 3,
        "the tiny filter must actually cycle"
    );
}

/// Fig. 8's FPP sweep: a looser reset threshold absorbs more requests per
/// reset.
#[test]
fn fig8_shape_looser_threshold_absorbs_more() {
    let mut strict = base(30);
    strict.bf_capacity = 10;
    strict.tag_validity = SimDuration::from_secs(1);
    strict.bf_max_fpp = 1e-4;
    let mut loose = strict.clone();
    loose.bf_max_fpp = 1e-2;
    let r_strict = run_scenario(&strict, 2);
    let r_loose = run_scenario(&loose, 2);
    assert!(
        r_loose.edge_ops.bf_resets < r_strict.edge_ops.bf_resets,
        "loose threshold: {} resets vs strict {}",
        r_loose.edge_ops.bf_resets,
        r_strict.edge_ops.bf_resets
    );
}

/// Fig. 6's inset: 10 s → 100 s tag validity cuts the tag-request rate to
/// roughly a quarter (the paper reports ~4x on Topology 1).
#[test]
fn fig6_shape_tag_rates_scale_with_validity() {
    let mut short = base(20);
    short.tag_validity = SimDuration::from_secs(5);
    let mut long = short.clone();
    long.tag_validity = SimDuration::from_secs(50);
    let rs = run_scenario(&short, 3);
    let rl = run_scenario(&long, 3);
    let ratio = rs.tag_request_rate() / rl.tag_request_rate().max(1e-9);
    assert!(
        ratio > 2.0,
        "short-validity Q rate should be several times higher, got {ratio:.2}x"
    );
}

/// Fig. 7's headline: cheap lookups dominate; expensive verifications are
/// orders of magnitude rarer at the edge.
#[test]
fn fig7_shape_lookups_dominate_verifications() {
    let r = run_scenario(&base(15), 4);
    assert!(r.edge_ops.bf_lookups as f64 > 20.0 * r.edge_ops.sig_verifications as f64);
    // Core routers do less total work than edges (aggregation + flag F).
    assert!(
        r.core_ops.bf_lookups + r.core_ops.sig_verifications
            < r.edge_ops.bf_lookups + r.edge_ops.sig_verifications
    );
}

/// The flag-F cooperation is what keeps content-router verification rare:
/// disabling it must increase verification work without changing outcomes.
#[test]
fn ablation_flag_f_reduces_verifications() {
    let on = base(15);
    let mut off = base(15);
    off.flag_f_enabled = false;
    let r_on = run_scenario(&on, 5);
    let r_off = run_scenario(&off, 5);
    let v_on = r_on.edge_ops.sig_verifications + r_on.core_ops.sig_verifications;
    let v_off = r_off.edge_ops.sig_verifications + r_off.core_ops.sig_verifications;
    assert!(
        v_off > v_on,
        "flag F off: {v_off} verifications vs on: {v_on}"
    );
    assert!(
        r_off.delivery.client_ratio() > 0.95,
        "delivery unharmed either way"
    );
}

/// §1's motivation, quantified: client-side AC wastes bandwidth on
/// unauthorized users; TACTIC does not.
#[test]
fn baseline_shape_client_side_ac_leaks_tactic_does_not() {
    let s = base(12);
    let tactic_run = run_scenario(&s, 6);
    let leaky = run_baseline(&s, Mechanism::ClientSideAc, 6);
    assert_eq!(tactic_run.delivery.attacker_received, 0);
    assert!(
        leaky.attacker_received > 100,
        "client-side AC delivers to attackers"
    );
    assert!(leaky.attacker_bytes > 500_000);
}

/// §1's other motivation: an always-online provider forfeits caching.
#[test]
fn baseline_shape_provider_auth_forfeits_caching() {
    let s = base(12);
    let tactic_run = run_scenario(&s, 7);
    let always_on = run_baseline(&s, Mechanism::ProviderAuthAc, 7);
    assert_eq!(always_on.cache_hits, 0);
    assert!(
        always_on.provider_handled > 2 * tactic_run.providers.chunks_served,
        "origin load: always-online {} vs TACTIC {}",
        always_on.provider_handled,
        tactic_run.providers.chunks_served
    );
}

/// Table IV's contrast holds under every attacker strategy the paper's
/// simulation implements.
#[test]
fn table4_shape_holds_per_strategy() {
    for (i, strat) in AttackerStrategy::PAPER_MIX.iter().enumerate() {
        let mut s = base(10);
        s.attacker_mix = vec![*strat];
        let r = run_scenario(&s, 10 + i as u64);
        assert!(
            r.delivery.attacker_ratio() < 0.01,
            "{strat:?}: ratio {}",
            r.delivery.attacker_ratio()
        );
        assert!(r.delivery.client_ratio() > 0.95, "{strat:?} harmed clients");
    }
}

/// Latency ordering: computation-cost injection slows retrieval, but only
/// modestly (the paper's injected costs are micro-scale vs millisecond
/// links).
#[test]
fn cost_injection_has_bounded_latency_impact() {
    let with_costs = base(12);
    let mut free = base(12);
    free.cost_model = tactic_sim::cost::CostModel::free();
    let r_with = run_scenario(&with_costs, 8);
    let r_free = run_scenario(&free, 8);
    assert!(r_with.mean_latency() >= r_free.mean_latency() * 0.8);
    assert!(
        r_with.mean_latency() < r_free.mean_latency() * 2.0 + 0.01,
        "cost injection should not dominate link latency: {} vs {}",
        r_with.mean_latency(),
        r_free.mean_latency()
    );
}
