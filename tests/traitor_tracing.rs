//! End-to-end traitor tracing (the paper's §9 future work): even with
//! access-path *enforcement* off — the paper's own simulation config —
//! edge-router sightings alone convict a client who shared her tag.

use tactic::consumer::AttackerStrategy;
use tactic::net::run_scenario;
use tactic::scenario::Scenario;
use tactic::traitor::TraitorTracer;
use tactic_sim::time::SimDuration;

fn sighting_run(mix: Vec<AttackerStrategy>, seed: u64) -> tactic::metrics::RunReport {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(12);
    s.attacker_mix = mix;
    s.access_path_enabled = false; // enforcement OFF: detection only
    s.record_sightings = true;
    run_scenario(&s, seed)
}

fn trace(report: &tactic::metrics::RunReport) -> TraitorTracer {
    let mut sightings = report.sightings.clone();
    sightings.sort_by_key(|s| s.at);
    let mut tracer = TraitorTracer::new(SimDuration::from_secs(10));
    tracer.observe_all(sightings);
    tracer
}

#[test]
fn shared_tags_are_detected_even_without_enforcement() {
    let report = sighting_run(vec![AttackerStrategy::SharedTag], 1);
    // Enforcement is off, so the sharing "succeeds" on the wire...
    assert!(report.delivery.attacker_ratio() > 0.5);
    // ...but tracing convicts the shared identities.
    let tracer = trace(&report);
    let flagged: Vec<u64> = tracer.flagged().map(|(id, _)| id).collect();
    assert!(
        !flagged.is_empty(),
        "the victim identities used from two locations must be flagged"
    );
    // Repeated concurrent use keeps producing evidence.
    assert!(
        tracer.alerts().len() >= 5,
        "alerts: {}",
        tracer.alerts().len()
    );
}

#[test]
fn honest_fleet_raises_no_alerts() {
    // No shared-tag attackers: every identity is used from exactly one
    // location, so the tracer must stay silent (no false accusations).
    let report = sighting_run(AttackerStrategy::PAPER_MIX.to_vec(), 2);
    assert!(!report.sightings.is_empty(), "sightings must be recorded");
    let tracer = trace(&report);
    assert_eq!(
        tracer.alerts().len(),
        0,
        "stationary clients must never be flagged: {:?}",
        tracer.alerts().first()
    );
}

#[test]
fn alerts_identify_real_victims_only() {
    let report = sighting_run(vec![AttackerStrategy::SharedTag], 3);
    let tracer = trace(&report);
    // Count distinct client identities observed at ALL; flagged ones must
    // be a strict subset (the sharing victims, not the whole fleet).
    let all_ids: std::collections::HashSet<u64> =
        report.sightings.iter().map(|s| s.identity).collect();
    let flagged: std::collections::HashSet<u64> = tracer.flagged().map(|(id, _)| id).collect();
    assert!(flagged.is_subset(&all_ids));
    assert!(
        flagged.len() < all_ids.len(),
        "only the shared identities ({}) of {} observed may be flagged",
        flagged.len(),
        all_ids.len()
    );
}

#[test]
fn sightings_are_off_by_default() {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(6);
    let report = run_scenario(&s, 4);
    assert!(report.sightings.is_empty());
}
