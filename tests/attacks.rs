//! ISSUE 9's adversarial-workload guarantees, end to end:
//!
//! * an **inactive** attack plan (no class, or intensity 0) and an armed
//!   but non-binding defense both reproduce the checked-in golden
//!   snapshots byte for byte — the adversarial machinery is zero-cost
//!   and zero-effect until it actually fires;
//! * under **every** attack class and intensity, arming the edge
//!   defenses never loses client goodput on either plane — the
//!   degradation curve with defenses on dominates the one without;
//! * attacked-and-defended runs stay **byte-identical** across shard
//!   counts and concurrent worker threads, churn included (churn
//!   re-points radio links mid-run, which exercises the mobile
//!   lookahead bound without `Scenario::mobility` being set).

use tactic::net::{run_scenario, run_scenario_sharded};
use tactic::scenario::{AttackClass, AttackPlan, DefenseConfig, Scenario};
use tactic_baselines::{run_baseline, run_baseline_sharded, Mechanism};
use tactic_experiments::attacks::armed_defense;
use tactic_sim::time::SimDuration;

fn small(secs: u64) -> Scenario {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(secs);
    s
}

fn attacked(secs: u64, class: AttackClass, intensity: u32, defense: DefenseConfig) -> Scenario {
    let mut s = small(secs);
    s.attack = AttackPlan {
        class: Some(class),
        intensity,
    };
    s.defense = defense;
    s
}

/// Goodput of a tactic run: client received / requested.
fn tactic_goodput(s: &Scenario, seed: u64) -> (f64, u64) {
    let r = run_scenario(s, seed);
    (
        r.delivery.client_received as f64 / r.delivery.client_requested as f64,
        r.drops.rate_limited,
    )
}

fn baseline_goodput(s: &Scenario, mechanism: Mechanism, seed: u64) -> (f64, u64) {
    let r = run_baseline(s, mechanism, seed);
    (
        r.client_received as f64 / r.client_requested as f64,
        r.drops.rate_limited,
    )
}

/// A named-but-zero-intensity plan and an armed-but-non-binding defense
/// must both reproduce the checked-in golden snapshots byte for byte, on
/// both planes. This is the "attacks off = before this subsystem
/// existed" regression the ISSUE demands.
#[test]
fn inactive_plans_and_idle_defenses_leave_golden_snapshots_untouched() {
    let golden = |name: &str| {
        let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/snapshots")
            .join(name);
        std::fs::read_to_string(&path).expect("golden snapshot present")
    };

    // Class named, intensity zero: the plan is inert.
    let mut zeroed = small(5);
    zeroed.attack = AttackPlan {
        class: Some(AttackClass::Flood),
        intensity: 0,
    };
    assert!(!zeroed.attack.active());
    let r = run_scenario(&zeroed, 42);
    assert_eq!(
        golden("tactic_small_seed42.txt"),
        format!("{r:#?}\n"),
        "a zero-intensity attack plan perturbed the golden tactic run"
    );

    // Defenses armed but never binding: the GCRA admits every packet
    // without an RNG draw, so the event stream is untouched.
    let mut defended = small(5);
    defended.defense = armed_defense();
    let r = run_scenario(&defended, 42);
    assert_eq!(
        golden("tactic_small_seed42.txt"),
        format!("{r:#?}\n"),
        "an idle armed defense perturbed the golden tactic run"
    );

    let r = run_baseline(&defended, Mechanism::ClientSideAc, 42);
    assert_eq!(
        golden("baseline_client_side_seed42.txt"),
        format!("{r:#?}\n"),
        "an idle armed defense perturbed the golden client-side-AC run"
    );
    let mut zeroed = small(5);
    zeroed.attack = AttackPlan {
        class: Some(AttackClass::ReplayExpired),
        intensity: 0,
    };
    let r = run_baseline(&zeroed, Mechanism::ProviderAuthAc, 42);
    assert_eq!(
        golden("baseline_provider_auth_seed42.txt"),
        format!("{r:#?}\n"),
        "a zero-intensity attack plan perturbed the golden provider-auth run"
    );
}

/// The dominance invariant: for every attack class and swept intensity,
/// arming the defenses never loses client goodput, on the TACTIC plane
/// and on every baseline mechanism. Equality is allowed — an attack the
/// edge already rejects cheaply leaves nothing for the defenses to buy
/// back — and so is a sub-packet boundary wobble: dropping fleet
/// traffic at the radio re-times every queue, which can shift a single
/// in-flight delivery across the end-of-run cutoff. `EPSILON` is a
/// fraction of one delivery out of the few thousand each run requests;
/// any *real* goodput regression is orders of magnitude larger. (The
/// strict defended-dominates-under-flood case, with percentage-point
/// margins, is asserted at Topo1 scale in
/// `tactic_experiments::attacks`.)
#[test]
fn defenses_never_lose_goodput_under_any_attack() {
    const EPSILON: f64 = 2e-3;
    let mut bucket_fired = false;
    for class in AttackClass::ALL {
        for intensity in [500u32, 2000] {
            if class == AttackClass::Churn && intensity != 500 {
                continue; // churn ignores intensity; one point suffices
            }
            let off = attacked(8, class, intensity, DefenseConfig::none());
            let on = attacked(8, class, intensity, armed_defense());

            let (g_off, _) = tactic_goodput(&off, 42);
            let (g_on, limited) = tactic_goodput(&on, 42);
            bucket_fired |= limited > 0;
            assert!(
                g_on >= g_off - EPSILON,
                "tactic {class}@{intensity}: defended goodput {g_on} < undefended {g_off}"
            );

            for mechanism in [
                Mechanism::NoAccessControl,
                Mechanism::ClientSideAc,
                Mechanism::ProviderAuthAc,
            ] {
                let (g_off, _) = baseline_goodput(&off, mechanism, 42);
                let (g_on, limited) = baseline_goodput(&on, mechanism, 42);
                bucket_fired |= limited > 0;
                assert!(
                    g_on >= g_off - EPSILON,
                    "{mechanism:?} {class}@{intensity}: defended goodput {g_on} < \
                     undefended {g_off}"
                );
            }
        }
    }
    assert!(
        bucket_fired,
        "no attacked-and-defended run ever tripped the token bucket"
    );
}

/// Acceptance (c): attacked-and-defended runs are byte-identical across
/// shard counts on both planes, for every attack class — including
/// churn, whose handovers cross shard boundaries without
/// `Scenario::mobility` being set.
#[test]
fn attacked_defended_runs_are_byte_identical_across_shard_counts() {
    for class in AttackClass::ALL {
        let scenario = attacked(8, class, 500, armed_defense());
        let sequential = format!("{:#?}", run_scenario(&scenario, 42));
        for k in [2usize, 4] {
            let (report, _) =
                run_scenario_sharded(&scenario, 42, k).expect("small topology fits 4 shards");
            assert_eq!(
                sequential,
                format!("{report:#?}"),
                "K={k} sharded {class} run diverged from sequential"
            );
        }
        let mechanism = Mechanism::ProviderAuthAc;
        let sequential = format!("{:#?}", run_baseline(&scenario, mechanism, 42));
        for k in [2usize, 4] {
            let (report, _) = run_baseline_sharded(&scenario, mechanism, 42, k)
                .expect("small topology fits 4 shards");
            assert_eq!(
                sequential,
                format!("{report:#?}"),
                "K={k} sharded baseline {class} run diverged from sequential"
            );
        }
    }
}

/// The same attacked run re-executed under 8 concurrent worker threads
/// (mixing sequential and sharded executions) never changes a byte —
/// the fleet's RNG streams are fully private to the run.
#[test]
fn attacked_runs_are_byte_identical_under_concurrent_workers() {
    let scenario = attacked(6, AttackClass::Flood, 500, armed_defense());
    let reference = format!("{:#?}", run_scenario(&scenario, 7));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let scenario = &scenario;
                scope.spawn(move || {
                    if i % 2 == 0 {
                        format!("{:#?}", run_scenario(scenario, 7))
                    } else {
                        let (r, _) = run_scenario_sharded(scenario, 7, 4).expect("fits");
                        format!("{r:#?}")
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(reference, h.join().expect("worker"));
        }
    });
}
