//! The mobility extension (§9 future work): mobile clients hand over
//! between access points, re-registering from each new location — the
//! behaviour §4.A prescribes ("a mobile client needs to request a new tag
//! every time she moves").

use tactic::net::run_scenario;
use tactic::scenario::{MobilityConfig, Scenario};
use tactic_sim::time::SimDuration;

fn mobile_scenario(mean_dwell_secs: u64, fraction: f64) -> Scenario {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(20);
    s.mobility = Some(MobilityConfig {
        mean_dwell: SimDuration::from_secs(mean_dwell_secs),
        mobile_fraction: fraction,
    });
    s
}

#[test]
fn handovers_happen_and_clients_stay_served() {
    let r = run_scenario(&mobile_scenario(4, 1.0), 1);
    assert!(
        r.moves >= 10,
        "expected plenty of handovers, got {}",
        r.moves
    );
    assert!(
        r.delivery.client_ratio() > 0.85,
        "mobile clients must keep retrieving (ratio {})",
        r.delivery.client_ratio()
    );
    assert!(r.delivery.attacker_ratio() < 0.01);
}

#[test]
fn mobility_increases_tag_traffic() {
    let static_run = run_scenario(
        &{
            let mut s = Scenario::small();
            s.duration = SimDuration::from_secs(20);
            s
        },
        2,
    );
    let mobile_run = run_scenario(&mobile_scenario(3, 1.0), 2);
    assert_eq!(static_run.moves, 0);
    assert!(
        mobile_run.tag_requests.len() > static_run.tag_requests.len(),
        "each handover forces re-registrations: mobile {} vs static {}",
        mobile_run.tag_requests.len(),
        static_run.tag_requests.len()
    );
}

#[test]
fn per_consumer_move_counts_are_reported() {
    let r = run_scenario(&mobile_scenario(4, 0.5), 3);
    let total_consumer_moves: u64 = r.consumers.iter().map(|(_, s)| s.moves).sum();
    assert_eq!(
        total_consumer_moves, r.moves,
        "network and consumer move counts agree"
    );
    // Only the mobile fraction moves.
    let movers = r.consumers.iter().filter(|(_, s)| s.moves > 0).count();
    assert!(
        (1..=3).contains(&movers),
        "roughly half of 6 clients move, got {movers}"
    );
}

#[test]
fn mobility_with_access_path_enforcement_still_works() {
    // The hard case: AP checks on. After each move the old tag's frozen
    // path mismatches the new location, so the client MUST re-register —
    // and does, because handover drops its tags.
    let mut s = mobile_scenario(5, 1.0);
    s.access_path_enabled = true;
    let r = run_scenario(&s, 4);
    assert!(r.moves >= 5);
    assert!(
        r.delivery.client_ratio() > 0.8,
        "post-handover re-registration must restore access (ratio {})",
        r.delivery.client_ratio()
    );
}

#[test]
fn longer_dwell_means_fewer_moves() {
    let fast = run_scenario(&mobile_scenario(2, 1.0), 5);
    let slow = run_scenario(&mobile_scenario(50, 1.0), 5);
    assert!(
        fast.moves > slow.moves * 2,
        "dwell 2 s: {} moves vs dwell 50 s: {}",
        fast.moves,
        slow.moves
    );
}
