//! The observer layer must be free: runs built with the no-op observer
//! produce reports byte-identical to observer-free runs, on both planes,
//! and the parallel grid runner (any `--threads` value) agrees with
//! individually built no-op-observed runs seed for seed.

use tactic::net::{run_scenario, Network};
use tactic::scenario::Scenario;
use tactic_baselines::net::{run_baseline, BaselineNetwork};
use tactic_baselines::Mechanism;
use tactic_experiments::opts::Verbosity;
use tactic_experiments::runner::{run_replicas, scenario_id, BASE_SEED};
use tactic_net::NoopObserver;
use tactic_sim::rng::derive_seed;
use tactic_sim::time::SimDuration;
use tactic_topology::paper::PaperTopology;

fn small(secs: u64) -> Scenario {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(secs);
    s
}

#[test]
fn noop_observer_leaves_tactic_reports_byte_identical() {
    let s = small(5);
    let plain = run_scenario(&s, 42);
    let (observed, _) = Network::build_observed(&s, 42, NoopObserver).run_observed();
    assert_eq!(format!("{plain:#?}"), format!("{observed:#?}"));
}

#[test]
fn noop_observer_leaves_baseline_reports_byte_identical() {
    let s = small(5);
    for mechanism in Mechanism::ALL {
        let plain = run_baseline(&s, mechanism, 42);
        let (observed, _) =
            BaselineNetwork::build_observed(&s, mechanism, 42, NoopObserver).run_observed();
        assert_eq!(
            format!("{plain:#?}"),
            format!("{observed:#?}"),
            "{mechanism}"
        );
    }
}

#[test]
fn grid_thread_counts_and_noop_observed_runs_all_agree() {
    let s = small(5);
    let sid = scenario_id("observer-noop", &[]);
    let serial = run_replicas(
        "obs",
        PaperTopology::Topo1,
        sid,
        &s,
        3,
        1,
        &[1],
        Verbosity::Quiet,
    );
    let parallel = run_replicas(
        "obs",
        PaperTopology::Topo1,
        sid,
        &s,
        3,
        4,
        &[1],
        Verbosity::Quiet,
    );
    for i in 0..serial.len() {
        let seed = derive_seed(
            BASE_SEED,
            PaperTopology::Topo1.index() as u32,
            sid,
            i as u64,
        );
        let (observed, _) = Network::build_observed(&s, seed, NoopObserver).run_observed();
        let want = format!("{observed:#?}");
        assert_eq!(format!("{:#?}", serial[i]), want, "run {i}, --threads 1");
        assert_eq!(format!("{:#?}", parallel[i]), want, "run {i}, --threads 4");
    }
}
