//! `any::<T>()` and the [`Arbitrary`] trait for types with a canonical
//! "whole domain" strategy.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain generator.
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary_with(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_with(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_with(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
