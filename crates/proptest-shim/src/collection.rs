//! `proptest::collection::vec` — variable-length vectors of a strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length bound accepted by [`vec()`]: `m..n`, `m..=n`, or an exact size.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
