//! The [`Strategy`] trait and the combinators the workspace uses:
//! ranges, tuples, [`Just`], [`Map`] (`prop_map`), [`Union`]
//! (`prop_oneof!`), and [`BoxedStrategy`].

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real crate this samples values directly (no intermediate
/// `ValueTree`, no shrinking); determinism comes from the seeded
/// [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased strategy (`Strategy::boxed`).
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy {:?}", self);
                ((self.start as i128) + rng.below(span as u64) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy {:?}", self);
                ((*self.start() as i128) + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {:?}", self);
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
