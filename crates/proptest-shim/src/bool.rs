//! `proptest::bool::ANY` — the full-domain boolean strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The type of [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

/// A fair coin.
pub const ANY: BoolStrategy = BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
