//! An offline, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the real `proptest` cannot be vendored. This crate implements exactly
//! the API subset the workspace's property tests use — `proptest!`,
//! `prop_assert*`/`prop_assume!`, `prop_oneof!`, `any`, range and tuple
//! strategies, `collection::vec`, `sample::Index`, `bool::ANY`, simple
//! `[class]{m,n}` string patterns, and `ProptestConfig::with_cases` — on
//! top of a deterministic SplitMix64 generator.
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! the case number and the generator is seeded from the test name, so
//! failures reproduce exactly on re-run.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The common imports property tests start from (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of the real prelude's `prop` path shorthand.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with no shrinking) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Discards the current case (counted separately from executed cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest!` block: each contained `#[test] fn name(args in strategies)`
/// expands to a plain `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg[$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg[$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg[$cfg:expr]) => {};
    (@cfg[$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, stringify!($name), |__rng| {
                $crate::__proptest_bind!(__rng, $($args)*,);
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns!{ @cfg[$cfg] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident,) => {};
    ($rng:ident, ,) => {};
    ($rng:ident, $parm:pat in $strat:expr, $($rest:tt)*) => {
        let $parm = $crate::strategy::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}
