//! `prop::sample::Index` — a length-agnostic index drawn up front and
//! projected onto a concrete collection later.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An abstract index: stores a raw draw and maps it onto any non-empty
/// length via `index(len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(u64);

impl Index {
    /// Projects onto a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index(0)");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
