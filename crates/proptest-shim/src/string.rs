//! String strategies from simple regex-like patterns.
//!
//! A `&'static str` literal used as a strategy (`subject in "[a-z/]{1,24}"`)
//! is interpreted as a single character class followed by a `{min,max}`
//! repetition — the only pattern shape this workspace uses. Classes may mix
//! ranges (`a-z`) and literal characters (`/`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

fn parse_class(class: &str) -> Vec<char> {
    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next(); // the '-'
            if let Some(hi) = ahead.next() {
                // A range like `a-z`.
                chars = ahead;
                alphabet.extend((c..=hi).filter(char::is_ascii));
                continue;
            }
        }
        alphabet.push(c);
    }
    assert!(!alphabet.is_empty(), "empty character class [{class}]");
    alphabet
}

fn bad_pattern(pattern: &str) -> ! {
    panic!(
        "unsupported string pattern {pattern:?}: the offline proptest \
         stand-in only understands \"[class]{{min,max}}\""
    )
}

fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| bad_pattern(pattern));
    let (class, rest) = rest.split_once(']').unwrap_or_else(|| bad_pattern(pattern));
    let reps = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| bad_pattern(pattern));
    let (min, max) = reps.split_once(',').unwrap_or((reps, reps));
    let min: usize = min.trim().parse().unwrap_or_else(|_| bad_pattern(pattern));
    let max: usize = max.trim().parse().unwrap_or_else(|_| bad_pattern(pattern));
    assert!(min <= max, "bad repetition in pattern {pattern:?}");
    (parse_class(class), min, max)
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}
