//! Case generation and execution: a deterministic SplitMix64 stream per
//! (test name, case index), a rejection budget, and panic-on-failure.

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The result a generated case body produces.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (only the fields the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the suite fast on the
        // small CI machines this workspace targets while still exploring
        // a meaningful sample. Override per-block with
        // `#![proptest_config(ProptestConfig::with_cases(n))]`.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream for one case of one named test.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift; the bias is irrelevant for test-case generation.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs `case` until `config.cases` successful executions, panicking on the
/// first failure with enough context to reproduce it.
pub fn run(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let mut executed = 0u32;
    let mut rejected = 0u64;
    let mut case_idx = 0u64;
    while executed < config.cases {
        let mut rng = TestRng::for_case(name, case_idx);
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected <= 1_024 + 16 * config.cases as u64,
                    "`{name}`: too many rejected cases (last: {why})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("`{name}` failed at deterministic case #{case_idx}: {msg}")
            }
        }
        case_idx += 1;
    }
}
