//! The transport treats planes as black boxes: two independently written
//! planes with identical emission semantics must produce byte-identical
//! transport schedules on the same `(topology, seed)`, and the observer
//! layer must account for every scheduled delivery exactly once without
//! perturbing the run.

use tactic_ndn::face::FaceId;
use tactic_ndn::name::Name;
use tactic_ndn::packet::{Data, Interest, Packet, Payload};
use tactic_net::{Emit, EventTrace, Links, Net, NetConfig, NodePlane, PlaneCtx, TransportReport};
use tactic_sim::cost::CostModel;
use tactic_sim::rng::Rng;
use tactic_sim::time::SimDuration;
use tactic_topology::graph::{Graph, LinkSpec, NodeId, Role};
use tactic_topology::roles::Topology;

const REQUESTS: usize = 8;

/// client(0) — edge router(1) — provider(2).
fn chain() -> Topology {
    let mut graph = Graph::new();
    let client = graph.add_node(Role::Client);
    let router = graph.add_node(Role::EdgeRouter);
    let provider = graph.add_node(Role::Provider);
    graph.add_link(client, router, LinkSpec::edge());
    graph.add_link(router, provider, LinkSpec::edge());
    Topology {
        graph,
        core_routers: vec![],
        edge_routers: vec![router],
        access_points: vec![],
        providers: vec![provider],
        clients: vec![client],
        attackers: vec![],
    }
}

fn config() -> NetConfig {
    NetConfig {
        duration: SimDuration::from_secs(2),
        mobility: None,
        cost: CostModel::free(),
        faults: tactic_net::FaultPlan::none(),
        sample_every: None,
        profile: false,
        defense: None,
        churn: None,
    }
}

fn request_name(i: usize) -> Name {
    format!("/prov0/obj{i}/c0").parse().expect("static name")
}

/// Plane one: node ids matched directly, the router flips between its two
/// faces arithmetically.
struct FlipPlane;

impl NodePlane for FlipPlane {
    fn on_start(&mut self, _node: NodeId, _ctx: &mut PlaneCtx<'_>, out: &mut Vec<Emit>) {
        for i in 0..REQUESTS {
            out.push(Emit::Send {
                face: FaceId::new(0),
                packet: Packet::Interest(Interest::new(request_name(i), i as u64 + 1)),
                compute: SimDuration::ZERO,
            });
        }
    }

    fn on_packet(
        &mut self,
        node: NodeId,
        face: FaceId,
        packet: Packet,
        _ctx: &mut PlaneCtx<'_>,
        out: &mut Vec<Emit>,
    ) {
        match node.0 {
            1 => out.push(Emit::Send {
                face: FaceId::new(1 - face.index()),
                packet,
                compute: SimDuration::ZERO,
            }),
            2 => {
                if let Packet::Interest(i) = packet {
                    out.push(Emit::Send {
                        face,
                        packet: Packet::Data(Data::new(i.name().clone(), Payload::Synthetic(256))),
                        compute: SimDuration::ZERO,
                    });
                }
            }
            _ => {} // The client absorbs its Data.
        }
    }
}

/// Plane two: written against roles and a prebuilt forwarding table, but
/// semantically identical to [`FlipPlane`].
struct TablePlane {
    roles: Vec<Role>,
    forward: Vec<Vec<FaceId>>,
}

impl TablePlane {
    fn new(topo: &Topology) -> Self {
        let n = topo.graph.node_count();
        let mut forward = vec![Vec::new(); n];
        // Per in-face, the out-face on the 2-degree router path.
        for node in topo.graph.nodes() {
            let degree = topo.graph.degree(node);
            forward[node.index()] = (0..degree as u32)
                .map(|f| FaceId::new(if degree == 2 { 1 - f } else { f }))
                .collect();
        }
        TablePlane {
            roles: topo.graph.nodes().map(|n| topo.graph.role(n)).collect(),
            forward,
        }
    }
}

impl NodePlane for TablePlane {
    fn on_start(&mut self, _node: NodeId, _ctx: &mut PlaneCtx<'_>, out: &mut Vec<Emit>) {
        let interests: Vec<Interest> = (0..REQUESTS)
            .map(|i| Interest::new(request_name(i), i as u64 + 1))
            .collect();
        for i in interests {
            out.push(Emit::Send {
                face: FaceId::new(0),
                packet: Packet::Interest(i),
                compute: SimDuration::ZERO,
            });
        }
    }

    fn on_packet(
        &mut self,
        node: NodeId,
        face: FaceId,
        packet: Packet,
        _ctx: &mut PlaneCtx<'_>,
        out: &mut Vec<Emit>,
    ) {
        match self.roles[node.index()] {
            Role::EdgeRouter => {
                let out_face = self.forward[node.index()][face.index() as usize];
                out.push(Emit::Send {
                    face: out_face,
                    packet,
                    compute: SimDuration::ZERO,
                });
            }
            Role::Provider => {
                if let Packet::Interest(i) = &packet {
                    let reply = Data::new(i.name().clone(), Payload::Synthetic(256));
                    out.push(Emit::Send {
                        face,
                        packet: Packet::Data(reply),
                        compute: SimDuration::ZERO,
                    });
                }
            }
            _ => {}
        }
    }
}

fn run_traced<P: NodePlane>(plane: P, seed: u64) -> (TransportReport, EventTrace) {
    let topo = chain();
    let links = Links::build(&topo);
    let net = Net::assemble_observed(
        &topo,
        links,
        plane,
        Rng::seed_from_u64(seed),
        config(),
        EventTrace::default(),
    );
    let (_plane, trace, report) = net.run();
    (report, trace)
}

#[test]
fn equivalent_planes_produce_identical_transport_schedules() {
    let (report_a, trace_a) = run_traced(FlipPlane, 11);
    let (report_b, trace_b) = run_traced(TablePlane::new(&chain()), 11);
    assert_eq!(report_a, report_b);
    assert_eq!(
        trace_a.events, trace_b.events,
        "every scheduled/delivered event must match, in order"
    );
    // Interest out, Interest forwarded, Data back, Data forwarded: four
    // deliveries per request, all inside the horizon.
    assert_eq!(report_a.deliveries, 4 * REQUESTS as u64);
}

#[test]
fn trace_sees_every_scheduled_delivery_exactly_once() {
    let (report, trace) = run_traced(FlipPlane, 5);
    assert_eq!(trace.delivered() as u64, report.deliveries);
    assert_eq!(
        trace.scheduled(),
        trace.delivered(),
        "a 2 s horizon drains this workload completely"
    );
    assert!(trace
        .events
        .iter()
        .all(|e| !matches!(e, tactic_net::observer::TraceEvent::Dropped { .. })));
}

#[test]
fn observers_do_not_perturb_the_transport() {
    let topo = chain();
    let plain = Net::assemble(
        &topo,
        Links::build(&topo),
        FlipPlane,
        Rng::seed_from_u64(3),
        config(),
    );
    let (_, _, plain_report) = plain.run();
    let (traced_report, trace) = run_traced(FlipPlane, 3);
    assert_eq!(plain_report, traced_report);
    assert!(trace.delivered() > 0);
}
