//! Transport-level fault injection: the loss model, scheduled link/node
//! failures, drop accounting, and route recomputation at failure instants.

use tactic_ndn::face::FaceId;
use tactic_ndn::name::Name;
use tactic_ndn::packet::{Data, Interest, Packet, Payload};
use tactic_net::fault::{FaultEvent, FaultKind, FaultPlan, LossModel};
use tactic_net::{
    Emit, EventTrace, FibRoute, Links, Net, NetConfig, NodePlane, PlaneCtx, TransportReport,
};
use tactic_sim::cost::CostModel;
use tactic_sim::rng::Rng;
use tactic_sim::time::{SimDuration, SimTime};
use tactic_topology::graph::{Graph, LinkSpec, NodeId, Role};
use tactic_topology::roles::Topology;

const REQUESTS: usize = 8;

/// client(0) — edge router(1) — provider(2).
fn chain() -> Topology {
    let mut graph = Graph::new();
    let client = graph.add_node(Role::Client);
    let router = graph.add_node(Role::EdgeRouter);
    let provider = graph.add_node(Role::Provider);
    graph.add_link(client, router, LinkSpec::edge());
    graph.add_link(router, provider, LinkSpec::edge());
    Topology {
        graph,
        core_routers: vec![],
        edge_routers: vec![router],
        access_points: vec![],
        providers: vec![provider],
        clients: vec![client],
        attackers: vec![],
    }
}

fn config(faults: FaultPlan) -> NetConfig {
    NetConfig {
        duration: SimDuration::from_secs(2),
        mobility: None,
        cost: CostModel::free(),
        faults,
        sample_every: None,
        profile: false,
        defense: None,
        churn: None,
    }
}

fn request_name(i: usize) -> Name {
    format!("/prov0/obj{i}/c0").parse().expect("static name")
}

/// Echo plane from the equivalence tests: the client fires `REQUESTS`
/// Interests at start, the router flips faces, the provider answers.
/// Records every reroute callback's route count.
#[derive(Default)]
struct FlipPlane {
    reroutes: Vec<usize>,
}

impl NodePlane for FlipPlane {
    fn on_start(&mut self, _node: NodeId, _ctx: &mut PlaneCtx<'_>, out: &mut Vec<Emit>) {
        for i in 0..REQUESTS {
            out.push(Emit::Send {
                face: FaceId::new(0),
                packet: Packet::Interest(Interest::new(request_name(i), i as u64 + 1)),
                compute: SimDuration::ZERO,
            });
        }
    }

    fn on_packet(
        &mut self,
        node: NodeId,
        face: FaceId,
        packet: Packet,
        _ctx: &mut PlaneCtx<'_>,
        out: &mut Vec<Emit>,
    ) {
        match node.0 {
            1 => out.push(Emit::Send {
                face: FaceId::new(1 - face.index()),
                packet,
                compute: SimDuration::ZERO,
            }),
            2 => {
                if let Packet::Interest(i) = packet {
                    out.push(Emit::Send {
                        face,
                        packet: Packet::Data(Data::new(i.name().clone(), Payload::Synthetic(256))),
                        compute: SimDuration::ZERO,
                    });
                }
            }
            _ => {}
        }
    }

    fn on_reroute(&mut self, routes: &[FibRoute]) {
        self.reroutes.push(routes.len());
    }
}

fn run_faulted(faults: FaultPlan, seed: u64) -> (FlipPlane, EventTrace, TransportReport) {
    let topo = chain();
    let links = Links::build(&topo);
    let net = Net::assemble_observed(
        &topo,
        links,
        FlipPlane::default(),
        Rng::seed_from_u64(seed),
        config(faults),
        EventTrace::default(),
    );
    net.run()
}

#[test]
fn total_loss_delivers_nothing_and_counts_every_drop() {
    let (_, trace, report) = run_faulted(FaultPlan::uniform_loss(1.0), 11);
    assert_eq!(report.deliveries, 0);
    assert_eq!(report.drops.lossy, REQUESTS as u64, "every Interest eaten");
    assert_eq!(report.drops.total(), report.drops.lossy);
    assert_eq!(trace.counts().dropped, REQUESTS);
    assert_eq!(trace.scheduled(), 0, "lost packets never reserve the link");
}

#[test]
fn zero_loss_plan_is_byte_identical_to_no_plan() {
    let baseline = run_faulted(FaultPlan::none(), 7);
    for plan in [
        FaultPlan::uniform_loss(0.0),
        FaultPlan {
            loss: LossModel::GilbertElliott {
                p_good_to_bad: 0.5,
                p_bad_to_good: 0.5,
                loss_good: 0.0,
                loss_bad: 0.0,
            },
            schedule: Vec::new(),
        },
    ] {
        let got = run_faulted(plan.clone(), 7);
        assert_eq!(baseline.2, got.2, "{plan:?} must not change the report");
        assert_eq!(baseline.1.events, got.1.events, "{plan:?} changed a trace");
    }
    assert!(baseline.2.deliveries > 0);
}

#[test]
fn downed_link_drops_in_flight_traffic() {
    // The client-router link is down for the whole run: every Interest
    // dies on the spot with LinkDown and nothing else happens.
    let plan = FaultPlan {
        loss: LossModel::None,
        schedule: vec![FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::LinkDown {
                a: NodeId(0),
                b: NodeId(1),
            },
        }],
    };
    let (plane, trace, report) = run_faulted(plan, 3);
    assert_eq!(report.deliveries, 0);
    assert_eq!(report.drops.link_down, REQUESTS as u64);
    assert_eq!(trace.counts().faults, 1);
    // The failure instant recomputed routes: router(1) still reaches the
    // provider over the intact router-provider link.
    assert_eq!(plane.reroutes, vec![1]);
}

#[test]
fn link_recovery_restores_forwarding_and_routes() {
    // Cut router-provider before the run, restore it at 1 s: Interests
    // sent in the first second die at the router, and the recovery
    // reroute reports the provider reachable again.
    let plan = FaultPlan {
        loss: LossModel::None,
        schedule: vec![
            FaultEvent {
                at: SimTime::ZERO,
                kind: FaultKind::LinkDown {
                    a: NodeId(1),
                    b: NodeId(2),
                },
            },
            FaultEvent {
                at: SimTime::from_secs(1),
                kind: FaultKind::LinkUp {
                    a: NodeId(1),
                    b: NodeId(2),
                },
            },
        ],
    };
    let (plane, trace, report) = run_faulted(plan, 3);
    // The Interests reach the router (one delivery each), then die on the
    // downed router-provider link.
    assert_eq!(report.deliveries, REQUESTS as u64);
    assert_eq!(report.drops.link_down, REQUESTS as u64);
    assert_eq!(trace.counts().faults, 2);
    assert_eq!(
        plane.reroutes,
        vec![0, 1],
        "provider unreachable while cut, reachable after recovery"
    );
}

#[test]
fn crashed_node_services_nothing_until_recovery() {
    // Crash the router for the whole run: Interests transmit fine but die
    // at the crashed router's door.
    let plan = FaultPlan {
        loss: LossModel::None,
        schedule: vec![FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::NodeDown { node: NodeId(1) },
        }],
    };
    let (_, trace, report) = run_faulted(plan, 5);
    assert_eq!(report.deliveries, 0);
    assert_eq!(report.drops.node_down, REQUESTS as u64);
    assert_eq!(
        trace.scheduled(),
        REQUESTS,
        "the wire still carries packets to a crashed node"
    );
}

#[test]
fn faulted_runs_are_deterministic_per_seed() {
    let plan = FaultPlan {
        loss: LossModel::Uniform { p: 0.4 },
        schedule: vec![FaultEvent {
            at: SimTime::from_secs_f64(0.5),
            kind: FaultKind::NodeDown { node: NodeId(2) },
        }],
    };
    let a = run_faulted(plan.clone(), 9);
    let b = run_faulted(plan, 9);
    assert_eq!(a.2, b.2);
    assert_eq!(a.1.events, b.1.events);
}
