//! The observer layer: per-event tracing, link-utilisation counters, and
//! drop-reason accounting, implemented once over the shared transport and
//! available to every experiment on every plane.
//!
//! Observers are compile-time plugins (a generic parameter on
//! [`Net`](crate::transport::Net)), so the default [`NoopObserver`]
//! monomorphises to nothing — an observed run with the no-op observer is
//! byte-identical to an observer-free build, and a run with a recording
//! observer never perturbs the simulation itself (observers get `&`/`&mut
//! self` and packet *references*; they cannot reschedule or mutate state).

use std::collections::HashMap;

use tactic_ndn::face::FaceId;
use tactic_ndn::packet::Packet;
use tactic_sim::time::{SimDuration, SimTime};
use tactic_topology::graph::NodeId;

use crate::fault::FaultKind;

/// Why the transport dropped a packet instead of scheduling its arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The sender emitted on a face with no wired neighbour.
    DanglingFace,
    /// The receiver no longer has a face back to the sender — a handover
    /// tore down the radio link while the packet was in flight.
    ReverseFaceGone,
    /// The loss model of the active [`FaultPlan`](crate::fault::FaultPlan)
    /// ate the packet in flight.
    Lossy,
    /// The link was administratively down (a scheduled
    /// [`FaultKind::LinkDown`](crate::fault::FaultKind)).
    LinkDown,
    /// The destination node was crashed when the packet arrived.
    NodeDown,
    /// The receiving edge's per-client token bucket rejected the sender
    /// (the [`DefenseConfig`](crate::attack::DefenseConfig) rate limit).
    RateLimited,
    /// The receiving edge router's per-face fairness cap rejected the
    /// upstream access point's aggregate this second.
    FaceCapped,
    /// A bounded PIT evicted this pending record to stay within its
    /// configured capacity (deterministic oldest-first eviction).
    PitFull,
}

/// Per-reason drop totals counted by the transport itself (independent of
/// any observer), so every plane's report can expose them.
///
/// `Debug` is manual: the three defense counters print only when
/// non-zero, so runs without attacks or defenses reproduce the historical
/// golden report snapshots byte for byte.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct DropTotals {
    /// [`DropReason::DanglingFace`] drops.
    pub dangling_face: u64,
    /// [`DropReason::ReverseFaceGone`] drops.
    pub reverse_face: u64,
    /// [`DropReason::Lossy`] drops.
    pub lossy: u64,
    /// [`DropReason::LinkDown`] drops.
    pub link_down: u64,
    /// [`DropReason::NodeDown`] drops.
    pub node_down: u64,
    /// [`DropReason::RateLimited`] drops.
    pub rate_limited: u64,
    /// [`DropReason::FaceCapped`] drops.
    pub face_capped: u64,
    /// [`DropReason::PitFull`] evictions.
    pub pit_full: u64,
}

impl std::fmt::Debug for DropTotals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("DropTotals");
        s.field("dangling_face", &self.dangling_face)
            .field("reverse_face", &self.reverse_face)
            .field("lossy", &self.lossy)
            .field("link_down", &self.link_down)
            .field("node_down", &self.node_down);
        if self.rate_limited != 0 {
            s.field("rate_limited", &self.rate_limited);
        }
        if self.face_capped != 0 {
            s.field("face_capped", &self.face_capped);
        }
        if self.pit_full != 0 {
            s.field("pit_full", &self.pit_full);
        }
        s.finish()
    }
}

impl DropTotals {
    /// Total drops across all reasons.
    pub fn total(&self) -> u64 {
        self.dangling_face
            + self.reverse_face
            + self.lossy
            + self.link_down
            + self.node_down
            + self.rate_limited
            + self.face_capped
            + self.pit_full
    }

    /// Bumps the counter for `reason`.
    pub fn count(&mut self, reason: DropReason) {
        match reason {
            DropReason::DanglingFace => self.dangling_face += 1,
            DropReason::ReverseFaceGone => self.reverse_face += 1,
            DropReason::Lossy => self.lossy += 1,
            DropReason::LinkDown => self.link_down += 1,
            DropReason::NodeDown => self.node_down += 1,
            DropReason::RateLimited => self.rate_limited += 1,
            DropReason::FaceCapped => self.face_capped += 1,
            DropReason::PitFull => self.pit_full += 1,
        }
    }

    /// Adds another total into this one (shard merge: every drop happens
    /// in exactly one shard, so the fields sum).
    pub fn merge(&mut self, other: &DropTotals) {
        self.dangling_face += other.dangling_face;
        self.reverse_face += other.reverse_face;
        self.lossy += other.lossy;
        self.link_down += other.link_down;
        self.node_down += other.node_down;
        self.rate_limited += other.rate_limited;
        self.face_capped += other.face_capped;
        self.pit_full += other.pit_full;
    }
}

/// Hooks the shared transport calls at every transport-level event.
///
/// All hooks default to no-ops; implement only what you need. Hooks fire
/// *after* the transport has committed the corresponding state change
/// (link reserved, handover re-wired), and exactly once per event.
#[allow(unused_variables)]
pub trait NetObserver {
    /// A packet was accepted onto the `from → to` link: it departs (starts
    /// serialising) at `depart`, occupies the link for `serialize`, and
    /// arrives at `arrival`.
    fn on_schedule(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        depart: SimTime,
        serialize: SimDuration,
        arrival: SimTime,
    ) {
    }

    /// A scheduled delivery is being handled at `node` on `face`.
    fn on_deliver(&mut self, node: NodeId, face: FaceId, packet: &Packet, now: SimTime) {}

    /// The transport dropped a packet at `node` — the emitting node for
    /// send-side reasons, or the receiver for delivery-side ones
    /// ([`DropReason::NodeDown`], [`DropReason::ReverseFaceGone`]).
    fn on_drop(&mut self, node: NodeId, reason: DropReason, now: SimTime) {}

    /// A mobile node re-attached from `from_ap` to `to_ap`.
    fn on_handover(&mut self, node: NodeId, from_ap: NodeId, to_ap: NodeId, now: SimTime) {}

    /// A scheduled fault event took effect.
    fn on_fault(&mut self, kind: FaultKind, now: SimTime) {}
}

/// The zero-cost default observer: every hook is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl NetObserver for NoopObserver {}

/// Aggregate per-link load measured by [`NetCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkLoad {
    /// Packets scheduled onto the directed link.
    pub packets: u64,
    /// Wire bytes scheduled onto the directed link.
    pub bytes: u64,
    /// Total serialisation time the link spent busy.
    pub busy: SimDuration,
}

/// Cheap aggregate accounting: event totals, drop reasons, handovers, and
/// per-directed-link utilisation.
#[derive(Debug, Clone, Default)]
pub struct NetCounters {
    /// Deliveries scheduled onto links.
    pub scheduled: u64,
    /// Deliveries handled (≤ `scheduled`: the horizon cuts the tail).
    pub delivered: u64,
    /// Packets dropped because the out face had no wired neighbour.
    pub dropped_dangling_face: u64,
    /// Packets lost to a handover tearing down the reverse mapping.
    pub dropped_reverse_face: u64,
    /// Packets eaten by the fault plan's loss model.
    pub dropped_lossy: u64,
    /// Packets dropped on administratively-down links.
    pub dropped_link_down: u64,
    /// Packets addressed to crashed nodes.
    pub dropped_node_down: u64,
    /// Packets rejected by a per-client token-bucket rate limit.
    pub dropped_rate_limited: u64,
    /// Packets rejected by a per-face fairness cap.
    pub dropped_face_capped: u64,
    /// Pending records evicted by a bounded PIT. Counted by the planes
    /// into [`DropTotals`] directly (an evicted PIT record is state, not
    /// a packet in the transport's hands), so this stays zero unless an
    /// observer is wired to a plane-level hook.
    pub dropped_pit_full: u64,
    /// Handovers performed.
    pub handovers: u64,
    /// Total wire bytes scheduled.
    pub bytes_on_wire: u64,
    /// Per directed link `(from, to)`: packets, bytes, busy time.
    pub link_load: HashMap<(u32, u32), LinkLoad>,
}

impl NetCounters {
    /// Total drops across all reasons.
    pub fn dropped(&self) -> u64 {
        self.dropped_dangling_face
            + self.dropped_reverse_face
            + self.dropped_lossy
            + self.dropped_link_down
            + self.dropped_node_down
            + self.dropped_rate_limited
            + self.dropped_face_capped
            + self.dropped_pit_full
    }

    /// The `n` busiest directed links by serialisation time, descending
    /// (ties broken by link id for determinism).
    pub fn busiest_links(&self, n: usize) -> Vec<((u32, u32), LinkLoad)> {
        let mut all: Vec<_> = self.link_load.iter().map(|(&k, &v)| (k, v)).collect();
        all.sort_by_key(|&((from, to), load)| (std::cmp::Reverse(load.busy), from, to));
        all.truncate(n);
        all
    }

    /// Folds another shard's counters into this one: scalars add and
    /// per-link loads add entry-wise. Every schedule/deliver/drop/
    /// handover happens in exactly one shard and `u64` addition is
    /// commutative, so any fold order yields the totals a sequential run
    /// counts.
    pub fn merge(&mut self, other: &NetCounters) {
        self.scheduled += other.scheduled;
        self.delivered += other.delivered;
        self.dropped_dangling_face += other.dropped_dangling_face;
        self.dropped_reverse_face += other.dropped_reverse_face;
        self.dropped_lossy += other.dropped_lossy;
        self.dropped_link_down += other.dropped_link_down;
        self.dropped_node_down += other.dropped_node_down;
        self.dropped_rate_limited += other.dropped_rate_limited;
        self.dropped_face_capped += other.dropped_face_capped;
        self.dropped_pit_full += other.dropped_pit_full;
        self.handovers += other.handovers;
        self.bytes_on_wire += other.bytes_on_wire;
        for (&link, load) in &other.link_load {
            let mine = self.link_load.entry(link).or_default();
            mine.packets += load.packets;
            mine.bytes += load.bytes;
            mine.busy += load.busy;
        }
    }
}

impl NetObserver for NetCounters {
    fn on_schedule(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        _depart: SimTime,
        serialize: SimDuration,
        _arrival: SimTime,
    ) {
        self.scheduled += 1;
        self.bytes_on_wire += bytes as u64;
        let load = self.link_load.entry((from.0, to.0)).or_default();
        load.packets += 1;
        load.bytes += bytes as u64;
        load.busy += serialize;
    }

    fn on_deliver(&mut self, _node: NodeId, _face: FaceId, _packet: &Packet, _now: SimTime) {
        self.delivered += 1;
    }

    fn on_drop(&mut self, _node: NodeId, reason: DropReason, _now: SimTime) {
        match reason {
            DropReason::DanglingFace => self.dropped_dangling_face += 1,
            DropReason::ReverseFaceGone => self.dropped_reverse_face += 1,
            DropReason::Lossy => self.dropped_lossy += 1,
            DropReason::LinkDown => self.dropped_link_down += 1,
            DropReason::NodeDown => self.dropped_node_down += 1,
            DropReason::RateLimited => self.dropped_rate_limited += 1,
            DropReason::FaceCapped => self.dropped_face_capped += 1,
            DropReason::PitFull => self.dropped_pit_full += 1,
        }
    }

    fn on_handover(&mut self, _node: NodeId, _from_ap: NodeId, _to_ap: NodeId, _now: SimTime) {
        self.handovers += 1;
    }
}

/// One record in an [`EventTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet was accepted onto a link.
    Scheduled {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Wire bytes.
        bytes: usize,
        /// Arrival time of the delivery this schedules.
        arrival: SimTime,
    },
    /// A delivery was handled.
    Delivered {
        /// Handling node.
        node: NodeId,
        /// Arrival face.
        face: FaceId,
        /// Handling time.
        at: SimTime,
    },
    /// A packet was dropped.
    Dropped {
        /// Emitting node.
        node: NodeId,
        /// Why.
        reason: DropReason,
        /// Drop time.
        at: SimTime,
    },
    /// A handover re-wired a mobile node.
    Handover {
        /// The mobile node.
        node: NodeId,
        /// Old access point.
        from_ap: NodeId,
        /// New access point.
        to_ap: NodeId,
        /// Handover time.
        at: SimTime,
    },
    /// A scheduled fault event took effect.
    Fault {
        /// What happened.
        kind: FaultKind,
        /// When it fired.
        at: SimTime,
    },
}

/// A full per-event trace. Unbounded — meant for tests and small audit
/// runs, not paper-scale sweeps.
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    /// Records in transport order.
    pub events: Vec<TraceEvent>,
}

/// Per-kind record totals for an [`EventTrace`], computed in one pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// [`TraceEvent::Scheduled`] records.
    pub scheduled: usize,
    /// [`TraceEvent::Delivered`] records.
    pub delivered: usize,
    /// [`TraceEvent::Dropped`] records.
    pub dropped: usize,
    /// [`TraceEvent::Handover`] records.
    pub handovers: usize,
    /// [`TraceEvent::Fault`] records.
    pub faults: usize,
}

impl EventTrace {
    /// Tallies every record kind in a single pass over the trace.
    pub fn counts(&self) -> TraceCounts {
        let mut c = TraceCounts::default();
        for e in &self.events {
            match e {
                TraceEvent::Scheduled { .. } => c.scheduled += 1,
                TraceEvent::Delivered { .. } => c.delivered += 1,
                TraceEvent::Dropped { .. } => c.dropped += 1,
                TraceEvent::Handover { .. } => c.handovers += 1,
                TraceEvent::Fault { .. } => c.faults += 1,
            }
        }
        c
    }

    /// Number of [`TraceEvent::Delivered`] records.
    pub fn delivered(&self) -> usize {
        self.counts().delivered
    }

    /// Number of [`TraceEvent::Scheduled`] records.
    pub fn scheduled(&self) -> usize {
        self.counts().scheduled
    }

    /// Number of [`TraceEvent::Dropped`] records.
    pub fn dropped(&self) -> usize {
        self.counts().dropped
    }

    /// Number of [`TraceEvent::Handover`] records.
    pub fn handovers(&self) -> usize {
        self.counts().handovers
    }
}

impl NetObserver for EventTrace {
    fn on_schedule(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        _depart: SimTime,
        _serialize: SimDuration,
        arrival: SimTime,
    ) {
        self.events.push(TraceEvent::Scheduled {
            from,
            to,
            bytes,
            arrival,
        });
    }

    fn on_deliver(&mut self, node: NodeId, face: FaceId, _packet: &Packet, now: SimTime) {
        self.events.push(TraceEvent::Delivered {
            node,
            face,
            at: now,
        });
    }

    fn on_drop(&mut self, node: NodeId, reason: DropReason, now: SimTime) {
        self.events.push(TraceEvent::Dropped {
            node,
            reason,
            at: now,
        });
    }

    fn on_handover(&mut self, node: NodeId, from_ap: NodeId, to_ap: NodeId, now: SimTime) {
        self.events.push(TraceEvent::Handover {
            node,
            from_ap,
            to_ap,
            at: now,
        });
    }

    fn on_fault(&mut self, kind: FaultKind, now: SimTime) {
        self.events.push(TraceEvent::Fault { kind, at: now });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_trace_counts_every_kind_in_one_pass() {
        let mut trace = EventTrace::default();
        let n = |i| NodeId(i);
        trace.on_schedule(
            n(0),
            n(1),
            64,
            SimTime::ZERO,
            SimDuration::ZERO,
            SimTime::from_secs(1),
        );
        trace.on_schedule(
            n(1),
            n(2),
            64,
            SimTime::ZERO,
            SimDuration::ZERO,
            SimTime::from_secs(2),
        );
        trace.on_deliver(
            n(1),
            FaceId::new(0),
            &Packet::Nack(tactic_ndn::packet::Nack::new(
                tactic_ndn::packet::Interest::new("/x".parse().unwrap(), 1),
                tactic_ndn::packet::NackReason::NoRoute,
            )),
            SimTime::from_secs(1),
        );
        trace.on_drop(n(2), DropReason::DanglingFace, SimTime::from_secs(2));
        trace.on_handover(n(3), n(4), n(5), SimTime::from_secs(3));
        trace.on_fault(FaultKind::NodeDown { node: n(6) }, SimTime::from_secs(4));

        let counts = trace.counts();
        assert_eq!(counts.scheduled, 2);
        assert_eq!(counts.delivered, 1);
        assert_eq!(counts.dropped, 1);
        assert_eq!(counts.handovers, 1);
        assert_eq!(counts.faults, 1);
        assert_eq!(trace.scheduled(), counts.scheduled);
        assert_eq!(trace.delivered(), counts.delivered);
        assert_eq!(trace.dropped(), counts.dropped);
        assert_eq!(trace.handovers(), counts.handovers);
    }

    #[test]
    fn drop_totals_stay_the_sum_of_all_reasons() {
        let mut totals = DropTotals::default();
        let reasons = [
            DropReason::DanglingFace,
            DropReason::ReverseFaceGone,
            DropReason::Lossy,
            DropReason::LinkDown,
            DropReason::NodeDown,
            DropReason::RateLimited,
            DropReason::FaceCapped,
            DropReason::PitFull,
        ];
        for (i, &r) in reasons.iter().enumerate() {
            for _ in 0..=i {
                totals.count(r);
            }
        }
        assert_eq!(totals.total(), (1..=8).sum::<u64>());
        assert_eq!(totals.lossy, 3);
        assert_eq!(totals.node_down, 5);
        assert_eq!(totals.rate_limited, 6);
        assert_eq!(totals.face_capped, 7);
        assert_eq!(totals.pit_full, 8);

        // NetCounters::dropped() mirrors the same invariant.
        let mut counters = NetCounters::default();
        for &r in &reasons {
            counters.on_drop(NodeId(0), r, SimTime::ZERO);
        }
        assert_eq!(counters.dropped(), reasons.len() as u64);
    }

    /// The defense counters must be invisible in `Debug` output while
    /// zero — that is what keeps historical golden report snapshots
    /// byte-identical for runs without attacks or defenses.
    #[test]
    fn drop_totals_debug_hides_zero_defense_counters() {
        let mut totals = DropTotals::default();
        let plain = format!("{totals:#?}");
        assert!(plain.contains("node_down"));
        assert!(!plain.contains("rate_limited"));
        assert!(!plain.contains("face_capped"));
        assert!(!plain.contains("pit_full"));

        totals.count(DropReason::RateLimited);
        totals.count(DropReason::PitFull);
        let armed = format!("{totals:#?}");
        assert!(armed.contains("rate_limited: 1"));
        assert!(!armed.contains("face_capped"));
        assert!(armed.contains("pit_full: 1"));
    }
}
