//! # tactic-net
//!
//! The simulation **transport plane** shared by every mechanism the
//! workspace evaluates. The TACTIC routers (`tactic::net`) and the
//! baseline mechanisms (`tactic_baselines::net`) both run on *this* event
//! loop, so "same topologies, link models, and workload" is a structural
//! guarantee rather than a doc-comment promise — mirroring how
//! access-control schemes are normally evaluated against one common CCN
//! forwarding substrate instead of per-scheme simulators.
//!
//! The crate owns everything that is mechanism-independent:
//!
//! * [`links`] — face tables from adjacency order and FIB population
//!   (one Dijkstra per provider);
//! * [`transport`] — the [`Engine`](tactic_sim::engine::Engine)-driven
//!   event loop, FIFO link serialisation + propagation, and the
//!   mobility/handover model;
//! * [`plane`] — the [`NodePlane`] trait mechanisms
//!   implement to plug their node logic into the loop;
//! * [`observer`] — the [`NetObserver`] hook layer:
//!   per-event tracing, link-utilisation counters, and drop-reason
//!   accounting, implemented once for every experiment;
//! * [`attack`] — adversarial workload plans ([`AttackPlan`]) and the
//!   edge defenses that absorb them ([`DefenseConfig`], the
//!   transport-enforced [`EdgeDefense`]);
//! * [`requester`] — the shared Zipf-window workload driver;
//! * [`relay`] — the access-point pending/demultiplex relay;
//! * [`mobility`] — the handover model's configuration;
//! * [`fault`] — deterministic fault injection: per-link loss models,
//!   scheduled link/node failures, and the consumer retransmission
//!   policy.
//!
//! Determinism is the crate's contract: given the same topology, plane,
//! and RNG, the transport performs the identical sequence of engine
//! schedules and RNG draws on every run and on every thread count.
//!
//! # Examples
//!
//! A minimal custom plane — one client echoing off one provider:
//!
//! ```
//! use tactic_net::links::Links;
//! use tactic_net::plane::{Emit, NodePlane, PlaneCtx};
//! use tactic_net::transport::{Net, NetConfig};
//! use tactic_ndn::face::FaceId;
//! use tactic_ndn::packet::{Data, Interest, Packet, Payload};
//! use tactic_sim::cost::CostModel;
//! use tactic_sim::rng::Rng;
//! use tactic_sim::time::{SimDuration, SimTime};
//! use tactic_topology::graph::{Graph, LinkSpec, NodeId, Role};
//! use tactic_topology::roles::Topology;
//!
//! struct Echo;
//! impl NodePlane for Echo {
//!     fn on_start(&mut self, _n: NodeId, _ctx: &mut PlaneCtx<'_>, out: &mut Vec<Emit>) {
//!         let i = Interest::new("/prov0/obj0/c0".parse().unwrap(), 1);
//!         out.push(Emit::Send {
//!             face: FaceId::new(0),
//!             packet: Packet::Interest(i),
//!             compute: SimDuration::ZERO,
//!         });
//!     }
//!     fn on_packet(
//!         &mut self,
//!         _n: NodeId,
//!         face: FaceId,
//!         packet: Packet,
//!         _ctx: &mut PlaneCtx<'_>,
//!         out: &mut Vec<Emit>,
//!     ) {
//!         if let Packet::Interest(i) = packet {
//!             let d = Data::new(i.name().clone(), Payload::Synthetic(64));
//!             out.push(Emit::Send {
//!                 face,
//!                 packet: Packet::Data(d),
//!                 compute: SimDuration::ZERO,
//!             });
//!         }
//!     }
//! }
//!
//! let mut graph = Graph::new();
//! let client = graph.add_node(Role::Client);
//! let provider = graph.add_node(Role::Provider);
//! graph.add_link(client, provider, LinkSpec::edge());
//! let topo = Topology {
//!     graph,
//!     core_routers: vec![],
//!     edge_routers: vec![],
//!     access_points: vec![],
//!     providers: vec![provider],
//!     clients: vec![client],
//!     attackers: vec![],
//! };
//! let links = Links::build(&topo);
//! let config = NetConfig {
//!     duration: SimDuration::from_secs(2),
//!     mobility: None,
//!     cost: CostModel::free(),
//!     faults: tactic_net::fault::FaultPlan::none(),
//!     sample_every: None,
//!     profile: false,
//!     defense: None,
//!     churn: None,
//! };
//! let net = Net::assemble(&topo, links, Echo, Rng::seed_from_u64(1), config);
//! let (_plane, _observer, report) = net.run();
//! assert_eq!(report.deliveries, 2, "one Interest out, one Data back");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod fault;
pub mod links;
pub mod mobility;
pub mod observer;
pub mod plane;
pub mod relay;
pub mod requester;
pub mod sharded;
pub mod transport;

pub use attack::{
    AttackClass, AttackPlan, ChurnConfig, DefenseConfig, EdgeDefense, RateLimit, ATTACK_STREAM,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan, LossModel, RetransmitPolicy};
pub use links::{fib_routes_filtered, populate_fib, provider_prefix, FibRoute, Links};
pub use mobility::MobilityConfig;
pub use observer::{DropReason, DropTotals, EventTrace, NetCounters, NetObserver, NoopObserver};
pub use plane::{Emit, NodePlane, PlaneCtx};
pub use relay::ApRelay;
pub use requester::{Catalog, RequesterConfig, ZipfRequester};
pub use sharded::{run_sharded, run_sharded_profiled, ShardedStats};
pub use transport::{KeyedEvent, Net, NetConfig, NetEvent, ShardSpec, TransportReport};
