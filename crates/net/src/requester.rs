//! The shared Zipf-window workload driver.
//!
//! Every mechanism is evaluated under the same consumer behaviour: walk a
//! Zipf-ranked object catalog chunk by chunk, keep a fixed window of
//! requests in flight, retry nothing (lost chunks are abandoned — matching
//! an attacker hammering or a client moving on after expiry). Mechanisms
//! that need richer consumers (TACTIC's tag-handling clients) implement
//! their own, but the plain requester lives here so baseline planes and
//! test planes don't each grow a copy.
//!
//! Resilience experiments can opt into Interest retransmission via
//! [`RetransmitPolicy`]: expired chunks are re-requested with a fresh
//! nonce under capped binary exponential backoff, and chunks that exhaust
//! their retries are counted as given up instead of silently abandoned.

use std::collections::{HashMap, VecDeque};

use tactic_ndn::name::Name;
use tactic_ndn::packet::{Data, Interest};
use tactic_sim::dist::Zipf;
use tactic_sim::rng::Rng;
use tactic_sim::time::{SimDuration, SimTime};

use crate::fault::RetransmitPolicy;

/// The per-provider content catalog a requester walks:
/// `(prefix, objects, chunks per object)`.
pub type Catalog = Vec<(Name, usize, usize)>;

/// Static configuration for one [`ZipfRequester`].
#[derive(Debug, Clone)]
pub struct RequesterConfig {
    /// The node's principal identity (used in nonces and, when
    /// `per_session_names` is set, in names).
    pub principal: u64,
    /// Whether this requester counts as a legitimate client in reports.
    pub is_client: bool,
    /// Requests kept in flight.
    pub window: usize,
    /// Request expiry (also stamped as the Interest lifetime).
    pub timeout: SimDuration,
    /// Zipf skew over the global object ranking.
    pub zipf_alpha: f64,
    /// Append a `/u<principal>` component so every request is
    /// per-session-unique (defeats caching; provider-auth baselines).
    pub per_session_names: bool,
    /// Optional Interest retransmission (`None` = the paper's no-retry
    /// clients: expired chunks are abandoned).
    pub retransmit: Option<RetransmitPolicy>,
}

/// One in-flight request: when its latest Interest went out and how many
/// attempts (0 = original only) have been made.
#[derive(Debug, Clone, Copy)]
struct Flight {
    sent: SimTime,
    attempts: u32,
}

/// Builds a globally-unique Interest nonce: the principal in the top 24
/// bits, the requester's send counter in the low 40.
///
/// The fields are disjoint, so nonces from different principals can never
/// collide — unlike the historical `(principal << 24) ^ counter`, whose
/// counter bled into the principal bits once a requester passed 2²⁴
/// sends, aliasing principals in million-Interest runs. A requester would
/// need 2⁴⁰ (≈10¹²) sends to overflow its field; debug builds assert
/// both fields stay in range.
fn compose_nonce(principal: u64, counter: u64) -> u64 {
    debug_assert!(principal < 1 << 24, "principal exceeds its 24-bit field");
    debug_assert!(counter < 1 << 40, "send counter exceeds its 40-bit field");
    (principal << 40) | counter
}

/// A window-driven Zipf requester over a chunked content catalog.
#[derive(Debug)]
pub struct ZipfRequester {
    /// The node's principal identity.
    pub principal: u64,
    /// Whether this requester counts as a legitimate client in reports.
    pub is_client: bool,
    window: usize,
    timeout: SimDuration,
    zipf: Zipf,
    rng: Rng,
    catalog: Catalog,
    per_session_names: bool,
    retransmit: Option<RetransmitPolicy>,
    current: Option<(usize, usize, usize)>,
    retry: VecDeque<(usize, usize, usize)>,
    in_flight: HashMap<Name, Flight>,
    nonce: u64,
    /// Chunks requested so far (original requests only, not retries).
    pub requested: u64,
    /// Chunks received so far.
    pub received: u64,
    /// Payload bytes received so far.
    pub received_bytes: u64,
    /// Request expiries that fired on a still-current attempt.
    pub timeouts: u64,
    /// Interests retransmitted after an expiry.
    pub retransmitted: u64,
    /// Chunks abandoned after exhausting their retransmission budget.
    pub gave_up: u64,
    /// Per-chunk `(receive time, latency seconds)` records.
    pub latencies: Vec<(SimTime, f64)>,
}

impl ZipfRequester {
    /// Creates a requester over `catalog` with its own RNG stream.
    pub fn new(config: RequesterConfig, catalog: Catalog, rng: Rng) -> Self {
        let total_objects = catalog.iter().map(|c| c.1).sum::<usize>();
        ZipfRequester {
            principal: config.principal,
            is_client: config.is_client,
            window: config.window,
            timeout: config.timeout,
            zipf: Zipf::new(total_objects, config.zipf_alpha),
            rng,
            catalog,
            per_session_names: config.per_session_names,
            retransmit: config.retransmit,
            current: None,
            retry: VecDeque::new(),
            in_flight: HashMap::new(),
            nonce: 0,
            requested: 0,
            received: 0,
            received_bytes: 0,
            timeouts: 0,
            retransmitted: 0,
            gave_up: 0,
            latencies: Vec::new(),
        }
    }

    fn chunk_name(&self, prov: usize, obj: usize, chunk: usize) -> Name {
        let base = self.catalog[prov]
            .0
            .child(format!("obj{obj}"))
            .child(format!("c{chunk}"));
        if self.per_session_names {
            base.child(format!("u{}", self.principal))
        } else {
            base
        }
    }

    fn next_work(&mut self) -> (usize, usize, usize) {
        if let Some(w) = self.retry.pop_front() {
            return w;
        }
        match self.current {
            Some((p, o, c)) if c < self.catalog[p].2 => {
                self.current = Some((p, o, c + 1));
                (p, o, c)
            }
            _ => {
                let mut rank = self.zipf.sample(&mut self.rng);
                let mut prov = 0;
                for (i, c) in self.catalog.iter().enumerate() {
                    if rank < c.1 {
                        prov = i;
                        break;
                    }
                    rank -= c.1;
                }
                self.current = Some((prov, rank, 1));
                (prov, rank, 0)
            }
        }
    }

    /// Tops the in-flight window up; returns the Interests to transmit.
    pub fn fill(&mut self, now: SimTime) -> Vec<Interest> {
        let mut out = Vec::new();
        while self.in_flight.len() < self.window {
            let (p, o, c) = self.next_work();
            let name = self.chunk_name(p, o, c);
            if self.in_flight.contains_key(&name) {
                continue;
            }
            self.nonce += 1;
            let mut i = Interest::new(name.clone(), compose_nonce(self.principal, self.nonce));
            i.set_lifetime_ms((self.timeout.as_nanos() / 1_000_000) as u32);
            self.requested += 1;
            self.in_flight.insert(
                name,
                Flight {
                    sent: now,
                    attempts: 0,
                },
            );
            out.push(i);
        }
        out
    }

    /// Records a delivered chunk and refills the window.
    pub fn on_data(&mut self, d: &Data, now: SimTime) -> Vec<Interest> {
        if let Some(flight) = self.in_flight.remove(d.name()) {
            self.received += 1;
            self.received_bytes += d.payload().len() as u64;
            self.latencies
                .push((now, now.saturating_since(flight.sent).as_secs_f64()));
        }
        self.fill(now)
    }

    /// Expires a request if its *latest* attempt is the one sent at
    /// `sent`: a stale expiry (the chunk was since retransmitted or
    /// completed) is a no-op and counts nothing. A current expiry either
    /// retransmits under the configured policy (fresh nonce, backed-off
    /// lifetime) or abandons the chunk and refills the window.
    pub fn on_timeout(&mut self, name: &Name, sent: SimTime, now: SimTime) -> Vec<Interest> {
        if !matches!(self.in_flight.get(name), Some(f) if f.sent == sent) {
            return Vec::new();
        }
        self.timeouts += 1;
        if let Some(policy) = self.retransmit {
            let flight = self.in_flight.get_mut(name).expect("checked above");
            if flight.attempts < policy.max_retries {
                flight.attempts += 1;
                flight.sent = now;
                let attempts = flight.attempts;
                self.nonce += 1;
                self.retransmitted += 1;
                let mut i = Interest::new(name.clone(), compose_nonce(self.principal, self.nonce));
                let lifetime = policy.timeout_for(self.timeout, attempts);
                i.set_lifetime_ms((lifetime.as_nanos() / 1_000_000) as u32);
                return vec![i];
            }
            self.gave_up += 1;
        }
        self.in_flight.remove(name);
        self.fill(now)
    }

    /// A handover re-attached this requester: requests in flight across
    /// the old radio link are written off (their timeouts will fire as
    /// no-ops) and the window refills from the new location.
    pub fn on_move(&mut self, now: SimTime) -> Vec<Interest> {
        self.in_flight.clear();
        self.fill(now)
    }

    /// The per-request expiry this requester stamps on its Interests.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// The expiry to schedule for the Interest currently in flight for
    /// `name`: the base timeout scaled by the retransmission backoff of
    /// its attempt count (the base timeout for unknown names or when
    /// retransmission is off).
    pub fn timeout_for(&self, name: &Name) -> SimDuration {
        match (self.retransmit, self.in_flight.get(name)) {
            (Some(policy), Some(f)) => policy.timeout_for(self.timeout, f.attempts),
            _ => self.timeout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requester_with(per_session: bool, retransmit: Option<RetransmitPolicy>) -> ZipfRequester {
        ZipfRequester::new(
            RequesterConfig {
                principal: 7,
                is_client: true,
                window: 4,
                timeout: SimDuration::from_secs(2),
                zipf_alpha: 0.8,
                per_session_names: per_session,
                retransmit,
            },
            vec![("/prov0".parse().unwrap(), 5, 3)],
            Rng::seed_from_u64(1),
        )
    }

    fn requester(per_session: bool) -> ZipfRequester {
        requester_with(per_session, None)
    }

    #[test]
    fn nonces_never_collide_across_principals_past_2_24_sends() {
        // The historical `(principal << 24) ^ counter` aliased principals
        // once a counter crossed 2²⁴: principal 0's send 2²⁴+c produced
        // principal 1's send c. Walk both counters through dense windows
        // around every 2²⁴ boundary up to 2²⁶ — the exact collision
        // pattern — and require global uniqueness.
        let mut seen = std::collections::HashSet::new();
        let windows = (0u64..=4).map(|k| {
            let base = k << 24;
            base.saturating_sub(512)..base + 512
        });
        for counters in windows {
            for c in counters {
                for principal in [0u64, 1, 2, (1 << 24) - 1] {
                    assert!(
                        seen.insert(compose_nonce(principal, c)),
                        "nonce collision at principal {principal}, counter {c}"
                    );
                }
            }
        }
        // And the disjoint-field argument holds structurally: the
        // principal occupies bits the counter can never reach.
        assert_eq!(compose_nonce(3, 0) >> 40, 3);
        assert_eq!(compose_nonce(0, (1 << 40) - 1) >> 40, 0);
    }

    #[test]
    fn fill_keeps_the_window_full() {
        let mut r = requester(false);
        let sends = r.fill(SimTime::ZERO);
        assert_eq!(sends.len(), 4);
        assert_eq!(r.requested, 4);
        assert!(r.fill(SimTime::ZERO).is_empty(), "window already full");
    }

    #[test]
    fn per_session_names_append_the_principal() {
        let mut r = requester(true);
        let sends = r.fill(SimTime::ZERO);
        for i in &sends {
            assert!(i.name().to_string().ends_with("/u7"), "{}", i.name());
        }
    }

    #[test]
    fn stale_timeouts_are_ignored() {
        let mut r = requester(false);
        let sends = r.fill(SimTime::ZERO);
        let name = sends[0].name().clone();
        // A timeout carrying the wrong sent-time is a no-op.
        assert!(r
            .on_timeout(&name, SimTime::from_secs(9), SimTime::from_secs(3))
            .is_empty());
        assert_eq!(r.timeouts, 0, "stale expiries count nothing");
        // The genuine one frees a slot and refills it.
        let refill = r.on_timeout(&name, SimTime::ZERO, SimTime::from_secs(3));
        assert_eq!(refill.len(), 1);
        assert_eq!(r.timeouts, 1);

        // A retransmitted chunk's *original* expiry is stale too: the
        // flight's sent-time moved to the retransmission instant, so the
        // old expiry must not double-count the chunk as lost.
        let mut r = requester_with(false, Some(RetransmitPolicy::default()));
        let sends = r.fill(SimTime::ZERO);
        let name = sends[0].name().clone();
        let t1 = SimTime::from_secs(2);
        let resend = r.on_timeout(&name, SimTime::ZERO, t1);
        assert_eq!(resend.len(), 1, "expiry retransmits the same chunk");
        assert_eq!(resend[0].name(), &name);
        assert!(r
            .on_timeout(&name, SimTime::ZERO, SimTime::from_secs(3))
            .is_empty());
        assert_eq!(
            (r.timeouts, r.retransmitted, r.gave_up),
            (1, 1, 0),
            "the original expiry after a retransmission is a no-op"
        );
        // The retransmission's own expiry is the current one.
        assert_eq!(r.on_timeout(&name, t1, SimTime::from_secs(6)).len(), 1);
        assert_eq!(r.timeouts, 2);
    }

    #[test]
    fn retransmission_backs_off_and_gives_up() {
        let policy = RetransmitPolicy {
            max_retries: 2,
            max_backoff_shift: 4,
        };
        let mut r = requester_with(false, Some(policy));
        let sends = r.fill(SimTime::ZERO);
        let name = sends[0].name().clone();
        let nonce0 = sends[0].nonce();
        assert_eq!(r.timeout_for(&name), SimDuration::from_secs(2));

        let resend = r.on_timeout(&name, SimTime::ZERO, SimTime::from_secs(2));
        assert_eq!(resend.len(), 1);
        assert_ne!(resend[0].nonce(), nonce0, "retries carry fresh nonces");
        assert_eq!(r.timeout_for(&name), SimDuration::from_secs(4));

        let t1 = SimTime::from_secs(2);
        let resend2 = r.on_timeout(&name, t1, SimTime::from_secs(6));
        assert_eq!(resend2.len(), 1);
        assert_eq!(r.timeout_for(&name), SimDuration::from_secs(8));

        // Retries exhausted: the chunk is given up and the slot refills
        // with different work.
        let t2 = SimTime::from_secs(6);
        let refill = r.on_timeout(&name, t2, SimTime::from_secs(14));
        assert_eq!(refill.len(), 1);
        assert_ne!(refill[0].name(), &name, "given-up chunks are not retried");
        assert_eq!((r.retransmitted, r.gave_up), (2, 1));
        assert_eq!(
            r.timeout_for(&name),
            SimDuration::from_secs(2),
            "an unknown name falls back to the base timeout"
        );
        // `requested` counts original chunks only, never retries.
        assert_eq!(r.requested, 5);
    }

    #[test]
    fn data_records_latency() {
        let mut r = requester(false);
        let sends = r.fill(SimTime::ZERO);
        let d = Data::new(
            sends[0].name().clone(),
            tactic_ndn::packet::Payload::Synthetic(100),
        );
        let refill = r.on_data(&d, SimTime::from_secs_f64(0.25));
        assert_eq!(r.received, 1);
        assert_eq!(r.received_bytes, 100);
        assert_eq!(refill.len(), 1);
        assert!((r.latencies[0].1 - 0.25).abs() < 1e-9);
    }
}
