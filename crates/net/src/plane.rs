//! The pluggable node-logic layer: a mechanism implements [`NodePlane`]
//! and the shared transport drives it through the event loop.
//!
//! A plane owns its node states (routers, providers, consumers, relays —
//! whatever the mechanism needs) and reacts to transport callbacks by
//! pushing [`Emit`]s; the transport performs them in order, which is what
//! keeps engine sequence numbers — and therefore whole runs —
//! deterministic across refactors and thread counts.

use tactic_ndn::face::FaceId;
use tactic_ndn::name::Name;
use tactic_ndn::packet::Packet;
use tactic_sim::cost::CostModel;
use tactic_sim::rng::Rng;
use tactic_sim::time::{SimDuration, SimTime};
use tactic_telemetry::{SampleRow, SpanProfiler};
use tactic_topology::graph::NodeId;

use crate::observer::DropTotals;

/// Per-event context handed to plane callbacks.
pub struct PlaneCtx<'a> {
    /// The current simulation time (time of the event being handled).
    pub now: SimTime,
    /// The run's shared RNG stream. Draws consume the stream, so a plane
    /// must draw exactly when its logic needs randomness — never
    /// speculatively — to stay reproducible.
    pub rng: &'a mut Rng,
    /// The computation-cost injection model.
    pub cost: &'a CostModel,
    /// The wall-clock span profiler, when enabled. Planes time their
    /// hot phases (`precheck`, `bf_lookup`, `sig_verify`, PIT ops, ...)
    /// through it; `None` (the default) must cost nothing.
    pub profiler: Option<&'a mut SpanProfiler>,
    /// The transport's drop ledger: planes count drops that happen
    /// inside their own state here (today: bounded-PIT evictions as
    /// [`DropTotals::pit_full`]), so they surface through the same
    /// report/telemetry path as transport-level drops.
    pub drops: &'a mut DropTotals,
}

/// A side effect a plane callback asks the transport to perform.
///
/// Emits are applied strictly in push order; interleaving matters (for
/// example, scheduling a request's expiry *before* transmitting it keeps
/// the engine's FIFO tie-break identical to the historical planes).
#[derive(Debug)]
pub enum Emit {
    /// Transmit `packet` out `face` of the handling node after `compute`
    /// processing time, subject to FIFO link serialisation.
    Send {
        /// The outgoing face of the node handling the event.
        face: FaceId,
        /// The packet to put on the wire.
        packet: Packet,
        /// Sender-side computation time charged before the link is taken.
        compute: SimDuration,
    },
    /// Schedule a request-expiry check for the handling node: the plane's
    /// [`NodePlane::on_timeout`] fires after `delay` with `sent` equal to
    /// the time of this emit.
    Timeout {
        /// The request name to re-examine.
        name: Name,
        /// How long until the expiry check fires.
        delay: SimDuration,
    },
}

/// Mechanism-specific node logic plugged into the shared transport.
///
/// Implementations hold every node's state and must be deterministic: the
/// same callback sequence with the same [`PlaneCtx`] draws must produce
/// the same emits. All methods other than [`on_packet`](Self::on_packet)
/// have no-op defaults so minimal planes (tests, examples) stay short.
#[allow(unused_variables)]
pub trait NodePlane {
    /// A packet finished arriving at `node` on `face`.
    fn on_packet(
        &mut self,
        node: NodeId,
        face: FaceId,
        packet: Packet,
        ctx: &mut PlaneCtx<'_>,
        out: &mut Vec<Emit>,
    );

    /// A consumer/requester node begins its request loop.
    fn on_start(&mut self, node: NodeId, ctx: &mut PlaneCtx<'_>, out: &mut Vec<Emit>) {}

    /// An expiry check scheduled via [`Emit::Timeout`] fired: the request
    /// for `name` sent at `sent` may have expired.
    fn on_timeout(
        &mut self,
        node: NodeId,
        name: Name,
        sent: SimTime,
        ctx: &mut PlaneCtx<'_>,
        out: &mut Vec<Emit>,
    ) {
    }

    /// The periodic (1 s) expiry sweep: purge PITs, relay state, and any
    /// other soft state.
    fn on_purge(&mut self, now: SimTime) {}

    /// `node` was just re-attached to a new access point by the mobility
    /// model; the plane may refresh credentials and refill its window.
    fn on_handover(&mut self, node: NodeId, ctx: &mut PlaneCtx<'_>, out: &mut Vec<Emit>) {}

    /// A scheduled fault changed the usable topology; `routes` is the
    /// complete recomputed FIB (full-replacement semantics: the plane
    /// should clear every router's FIB and install exactly these entries).
    fn on_reroute(&mut self, routes: &[crate::links::FibRoute]) {}

    /// The periodic sampler tick: add this plane's gauges for the nodes
    /// it owns (per `owns`, always true sequentially) into `row` —
    /// PIT records, content-store entries, Bloom-filter state. Every
    /// contribution must be a cumulative/instantaneous integer so the
    /// per-shard rows merge to the sequential row exactly.
    fn on_sample(&mut self, now: SimTime, owns: &dyn Fn(NodeId) -> bool, row: &mut SampleRow) {}
}
