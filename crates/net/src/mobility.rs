//! Client-mobility configuration (the paper's §9 future work: "test our
//! mechanism ... under nodes mobility").

use tactic_sim::time::SimDuration;

/// Client-mobility model. Mobile clients hand over to a uniformly random
/// *other* access point after exponentially-distributed dwell times; the
/// transport re-wires their radio link (in-flight packets on the old link
/// are lost) and notifies the plane, which decides what the node does —
/// TACTIC consumers drop their tags and re-register from the new location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityConfig {
    /// Mean dwell time at one access point.
    pub mean_dwell: SimDuration,
    /// Fraction of clients that are mobile (0.0–1.0).
    pub mobile_fraction: f64,
}
