//! The conservative epoch coordinator: K shard [`Net`]s on K threads,
//! synchronized at epoch barriers, byte-identical to a sequential run.
//!
//! # Protocol
//!
//! Each epoch covers the half-open window `[T, T + lookahead)`, where
//! `T` is the global minimum over every shard's next pending event and
//! every undelivered mailbox event (a GVT-style idle jump: quiet
//! stretches cost one barrier, not `gap / lookahead` of them). Per
//! round the coordinator hands each worker its inbox (all mailbox events
//! addressed to it, in ascending source-shard order), the worker injects
//! them, processes everything strictly before `T + lookahead`, and
//! returns its outboxes plus its next pending timestamp.
//!
//! # Why this is deterministic
//!
//! Lookahead is the minimum latency any cross-shard packet can
//! experience, so an event processed at time `s ∈ [T, T + L)` can only
//! create foreign work at `s + L ≥ T + L` — strictly after the window.
//! Every event that belongs in a window is therefore present in the
//! owning shard's calendar before the window runs, and the calendar
//! orders events by the same shard-invariant `(time, key)` pairs the
//! sequential engine uses (see the [`transport`](crate::transport)
//! module docs). Mailbox drain order cannot matter: injection only
//! inserts into the calendar, and the keys already fix the total order.

use std::sync::mpsc;
use std::time::Instant;

use tactic_sim::time::{SimDuration, SimTime};
use tactic_telemetry::EpochSpan;

use crate::observer::NetObserver;
use crate::plane::NodePlane;
use crate::transport::{KeyedEvent, Net, TransportReport};

/// What the coordinator measured about one sharded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedStats {
    /// Number of shards (worker threads).
    pub k: usize,
    /// Synchronization epochs executed.
    pub epochs: u64,
    /// Cross-shard events exchanged through mailboxes.
    pub cross_events: u64,
    /// Undirected links crossing shard boundaries. The transport layer
    /// cannot see the partitioner, so [`run_sharded`] reports 0; callers
    /// that built a `ShardMap` fill it in.
    pub edge_cut: u64,
    /// Per shard: engine events processed.
    pub per_shard_events: Vec<u64>,
    /// Per shard: engine queue high-water mark.
    pub per_shard_peak_queue: Vec<u64>,
    /// Per shard: PIT-record high-water mark. The transport cannot see
    /// plane state, so [`run_sharded`] reports empty; callers that can
    /// read their plane's sweep history fill it in (like `edge_cut`).
    pub per_shard_peak_pit: Vec<u64>,
    /// Per shard: content-store high-water mark (caller-filled, like
    /// `per_shard_peak_pit`).
    pub per_shard_peak_cs: Vec<u64>,
    /// One wall-clock span per (shard, epoch), ordered by shard then
    /// epoch. Only populated by [`run_sharded_profiled`] with
    /// `profile = true` — nondeterministic, never golden.
    pub epoch_spans: Vec<EpochSpan>,
}

enum ToWorker {
    Epoch {
        end: SimTime,
        inbox: Vec<KeyedEvent>,
    },
    Finish,
}

struct FromWorker {
    shard: usize,
    outboxes: Vec<Vec<KeyedEvent>>,
    next_at: Option<SimTime>,
}

/// Runs `k` shard [`Net`]s to completion on `k` threads.
///
/// `build(shard)` constructs shard `shard`'s instance (each worker calls
/// it on its own thread, so replicated-state construction parallelizes
/// too); every instance must be assembled via
/// [`Net::assemble_sharded`](crate::transport::Net::assemble_sharded)
/// from identical inputs. `lookahead` is the epoch window width —
/// normally [`ShardMap::lookahead`](tactic_topology::shard::ShardMap) —
/// and `None` means no event can cross shards (each shard runs to its
/// horizon in a single epoch). `horizon` must equal the nets' engine
/// horizon: events pending beyond it (the perpetual purge reschedule,
/// tail deliveries) terminate the loop instead of driving more epochs.
///
/// Returns each shard's `(plane, observer, report)` in shard order plus
/// the coordinator's stats. The caller owns the merge: stitch the owned
/// node states together, max-merge queue peaks, and subtract the
/// mirrored purge/fault duplicates from the event total.
///
/// # Panics
///
/// Panics if `k == 0`, if `build` builds nets with a different shard
/// count, or if a worker thread panics.
pub fn run_sharded<P, O, F>(
    k: usize,
    lookahead: Option<SimDuration>,
    horizon: SimTime,
    build: F,
) -> (Vec<(P, O, TransportReport)>, ShardedStats)
where
    P: NodePlane + Send,
    O: NetObserver + Send,
    F: Fn(u32) -> Net<P, O> + Sync,
{
    run_sharded_profiled(k, lookahead, horizon, false, build)
}

/// [`run_sharded`] with optional per-epoch wall-clock accounting: when
/// `profile` is set, every worker records one [`EpochSpan`] per epoch
/// (work time, barrier-wait time, mailbox drain size) relative to a
/// shared origin captured before the threads spawn, and the spans come
/// back in [`ShardedStats::epoch_spans`] ordered by shard then epoch.
/// The simulation itself is bit-identical either way — only wall-clock
/// metadata is collected.
///
/// # Panics
///
/// As [`run_sharded`].
pub fn run_sharded_profiled<P, O, F>(
    k: usize,
    lookahead: Option<SimDuration>,
    horizon: SimTime,
    profile: bool,
    build: F,
) -> (Vec<(P, O, TransportReport)>, ShardedStats)
where
    P: NodePlane + Send,
    O: NetObserver + Send,
    F: Fn(u32) -> Net<P, O> + Sync,
{
    assert!(k > 0, "at least one shard");
    let mut epochs = 0u64;
    let mut cross_events = 0u64;
    let mut results: Vec<Option<(P, O, TransportReport)>> = (0..k).map(|_| None).collect();
    let mut epoch_spans: Vec<EpochSpan> = Vec::new();
    // The run-wide wall-clock origin every span is relative to.
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        let (to_main, from_workers) = mpsc::channel::<FromWorker>();
        let (span_tx, span_rx) = mpsc::channel::<Vec<EpochSpan>>();
        let mut to_worker = Vec::with_capacity(k);
        let mut final_rx = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);
        for shard in 0..k {
            let (cmd_tx, cmd_rx) = mpsc::channel::<ToWorker>();
            let (fin_tx, fin_rx) = mpsc::channel::<(P, O, TransportReport)>();
            to_worker.push(cmd_tx);
            final_rx.push(fin_rx);
            let to_main = to_main.clone();
            let span_tx = span_tx.clone();
            let build = &build;
            handles.push(scope.spawn(move || {
                let mut net = build(shard as u32);
                let mut spans: Vec<EpochSpan> = Vec::new();
                let mut epoch_idx = 0u64;
                // Report readiness (and the first pending event) before
                // the first epoch command.
                to_main
                    .send(FromWorker {
                        shard,
                        outboxes: Vec::new(),
                        next_at: net.next_event_at(),
                    })
                    .expect("coordinator alive");
                loop {
                    let wait_started = profile.then(Instant::now);
                    let Ok(cmd) = cmd_rx.recv() else { break };
                    let wait_ns = wait_started.map_or(0, |w| w.elapsed().as_nanos() as u64);
                    match cmd {
                        ToWorker::Epoch { end, inbox } => {
                            if profile {
                                let inbox_len = inbox.len() as u64;
                                let start_ns = t0.elapsed().as_nanos() as u64;
                                net.inject(inbox);
                                net.run_epoch(end);
                                let work_ns = t0.elapsed().as_nanos() as u64 - start_ns;
                                spans.push(EpochSpan {
                                    shard: shard as u32,
                                    epoch: epoch_idx,
                                    start_ns,
                                    work_ns,
                                    wait_ns,
                                    inbox: inbox_len,
                                });
                                epoch_idx += 1;
                            } else {
                                net.inject(inbox);
                                net.run_epoch(end);
                            }
                            let outboxes = net.take_outboxes();
                            let next_at = net.next_event_at();
                            to_main
                                .send(FromWorker {
                                    shard,
                                    outboxes,
                                    next_at,
                                })
                                .expect("coordinator alive");
                        }
                        ToWorker::Finish => {
                            span_tx.send(spans).expect("coordinator alive");
                            fin_tx.send(net.finish()).expect("coordinator alive");
                            break;
                        }
                    }
                }
            }));
        }
        drop(to_main);
        drop(span_tx);

        // Undelivered mailbox events, per destination shard.
        let mut pending: Vec<Vec<KeyedEvent>> = (0..k).map(|_| Vec::new()).collect();
        let mut next_at: Vec<Option<SimTime>> = vec![None; k];
        // Collect one report per worker per round (the initial round
        // reports readiness).
        let collect = |next_at: &mut Vec<Option<SimTime>>,
                       pending: &mut Vec<Vec<KeyedEvent>>,
                       cross: &mut u64| {
            for _ in 0..k {
                let msg = from_workers.recv().expect("worker alive");
                next_at[msg.shard] = msg.next_at;
                for (dst, mut events) in msg.outboxes.into_iter().enumerate() {
                    *cross += events.len() as u64;
                    pending[dst].append(&mut events);
                }
            }
        };
        collect(&mut next_at, &mut pending, &mut cross_events);

        loop {
            // Global minimum over pending calendars and mailboxes.
            let mut t = None::<SimTime>;
            for at in next_at.iter().flatten() {
                t = Some(t.map_or(*at, |m: SimTime| m.min(*at)));
            }
            for mailbox in &pending {
                for &(at, _, _) in mailbox {
                    t = Some(t.map_or(at, |m: SimTime| m.min(at)));
                }
            }
            let Some(t) = t else { break };
            if t > horizon {
                // Everything left is beyond the simulated duration; the
                // engines would never pop it anyway.
                break;
            }
            let end = match lookahead {
                Some(l) => t + l,
                None => SimTime::MAX,
            };
            epochs += 1;
            // Inboxes travel with the epoch command; source-shard order
            // was fixed when the outboxes were appended above.
            for (shard, tx) in to_worker.iter().enumerate() {
                let inbox = std::mem::take(&mut pending[shard]);
                tx.send(ToWorker::Epoch { end, inbox })
                    .expect("worker alive");
            }
            collect(&mut next_at, &mut pending, &mut cross_events);
        }

        for tx in &to_worker {
            tx.send(ToWorker::Finish).expect("worker alive");
        }
        for (shard, rx) in final_rx.iter().enumerate() {
            results[shard] = Some(rx.recv().expect("worker alive"));
        }
        for spans in span_rx {
            epoch_spans.extend(spans);
        }
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }
    });
    epoch_spans.sort_by_key(|s| (s.shard, s.epoch));

    let results: Vec<(P, O, TransportReport)> =
        results.into_iter().map(|r| r.expect("collected")).collect();
    let stats = ShardedStats {
        k,
        epochs,
        cross_events,
        edge_cut: 0,
        per_shard_events: results.iter().map(|r| r.2.events).collect(),
        per_shard_peak_queue: results.iter().map(|r| r.2.peak_queue_depth).collect(),
        per_shard_peak_pit: Vec::new(),
        per_shard_peak_cs: Vec::new(),
        epoch_spans,
    };
    (results, stats)
}
