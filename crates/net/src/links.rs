//! Face tables and FIB population — the wiring every simulation plane
//! derives from a [`Topology`] in exactly the same way.

use tactic_ndn::face::FaceId;
use tactic_ndn::name::Name;
use tactic_topology::graph::{LinkSpec, NodeId};
use tactic_topology::roles::Topology;
use tactic_topology::routing::{routes_toward_filtered, routes_toward_many};

/// Per-node face tables derived from a topology's adjacency order.
///
/// Node `n`'s `k`-th incident link becomes its face `k`; the reverse map
/// answers "which local face leads to peer `p`?". The transport mutates
/// these tables during handovers, so a face that existed at build time may
/// later dangle (its reverse mapping removed) — exactly how a radio link
/// disappears under a mobile client.
///
/// The reverse map is stored flat — per node, a `Vec<(peer, face)>` kept
/// sorted by peer id and probed by binary search — instead of a per-node
/// `HashMap`. It sits on the transmit path of every packet, and at 10⁵–10⁶
/// nodes the hashing plus pointer-chasing of a million small maps is the
/// dominant per-event cost; a two-entry sorted slice is one cache line.
#[derive(Debug, Clone, PartialEq)]
pub struct Links {
    /// Per node, per face index: `(neighbour, link spec)`.
    pub neighbors: Vec<Vec<(NodeId, LinkSpec)>>,
    /// Per node: `(neighbour, local face)` sorted by neighbour id.
    face_index: Vec<Vec<(NodeId, FaceId)>>,
}

impl Links {
    /// Builds the face tables from `topo`'s adjacency order.
    pub fn build(topo: &Topology) -> Links {
        let n = topo.graph.node_count();
        let mut neighbors: Vec<Vec<(NodeId, LinkSpec)>> = vec![Vec::new(); n];
        let mut face_index: Vec<Vec<(NodeId, FaceId)>> = vec![Vec::new(); n];
        for node in topo.graph.nodes() {
            for (peer, link_id) in topo.graph.incident(node) {
                let spec = topo.graph.link(link_id).spec;
                let face = FaceId::new(neighbors[node.index()].len() as u32);
                neighbors[node.index()].push((peer, spec));
                face_index[node.index()].push((peer, face));
            }
            face_index[node.index()].sort_unstable_by_key(|&(peer, _)| peer);
        }
        Links {
            neighbors,
            face_index,
        }
    }

    /// The local face of `node` that currently leads to `peer`.
    pub fn face_toward(&self, node: NodeId, peer: NodeId) -> Option<FaceId> {
        let table = &self.face_index[node.index()];
        table
            .binary_search_by_key(&peer, |&(p, _)| p)
            .ok()
            .map(|i| table[i].1)
    }

    /// Points `node`'s reverse map at `face` for `peer`, replacing any
    /// previous mapping for that peer.
    pub fn set_face_toward(&mut self, node: NodeId, peer: NodeId, face: FaceId) {
        let table = &mut self.face_index[node.index()];
        match table.binary_search_by_key(&peer, |&(p, _)| p) {
            Ok(i) => table[i].1 = face,
            Err(i) => table.insert(i, (peer, face)),
        }
    }

    /// Drops every reverse mapping of `node` (a handover tears down the
    /// old radio link before wiring the new one).
    pub fn clear_faces(&mut self, node: NodeId) {
        self.face_index[node.index()].clear();
    }

    /// The `(neighbour, link spec)` a face of `node` points at, if wired.
    pub fn peer_of(&self, node: NodeId, face: FaceId) -> Option<(NodeId, LinkSpec)> {
        self.neighbors[node.index()]
            .get(face.index() as usize)
            .copied()
    }
}

/// The shared content-prefix convention: provider `i` serves `/prov{i}`.
pub fn provider_prefix(i: usize) -> Name {
    format!("/prov{i}").parse().expect("static prefix")
}

/// Computes every router's FIB entry toward every provider — one Dijkstra
/// per provider over the link-latency metric — and feeds each entry to
/// `add` as `(router, provider index, prefix, out face, path cost in µs)`.
///
/// Iteration order is providers-outer, routers-inner (core routers before
/// edge routers), which callers may rely on for determinism.
///
/// The per-provider Dijkstras run in parallel via
/// [`routes_toward_many`]; the merge back into FIB entries happens here,
/// single-threaded in provider order, so the output is byte-identical to
/// the old sequential loop — at 10⁵ nodes this is where topology build
/// time went.
pub fn populate_fib<F>(topo: &Topology, links: &Links, mut add: F)
where
    F: FnMut(NodeId, usize, Name, FaceId, u32),
{
    let all_routes = routes_toward_many(&topo.graph, &topo.providers);
    for (i, routes) in all_routes.iter().enumerate() {
        let prefix = provider_prefix(i);
        for rnode in topo.routers() {
            if let Some(entry) = routes[rnode.index()] {
                let face = links
                    .face_toward(rnode, entry.next_hop)
                    .expect("route next hop is a wired neighbour");
                let cost_us = (entry.cost.as_nanos() / 1_000).min(u32::MAX as u64) as u32;
                add(rnode, i, prefix.clone(), face, cost_us);
            }
        }
    }
}

/// One FIB entry produced by [`fib_routes_filtered`]: `router` reaches
/// `prefix` (provider index `provider`) through `face` at `cost_us`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FibRoute {
    /// The router owning the entry.
    pub router: NodeId,
    /// Provider index (into `topo.providers`).
    pub provider: usize,
    /// The provider's content prefix.
    pub prefix: Name,
    /// Out face toward the provider.
    pub face: FaceId,
    /// Path cost in microseconds of latency.
    pub cost_us: u32,
}

/// [`populate_fib`] restricted to links for which `usable(a, b)` holds —
/// the routing recomputation the transport performs at scheduled failure
/// instants. Routers cut off from a provider simply get no entry for it.
///
/// Same deterministic iteration order as [`populate_fib`]
/// (providers-outer, routers-inner).
pub fn fib_routes_filtered<F>(topo: &Topology, links: &Links, mut usable: F) -> Vec<FibRoute>
where
    F: FnMut(NodeId, NodeId) -> bool,
{
    let mut out = Vec::new();
    for (i, &pnode) in topo.providers.iter().enumerate() {
        let prefix = provider_prefix(i);
        let routes = routes_toward_filtered(&topo.graph, pnode, &mut usable);
        for rnode in topo.routers() {
            if let Some(entry) = routes[rnode.index()] {
                let face = links
                    .face_toward(rnode, entry.next_hop)
                    .expect("route next hop is a wired neighbour");
                let cost_us = (entry.cost.as_nanos() / 1_000).min(u32::MAX as u64) as u32;
                out.push(FibRoute {
                    router: rnode,
                    provider: i,
                    prefix: prefix.clone(),
                    face,
                    cost_us,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tactic_sim::rng::Rng;
    use tactic_topology::roles::{build_topology, TopologySpec};

    fn topo() -> Topology {
        build_topology(
            &TopologySpec {
                core_routers: 10,
                edge_routers: 3,
                providers: 2,
                clients: 4,
                attackers: 2,
            },
            &mut Rng::seed_from_u64(9),
        )
    }

    #[test]
    fn faces_follow_adjacency_order() {
        let t = topo();
        let links = Links::build(&t);
        for node in t.graph.nodes() {
            assert_eq!(links.neighbors[node.index()].len(), t.graph.degree(node));
            for (idx, &(peer, _)) in links.neighbors[node.index()].iter().enumerate() {
                assert_eq!(
                    links.face_toward(node, peer),
                    Some(FaceId::new(idx as u32)),
                    "face index must invert the adjacency order"
                );
            }
        }
    }

    #[test]
    fn fib_covers_every_router_provider_pair() {
        let t = topo();
        let links = Links::build(&t);
        let mut entries = 0usize;
        populate_fib(&t, &links, |rnode, i, prefix, face, cost_us| {
            assert!(i < 2);
            assert_eq!(prefix, provider_prefix(i));
            assert!(links.peer_of(rnode, face).is_some());
            assert!(cost_us > 0, "a multi-hop path has positive latency cost");
            entries += 1;
        });
        // The graph is connected: every router routes toward every provider.
        assert_eq!(entries, 13 * 2);
    }

    #[test]
    fn parallel_populate_matches_sequential_filtered_path() {
        let t = topo();
        let links = Links::build(&t);
        let mut parallel = Vec::new();
        populate_fib(&t, &links, |router, provider, prefix, face, cost_us| {
            parallel.push(FibRoute {
                router,
                provider,
                prefix,
                face,
                cost_us,
            });
        });
        let sequential = fib_routes_filtered(&t, &links, |_, _| true);
        assert_eq!(parallel, sequential, "same entries in the same order");
    }

    #[test]
    fn build_is_deterministic() {
        let t = topo();
        assert_eq!(Links::build(&t), Links::build(&t));
    }

    #[test]
    fn filtered_routes_avoid_unusable_links() {
        let t = topo();
        let links = Links::build(&t);
        let full = fib_routes_filtered(&t, &links, |_, _| true);
        assert_eq!(full.len(), 13 * 2, "unfiltered = populate_fib coverage");

        // Cut every link touching provider 0's attachment: routers lose
        // their `/prov0` entries but keep `/prov1` (graph stays connected
        // enough for the other provider in this topology or drops some
        // routers — either way no entry may use a cut link).
        let p0 = t.providers[0];
        let cut = fib_routes_filtered(&t, &links, |a, b| a != p0 && b != p0);
        assert!(cut.len() < full.len());
        for route in &cut {
            assert_ne!(route.provider, 0, "provider 0 is unreachable");
            let (peer, _) = links.peer_of(route.router, route.face).expect("wired");
            assert_ne!(peer, p0, "no route may traverse a cut link");
        }
    }
}
