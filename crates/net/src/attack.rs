//! Adversarial workloads and the edge defenses that absorb them.
//!
//! An [`AttackPlan`] turns a scenario's attacker fleet into one of five
//! deterministic adversarial behaviours — Interest flooding, tag-forgery
//! storms, Bloom-filter pollution, expired-tag replay, or attacker
//! mobility churn — each driven by RNG streams forked off
//! [`ATTACK_STREAM`], so a plan with `class: None` or zero intensity
//! makes no draw anywhere and leaves unattacked runs byte-identical to
//! the historical golden snapshots.
//!
//! A [`DefenseConfig`] names the counter-measures an edge deployment
//! would arm: a per-client token-bucket rate limit and a per-face
//! fairness cap (both enforced by the transport through
//! [`EdgeDefense`], surfacing [`DropReason::RateLimited`] and
//! [`DropReason::FaceCapped`]), plus a bounded PIT whose deterministic
//! oldest-first evictions the planes count as
//! [`DropReason::PitFull`].
//!
//! # Determinism rules
//!
//! * Attack traffic draws only from per-attacker streams forked as
//!   `ATTACK_STREAM ^ node_index`, and only while a plan is active —
//!   forking is pure, so an inactive plan cannot perturb any existing
//!   stream.
//! * Defense state is consulted and mutated at *send* time, inside the
//!   transmitting node's shard, so rate-limiter and face-cap state never
//!   crosses a shard boundary and K-sharded runs merge byte-identically.
//! * All defense arithmetic is integer nanosecond bookkeeping — no
//!   floats, no wall clock.

use tactic_sim::time::{SimDuration, SimTime};
use tactic_topology::graph::NodeId;

use crate::observer::DropReason;

/// Base RNG stream id for per-attacker adversarial streams
/// (`ATTACK_STREAM ^ node index`). Chosen disjoint from the transport's
/// `NODE_STREAM`/`FAULT_STREAM` and every plane's consumer streams.
pub const ATTACK_STREAM: u64 = 0xA77A_C200_0000_0000;

/// The adversarial behaviours an attacker fleet can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackClass {
    /// Interest-flooding DoS: spray valid-credential Interests for
    /// random in-catalog names at high rate through the edge APs,
    /// pressuring PITs, links, and providers.
    Flood,
    /// Tag-forgery storm: every Interest carries a freshly forged
    /// signature, burning one signature verification per Interest at the
    /// edge before rejection.
    ForgeTags,
    /// Bloom-filter pollution: cycle a pool of distinct *valid*
    /// credentials so edge Bloom filters absorb attacker keys, driving
    /// occupancy toward saturation resets.
    BfPollution,
    /// Replay of captured-then-expired tags: syntactically valid
    /// credentials past their expiry, rejected at precheck.
    ReplayExpired,
    /// Attacker mobility churn: attackers re-attach to new access points
    /// at an aggressive dwell time while requesting, thrashing relay and
    /// handover state.
    Churn,
}

impl AttackClass {
    /// Every class, in sweep order.
    pub const ALL: [AttackClass; 5] = [
        AttackClass::Flood,
        AttackClass::ForgeTags,
        AttackClass::BfPollution,
        AttackClass::ReplayExpired,
        AttackClass::Churn,
    ];
}

impl std::fmt::Display for AttackClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AttackClass::Flood => "flood",
            AttackClass::ForgeTags => "forge-tags",
            AttackClass::BfPollution => "bf-pollution",
            AttackClass::ReplayExpired => "replay-expired",
            AttackClass::Churn => "churn",
        })
    }
}

/// What the scenario's attacker fleet does.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttackPlan {
    /// The behaviour (`None` = the historical paper attacker mix).
    pub class: Option<AttackClass>,
    /// Adversarial Interests per second *per attacker* (`0` disables the
    /// plan even when a class is named, so intensity sweeps can include
    /// a genuine zero point).
    pub intensity: u32,
}

impl AttackPlan {
    /// No adversarial plan: attackers keep their historical behaviour.
    pub fn none() -> AttackPlan {
        AttackPlan::default()
    }

    /// Whether the plan drives the attacker fleet at all.
    pub fn active(&self) -> bool {
        self.class.is_some() && self.intensity > 0
    }

    /// One-token provenance summary for manifests (`off`,
    /// `flood@200`, ...).
    pub fn summary(&self) -> String {
        match self.class {
            Some(c) if self.intensity > 0 => format!("{c}@{}", self.intensity),
            _ => "off".to_string(),
        }
    }
}

/// A per-client token-bucket rate limit (GCRA, integer nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained packets per second each client sender may emit.
    pub per_sec: u32,
    /// Burst tolerance in packets above the sustained rate.
    pub burst: u32,
}

impl RateLimit {
    /// The emission interval in nanoseconds.
    fn period_ns(&self) -> u64 {
        1_000_000_000 / u64::from(self.per_sec.max(1))
    }
}

/// The edge's defensive posture. Every knob defaults to off; a config
/// with all knobs off is guaranteed zero-cost (no state allocated, no
/// checks executed, golden snapshots unchanged).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefenseConfig {
    /// Per-client token-bucket rate limiting at the edge radio.
    pub rate_limit: Option<RateLimit>,
    /// Per-face fairness cap: Interests per second one access point may
    /// push into its edge router.
    pub face_cap: Option<u32>,
    /// Bound every router's PIT at this many pending names, evicting
    /// oldest-first ([`DropReason::PitFull`]).
    pub pit_capacity: Option<usize>,
}

impl DefenseConfig {
    /// All defenses off (the historical behaviour).
    pub fn none() -> DefenseConfig {
        DefenseConfig::default()
    }

    /// Whether any knob is armed.
    pub fn active(&self) -> bool {
        self.rate_limit.is_some() || self.face_cap.is_some() || self.pit_capacity.is_some()
    }

    /// One-token provenance summary for manifests (`off` or `on`).
    pub fn summary(&self) -> &'static str {
        if self.active() {
            "on"
        } else {
            "off"
        }
    }
}

/// Attacker mobility churn, scheduled by the transport alongside the
/// regular mobility model: every listed node re-attaches to a uniformly
/// random other AP with exponential dwell times drawn from its own
/// per-node stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnConfig {
    /// The churning nodes, sorted by id (binary-searched per Move).
    pub nodes: Vec<NodeId>,
    /// Mean dwell between re-attachments.
    pub mean_dwell: SimDuration,
}

/// The transport-enforced edge defenses with their runtime state.
///
/// Built by a plane from its [`DefenseConfig`] and topology roles: the
/// transport is role-blind, so the plane hands it sorted membership
/// lists instead. Checks run at *send* time in the transmitting shard
/// (see the module docs); a `None`-everything config never constructs
/// this at all.
#[derive(Debug, Clone)]
pub struct EdgeDefense {
    rate_limit: Option<RateLimit>,
    face_cap: Option<u32>,
    /// Token-bucket subjects (clients + attackers), sorted.
    client_senders: Vec<NodeId>,
    /// Fairness-cap subjects (access points), sorted.
    ap_senders: Vec<NodeId>,
    /// Fairness-cap beneficiaries (edge routers), sorted: the cap
    /// applies only on AP → edge-router links, never to the Data an AP
    /// relays back down to a client.
    edge_receivers: Vec<NodeId>,
    /// GCRA theoretical-arrival-time per client sender (parallel to
    /// `client_senders`), in nanoseconds.
    tat_ns: Vec<u64>,
    /// Per AP → edge link (parallel to `ap_senders`): the current
    /// one-second window index and the packets admitted in it. One slot
    /// per AP suffices because each AP feeds exactly one edge router
    /// face at a time.
    face_windows: Vec<(u64, u32)>,
}

impl EdgeDefense {
    /// Assembles the defense state. Membership lists are sorted
    /// internally; pass each node at most once per list.
    pub fn new(
        rate_limit: Option<RateLimit>,
        face_cap: Option<u32>,
        mut client_senders: Vec<NodeId>,
        mut ap_senders: Vec<NodeId>,
        mut edge_receivers: Vec<NodeId>,
    ) -> EdgeDefense {
        client_senders.sort_unstable();
        ap_senders.sort_unstable();
        edge_receivers.sort_unstable();
        let tat_ns = vec![
            0;
            if rate_limit.is_some() {
                client_senders.len()
            } else {
                0
            }
        ];
        let face_windows = vec![
            (0, 0);
            if face_cap.is_some() {
                ap_senders.len()
            } else {
                0
            }
        ];
        EdgeDefense {
            rate_limit,
            face_cap,
            client_senders,
            ap_senders,
            edge_receivers,
            tat_ns,
            face_windows,
        }
    }

    /// Admission control for a `from → to` transmission at `now`:
    /// `None` admits the packet, `Some(reason)` tells the transport to
    /// drop and label it. Mutates only state belonging to `from`.
    pub fn admit(&mut self, from: NodeId, to: NodeId, now: SimTime) -> Option<DropReason> {
        if let Some(rl) = self.rate_limit {
            if let Ok(i) = self.client_senders.binary_search(&from) {
                let now_ns = now.as_nanos();
                let period = rl.period_ns();
                let tat = self.tat_ns[i];
                if tat > now_ns + u64::from(rl.burst) * period {
                    return Some(DropReason::RateLimited);
                }
                self.tat_ns[i] = tat.max(now_ns) + period;
            }
        }
        if let Some(cap) = self.face_cap {
            if let Ok(i) = self.ap_senders.binary_search(&from) {
                if self.edge_receivers.binary_search(&to).is_ok() {
                    let window = now.as_nanos() / 1_000_000_000;
                    let slot = &mut self.face_windows[i];
                    if slot.0 != window {
                        *slot = (window, 0);
                    }
                    if slot.1 >= cap {
                        return Some(DropReason::FaceCapped);
                    }
                    slot.1 += 1;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn t_ms(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn plan_activity_and_summaries() {
        assert!(!AttackPlan::none().active());
        assert_eq!(AttackPlan::none().summary(), "off");
        let zero = AttackPlan {
            class: Some(AttackClass::Flood),
            intensity: 0,
        };
        assert!(!zero.active(), "zero intensity must be inert");
        assert_eq!(zero.summary(), "off");
        let hot = AttackPlan {
            class: Some(AttackClass::ForgeTags),
            intensity: 200,
        };
        assert!(hot.active());
        assert_eq!(hot.summary(), "forge-tags@200");
        assert_eq!(AttackClass::ALL.len(), 5);
        assert!(!DefenseConfig::none().active());
        assert_eq!(DefenseConfig::none().summary(), "off");
        let d = DefenseConfig {
            pit_capacity: Some(512),
            ..DefenseConfig::none()
        };
        assert!(d.active());
        assert_eq!(d.summary(), "on");
    }

    #[test]
    fn token_bucket_admits_burst_then_throttles_to_rate() {
        let rl = RateLimit {
            per_sec: 10,
            burst: 3,
        };
        let mut d = EdgeDefense::new(Some(rl), None, vec![n(5)], vec![], vec![]);
        // Back-to-back at t=0: the burst tolerance admits a clump, then
        // the bucket closes.
        let mut admitted = 0;
        for _ in 0..10 {
            if d.admit(n(5), n(1), SimTime::ZERO).is_none() {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 4, "burst tolerance plus the sustained slot");
        assert_eq!(
            d.admit(n(5), n(1), SimTime::ZERO),
            Some(DropReason::RateLimited)
        );
        // At the sustained rate (one per 100 ms) everything conforms.
        for i in 1..=20u64 {
            assert_eq!(d.admit(n(5), n(1), t_ms(400 + i * 100)), None);
        }
        // Non-members are never touched.
        for _ in 0..100 {
            assert_eq!(d.admit(n(9), n(1), SimTime::ZERO), None);
        }
    }

    #[test]
    fn face_cap_windows_reset_each_second() {
        let mut d = EdgeDefense::new(None, Some(2), vec![], vec![n(3)], vec![n(7)]);
        assert_eq!(d.admit(n(3), n(7), t_ms(10)), None);
        assert_eq!(d.admit(n(3), n(7), t_ms(20)), None);
        assert_eq!(d.admit(n(3), n(7), t_ms(30)), Some(DropReason::FaceCapped));
        // Next second: fresh window.
        assert_eq!(d.admit(n(3), n(7), t_ms(1_010)), None);
        // AP → client (not an edge receiver) is never capped: Data going
        // back down must not be throttled.
        for _ in 0..10 {
            assert_eq!(d.admit(n(3), n(40), t_ms(1_020)), None);
        }
    }

    #[test]
    fn defense_replicas_agree_byte_for_byte() {
        // Two replicas fed the same admission sequence stay identical —
        // the property the sharded transport relies on (state is only
        // touched by the owning sender's shard).
        let build = || {
            EdgeDefense::new(
                Some(RateLimit {
                    per_sec: 5,
                    burst: 2,
                }),
                Some(3),
                vec![n(1), n(2)],
                vec![n(10)],
                vec![n(20)],
            )
        };
        let mut a = build();
        let mut b = build();
        for step in 0..200u64 {
            let from = if step % 3 == 0 { n(1) } else { n(2) };
            assert_eq!(
                a.admit(from, n(10), t_ms(step * 7)),
                b.admit(from, n(10), t_ms(step * 7))
            );
            assert_eq!(
                a.admit(n(10), n(20), t_ms(step * 7)),
                b.admit(n(10), n(20), t_ms(step * 7))
            );
        }
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
