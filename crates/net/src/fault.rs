//! Deterministic fault injection: lossy links, burst loss, and scheduled
//! link/node failures.
//!
//! A [`FaultPlan`] describes everything that can go wrong during a run:
//! a per-link [`LossModel`] (independent Bernoulli or two-state
//! Gilbert–Elliott burst loss) plus a schedule of timed [`FaultEvent`]s
//! (link-down/link-up, node-crash/node-recover). The transport threads the
//! plan through `FaultState`, which owns a **dedicated forked RNG
//! stream** — loss draws never touch the main simulation stream, so a plan
//! whose loss model cannot drop anything reproduces a fault-free run
//! byte-identically, and any plan is byte-identical across `--threads`
//! values.
//!
//! [`RetransmitPolicy`] lives here too: it is the consumer-side half of
//! resilience (capped retries with binary exponential backoff), shared by
//! the TACTIC consumer and the baseline window requester.

use std::collections::{HashMap, HashSet};

use tactic_sim::rng::Rng;
use tactic_sim::time::{SimDuration, SimTime};
use tactic_topology::graph::NodeId;

/// Per-transmission packet-loss model applied to every link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Lossless links (the default; reproduces fault-free runs exactly).
    None,
    /// Independent Bernoulli loss: each transmission is dropped with
    /// probability `p`.
    Uniform {
        /// Per-transmission drop probability in `[0, 1]`. Values ≤ 0 make
        /// no RNG draw at all.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst loss. Each *directed* link carries
    /// its own good/bad state; per transmission the current state's loss
    /// probability is drawn first, then the state transitions.
    GilbertElliott {
        /// Probability of moving good → bad after a transmission.
        p_good_to_bad: f64,
        /// Probability of moving bad → good after a transmission.
        p_bad_to_good: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// True if this model can never drop a packet (loss probabilities all
    /// ≤ 0), regardless of state transitions.
    pub fn is_lossless(&self) -> bool {
        match *self {
            LossModel::None => true,
            LossModel::Uniform { p } => p <= 0.0,
            LossModel::GilbertElliott {
                loss_good,
                loss_bad,
                ..
            } => loss_good <= 0.0 && loss_bad <= 0.0,
        }
    }
}

/// One scheduled failure or recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Both directions of the `a`–`b` link stop carrying packets.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The `a`–`b` link comes back up.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// `node` crashes: it stops servicing events and every packet
    /// addressed to it is dropped.
    NodeDown {
        /// The crashing node.
        node: NodeId,
    },
    /// `node` recovers and resumes servicing events (its tables survive
    /// the crash; consumers do not restart in-flight windows).
    NodeUp {
        /// The recovering node.
        node: NodeId,
    },
}

/// A [`FaultKind`] stamped with the simulation time it takes effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete fault-injection plan for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Loss model applied to every transmission on every live link.
    pub loss: LossModel,
    /// Timed link/node failures and recoveries. Same-time events apply in
    /// vector order.
    pub schedule: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: lossless links, no scheduled failures.
    pub fn none() -> Self {
        FaultPlan {
            loss: LossModel::None,
            schedule: Vec::new(),
        }
    }

    /// True if this plan is exactly the empty plan.
    pub fn is_none(&self) -> bool {
        self.loss == LossModel::None && self.schedule.is_empty()
    }

    /// Uniform Bernoulli loss with no scheduled failures.
    pub fn uniform_loss(p: f64) -> Self {
        FaultPlan {
            loss: LossModel::Uniform { p },
            schedule: Vec::new(),
        }
    }

    /// Compact human-readable form for scenario summaries and manifests.
    pub fn summary(&self) -> String {
        let loss = match self.loss {
            LossModel::None => "none".to_string(),
            LossModel::Uniform { p } => format!("uniform({p})"),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => format!("ge({p_good_to_bad},{p_bad_to_good},{loss_good},{loss_bad})"),
        };
        format!("loss={loss} sched={}", self.schedule.len())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Consumer-side Interest retransmission: capped retries with binary
/// exponential backoff.
///
/// Attempt `k` (0-based; attempt 0 is the original Interest) waits
/// `base << min(k, max_backoff_shift)` before timing out. After
/// `max_retries` retransmissions the chunk is abandoned and counted as
/// given up. This deliberately deviates from the paper's no-retry
/// clients and is therefore off (`None`) everywhere by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitPolicy {
    /// Retransmissions allowed per chunk after the original send.
    pub max_retries: u32,
    /// Backoff exponent cap: the timeout multiplier saturates at
    /// `1 << max_backoff_shift`.
    pub max_backoff_shift: u32,
}

impl RetransmitPolicy {
    /// Timeout for attempt number `attempt` (0 = original transmission):
    /// `base` scaled by the capped power-of-two backoff multiplier.
    pub fn timeout_for(&self, base: SimDuration, attempt: u32) -> SimDuration {
        base * (1u64 << attempt.min(self.max_backoff_shift))
    }
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            max_retries: 3,
            max_backoff_shift: 4,
        }
    }
}

/// Live fault state threaded through the transport: which nodes/links are
/// currently down, per-directed-link Gilbert–Elliott states, and the
/// dedicated loss RNG streams.
///
/// Loss draws are made from a **per-directed-link** stream, forked lazily
/// off the pristine base stream the first time that link draws. The fork
/// is a pure function of the base state and the `(from, to)` pair, so the
/// sequence a given link sees is independent of every other link — which
/// is exactly what sharded execution needs: transmissions on `from → to`
/// only ever happen in the shard that owns `from`, so each shard's
/// replica of the link stream advances identically to the sequential run
/// no matter how cross-shard event processing interleaves.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Pristine base stream; never drawn from directly, only forked.
    base_rng: Rng,
    link_rngs: HashMap<(u32, u32), Rng>,
    node_down: Vec<bool>,
    link_down: HashSet<(u32, u32)>,
    ge_bad: HashMap<(u32, u32), bool>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, rng: Rng, node_count: usize) -> Self {
        FaultState {
            plan,
            base_rng: rng,
            link_rngs: HashMap::new(),
            node_down: vec![false; node_count],
            link_down: HashSet::new(),
            ge_bad: HashMap::new(),
        }
    }

    fn key(a: NodeId, b: NodeId) -> (u32, u32) {
        (a.0.min(b.0), a.0.max(b.0))
    }

    pub(crate) fn node_is_down(&self, node: NodeId) -> bool {
        self.node_down.get(node.index()).copied().unwrap_or(false)
    }

    pub(crate) fn link_is_down(&self, a: NodeId, b: NodeId) -> bool {
        !self.link_down.is_empty() && self.link_down.contains(&Self::key(a, b))
    }

    /// Draws the loss model for one transmission `from → to` from that
    /// directed link's own stream. Only called for live links; makes no
    /// RNG draw (and forks no stream) when the model cannot lose.
    pub(crate) fn loses(&mut self, from: NodeId, to: NodeId) -> bool {
        match self.plan.loss {
            LossModel::None => false,
            LossModel::Uniform { p } => {
                if p <= 0.0 {
                    return false;
                }
                let base = &self.base_rng;
                self.link_rngs
                    .entry((from.0, to.0))
                    .or_insert_with(|| base.fork(((from.0 as u64) << 32) | to.0 as u64))
                    .chance(p)
            }
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                let key = (from.0, to.0);
                let base = &self.base_rng;
                let rng = self
                    .link_rngs
                    .entry(key)
                    .or_insert_with(|| base.fork(((from.0 as u64) << 32) | to.0 as u64));
                let bad = self.ge_bad.entry(key).or_insert(false);
                let lost = if *bad {
                    rng.chance(loss_bad)
                } else {
                    rng.chance(loss_good)
                };
                if *bad {
                    if rng.chance(p_bad_to_good) {
                        *bad = false;
                    }
                } else if rng.chance(p_good_to_bad) {
                    *bad = true;
                }
                lost
            }
        }
    }

    /// Applies scheduled event `index` and returns its kind (every kind
    /// changes the usable subgraph, so the caller recomputes routes).
    pub(crate) fn apply(&mut self, index: usize) -> FaultKind {
        let kind = self.plan.schedule[index].kind;
        match kind {
            FaultKind::LinkDown { a, b } => {
                self.link_down.insert(Self::key(a, b));
            }
            FaultKind::LinkUp { a, b } => {
                self.link_down.remove(&Self::key(a, b));
            }
            FaultKind::NodeDown { node } => {
                if let Some(slot) = self.node_down.get_mut(node.index()) {
                    *slot = true;
                }
            }
            FaultKind::NodeUp { node } => {
                if let Some(slot) = self.node_down.get_mut(node.index()) {
                    *slot = false;
                }
            }
        }
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn empty_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
        assert!(!FaultPlan::uniform_loss(0.1).is_none());
    }

    #[test]
    fn lossless_detection() {
        assert!(LossModel::None.is_lossless());
        assert!(LossModel::Uniform { p: 0.0 }.is_lossless());
        assert!(!LossModel::Uniform { p: 0.5 }.is_lossless());
        assert!(LossModel::GilbertElliott {
            p_good_to_bad: 0.3,
            p_bad_to_good: 0.2,
            loss_good: 0.0,
            loss_bad: 0.0,
        }
        .is_lossless());
    }

    #[test]
    fn uniform_loss_is_deterministic_per_stream() {
        let mut a = FaultState::new(FaultPlan::uniform_loss(0.5), Rng::seed_from_u64(7), 4);
        let mut b = FaultState::new(FaultPlan::uniform_loss(0.5), Rng::seed_from_u64(7), 4);
        for _ in 0..256 {
            assert_eq!(a.loses(n(0), n(1)), b.loses(n(0), n(1)));
        }
    }

    #[test]
    fn zero_loss_never_draws_from_the_stream() {
        let rng = Rng::seed_from_u64(9);
        let mut st = FaultState::new(FaultPlan::uniform_loss(0.0), rng.fork(0), 4);
        for _ in 0..64 {
            assert!(!st.loses(n(0), n(1)));
        }
        // The stream is untouched: a fresh fork draws the same first value.
        assert_eq!(rng.fork(0).next_u64(), rng.fork(0).next_u64());
    }

    #[test]
    fn per_link_streams_are_interleaving_independent() {
        // The draws one directed link sees must not depend on how draws
        // on other links interleave with them — the property sharded
        // execution relies on.
        let plan = FaultPlan::uniform_loss(0.5);
        let mut interleaved = FaultState::new(plan.clone(), Rng::seed_from_u64(7), 4);
        let mut alone = FaultState::new(plan, Rng::seed_from_u64(7), 4);
        let mut seq_interleaved = Vec::new();
        for _ in 0..128 {
            seq_interleaved.push(interleaved.loses(n(0), n(1)));
            interleaved.loses(n(1), n(0));
            interleaved.loses(n(2), n(3));
        }
        let seq_alone: Vec<bool> = (0..128).map(|_| alone.loses(n(0), n(1))).collect();
        assert_eq!(seq_interleaved, seq_alone);
    }

    #[test]
    fn gilbert_elliott_bad_state_loses_more() {
        let plan = FaultPlan {
            loss: LossModel::GilbertElliott {
                p_good_to_bad: 0.2,
                p_bad_to_good: 0.2,
                loss_good: 0.0,
                loss_bad: 1.0,
            },
            schedule: Vec::new(),
        };
        let mut st = FaultState::new(plan, Rng::seed_from_u64(3), 2);
        let mut losses = 0u32;
        for _ in 0..1000 {
            if st.loses(n(0), n(1)) {
                losses += 1;
            }
        }
        // Stationary bad-state share is 0.5, so losses land near 500;
        // loss_good = 0 means every loss is a burst loss.
        assert!(losses > 300 && losses < 700, "losses = {losses}");
    }

    #[test]
    fn schedule_application_toggles_links_and_nodes() {
        let plan = FaultPlan {
            loss: LossModel::None,
            schedule: vec![
                FaultEvent {
                    at: SimTime::ZERO,
                    kind: FaultKind::LinkDown { a: n(1), b: n(0) },
                },
                FaultEvent {
                    at: SimTime::ZERO,
                    kind: FaultKind::NodeDown { node: n(2) },
                },
                FaultEvent {
                    at: SimTime::ZERO,
                    kind: FaultKind::LinkUp { a: n(0), b: n(1) },
                },
                FaultEvent {
                    at: SimTime::ZERO,
                    kind: FaultKind::NodeUp { node: n(2) },
                },
            ],
        };
        let mut st = FaultState::new(plan, Rng::seed_from_u64(1), 4);
        st.apply(0);
        st.apply(1);
        // Link-down is symmetric regardless of endpoint order.
        assert!(st.link_is_down(n(0), n(1)));
        assert!(st.link_is_down(n(1), n(0)));
        assert!(st.node_is_down(n(2)));
        assert!(!st.node_is_down(n(3)));
        st.apply(2);
        st.apply(3);
        assert!(!st.link_is_down(n(0), n(1)));
        assert!(!st.node_is_down(n(2)));
    }

    #[test]
    fn retransmit_backoff_caps() {
        let p = RetransmitPolicy {
            max_retries: 3,
            max_backoff_shift: 2,
        };
        let base = SimDuration::from_millis(100);
        assert_eq!(p.timeout_for(base, 0), base);
        assert_eq!(p.timeout_for(base, 1), base * 2);
        assert_eq!(p.timeout_for(base, 2), base * 4);
        assert_eq!(p.timeout_for(base, 3), base * 4, "shift saturates");
        assert_eq!(p.timeout_for(base, 30), base * 4);
    }

    #[test]
    fn summaries_are_compact() {
        assert_eq!(FaultPlan::none().summary(), "loss=none sched=0");
        assert_eq!(
            FaultPlan::uniform_loss(0.05).summary(),
            "loss=uniform(0.05) sched=0"
        );
    }
}
