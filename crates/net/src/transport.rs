//! The shared event loop: engine-driven dispatch, FIFO link serialisation
//! + propagation, and the mobility/handover model.
//!
//! [`Net`] owns everything mechanism-independent about a run — the
//! [`Engine`], the mutable face tables, per-directed-link busy times, the
//! per-node RNG streams, and the cost model — and drives a [`NodePlane`]
//! through it.
//!
//! # Shard-invariant determinism
//!
//! Every scheduled event carries an explicit **key** instead of a global
//! sequence number: `(source node) << 40 | per-source counter` (with two
//! reserved source ids for the purge sweep and the fault schedule). A
//! node's counter advances only when *its own* events schedule work, so
//! the key assigned to an event is independent of how other nodes'
//! events interleave — the property that lets K shards, each processing
//! only the events homed at its own nodes, reproduce the exact
//! `(time, key)` total order of the sequential run. For the same reason
//! all RNG draws are per-node streams (forked, never shared), loss draws
//! are per-directed-link (see `FaultState` in the fault module), and a
//! packet's arrival face is resolved at *delivery* time from the
//! receiver's own face
//! table rather than at send time from the sender's view of it.
//!
//! In sharded mode ([`Net::assemble_sharded`]) a shard schedules events
//! homed at foreign nodes into per-destination-shard **outboxes** instead
//! of its own calendar; the coordinator drains them at epoch barriers
//! ([`Net::run_epoch`] / [`Net::take_outboxes`] / [`Net::inject`]).
//! Purge and fault events are mirrored in every shard (same keys), so
//! replicated state they touch stays bit-identical everywhere.

use tactic_ndn::face::FaceId;
use tactic_ndn::name::Name;
use tactic_ndn::packet::Packet;
use tactic_ndn::wire::wire_size;
use tactic_sim::cost::CostModel;
use tactic_sim::dist::Exponential;
use tactic_sim::engine::Engine;
use tactic_sim::rng::Rng;
use tactic_sim::time::{SimDuration, SimTime};
use tactic_telemetry::{SampleRow, SpanProfiler};
use tactic_topology::graph::{LinkSpec, NodeId};
use tactic_topology::roles::Topology;

use crate::attack::{ChurnConfig, EdgeDefense};
use crate::fault::{FaultPlan, FaultState};
use crate::links::{fib_routes_filtered, Links};
use crate::mobility::MobilityConfig;
use crate::observer::{DropReason, DropTotals, NetObserver, NoopObserver};
use crate::plane::{Emit, NodePlane, PlaneCtx};

/// RNG stream id for the fault layer's dedicated loss stream: forked off
/// the run RNG before any other use, so loss draws never perturb the
/// simulation's own streams.
const FAULT_STREAM: u64 = 0xFA17_0001;

/// Base stream id for per-node RNG streams (`NODE_STREAM ^ node index`).
const NODE_STREAM: u64 = 0x4E0D_0000_0000_0000;

/// Event keys pack `source << KEY_SHIFT | counter`.
const KEY_SHIFT: u32 = 40;

/// Reserved key source for the periodic purge sweep (mirrored in every
/// shard with identical keys).
const PURGE_SRC: u64 = 0xFF_FFFF;

/// Reserved key source for scheduled fault events (mirrored in every
/// shard; the counter is the schedule index, so keys are static).
const FAULT_SRC: u64 = 0xFF_FFFE;

/// Reserved key source for the periodic sampler tick (mirrored in every
/// shard with identical keys, like purges). Numerically below `FAULT_SRC`
/// and `PURGE_SRC` but above every node id, so at equal timestamps the
/// deterministic order is: node events, then the sample, then faults,
/// then the purge — identically in the sequential engine and every shard.
const SAMPLE_SRC: u64 = 0xFF_FFFD;

/// An event with its absolute time and shard-invariant key, as exchanged
/// through cross-shard mailboxes.
pub type KeyedEvent = (SimTime, u64, NetEvent);

/// Events flowing through the shared engine.
#[derive(Debug)]
pub enum NetEvent {
    /// A packet finishes arriving at `node` from neighbour `from`. The
    /// arrival *face* is resolved from the receiver's face table when the
    /// event is handled — the receiver's shard owns that table.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Transmitting neighbour.
        from: NodeId,
        /// The packet.
        packet: Packet,
    },
    /// A consumer begins its request loop.
    ConsumerStart {
        /// The consumer node.
        node: NodeId,
    },
    /// A consumer's outstanding request may have expired.
    Timeout {
        /// The requesting node.
        node: NodeId,
        /// The request name.
        name: Name,
        /// When the request was sent.
        sent: SimTime,
    },
    /// Periodic PIT / relay-state expiry sweep.
    Purge,
    /// A mobile client hands over to a new access point.
    Move {
        /// The mobile node.
        node: NodeId,
    },
    /// A handover's attach signal reaches the new access point: the AP
    /// wires a face back toward the client. Scheduled one radio
    /// propagation delay after the handover, so it crosses shard
    /// boundaries like any other packet.
    Attach {
        /// The access point gaining the face.
        ap: NodeId,
        /// The client that moved in.
        client: NodeId,
        /// The radio link spec.
        spec: LinkSpec,
    },
    /// A scheduled fault takes effect.
    Fault {
        /// Index into the [`FaultPlan`]'s schedule.
        index: usize,
    },
    /// The periodic in-flight sampler snapshots transport and plane
    /// gauges into a [`SampleRow`] (only scheduled when
    /// [`NetConfig::sample_every`] is set — a disabled sampler costs
    /// nothing).
    SampleTick,
}

impl NetEvent {
    /// The node whose shard must process this event (`None` for events
    /// mirrored in every shard).
    pub fn home(&self) -> Option<NodeId> {
        match *self {
            NetEvent::Deliver { node, .. }
            | NetEvent::ConsumerStart { node }
            | NetEvent::Timeout { node, .. }
            | NetEvent::Move { node } => Some(node),
            NetEvent::Attach { ap, .. } => Some(ap),
            NetEvent::Purge | NetEvent::Fault { .. } | NetEvent::SampleTick => None,
        }
    }
}

/// Transport-level configuration distilled from a plane's scenario.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Simulated duration (the engine horizon).
    pub duration: SimDuration,
    /// Client mobility (`None` = static evaluation).
    pub mobility: Option<MobilityConfig>,
    /// Computation-cost injection model handed to plane callbacks.
    pub cost: CostModel,
    /// Fault-injection plan ([`FaultPlan::none()`] = fault-free run).
    pub faults: FaultPlan,
    /// Sim-time sampling cadence (`None` = sampler disabled, the
    /// zero-cost default). When set, a mirrored [`NetEvent::SampleTick`]
    /// fires every interval and appends one [`SampleRow`].
    pub sample_every: Option<SimDuration>,
    /// Enables the wall-clock span profiler (nondeterministic,
    /// non-golden; off by default and zero-cost when off).
    pub profile: bool,
    /// Edge defenses (token-bucket rate limit, per-face fairness cap)
    /// the transport enforces at send time. `None` — the default — runs
    /// zero checks and allocates nothing.
    pub defense: Option<EdgeDefense>,
    /// Attacker mobility churn: listed nodes re-attach with their own
    /// aggressive dwell, alongside (and independent of) client mobility.
    pub churn: Option<ChurnConfig>,
}

/// What the transport itself measured in one run (or one shard of one).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportReport {
    /// Engine events processed (all kinds).
    pub events: u64,
    /// `Deliver` events handled (each seen by the plane and the observer
    /// exactly once).
    pub deliveries: u64,
    /// Handovers performed by mobile clients.
    pub moves: u64,
    /// Purge sweeps processed. In a sharded run every shard processes
    /// every sweep, so the merged event total subtracts the duplicates.
    pub purges: u64,
    /// Scheduled fault events applied (mirrored per shard, like purges).
    pub faults_applied: u64,
    /// Sampler ticks processed (mirrored per shard, like purges).
    pub samples_taken: u64,
    /// High-water mark of the engine's pending-event queue.
    pub peak_queue_depth: u64,
    /// Per-reason drop totals counted by the transport itself.
    pub drops: DropTotals,
    /// The sampler's time series (empty when disabled). Deterministic
    /// and golden: a K-sharded merge is byte-identical to sequential.
    pub samples: Vec<SampleRow>,
    /// The wall-clock span profiler, when enabled (nondeterministic,
    /// excluded from every byte-identity comparison — populated runs
    /// must never be compared with `==`).
    pub profile: Option<Box<SpanProfiler>>,
}

impl TransportReport {
    /// Folds per-shard reports into the sequential-equivalent totals:
    /// purge sweeps and fault applications are mirrored in every shard,
    /// so the event total subtracts the `K - 1` duplicate copies;
    /// everything else happens in exactly one shard and sums; the queue
    /// peak is a per-engine quantity, so the merged value is the max.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn merge_shards(shards: &[TransportReport]) -> TransportReport {
        let k = shards.len() as u64;
        let purges = shards[0].purges;
        let faults_applied = shards[0].faults_applied;
        let samples_taken = shards[0].samples_taken;
        debug_assert!(
            shards.iter().all(|t| t.purges == purges
                && t.faults_applied == faults_applied
                && t.samples_taken == samples_taken),
            "mirrored event counts must agree across shards"
        );
        let mut drops = DropTotals::default();
        for t in shards {
            drops.merge(&t.drops);
        }
        let samples = tactic_telemetry::merge_timeseries(
            &shards.iter().map(|t| t.samples.clone()).collect::<Vec<_>>(),
        );
        let mut profile: Option<Box<SpanProfiler>> = None;
        for t in shards {
            if let Some(p) = &t.profile {
                profile.get_or_insert_with(Default::default).merge(p);
            }
        }
        TransportReport {
            events: shards.iter().map(|t| t.events).sum::<u64>()
                - (k - 1) * (purges + faults_applied + samples_taken),
            deliveries: shards.iter().map(|t| t.deliveries).sum(),
            moves: shards.iter().map(|t| t.moves).sum(),
            purges,
            faults_applied,
            samples_taken,
            peak_queue_depth: shards.iter().map(|t| t.peak_queue_depth).max().unwrap_or(0),
            drops,
            samples,
            profile,
        }
    }
}

/// How one [`Net`] instance participates in a sharded run: which shard it
/// is, and which shard owns every node.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Total number of shards.
    pub k: usize,
    /// This instance's shard id.
    pub my_shard: u32,
    /// Per node (by index): the owning shard.
    pub shard_of: Vec<u32>,
}

/// The assembled simulation: shared transport state driving a plane.
pub struct Net<P, O = NoopObserver> {
    engine: Engine<NetEvent>,
    links: Links,
    /// Per directed link: when the transmitter is free again. Flat
    /// storage: indexed by source node, sorted by destination node id —
    /// keyed by node pair (not face) because a handover re-points face 0
    /// at a new AP while the old link's busy horizon must stay with the
    /// old destination.
    link_busy: Vec<Vec<(NodeId, SimTime)>>,
    /// Per-node RNG streams: every draw a node's events make comes from
    /// its own stream, so draw sequences are interleaving-independent.
    rngs: Vec<Rng>,
    /// Per-node event-key counters (see module docs).
    key_seq: Vec<u64>,
    purge_seq: u64,
    cost: CostModel,
    access_points: Vec<NodeId>,
    mobility: Option<MobilityConfig>,
    moves: u64,
    deliveries: u64,
    purges: u64,
    faults_applied: u64,
    /// Packets accepted onto a link (counted after the send-side drop
    /// checks, so `sent - delivered - delivery-side drops` is the
    /// in-flight population the sampler reports).
    sent: u64,
    /// Sampler cadence (copied from [`NetConfig::sample_every`]).
    sample_every: Option<SimDuration>,
    sample_seq: u64,
    samples: Vec<SampleRow>,
    /// Length of the fault schedule: together with `faults_applied` it
    /// tells the sampler how many mirrored fault events are still
    /// pending, which non-zero shards subtract from their queue-depth
    /// contribution (see [`Net::take_sample`]).
    fault_sched_len: usize,
    /// The wall-clock span profiler (`None` unless
    /// [`NetConfig::profile`] — the disabled path costs one branch).
    profiler: Option<Box<SpanProfiler>>,
    faults: FaultState,
    /// Retained topology for route recomputation at failure instants
    /// (only kept when the plan schedules topology changes).
    fault_topo: Option<Topology>,
    drops: DropTotals,
    /// Edge defenses with their runtime state (`None` = no checks).
    defense: Option<EdgeDefense>,
    /// Churn schedule for adversarial mobility (`None` = none).
    churn: Option<ChurnConfig>,
    shard: Option<ShardSpec>,
    /// Per destination shard: events homed at foreign nodes, awaiting the
    /// epoch barrier. Always empty in sequential mode.
    outboxes: Vec<Vec<KeyedEvent>>,
    plane: P,
    observer: O,
    scratch: Vec<Emit>,
}

impl<P, O> std::fmt::Debug for Net<P, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Net")
            .field("nodes", &self.links.neighbors.len())
            .field("now", &self.engine.now())
            .field("horizon", &self.engine.horizon())
            .finish()
    }
}

impl<P: NodePlane> Net<P, NoopObserver> {
    /// Assembles a run with the zero-cost no-op observer.
    pub fn assemble(topo: &Topology, links: Links, plane: P, rng: Rng, config: NetConfig) -> Self {
        Self::assemble_observed(topo, links, plane, rng, config, NoopObserver)
    }
}

impl<P: NodePlane, O: NetObserver> Net<P, O> {
    /// Assembles a sequential run: schedules the consumer starts
    /// (staggered over the first second), the periodic purge sweep, and —
    /// when mobility is configured — the first handover of each mobile
    /// client.
    ///
    /// # Panics
    ///
    /// Panics if `config.mobility` has a `mobile_fraction` outside
    /// `[0, 1]`.
    pub fn assemble_observed(
        topo: &Topology,
        links: Links,
        plane: P,
        rng: Rng,
        config: NetConfig,
        observer: O,
    ) -> Self {
        Self::assemble_inner(topo, links, plane, rng, config, observer, None)
    }

    /// Assembles one shard of a sharded run: identical to
    /// [`Net::assemble_observed`] except that only events homed at this
    /// shard's own nodes enter the calendar (purge and fault events are
    /// mirrored everywhere), and events for foreign nodes route into
    /// outboxes instead of the local calendar.
    ///
    /// Every shard must be assembled from the same topology, plane state,
    /// and RNG — the per-node state a shard does not own stays pristine
    /// and is never read.
    ///
    /// # Panics
    ///
    /// Panics if `shard.shard_of` does not cover the topology, or on an
    /// out-of-range `mobile_fraction` (as in the sequential path).
    pub fn assemble_sharded(
        topo: &Topology,
        links: Links,
        plane: P,
        rng: Rng,
        config: NetConfig,
        observer: O,
        shard: ShardSpec,
    ) -> Self {
        assert_eq!(
            shard.shard_of.len(),
            topo.graph.node_count(),
            "shard map must cover the topology"
        );
        Self::assemble_inner(topo, links, plane, rng, config, observer, Some(shard))
    }

    fn assemble_inner(
        topo: &Topology,
        links: Links,
        plane: P,
        rng: Rng,
        config: NetConfig,
        observer: O,
        shard: Option<ShardSpec>,
    ) -> Self {
        // Forked before any other use (forking never consumes the
        // stream): the loss stream is a pure function of the run seed, so
        // fault draws cannot perturb the simulation's own draw sequence.
        let fault_rng = rng.fork(FAULT_STREAM);
        let n = topo.graph.node_count();
        let rngs: Vec<Rng> = (0..n).map(|i| rng.fork(NODE_STREAM ^ i as u64)).collect();

        let fault_topo = if config.faults.schedule.is_empty() {
            None
        } else {
            Some(topo.clone())
        };
        let fault_sched_len = config.faults.schedule.len();
        let faults = FaultState::new(config.faults.clone(), fault_rng, n);
        let k = shard.as_ref().map_or(1, |s| s.k);
        let cost = config.cost.clone();

        let mut net = Net {
            engine: Engine::with_horizon(SimTime::ZERO + config.duration),
            links,
            link_busy: vec![Vec::new(); n],
            rngs,
            key_seq: vec![0; n],
            purge_seq: 0,
            cost,
            access_points: topo.access_points.clone(),
            mobility: config.mobility,
            moves: 0,
            deliveries: 0,
            purges: 0,
            faults_applied: 0,
            sent: 0,
            sample_every: config.sample_every,
            sample_seq: 0,
            samples: Vec::new(),
            fault_sched_len,
            profiler: config.profile.then(Box::default),
            faults,
            fault_topo,
            drops: DropTotals::default(),
            defense: config.defense.clone(),
            churn: config.churn.clone(),
            shard,
            outboxes: (0..k).map(|_| Vec::new()).collect(),
            plane,
            observer,
            scratch: Vec::new(),
        };
        net.bootstrap(topo, &config);
        net
    }

    /// Schedules the initial event population. Keys and RNG draws are all
    /// per-source, so skipping foreign nodes in sharded mode cannot
    /// perturb what the owned nodes see.
    fn bootstrap(&mut self, topo: &Topology, config: &NetConfig) {
        for unode in topo.users() {
            if !self.owns(unode) {
                continue;
            }
            let offset = SimDuration::from_nanos(self.rngs[unode.index()].below(1_000_000_000));
            let key = self.next_key(unode);
            self.engine.schedule_keyed(
                SimTime::ZERO + offset,
                key,
                NetEvent::ConsumerStart { node: unode },
            );
        }
        let key = self.next_purge_key();
        self.engine
            .schedule_keyed(SimTime::from_secs(1), key, NetEvent::Purge);

        // Mirrored in every shard, like the purge: the first tick fires
        // one interval in (tick 0), and each tick reschedules the next.
        // A tick past the horizon stays queued and is never popped, so
        // the sampler terminates with the run.
        if let Some(every) = config.sample_every {
            assert!(
                every > SimDuration::from_nanos(0),
                "sample_every must be positive"
            );
            let key = self.next_sample_key();
            self.engine
                .schedule_keyed(SimTime::ZERO + every, key, NetEvent::SampleTick);
        }

        if let Some(m) = config.mobility {
            assert!(
                (0.0..=1.0).contains(&m.mobile_fraction),
                "mobile_fraction must be within [0, 1]"
            );
            let dwell = Exponential::from_mean(m.mean_dwell.as_secs_f64().max(1e-3));
            let mobile_count = (topo.clients.len() as f64 * m.mobile_fraction).round() as usize;
            for &c in topo.clients.iter().take(mobile_count) {
                if !self.owns(c) {
                    continue;
                }
                let at = SimTime::from_secs_f64(dwell.sample(&mut self.rngs[c.index()]));
                let key = self.next_key(c);
                self.engine
                    .schedule_keyed(at, key, NetEvent::Move { node: c });
            }
        }

        // Adversarial churn rides the same Move machinery as client
        // mobility, but with its own dwell and its own (attacker) nodes —
        // dwell draws come from each churning node's per-node stream, so
        // they stay within the owning shard like every other draw.
        if let Some(c) = &config.churn {
            let dwell = Exponential::from_mean(c.mean_dwell.as_secs_f64().max(1e-3));
            for &node in &c.nodes {
                if !self.owns(node) {
                    continue;
                }
                let at = SimTime::from_secs_f64(dwell.sample(&mut self.rngs[node.index()]));
                let key = self.next_key(node);
                self.engine.schedule_keyed(at, key, NetEvent::Move { node });
            }
        }

        for (index, event) in config.faults.schedule.iter().enumerate() {
            self.engine.schedule_keyed(
                event.at,
                (FAULT_SRC << KEY_SHIFT) | index as u64,
                NetEvent::Fault { index },
            );
        }
    }

    /// Runs to the horizon; returns the plane (for report aggregation),
    /// the observer, and the transport's own totals.
    pub fn run(mut self) -> (P, O, TransportReport) {
        if self.profiler.is_some() {
            loop {
                let started = std::time::Instant::now();
                let ev = self.engine.pop();
                let ns = started.elapsed().as_nanos() as u64;
                if let Some(p) = self.profiler.as_deref_mut() {
                    p.record_ns("calendar.pop", ns);
                }
                match ev {
                    Some(ev) => self.dispatch(ev),
                    None => break,
                }
            }
        } else {
            while let Some(ev) = self.engine.pop() {
                self.dispatch(ev);
            }
        }
        self.finish()
    }

    /// Processes every pending event strictly before `end` (and within
    /// the horizon) — one conservative epoch. Cross-shard output lands in
    /// the outboxes; the caller exchanges them before the next epoch.
    pub fn run_epoch(&mut self, end: SimTime) {
        if self.profiler.is_some() {
            loop {
                let started = std::time::Instant::now();
                let ev = self.engine.pop_before(end);
                let ns = started.elapsed().as_nanos() as u64;
                if let Some(p) = self.profiler.as_deref_mut() {
                    p.record_ns("calendar.pop", ns);
                }
                match ev {
                    Some(ev) => self.dispatch(ev),
                    None => break,
                }
            }
        } else {
            while let Some(ev) = self.engine.pop_before(end) {
                self.dispatch(ev);
            }
        }
    }

    /// The timestamp of the next pending event, if any (drives the
    /// coordinator's idle-jump past empty epochs).
    pub fn next_event_at(&mut self) -> Option<SimTime> {
        self.engine.next_at()
    }

    /// Takes the accumulated per-destination-shard outboxes, leaving
    /// empty ones in place.
    pub fn take_outboxes(&mut self) -> Vec<Vec<KeyedEvent>> {
        let k = self.outboxes.len();
        std::mem::replace(&mut self.outboxes, (0..k).map(|_| Vec::new()).collect())
    }

    /// Injects events received from other shards' outboxes into the local
    /// calendar. The `(time, key)` pairs already fix the total order, so
    /// injection order is irrelevant to determinism.
    pub fn inject(&mut self, batch: impl IntoIterator<Item = KeyedEvent>) {
        for (at, key, ev) in batch {
            self.engine.schedule_keyed(at, key, ev);
        }
    }

    /// The engine horizon (end of simulated time).
    pub fn horizon(&self) -> SimTime {
        self.engine.horizon()
    }

    /// Tears the run down into its results.
    pub fn finish(self) -> (P, O, TransportReport) {
        let report = TransportReport {
            events: self.engine.processed(),
            deliveries: self.deliveries,
            moves: self.moves,
            purges: self.purges,
            faults_applied: self.faults_applied,
            samples_taken: self.samples.len() as u64,
            peak_queue_depth: self.engine.peak_pending() as u64,
            drops: self.drops,
            samples: self.samples,
            profile: self.profiler,
        };
        (self.plane, self.observer, report)
    }

    /// The current face tables (mutated by handovers as the run proceeds).
    pub fn links(&self) -> &Links {
        &self.links
    }

    /// The plane, for inspection between assembly and `run`.
    pub fn plane(&self) -> &P {
        &self.plane
    }

    /// True when this instance processes events homed at `node`.
    fn owns(&self, node: NodeId) -> bool {
        match &self.shard {
            None => true,
            Some(s) => s.shard_of[node.index()] == s.my_shard,
        }
    }

    /// Allocates the next shard-invariant event key for `src`.
    fn next_key(&mut self, src: NodeId) -> u64 {
        let c = self.key_seq[src.index()];
        self.key_seq[src.index()] = c + 1;
        ((src.0 as u64) << KEY_SHIFT) | c
    }

    fn next_purge_key(&mut self) -> u64 {
        let c = self.purge_seq;
        self.purge_seq = c + 1;
        (PURGE_SRC << KEY_SHIFT) | c
    }

    fn next_sample_key(&mut self) -> u64 {
        let c = self.sample_seq;
        self.sample_seq = c + 1;
        (SAMPLE_SRC << KEY_SHIFT) | c
    }

    /// Schedules `ev` (homed at `dst`) locally, or into the outbox of the
    /// shard that owns `dst`.
    fn route_to(&mut self, dst: NodeId, at: SimTime, key: u64, ev: NetEvent) {
        match &self.shard {
            Some(s) if s.shard_of[dst.index()] != s.my_shard => {
                self.outboxes[s.shard_of[dst.index()] as usize].push((at, key, ev));
            }
            _ => self.engine.schedule_keyed(at, key, ev),
        }
    }

    /// Whether this instance reports mirrored fault events to its
    /// observer (sequential runs and shard 0 only, to avoid K-fold
    /// duplicates in merged observations).
    fn reports_faults(&self) -> bool {
        self.shard.as_ref().is_none_or(|s| s.my_shard == 0)
    }

    /// Dispatches one event, timing it under its class span when the
    /// profiler is on (one `is_none` branch when it is off).
    fn dispatch(&mut self, ev: NetEvent) {
        if self.profiler.is_none() {
            return self.dispatch_inner(ev);
        }
        let name = Self::span_name(&ev);
        let started = std::time::Instant::now();
        self.dispatch_inner(ev);
        let ns = started.elapsed().as_nanos() as u64;
        if let Some(p) = self.profiler.as_deref_mut() {
            p.record_ns(name, ns);
        }
    }

    /// The profiler span class of an event's dispatch.
    fn span_name(ev: &NetEvent) -> &'static str {
        match ev {
            NetEvent::Deliver { .. } => "dispatch.deliver",
            NetEvent::ConsumerStart { .. } => "dispatch.consumer_start",
            NetEvent::Timeout { .. } => "dispatch.timeout",
            NetEvent::Purge => "dispatch.purge",
            NetEvent::Move { .. } => "dispatch.move",
            NetEvent::Attach { .. } => "dispatch.attach",
            NetEvent::Fault { .. } => "dispatch.fault",
            NetEvent::SampleTick => "dispatch.sample",
        }
    }

    fn dispatch_inner(&mut self, ev: NetEvent) {
        let now = self.engine.now();
        match ev {
            NetEvent::Deliver { node, from, packet } => {
                if self.faults.node_is_down(node) {
                    // A crashed node services nothing: the packet dies at
                    // its door and is never seen by the plane.
                    self.drop_packet(node, DropReason::NodeDown, now);
                    return;
                }
                // Receiver-side face resolution: the face table consulted
                // here belongs to the shard that owns `node`, so a
                // cross-shard sender never needs the receiver's state. A
                // handover may have torn the mapping down while the
                // packet was in flight — the packet is lost with the
                // radio link.
                let Some(face) = self.links.face_toward(node, from) else {
                    self.drop_packet(node, DropReason::ReverseFaceGone, now);
                    return;
                };
                self.deliveries += 1;
                self.observer.on_deliver(node, face, &packet, now);
                let mut out = std::mem::take(&mut self.scratch);
                self.plane.on_packet(
                    node,
                    face,
                    packet,
                    &mut PlaneCtx {
                        now,
                        rng: &mut self.rngs[node.index()],
                        cost: &self.cost,
                        profiler: self.profiler.as_deref_mut(),
                        drops: &mut self.drops,
                    },
                    &mut out,
                );
                self.apply(node, now, out);
            }
            NetEvent::ConsumerStart { node } => {
                if self.faults.node_is_down(node) {
                    return;
                }
                let mut out = std::mem::take(&mut self.scratch);
                self.plane.on_start(
                    node,
                    &mut PlaneCtx {
                        now,
                        rng: &mut self.rngs[node.index()],
                        cost: &self.cost,
                        profiler: self.profiler.as_deref_mut(),
                        drops: &mut self.drops,
                    },
                    &mut out,
                );
                self.apply(node, now, out);
            }
            NetEvent::Timeout { node, name, sent } => {
                if self.faults.node_is_down(node) {
                    return;
                }
                let mut out = std::mem::take(&mut self.scratch);
                self.plane.on_timeout(
                    node,
                    name,
                    sent,
                    &mut PlaneCtx {
                        now,
                        rng: &mut self.rngs[node.index()],
                        cost: &self.cost,
                        profiler: self.profiler.as_deref_mut(),
                        drops: &mut self.drops,
                    },
                    &mut out,
                );
                self.apply(node, now, out);
            }
            NetEvent::Purge => {
                self.plane.on_purge(now);
                self.purges += 1;
                let key = self.next_purge_key();
                self.engine
                    .schedule_keyed(now + SimDuration::from_secs(1), key, NetEvent::Purge);
            }
            NetEvent::Move { node } => {
                // A crashed client skips the handover itself but keeps
                // its dwell clock running, so mobility (and its RNG
                // draws) resume seamlessly after a NodeUp.
                if !self.faults.node_is_down(node) {
                    self.perform_handover(node);
                }
                // A churning (attacker) node re-arms with the churn
                // dwell; everyone else follows the mobility model.
                let mean_dwell = match &self.churn {
                    Some(c) if c.nodes.binary_search(&node).is_ok() => Some(c.mean_dwell),
                    _ => self.mobility.map(|m| m.mean_dwell),
                };
                if let Some(mean) = mean_dwell {
                    let dwell = Exponential::from_mean(mean.as_secs_f64().max(1e-3));
                    let delay =
                        SimDuration::from_secs_f64(dwell.sample(&mut self.rngs[node.index()]));
                    let key = self.next_key(node);
                    self.engine
                        .schedule_keyed(now + delay, key, NetEvent::Move { node });
                }
            }
            NetEvent::Attach { ap, client, spec } => {
                // The new AP wires a face back toward the client (unless a
                // still-newer handover already did). State mutation, not a
                // service: it happens even while the AP is crashed.
                if self.links.face_toward(ap, client).is_none() {
                    let face = FaceId::new(self.links.neighbors[ap.index()].len() as u32);
                    self.links.neighbors[ap.index()].push((client, spec));
                    self.links.set_face_toward(ap, client, face);
                }
            }
            NetEvent::Fault { index } => {
                let kind = self.faults.apply(index);
                self.faults_applied += 1;
                if self.reports_faults() {
                    self.observer.on_fault(kind, now);
                }
                self.reroute();
            }
            NetEvent::SampleTick => {
                // Snapshot BEFORE rescheduling: the next tick must not
                // be pending at snapshot time, or the queue depth would
                // count it K times across K shards.
                self.take_sample(now);
                if let Some(every) = self.sample_every {
                    let key = self.next_sample_key();
                    self.engine
                        .schedule_keyed(now + every, key, NetEvent::SampleTick);
                }
            }
        }
    }

    /// Appends one [`SampleRow`] for the current instant.
    ///
    /// The queue-depth contribution is **partition-invariant**: summing
    /// every shard's value reproduces the sequential engine's pending
    /// count at the same instant. Each shard counts its calendar plus
    /// its outboxes (an event created this epoch for a foreign node
    /// sits in exactly one producer outbox, and lookahead puts its
    /// arrival past the epoch end, so the sequential run would also
    /// still have it pending; coordinator mailboxes are empty while an
    /// epoch runs). Mirrored events — the one pending purge, the
    /// not-yet-applied fault events, and nothing else (the sample tick
    /// itself is popped and not yet rescheduled) — exist once per shard
    /// but once in the sequential calendar, so every shard except
    /// shard 0 subtracts its copies.
    fn take_sample(&mut self, now: SimTime) {
        let mut depth = self.engine.pending() + self.outboxes.iter().map(Vec::len).sum::<usize>();
        if let Some(s) = &self.shard {
            if s.my_shard != 0 {
                depth -= 1 + (self.fault_sched_len - self.faults_applied as usize);
            }
        }
        let mut row = SampleRow {
            tick: self.samples.len() as u64,
            t_ns: now.as_nanos(),
            queue_depth: depth as u64,
            sent: self.sent,
            delivered: self.deliveries,
            drops_dangling_face: self.drops.dangling_face,
            drops_reverse_face: self.drops.reverse_face,
            drops_lossy: self.drops.lossy,
            drops_link_down: self.drops.link_down,
            drops_node_down: self.drops.node_down,
            drops_rate_limited: self.drops.rate_limited,
            drops_face_capped: self.drops.face_capped,
            drops_pit_full: self.drops.pit_full,
            ..SampleRow::default()
        };
        let shard = &self.shard;
        let owns = |node: NodeId| match shard {
            None => true,
            Some(s) => s.shard_of[node.index()] == s.my_shard,
        };
        self.plane.on_sample(now, &owns, &mut row);
        self.samples.push(row);
    }

    /// Recomputes every router's FIB over the currently-usable subgraph
    /// (live links between live nodes) and hands the full replacement set
    /// to the plane. Only reachable when the plan schedules faults.
    fn reroute(&mut self) {
        let Some(topo) = self.fault_topo.as_ref() else {
            return;
        };
        let faults = &self.faults;
        let routes = fib_routes_filtered(topo, &self.links, |a, b| {
            !faults.node_is_down(a) && !faults.node_is_down(b) && !faults.link_is_down(a, b)
        });
        self.plane.on_reroute(&routes);
    }

    /// Counts and reports a transport-level drop at `node` (the emitting
    /// node for send-side reasons, the receiver for delivery-side ones).
    fn drop_packet(&mut self, node: NodeId, reason: DropReason, now: SimTime) {
        self.drops.count(reason);
        self.observer.on_drop(node, reason, now);
    }

    /// Applies a callback's emits in push order, recycling the buffer.
    fn apply(&mut self, node: NodeId, now: SimTime, mut out: Vec<Emit>) {
        for emit in out.drain(..) {
            match emit {
                Emit::Send {
                    face,
                    packet,
                    compute,
                } => {
                    if self.profiler.is_some() {
                        let started = std::time::Instant::now();
                        self.transmit(node, face, packet, compute);
                        let ns = started.elapsed().as_nanos() as u64;
                        if let Some(p) = self.profiler.as_deref_mut() {
                            p.record_ns("link.transit", ns);
                        }
                    } else {
                        self.transmit(node, face, packet, compute);
                    }
                }
                Emit::Timeout { name, delay } => {
                    let key = self.next_key(node);
                    self.engine.schedule_keyed(
                        now + delay,
                        key,
                        NetEvent::Timeout {
                            node,
                            name,
                            sent: now,
                        },
                    );
                }
            }
        }
        self.scratch = out;
    }

    /// Transmits on a link: FIFO serialisation + propagation delay, after
    /// the sender's computation time. Everything read or written here —
    /// the sender's neighbour table, its busy lanes, the directed link's
    /// loss stream — belongs to the sender's shard; the receiver is only
    /// named, never consulted.
    fn transmit(&mut self, from: NodeId, out_face: FaceId, packet: Packet, compute: SimDuration) {
        let now = self.engine.now();
        let Some(&(to, spec)) = self.links.neighbors[from.index()].get(out_face.index() as usize)
        else {
            // Dangling face: drop.
            self.drop_packet(from, DropReason::DanglingFace, now);
            return;
        };
        // Administratively-down links carry nothing; checked before the
        // loss model so a downed link makes no loss draw.
        if self.faults.link_is_down(from, to) {
            self.drop_packet(from, DropReason::LinkDown, now);
            return;
        }
        // Edge defenses (token bucket, per-face cap) police the packet
        // before it takes the link. Enforced here — in the transmitting
        // shard — so limiter state never crosses a shard boundary; a
        // `None` defense costs exactly one branch.
        if let Some(d) = self.defense.as_mut() {
            if let Some(reason) = d.admit(from, to, now) {
                self.drop_packet(from, reason, now);
                return;
            }
        }
        // The loss model eats the packet before it reserves the link:
        // lost transmissions never appear in `on_schedule`/link load.
        if self.faults.loses(from, to) {
            self.drop_packet(from, DropReason::Lossy, now);
            return;
        }
        // The packet is definitely going onto the link: count it as
        // in-flight from here until delivery or a delivery-side drop.
        self.sent += 1;
        let size = wire_size(&packet);
        let ready = now + compute;
        let lane = &mut self.link_busy[from.index()];
        let slot = match lane.binary_search_by_key(&to, |&(peer, _)| peer) {
            Ok(i) => &mut lane[i].1,
            Err(i) => {
                lane.insert(i, (to, SimTime::ZERO));
                &mut lane[i].1
            }
        };
        let depart = ready.max(*slot);
        let serialize = spec.serialization_delay(size);
        *slot = depart + serialize;
        let arrival = depart + serialize + spec.latency;
        self.observer
            .on_schedule(from, to, size, depart, serialize, arrival);
        let key = self.next_key(from);
        self.route_to(
            to,
            arrival,
            key,
            NetEvent::Deliver {
                node: to,
                from,
                packet,
            },
        );
    }

    /// Re-attaches a mobile client to a uniformly random *other* access
    /// point: the client's single face now leads to the new AP (same
    /// wireless link spec) immediately; the new AP gains a face back when
    /// the attach signal arrives one propagation delay later (see
    /// [`NetEvent::Attach`]). The plane is notified so the node can
    /// refresh credentials and refill its window.
    fn perform_handover(&mut self, node: NodeId) {
        if self.access_points.len() < 2 {
            return;
        }
        let Some(&(current_ap, spec)) = self.links.neighbors[node.index()].first() else {
            return;
        };
        let new_ap = loop {
            let candidate = *self.rngs[node.index()].choose(&self.access_points);
            if candidate != current_ap {
                break candidate;
            }
        };
        // Client side: face 0 now points at the new AP.
        self.links.neighbors[node.index()][0] = (new_ap, spec);
        self.links.clear_faces(node);
        self.links.set_face_toward(node, new_ap, FaceId::new(0));
        // AP side: scheduled before the plane's refill sends, so the
        // attach is keyed (and therefore ordered) ahead of any packet
        // the client pushes onto the new radio link.
        let now = self.engine.now();
        let key = self.next_key(node);
        self.route_to(
            new_ap,
            now + spec.latency,
            key,
            NetEvent::Attach {
                ap: new_ap,
                client: node,
                spec,
            },
        );
        self.moves += 1;
        self.observer.on_handover(node, current_ap, new_ap, now);
        let mut out = std::mem::take(&mut self.scratch);
        self.plane.on_handover(
            node,
            &mut PlaneCtx {
                now,
                rng: &mut self.rngs[node.index()],
                cost: &self.cost,
                profiler: self.profiler.as_deref_mut(),
                drops: &mut self.drops,
            },
            &mut out,
        );
        self.apply(node, now, out);
    }
}
