//! The shared event loop: engine-driven dispatch, FIFO link serialisation
//! + propagation, and the mobility/handover model.
//!
//! [`Net`] owns everything mechanism-independent about a run — the
//! [`Engine`], the mutable face tables, per-directed-link busy times, the
//! run's RNG stream, and the cost model — and drives a [`NodePlane`]
//! through it. The loop reproduces the historical per-plane simulators
//! schedule-for-schedule: identical engine sequence numbers, identical RNG
//! draw order, byte-identical reports.

use tactic_ndn::face::FaceId;
use tactic_ndn::name::Name;
use tactic_ndn::packet::Packet;
use tactic_ndn::wire::wire_size;
use tactic_sim::cost::CostModel;
use tactic_sim::dist::Exponential;
use tactic_sim::engine::Engine;
use tactic_sim::rng::Rng;
use tactic_sim::time::{SimDuration, SimTime};
use tactic_topology::graph::NodeId;
use tactic_topology::roles::Topology;

use crate::fault::{FaultPlan, FaultState};
use crate::links::{fib_routes_filtered, Links};
use crate::mobility::MobilityConfig;
use crate::observer::{DropReason, DropTotals, NetObserver, NoopObserver};
use crate::plane::{Emit, NodePlane, PlaneCtx};

/// RNG stream id for the fault layer's dedicated loss stream: forked off
/// the run RNG before any main-stream draw, so loss draws never perturb
/// the simulation's own sequence.
const FAULT_STREAM: u64 = 0xFA17_0001;

/// Events flowing through the shared engine.
#[derive(Debug)]
pub enum NetEvent {
    /// A packet finishes arriving at `node` on `face`.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Arrival face.
        face: FaceId,
        /// The packet.
        packet: Packet,
    },
    /// A consumer begins its request loop.
    ConsumerStart {
        /// The consumer node.
        node: NodeId,
    },
    /// A consumer's outstanding request may have expired.
    Timeout {
        /// The requesting node.
        node: NodeId,
        /// The request name.
        name: Name,
        /// When the request was sent.
        sent: SimTime,
    },
    /// Periodic PIT / relay-state expiry sweep.
    Purge,
    /// A mobile client hands over to a new access point.
    Move {
        /// The mobile node.
        node: NodeId,
    },
    /// A scheduled fault takes effect.
    Fault {
        /// Index into the [`FaultPlan`]'s schedule.
        index: usize,
    },
}

/// Transport-level configuration distilled from a plane's scenario.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Simulated duration (the engine horizon).
    pub duration: SimDuration,
    /// Client mobility (`None` = static evaluation).
    pub mobility: Option<MobilityConfig>,
    /// Computation-cost injection model handed to plane callbacks.
    pub cost: CostModel,
    /// Fault-injection plan ([`FaultPlan::none()`] = fault-free run).
    pub faults: FaultPlan,
}

/// What the transport itself measured in one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportReport {
    /// Engine events processed (all kinds).
    pub events: u64,
    /// `Deliver` events handled (each seen by the plane and the observer
    /// exactly once).
    pub deliveries: u64,
    /// Handovers performed by mobile clients.
    pub moves: u64,
    /// High-water mark of the engine's pending-event queue.
    pub peak_queue_depth: u64,
    /// Per-reason drop totals counted by the transport itself.
    pub drops: DropTotals,
}

/// The assembled simulation: shared transport state driving a plane.
pub struct Net<P, O = NoopObserver> {
    engine: Engine<NetEvent>,
    links: Links,
    /// Per directed link: when the transmitter is free again. Flat
    /// storage: indexed by source node, sorted by destination node id —
    /// keyed by node pair (not face) because a handover re-points face 0
    /// at a new AP while the old link's busy horizon must stay with the
    /// old destination.
    link_busy: Vec<Vec<(NodeId, SimTime)>>,
    rng: Rng,
    cost: CostModel,
    access_points: Vec<NodeId>,
    mobility: Option<MobilityConfig>,
    moves: u64,
    deliveries: u64,
    faults: FaultState,
    /// Retained topology for route recomputation at failure instants
    /// (only kept when the plan schedules topology changes).
    fault_topo: Option<Topology>,
    drops: DropTotals,
    plane: P,
    observer: O,
    scratch: Vec<Emit>,
}

impl<P, O> std::fmt::Debug for Net<P, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Net")
            .field("nodes", &self.links.neighbors.len())
            .field("now", &self.engine.now())
            .field("horizon", &self.engine.horizon())
            .finish()
    }
}

impl<P: NodePlane> Net<P, NoopObserver> {
    /// Assembles a run with the zero-cost no-op observer.
    pub fn assemble(topo: &Topology, links: Links, plane: P, rng: Rng, config: NetConfig) -> Self {
        Self::assemble_observed(topo, links, plane, rng, config, NoopObserver)
    }
}

impl<P: NodePlane, O: NetObserver> Net<P, O> {
    /// Assembles a run: schedules the consumer starts (staggered over the
    /// first second), the periodic purge sweep, and — when mobility is
    /// configured — the first handover of each mobile client.
    ///
    /// The scheduling order (users in `topo.users()` order, then the purge,
    /// then mobile clients) and the RNG draw order are part of the
    /// determinism contract: they reproduce the historical planes exactly.
    ///
    /// # Panics
    ///
    /// Panics if `config.mobility` has a `mobile_fraction` outside
    /// `[0, 1]`.
    pub fn assemble_observed(
        topo: &Topology,
        links: Links,
        plane: P,
        mut rng: Rng,
        config: NetConfig,
        observer: O,
    ) -> Self {
        // Forked before any main-stream draw (forking never consumes the
        // stream): the loss stream is a pure function of the run seed, so
        // fault draws cannot perturb the simulation's own draw sequence.
        let fault_rng = rng.fork(FAULT_STREAM);
        let mut engine = Engine::with_horizon(SimTime::ZERO + config.duration);
        for unode in topo.users() {
            let offset = SimDuration::from_nanos(rng.below(1_000_000_000));
            engine.schedule(
                SimTime::ZERO + offset,
                NetEvent::ConsumerStart { node: unode },
            );
        }
        engine.schedule(SimTime::from_secs(1), NetEvent::Purge);

        if let Some(m) = config.mobility {
            assert!(
                (0.0..=1.0).contains(&m.mobile_fraction),
                "mobile_fraction must be within [0, 1]"
            );
            let dwell = Exponential::from_mean(m.mean_dwell.as_secs_f64().max(1e-3));
            let mobile_count = (topo.clients.len() as f64 * m.mobile_fraction).round() as usize;
            for &c in topo.clients.iter().take(mobile_count) {
                let at = SimTime::from_secs_f64(dwell.sample(&mut rng));
                engine.schedule(at, NetEvent::Move { node: c });
            }
        }

        for (index, event) in config.faults.schedule.iter().enumerate() {
            engine.schedule(event.at, NetEvent::Fault { index });
        }
        let fault_topo = if config.faults.schedule.is_empty() {
            None
        } else {
            Some(topo.clone())
        };
        let faults = FaultState::new(config.faults, fault_rng, topo.graph.node_count());

        Net {
            engine,
            links,
            link_busy: vec![Vec::new(); topo.graph.node_count()],
            rng,
            cost: config.cost,
            access_points: topo.access_points.clone(),
            mobility: config.mobility,
            moves: 0,
            deliveries: 0,
            faults,
            fault_topo,
            drops: DropTotals::default(),
            plane,
            observer,
            scratch: Vec::new(),
        }
    }

    /// Runs to the horizon; returns the plane (for report aggregation),
    /// the observer, and the transport's own totals.
    pub fn run(mut self) -> (P, O, TransportReport) {
        while let Some(ev) = self.engine.pop() {
            self.dispatch(ev);
        }
        let report = TransportReport {
            events: self.engine.processed(),
            deliveries: self.deliveries,
            moves: self.moves,
            peak_queue_depth: self.engine.peak_pending() as u64,
            drops: self.drops,
        };
        (self.plane, self.observer, report)
    }

    /// The current face tables (mutated by handovers as the run proceeds).
    pub fn links(&self) -> &Links {
        &self.links
    }

    /// The plane, for inspection between assembly and `run`.
    pub fn plane(&self) -> &P {
        &self.plane
    }

    fn dispatch(&mut self, ev: NetEvent) {
        let now = self.engine.now();
        match ev {
            NetEvent::Deliver { node, face, packet } => {
                if self.faults.node_is_down(node) {
                    // A crashed node services nothing: the packet dies at
                    // its door and is never seen by the plane.
                    self.drop_packet(node, face, DropReason::NodeDown, now);
                    return;
                }
                self.deliveries += 1;
                self.observer.on_deliver(node, face, &packet, now);
                let mut out = std::mem::take(&mut self.scratch);
                self.plane.on_packet(
                    node,
                    face,
                    packet,
                    &mut PlaneCtx {
                        now,
                        rng: &mut self.rng,
                        cost: &self.cost,
                    },
                    &mut out,
                );
                self.apply(node, now, out);
            }
            NetEvent::ConsumerStart { node } => {
                if self.faults.node_is_down(node) {
                    return;
                }
                let mut out = std::mem::take(&mut self.scratch);
                self.plane.on_start(
                    node,
                    &mut PlaneCtx {
                        now,
                        rng: &mut self.rng,
                        cost: &self.cost,
                    },
                    &mut out,
                );
                self.apply(node, now, out);
            }
            NetEvent::Timeout { node, name, sent } => {
                if self.faults.node_is_down(node) {
                    return;
                }
                let mut out = std::mem::take(&mut self.scratch);
                self.plane.on_timeout(
                    node,
                    name,
                    sent,
                    &mut PlaneCtx {
                        now,
                        rng: &mut self.rng,
                        cost: &self.cost,
                    },
                    &mut out,
                );
                self.apply(node, now, out);
            }
            NetEvent::Purge => {
                self.plane.on_purge(now);
                self.engine
                    .schedule_after(SimDuration::from_secs(1), NetEvent::Purge);
            }
            NetEvent::Move { node } => {
                // A crashed client skips the handover itself but keeps
                // its dwell clock running, so mobility (and its RNG
                // draws) resume seamlessly after a NodeUp.
                if !self.faults.node_is_down(node) {
                    self.perform_handover(node);
                }
                if let Some(m) = self.mobility {
                    let dwell = Exponential::from_mean(m.mean_dwell.as_secs_f64().max(1e-3));
                    let delay = SimDuration::from_secs_f64(dwell.sample(&mut self.rng));
                    self.engine.schedule_after(delay, NetEvent::Move { node });
                }
            }
            NetEvent::Fault { index } => {
                let kind = self.faults.apply(index);
                self.observer.on_fault(kind, now);
                self.reroute();
            }
        }
    }

    /// Recomputes every router's FIB over the currently-usable subgraph
    /// (live links between live nodes) and hands the full replacement set
    /// to the plane. Only reachable when the plan schedules faults.
    fn reroute(&mut self) {
        let Some(topo) = self.fault_topo.as_ref() else {
            return;
        };
        let faults = &self.faults;
        let routes = fib_routes_filtered(topo, &self.links, |a, b| {
            !faults.node_is_down(a) && !faults.node_is_down(b) && !faults.link_is_down(a, b)
        });
        self.plane.on_reroute(&routes);
    }

    /// Counts and reports a transport-level drop.
    fn drop_packet(&mut self, node: NodeId, face: FaceId, reason: DropReason, now: SimTime) {
        self.drops.count(reason);
        self.observer.on_drop(node, face, reason, now);
    }

    /// Applies a callback's emits in push order, recycling the buffer.
    fn apply(&mut self, node: NodeId, now: SimTime, mut out: Vec<Emit>) {
        for emit in out.drain(..) {
            match emit {
                Emit::Send {
                    face,
                    packet,
                    compute,
                } => self.transmit(node, face, packet, compute),
                Emit::Timeout { name, delay } => self.engine.schedule(
                    now + delay,
                    NetEvent::Timeout {
                        node,
                        name,
                        sent: now,
                    },
                ),
            }
        }
        self.scratch = out;
    }

    /// Transmits on a link: FIFO serialisation + propagation delay, after
    /// the sender's computation time.
    fn transmit(&mut self, from: NodeId, out_face: FaceId, packet: Packet, compute: SimDuration) {
        let now = self.engine.now();
        let Some(&(to, spec)) = self.links.neighbors[from.index()].get(out_face.index() as usize)
        else {
            // Dangling face: drop.
            self.drop_packet(from, out_face, DropReason::DanglingFace, now);
            return;
        };
        // Administratively-down links carry nothing; checked before the
        // loss model so a downed link makes no loss draw.
        if self.faults.link_is_down(from, to) {
            self.drop_packet(from, out_face, DropReason::LinkDown, now);
            return;
        }
        // The loss model eats the packet before it reserves the link:
        // lost transmissions never appear in `on_schedule`/link load.
        if self.faults.loses(from, to) {
            self.drop_packet(from, out_face, DropReason::Lossy, now);
            return;
        }
        let size = wire_size(&packet);
        let ready = now + compute;
        let lane = &mut self.link_busy[from.index()];
        let slot = match lane.binary_search_by_key(&to, |&(peer, _)| peer) {
            Ok(i) => &mut lane[i].1,
            Err(i) => {
                lane.insert(i, (to, SimTime::ZERO));
                &mut lane[i].1
            }
        };
        let depart = ready.max(*slot);
        let serialize = spec.serialization_delay(size);
        *slot = depart + serialize;
        let arrival = depart + serialize + spec.latency;
        // A handover may have torn down the reverse mapping (the receiver
        // moved away): the in-flight packet is lost with the radio link.
        let Some(in_face) = self.links.face_toward(to, from) else {
            self.drop_packet(from, out_face, DropReason::ReverseFaceGone, now);
            return;
        };
        self.observer
            .on_schedule(from, to, size, depart, serialize, arrival);
        self.engine.schedule(
            arrival,
            NetEvent::Deliver {
                node: to,
                face: in_face,
                packet,
            },
        );
    }

    /// Re-attaches a mobile client to a uniformly random *other* access
    /// point: the client's single face now leads to the new AP (same
    /// wireless link spec), the new AP gains a face back, and the plane is
    /// notified so the node can refresh credentials and refill its window.
    fn perform_handover(&mut self, node: NodeId) {
        if self.access_points.len() < 2 {
            return;
        }
        let Some(&(current_ap, spec)) = self.links.neighbors[node.index()].first() else {
            return;
        };
        let new_ap = loop {
            let candidate = *self.rng.choose(&self.access_points);
            if candidate != current_ap {
                break candidate;
            }
        };
        // Client side: face 0 now points at the new AP.
        self.links.neighbors[node.index()][0] = (new_ap, spec);
        self.links.clear_faces(node);
        self.links.set_face_toward(node, new_ap, FaceId::new(0));
        // AP side: ensure the new AP has a face toward this client.
        if self.links.face_toward(new_ap, node).is_none() {
            let face = FaceId::new(self.links.neighbors[new_ap.index()].len() as u32);
            self.links.neighbors[new_ap.index()].push((node, spec));
            self.links.set_face_toward(new_ap, node, face);
        }
        self.moves += 1;
        let now = self.engine.now();
        self.observer.on_handover(node, current_ap, new_ap, now);
        let mut out = std::mem::take(&mut self.scratch);
        self.plane.on_handover(
            node,
            &mut PlaneCtx {
                now,
                rng: &mut self.rng,
                cost: &self.cost,
            },
            &mut out,
        );
        self.apply(node, now, out);
    }
}
