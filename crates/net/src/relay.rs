//! The access-point relay: transparent pending-Interest bookkeeping shared
//! by every plane's AP nodes.
//!
//! An AP forwards user Interests to its one upstream edge router and
//! demultiplexes returning Data/NACKs back to the pending user faces.
//! Demultiplexing is per *requester identity* when the mechanism supplies
//! one (TACTIC's tag echo) — a layer-2 unicast, like a real wireless AP
//! delivering to one station — and falls back to everyone pending on the
//! name when it doesn't (`None`: public content, registration responses,
//! identity-less baselines).

use std::collections::HashMap;

use tactic_ndn::face::FaceId;
use tactic_ndn::name::Name;
use tactic_sim::time::{SimDuration, SimTime};
use tactic_topology::graph::{NodeId, Role};
use tactic_topology::roles::Topology;

use crate::links::Links;

/// Pending-Interest state for one access point.
#[derive(Debug)]
pub struct ApRelay {
    /// The AP's own node id (planes stamp it into access paths).
    pub id: NodeId,
    /// The face toward the AP's edge router.
    pub upstream: FaceId,
    /// name → [(user face, sent time, requester identity)]
    pending: HashMap<Name, Vec<(FaceId, SimTime, Option<u64>)>>,
}

/// An access point with no face toward an edge router — scale-free
/// generation (or a mid-run rewiring bug) left it unusable. Carried as a
/// checked error so assembly can report *which* AP is broken instead of
/// panicking deep inside plane construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnwiredAp(pub NodeId);

impl std::fmt::Display for UnwiredAp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "access point {} has no edge-router neighbour", self.0)
    }
}

impl std::error::Error for UnwiredAp {}

impl ApRelay {
    /// Creates the relay for access point `node`, wired via `links`.
    ///
    /// # Errors
    ///
    /// Returns [`UnwiredAp`] if `node` has no edge-router neighbour
    /// (topologies from the role builders never do — see
    /// `Topology::validate_wiring` — but hand-built or mutated graphs
    /// can).
    pub fn new(topo: &Topology, links: &Links, node: NodeId) -> Result<Self, UnwiredAp> {
        let upstream = links.neighbors[node.index()]
            .iter()
            .position(|&(peer, _)| topo.graph.role(peer) == Role::EdgeRouter)
            .map(|i| FaceId::new(i as u32))
            .ok_or(UnwiredAp(node))?;
        Ok(ApRelay {
            id: node,
            upstream,
            pending: HashMap::new(),
        })
    }

    /// Records a user Interest awaiting a reply: `face` asked for `name`
    /// at `now`, as `identity` (if the mechanism carries one).
    pub fn note(&mut self, name: Name, face: FaceId, now: SimTime, identity: Option<u64>) {
        self.pending
            .entry(name)
            .or_default()
            .push((face, now, identity));
    }

    /// Drops pending entries older than `horizon`.
    pub fn purge(&mut self, now: SimTime, horizon: SimDuration) {
        self.pending.retain(|_, faces| {
            faces.retain(|&(_, t, _)| now.saturating_since(t) < horizon);
            !faces.is_empty()
        });
    }

    /// Removes and returns the pending faces a reply identified by
    /// `identity` should go to. `None` delivers to everyone pending on
    /// the name.
    pub fn claim(&mut self, name: &Name, identity: Option<u64>) -> Vec<FaceId> {
        match identity {
            None => self
                .pending
                .remove(name)
                .unwrap_or_default()
                .into_iter()
                .map(|(f, _, _)| f)
                .collect(),
            Some(id) => {
                let Some(entries) = self.pending.get_mut(name) else {
                    return Vec::new();
                };
                let mut claimed = Vec::new();
                entries.retain(|&(f, _, eid)| {
                    if eid == Some(id) {
                        claimed.push(f);
                        false
                    } else {
                        true
                    }
                });
                if entries.is_empty() {
                    self.pending.remove(name);
                }
                claimed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn relay() -> ApRelay {
        ApRelay {
            id: NodeId(3),
            upstream: FaceId::new(0),
            pending: HashMap::new(),
        }
    }

    #[test]
    fn unwired_ap_is_a_checked_error_not_a_panic() {
        use tactic_sim::rng::Rng;
        use tactic_topology::roles::{build_topology, TopologySpec};

        let mut topo = build_topology(
            &TopologySpec {
                core_routers: 8,
                edge_routers: 2,
                providers: 1,
                clients: 2,
                attackers: 0,
            },
            &mut Rng::seed_from_u64(5),
        );
        let ap = topo.access_points[0];
        // Demote the AP's edge router: the AP now has no edge-router
        // neighbour, the defect a scale-free generator can produce.
        let er = topo
            .graph
            .neighbors(ap)
            .find(|&n| topo.graph.role(n) == Role::EdgeRouter)
            .unwrap();
        topo.graph.set_role(er, Role::CoreRouter);
        let links = Links::build(&topo);
        assert_eq!(ApRelay::new(&topo, &links, ap).unwrap_err(), UnwiredAp(ap));

        // A healthy AP still wires up.
        let other = topo.access_points[1];
        let relay = ApRelay::new(&topo, &links, other).unwrap();
        assert_eq!(relay.id, other);
    }

    #[test]
    fn identity_claims_are_unicast() {
        let mut ap = relay();
        ap.note(name("/a/b"), FaceId::new(1), SimTime::ZERO, Some(10));
        ap.note(name("/a/b"), FaceId::new(2), SimTime::ZERO, Some(20));
        assert_eq!(ap.claim(&name("/a/b"), Some(20)), vec![FaceId::new(2)]);
        // The other association is untouched until its own copy arrives.
        assert_eq!(ap.claim(&name("/a/b"), Some(10)), vec![FaceId::new(1)]);
        assert!(ap.claim(&name("/a/b"), Some(10)).is_empty());
    }

    #[test]
    fn anonymous_claims_are_broadcast() {
        let mut ap = relay();
        ap.note(name("/a/b"), FaceId::new(1), SimTime::ZERO, None);
        ap.note(name("/a/b"), FaceId::new(2), SimTime::ZERO, Some(20));
        assert_eq!(
            ap.claim(&name("/a/b"), None),
            vec![FaceId::new(1), FaceId::new(2)]
        );
    }

    #[test]
    fn purge_drops_stale_entries() {
        let mut ap = relay();
        ap.note(name("/a/b"), FaceId::new(1), SimTime::ZERO, None);
        ap.note(name("/a/c"), FaceId::new(2), SimTime::from_secs(5), None);
        ap.purge(SimTime::from_secs(6), SimDuration::from_secs(4));
        assert!(ap.claim(&name("/a/b"), None).is_empty(), "stale: purged");
        assert_eq!(ap.claim(&name("/a/c"), None), vec![FaceId::new(2)]);
    }
}
