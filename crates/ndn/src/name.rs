//! Hierarchical NDN names.
//!
//! An NDN name is an ordered list of opaque byte components, written
//! URI-style: `/provider0/obj12/chunk3`. Names identify content objects,
//! prefixes identify namespaces (FIB entries, provider prefixes, key
//! locators). TACTIC's Protocol 1 compares the provider prefix extracted
//! from a tag's key locator — `N(Pub_p)` — against the requested content
//! prefix `N(D)`.
//!
//! # Representation
//!
//! [`Name`] is a *shared handle*: the component list lives in one
//! reference-counted buffer (`Arc<[Component]>`) and the name itself is a
//! `(buffer, length, hash)` triple. This makes the forwarding-plane
//! operations the PIT/CS/FIB hammer on every Interest effectively free:
//!
//! * `clone()` is an `Arc` refcount bump — no heap traffic;
//! * [`Name::prefix`] shares the buffer and shrinks the visible length —
//!   no heap traffic (the FIB probes every prefix length on lookup);
//! * hashing writes one precomputed 64-bit value — table probes never
//!   re-walk the component bytes.
//!
//! [`Component`] shares its bytes the same way (`Arc<[u8]>`), so the
//! construction paths (`child`, `push`, `from_components`) that *do*
//! rebuild the component list only bump refcounts per component.
//!
//! Equality, ordering, and the Display/parse round-trip are over the
//! visible components only and are oblivious to sharing: a prefix view
//! compares equal to an independently-parsed equivalent name, and their
//! hashes agree (property-tested in `tests/proptests.rs`).

use std::fmt;
use std::sync::{Arc, OnceLock};

use tactic_crypto::hash::Hasher64;

/// One name component (opaque bytes; printable ASCII in our scenarios).
///
/// Cheap to clone: the bytes are shared, not copied.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Component(Arc<[u8]>);

impl Component {
    /// Creates a component from raw bytes.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        Component(bytes.into().into())
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty component.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<&str> for Component {
    fn from(s: &str) -> Self {
        Component(Arc::from(s.as_bytes()))
    }
}

impl From<String> for Component {
    fn from(s: String) -> Self {
        Component(s.into_bytes().into())
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in self.0.iter() {
            if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~') {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "%{:02X}", b)?;
            }
        }
        Ok(())
    }
}

/// A hierarchical name: an ordered list of [`Component`]s behind a shared,
/// cheaply-clonable handle (see the module docs for the representation).
///
/// # Examples
///
/// ```
/// use tactic_ndn::name::Name;
///
/// let name: Name = "/provider0/obj12/chunk3".parse()?;
/// assert_eq!(name.len(), 3);
/// assert!(name.prefix(1).is_prefix_of(&name));
/// assert_eq!(name.to_string(), "/provider0/obj12/chunk3");
/// # Ok::<(), tactic_ndn::name::ParseNameError>(())
/// ```
#[derive(Clone)]
pub struct Name {
    /// Shared component buffer; may be longer than the visible name when
    /// this handle is a prefix view of another name.
    components: Arc<[Component]>,
    /// Number of visible components (`components[..len]`).
    len: usize,
    /// Precomputed hash over the visible components (same byte layout as
    /// [`Name::to_bytes`], folded through [`Hasher64`]).
    hash: u64,
}

/// Error parsing a name from its URI form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNameError {
    /// The URI did not start with `/`.
    MissingLeadingSlash,
    /// A `%`-escape was malformed.
    BadEscape(String),
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNameError::MissingLeadingSlash => write!(f, "name must start with '/'"),
            ParseNameError::BadEscape(s) => write!(f, "bad percent escape in `{s}`"),
        }
    }
}

impl std::error::Error for ParseNameError {}

/// Folds the length-prefixed component bytes (the [`Name::to_bytes`]
/// layout) into a 64-bit hash.
fn fold_hash(components: &[Component]) -> u64 {
    let mut h = Hasher64::new();
    for c in components {
        h.update(&(c.len() as u32).to_le_bytes());
        h.update(c.as_bytes());
    }
    h.finish()
}

/// The shared zero-length backing buffer used by root names.
fn empty_backing() -> Arc<[Component]> {
    static EMPTY: OnceLock<Arc<[Component]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(Vec::new())).clone()
}

impl Default for Name {
    fn default() -> Self {
        Name::root()
    }
}

impl Name {
    /// The root (empty) name, printed as `/`.
    pub fn root() -> Self {
        Name {
            components: empty_backing(),
            len: 0,
            hash: fold_hash(&[]),
        }
    }

    /// Builds a name from components.
    pub fn from_components(components: Vec<Component>) -> Self {
        let hash = fold_hash(&components);
        Name {
            len: components.len(),
            components: components.into(),
            hash,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for the root name.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The component at `index`, if present.
    pub fn get(&self, index: usize) -> Option<&Component> {
        self.components().get(index)
    }

    /// All (visible) components.
    pub fn components(&self) -> &[Component] {
        &self.components[..self.len]
    }

    /// Returns a new name with `component` appended.
    ///
    /// This rebuilds the component list (refcount bumps per component) —
    /// construction is the cold path; forwarding clones the result.
    pub fn child(&self, component: impl Into<Component>) -> Name {
        let mut components = Vec::with_capacity(self.len + 1);
        components.extend_from_slice(self.components());
        components.push(component.into());
        Name::from_components(components)
    }

    /// Appends a component in place.
    pub fn push(&mut self, component: impl Into<Component>) {
        *self = self.child(component);
    }

    /// The first `n` components as a new name (clamped to the full name).
    ///
    /// O(1) in allocations: the returned name shares this name's buffer.
    pub fn prefix(&self, n: usize) -> Name {
        let len = n.min(self.len);
        Name {
            components: Arc::clone(&self.components),
            len,
            hash: fold_hash(&self.components[..len]),
        }
    }

    /// The name without its last component; the root maps to itself.
    pub fn parent(&self) -> Name {
        if self.len == 0 {
            Name::root()
        } else {
            self.prefix(self.len - 1)
        }
    }

    /// True if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Name) -> bool {
        self.len <= other.len && self.components() == &other.components()[..self.len]
    }

    /// Flat byte serialisation (length-prefixed components), for hashing.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for c in self.components() {
            out.extend_from_slice(&(c.len() as u32).to_le_bytes());
            out.extend_from_slice(c.as_bytes());
        }
        out
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.components() == other.components()
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.components().cmp(other.components())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl std::str::FromStr for Name {
    type Err = ParseNameError;

    fn from_str(uri: &str) -> Result<Self, Self::Err> {
        if uri == "/" {
            return Ok(Name::root());
        }
        let rest = uri
            .strip_prefix('/')
            .ok_or(ParseNameError::MissingLeadingSlash)?;
        let mut components = Vec::new();
        for piece in rest.split('/') {
            if piece.is_empty() {
                continue; // Collapse duplicate slashes.
            }
            components.push(Component::new(unescape(piece)?));
        }
        Ok(Name::from_components(components))
    }
}

fn unescape(piece: &str) -> Result<Vec<u8>, ParseNameError> {
    let bytes = piece.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| ParseNameError::BadEscape(piece.to_owned()))?;
            let s = std::str::from_utf8(hex)
                .map_err(|_| ParseNameError::BadEscape(piece.to_owned()))?;
            let v = u8::from_str_radix(s, 16)
                .map_err(|_| ParseNameError::BadEscape(piece.to_owned()))?;
            out.push(v);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Ok(out)
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "/");
        }
        for c in self.components() {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let n: Name = "/a/b/c".parse().unwrap();
        assert_eq!(n.len(), 3);
        assert_eq!(n.to_string(), "/a/b/c");
    }

    #[test]
    fn root_name() {
        let n: Name = "/".parse().unwrap();
        assert!(n.is_empty());
        assert_eq!(n.to_string(), "/");
        assert_eq!(n.parent(), n);
    }

    #[test]
    fn missing_slash_is_error() {
        assert_eq!(
            "abc".parse::<Name>(),
            Err(ParseNameError::MissingLeadingSlash)
        );
    }

    #[test]
    fn escapes_roundtrip() {
        let n = Name::root().child(Component::new(vec![0x00, 0xFF, b'a']));
        let uri = n.to_string();
        assert_eq!(uri, "/%00%FFa");
        let back: Name = uri.parse().unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn bad_escape_is_error() {
        assert!(matches!(
            "/a%g1".parse::<Name>(),
            Err(ParseNameError::BadEscape(_))
        ));
        assert!(matches!(
            "/a%0".parse::<Name>(),
            Err(ParseNameError::BadEscape(_))
        ));
    }

    #[test]
    fn duplicate_slashes_collapse() {
        let n: Name = "/a//b".parse().unwrap();
        assert_eq!(n.to_string(), "/a/b");
    }

    #[test]
    fn prefix_relationships() {
        let n: Name = "/p/o/c".parse().unwrap();
        let p1 = n.prefix(1);
        assert_eq!(p1.to_string(), "/p");
        assert!(p1.is_prefix_of(&n));
        assert!(n.is_prefix_of(&n));
        assert!(!n.is_prefix_of(&p1));
        assert!(Name::root().is_prefix_of(&n));
        let other: Name = "/q/o/c".parse().unwrap();
        assert!(!p1.is_prefix_of(&other));
    }

    #[test]
    fn prefix_clamps() {
        let n: Name = "/a/b".parse().unwrap();
        assert_eq!(n.prefix(10), n);
    }

    #[test]
    fn child_and_parent() {
        let n: Name = "/a".parse().unwrap();
        let c = n.child("b");
        assert_eq!(c.to_string(), "/a/b");
        assert_eq!(c.parent(), n);
    }

    #[test]
    fn to_bytes_distinguishes_component_boundaries() {
        let ab_c: Name = "/ab/c".parse().unwrap();
        let a_bc: Name = "/a/bc".parse().unwrap();
        assert_ne!(ab_c.to_bytes(), a_bc.to_bytes());
    }

    #[test]
    fn ordering_is_lexicographic_by_component() {
        let a: Name = "/a".parse().unwrap();
        let ab: Name = "/a/b".parse().unwrap();
        let b: Name = "/b".parse().unwrap();
        assert!(a < ab);
        assert!(ab < b);
    }

    #[test]
    fn prefix_view_is_indistinguishable_from_owned() {
        // A prefix view shares its parent's buffer; equality, ordering,
        // hashing, and serialisation must not be able to tell.
        let long: Name = "/p/o/c".parse().unwrap();
        let view = long.prefix(2);
        let owned: Name = "/p/o".parse().unwrap();
        assert_eq!(view, owned);
        assert_eq!(view.cmp(&owned), std::cmp::Ordering::Equal);
        assert_eq!(view.to_bytes(), owned.to_bytes());
        assert_eq!(view.to_string(), owned.to_string());
        use std::hash::{BuildHasher, RandomState};
        let s = RandomState::new();
        assert_eq!(s.hash_one(&view), s.hash_one(&owned));
        // And it must work as a map key interchangeably.
        let mut map = std::collections::HashMap::new();
        map.insert(owned, 7u32);
        assert_eq!(map.get(&view), Some(&7));
    }

    #[test]
    fn clone_and_prefix_share_the_buffer() {
        let n: Name = "/p/o/c".parse().unwrap();
        let c = n.clone();
        let p = n.prefix(1);
        assert!(Arc::ptr_eq(&n.components, &c.components));
        assert!(Arc::ptr_eq(&n.components, &p.components));
    }

    #[test]
    fn push_after_prefix_does_not_leak_hidden_components() {
        let n: Name = "/a/b/c".parse().unwrap();
        let mut p = n.prefix(1);
        p.push("z");
        assert_eq!(p.to_string(), "/a/z");
        assert_eq!(n.to_string(), "/a/b/c");
    }
}
