//! Hierarchical NDN names.
//!
//! An NDN name is an ordered list of opaque byte components, written
//! URI-style: `/provider0/obj12/chunk3`. Names identify content objects,
//! prefixes identify namespaces (FIB entries, provider prefixes, key
//! locators). TACTIC's Protocol 1 compares the provider prefix extracted
//! from a tag's key locator — `N(Pub_p)` — against the requested content
//! prefix `N(D)`.

use std::fmt;

/// One name component (opaque bytes; printable ASCII in our scenarios).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Component(Vec<u8>);

impl Component {
    /// Creates a component from raw bytes.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        Component(bytes.into())
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty component.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<&str> for Component {
    fn from(s: &str) -> Self {
        Component(s.as_bytes().to_vec())
    }
}

impl From<String> for Component {
    fn from(s: String) -> Self {
        Component(s.into_bytes())
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~') {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "%{:02X}", b)?;
            }
        }
        Ok(())
    }
}

/// A hierarchical name: an ordered list of [`Component`]s.
///
/// # Examples
///
/// ```
/// use tactic_ndn::name::Name;
///
/// let name: Name = "/provider0/obj12/chunk3".parse()?;
/// assert_eq!(name.len(), 3);
/// assert!(name.prefix(1).is_prefix_of(&name));
/// assert_eq!(name.to_string(), "/provider0/obj12/chunk3");
/// # Ok::<(), tactic_ndn::name::ParseNameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Name {
    components: Vec<Component>,
}

/// Error parsing a name from its URI form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNameError {
    /// The URI did not start with `/`.
    MissingLeadingSlash,
    /// A `%`-escape was malformed.
    BadEscape(String),
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNameError::MissingLeadingSlash => write!(f, "name must start with '/'"),
            ParseNameError::BadEscape(s) => write!(f, "bad percent escape in `{s}`"),
        }
    }
}

impl std::error::Error for ParseNameError {}

impl Name {
    /// The root (empty) name, printed as `/`.
    pub fn root() -> Self {
        Name::default()
    }

    /// Builds a name from components.
    pub fn from_components(components: Vec<Component>) -> Self {
        Name { components }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True for the root name.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component at `index`, if present.
    pub fn get(&self, index: usize) -> Option<&Component> {
        self.components.get(index)
    }

    /// All components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Returns a new name with `component` appended.
    pub fn child(&self, component: impl Into<Component>) -> Name {
        let mut components = self.components.clone();
        components.push(component.into());
        Name { components }
    }

    /// Appends a component in place.
    pub fn push(&mut self, component: impl Into<Component>) {
        self.components.push(component.into());
    }

    /// The first `n` components as a new name (clamped to the full name).
    pub fn prefix(&self, n: usize) -> Name {
        Name {
            components: self.components[..n.min(self.components.len())].to_vec(),
        }
    }

    /// The name without its last component; the root maps to itself.
    pub fn parent(&self) -> Name {
        if self.components.is_empty() {
            Name::root()
        } else {
            self.prefix(self.components.len() - 1)
        }
    }

    /// True if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Name) -> bool {
        self.components.len() <= other.components.len()
            && self
                .components
                .iter()
                .zip(&other.components)
                .all(|(a, b)| a == b)
    }

    /// Flat byte serialisation (length-prefixed components), for hashing.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for c in &self.components {
            out.extend_from_slice(&(c.len() as u32).to_le_bytes());
            out.extend_from_slice(c.as_bytes());
        }
        out
    }
}

impl std::str::FromStr for Name {
    type Err = ParseNameError;

    fn from_str(uri: &str) -> Result<Self, Self::Err> {
        if uri == "/" {
            return Ok(Name::root());
        }
        let rest = uri
            .strip_prefix('/')
            .ok_or(ParseNameError::MissingLeadingSlash)?;
        let mut components = Vec::new();
        for piece in rest.split('/') {
            if piece.is_empty() {
                continue; // Collapse duplicate slashes.
            }
            components.push(Component::new(unescape(piece)?));
        }
        Ok(Name { components })
    }
}

fn unescape(piece: &str) -> Result<Vec<u8>, ParseNameError> {
    let bytes = piece.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| ParseNameError::BadEscape(piece.to_owned()))?;
            let s = std::str::from_utf8(hex)
                .map_err(|_| ParseNameError::BadEscape(piece.to_owned()))?;
            let v = u8::from_str_radix(s, 16)
                .map_err(|_| ParseNameError::BadEscape(piece.to_owned()))?;
            out.push(v);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Ok(out)
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "/");
        }
        for c in &self.components {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let n: Name = "/a/b/c".parse().unwrap();
        assert_eq!(n.len(), 3);
        assert_eq!(n.to_string(), "/a/b/c");
    }

    #[test]
    fn root_name() {
        let n: Name = "/".parse().unwrap();
        assert!(n.is_empty());
        assert_eq!(n.to_string(), "/");
        assert_eq!(n.parent(), n);
    }

    #[test]
    fn missing_slash_is_error() {
        assert_eq!(
            "abc".parse::<Name>(),
            Err(ParseNameError::MissingLeadingSlash)
        );
    }

    #[test]
    fn escapes_roundtrip() {
        let n = Name::root().child(Component::new(vec![0x00, 0xFF, b'a']));
        let uri = n.to_string();
        assert_eq!(uri, "/%00%FFa");
        let back: Name = uri.parse().unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn bad_escape_is_error() {
        assert!(matches!(
            "/a%g1".parse::<Name>(),
            Err(ParseNameError::BadEscape(_))
        ));
        assert!(matches!(
            "/a%0".parse::<Name>(),
            Err(ParseNameError::BadEscape(_))
        ));
    }

    #[test]
    fn duplicate_slashes_collapse() {
        let n: Name = "/a//b".parse().unwrap();
        assert_eq!(n.to_string(), "/a/b");
    }

    #[test]
    fn prefix_relationships() {
        let n: Name = "/p/o/c".parse().unwrap();
        let p1 = n.prefix(1);
        assert_eq!(p1.to_string(), "/p");
        assert!(p1.is_prefix_of(&n));
        assert!(n.is_prefix_of(&n));
        assert!(!n.is_prefix_of(&p1));
        assert!(Name::root().is_prefix_of(&n));
        let other: Name = "/q/o/c".parse().unwrap();
        assert!(!p1.is_prefix_of(&other));
    }

    #[test]
    fn prefix_clamps() {
        let n: Name = "/a/b".parse().unwrap();
        assert_eq!(n.prefix(10), n);
    }

    #[test]
    fn child_and_parent() {
        let n: Name = "/a".parse().unwrap();
        let c = n.child("b");
        assert_eq!(c.to_string(), "/a/b");
        assert_eq!(c.parent(), n);
    }

    #[test]
    fn to_bytes_distinguishes_component_boundaries() {
        let ab_c: Name = "/ab/c".parse().unwrap();
        let a_bc: Name = "/a/bc".parse().unwrap();
        assert_ne!(ab_c.to_bytes(), a_bc.to_bytes());
    }

    #[test]
    fn ordering_is_lexicographic_by_component() {
        let a: Name = "/a".parse().unwrap();
        let ab: Name = "/a/b".parse().unwrap();
        let b: Name = "/b".parse().unwrap();
        assert!(a < ab);
        assert!(ab < b);
    }
}
