//! Faces: a node's interfaces.
//!
//! A face is the NDN abstraction over "where packets come from / go to" —
//! a link to a neighbour node or a local application. This crate only
//! needs the identifier; the simulation's network layer owns the mapping
//! from faces to links and applications.

use std::fmt;

/// A face identifier, unique per node.
///
/// # Examples
///
/// ```
/// use tactic_ndn::face::FaceId;
///
/// let f = FaceId::new(3);
/// assert_eq!(f.index(), 3);
/// assert_eq!(f.to_string(), "face3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FaceId(u32);

impl FaceId {
    /// Creates a face id.
    pub const fn new(index: u32) -> Self {
        FaceId(index)
    }

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "face{}", self.0)
    }
}

impl From<u32> for FaceId {
    fn from(v: u32) -> Self {
        FaceId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let f: FaceId = 7u32.into();
        assert_eq!(f, FaceId::new(7));
        assert_eq!(f.index(), 7);
        assert_eq!(f.to_string(), "face7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(FaceId::new(1) < FaceId::new(2));
    }
}
