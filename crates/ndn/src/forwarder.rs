//! The vanilla NDN forwarding pipeline.
//!
//! [`Tables`] bundles a node's CS/PIT/FIB; [`process_interest`] and
//! [`process_data`] implement the textbook CCN/NDN pipeline the paper
//! recaps in §2: CS lookup → PIT lookup/aggregation → FIB forward, and
//! reverse-path Data delivery with caching.
//!
//! TACTIC routers (in the `tactic` crate) reuse these tables but interpose
//! their own authorisation steps; baseline mechanisms use this pipeline
//! as-is.

use tactic_sim::time::SimTime;

use crate::cs::ContentStore;
use crate::face::FaceId;
use crate::fib::Fib;
use crate::packet::{Data, Interest};
use crate::pit::{InRecord, Pit, PitInsert};

/// A node's three NDN tables.
///
/// `N` is the PIT in-record note type (default: opaque bytes); see
/// [`crate::pit`].
#[derive(Debug, Clone)]
pub struct Tables<N = Vec<u8>> {
    /// The content store (cache).
    pub cs: ContentStore,
    /// The pending-Interest table.
    pub pit: Pit<N>,
    /// The forwarding information base.
    pub fib: Fib,
}

impl<N> Tables<N> {
    /// Creates tables with the given cache capacity.
    pub fn new(cs_capacity: usize) -> Self {
        Tables {
            cs: ContentStore::new(cs_capacity),
            pit: Pit::new(),
            fib: Fib::new(),
        }
    }
}

/// What the node should do with an incoming Interest.
#[derive(Debug, Clone, PartialEq)]
pub enum InterestAction {
    /// Reply with this cached Data on the arrival face.
    ReplyFromCache(Data),
    /// The Interest was aggregated into an existing PIT entry; do nothing.
    Aggregate,
    /// Forward the Interest on this face.
    Forward(FaceId),
    /// No route; the caller may Nack.
    NoRoute,
    /// Looped nonce; drop.
    DuplicateNonce,
}

/// Runs the vanilla Interest pipeline against `tables`.
///
/// `note` is the opaque annotation stored in the PIT in-record (TACTIC puts
/// its `<tag, F>` there; vanilla callers pass an empty vec).
pub fn process_interest<N>(
    tables: &mut Tables<N>,
    interest: &Interest,
    in_face: FaceId,
    now: SimTime,
    note: N,
) -> InterestAction {
    // 1. Content store — freshness-aware: a Data whose freshness window
    // has lapsed by `now` is a miss, not a hit, so stale content is
    // re-fetched instead of served forever.
    if let Some(data) = tables.cs.get_fresh(interest.name(), now) {
        return InterestAction::ReplyFromCache(data.clone());
    }
    // 2. PIT.
    let expiry = now + tactic_sim::time::SimDuration::from_millis(interest.lifetime_ms() as u64);
    match tables
        .pit
        .on_interest(interest.name(), in_face, interest.nonce(), expiry, note)
    {
        PitInsert::DuplicateNonce => InterestAction::DuplicateNonce,
        PitInsert::Aggregated => InterestAction::Aggregate,
        PitInsert::New => {
            // 3. FIB.
            match tables.fib.next_hop(interest.name()) {
                Some(face) => InterestAction::Forward(face),
                None => {
                    // Clean up the dangling entry so a retry can re-resolve.
                    tables.pit.take(interest.name());
                    InterestAction::NoRoute
                }
            }
        }
    }
}

/// Outcome of the vanilla Data pipeline: the consumed downstream records
/// (empty if the Data was unsolicited) and whether it was cached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataAction<N = Vec<u8>> {
    /// Downstream in-records the Data should be sent to.
    pub downstream: Vec<InRecord<N>>,
    /// Whether the Data entered the content store.
    pub cached: bool,
}

/// Runs the vanilla Data pipeline: consume the PIT entry and cache.
///
/// Unsolicited Data (no PIT entry) is dropped without caching, matching
/// NFD's default policy. Caching is stamped at `now` so the Data's
/// freshness window starts at its arrival — the historical pipeline
/// inserted at time zero and looked up freshness-agnostically, so
/// freshness-stamped content was served from cache forever.
pub fn process_data<N>(tables: &mut Tables<N>, data: &Data, now: SimTime) -> DataAction<N> {
    match tables.pit.take(data.name()) {
        None => DataAction {
            downstream: Vec::new(),
            cached: false,
        },
        Some(entry) => {
            tables.cs.insert_at(data.clone(), now);
            DataAction {
                downstream: entry.into_records(),
                cached: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;
    use crate::packet::Payload;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn setup() -> Tables {
        let mut t = Tables::new(10);
        t.fib.add_route(name("/prov"), FaceId::new(9), 1);
        t
    }

    #[test]
    fn miss_forwards_via_fib() {
        let mut t = setup();
        let i = Interest::new(name("/prov/obj/0"), 1);
        let action = process_interest(&mut t, &i, FaceId::new(1), SimTime::ZERO, vec![]);
        assert_eq!(action, InterestAction::Forward(FaceId::new(9)));
        assert_eq!(t.pit.len(), 1);
    }

    #[test]
    fn second_request_aggregates() {
        let mut t = setup();
        let i1 = Interest::new(name("/prov/obj/0"), 1);
        let i2 = Interest::new(name("/prov/obj/0"), 2);
        process_interest(&mut t, &i1, FaceId::new(1), SimTime::ZERO, vec![]);
        let action = process_interest(&mut t, &i2, FaceId::new(2), SimTime::ZERO, vec![]);
        assert_eq!(action, InterestAction::Aggregate);
        assert_eq!(t.pit.get(&name("/prov/obj/0")).unwrap().records().len(), 2);
    }

    #[test]
    fn cache_hit_replies_immediately() {
        let mut t = setup();
        t.cs.insert(Data::new(name("/prov/obj/0"), Payload::Synthetic(10)));
        let i = Interest::new(name("/prov/obj/0"), 1);
        match process_interest(&mut t, &i, FaceId::new(1), SimTime::ZERO, vec![]) {
            InterestAction::ReplyFromCache(d) => assert_eq!(d.name(), &name("/prov/obj/0")),
            other => panic!("expected cache hit, got {other:?}"),
        }
        assert!(t.pit.is_empty(), "cache hits must not create PIT state");
    }

    #[test]
    fn no_route_reported_and_pit_cleaned() {
        let mut t = setup();
        let i = Interest::new(name("/other/x"), 1);
        let action = process_interest(&mut t, &i, FaceId::new(1), SimTime::ZERO, vec![]);
        assert_eq!(action, InterestAction::NoRoute);
        assert!(t.pit.is_empty());
    }

    #[test]
    fn duplicate_nonce_dropped() {
        let mut t = setup();
        let i = Interest::new(name("/prov/obj/0"), 7);
        process_interest(&mut t, &i, FaceId::new(1), SimTime::ZERO, vec![]);
        let action = process_interest(&mut t, &i, FaceId::new(2), SimTime::ZERO, vec![]);
        assert_eq!(action, InterestAction::DuplicateNonce);
    }

    #[test]
    fn data_satisfies_all_downstreams_and_caches() {
        let mut t = setup();
        let n = name("/prov/obj/0");
        process_interest(
            &mut t,
            &Interest::new(n.clone(), 1),
            FaceId::new(1),
            SimTime::ZERO,
            vec![11],
        );
        process_interest(
            &mut t,
            &Interest::new(n.clone(), 2),
            FaceId::new(2),
            SimTime::ZERO,
            vec![22],
        );
        let d = Data::new(n.clone(), Payload::Synthetic(10));
        let action = process_data(&mut t, &d, SimTime::ZERO);
        assert!(action.cached);
        assert_eq!(action.downstream.len(), 2);
        assert_eq!(action.downstream[0].note, vec![11]);
        assert!(t.pit.is_empty());
        assert!(t.cs.peek(&n).is_some());
    }

    #[test]
    fn purge_sweep_expires_aggregated_records_then_late_data_is_unsolicited() {
        // Lossy-link scenario: the upstream Data is lost, so the periodic
        // purge must reclaim both aggregated records instead of leaking
        // them, and the straggler Data that arrives after the sweep is
        // treated as unsolicited.
        let mut t = setup();
        let n = name("/prov/obj/0");
        let a1 = process_interest(
            &mut t,
            &Interest::new(n.clone(), 1),
            FaceId::new(1),
            SimTime::ZERO,
            vec![],
        );
        assert_eq!(a1, InterestAction::Forward(FaceId::new(9)));
        let a2 = process_interest(
            &mut t,
            &Interest::new(n.clone(), 2),
            FaceId::new(2),
            SimTime::ZERO,
            vec![],
        );
        assert_eq!(a2, InterestAction::Aggregate);
        assert_eq!(t.pit.total_records(), 2);

        // Both records expire at t0 + Interest lifetime; sweep well past it.
        assert_eq!(t.pit.purge_expired(SimTime::from_secs(60)), 2);
        assert!(t.pit.is_empty());

        let d = Data::new(n.clone(), Payload::Synthetic(10));
        let action = process_data(&mut t, &d, SimTime::ZERO);
        assert!(action.downstream.is_empty(), "no requesters remain");
        assert!(!action.cached, "unsolicited Data is not cached");
        // A fresh request after the sweep re-resolves cleanly.
        let a3 = process_interest(
            &mut t,
            &Interest::new(n.clone(), 3),
            FaceId::new(1),
            SimTime::from_secs(61),
            vec![],
        );
        assert_eq!(a3, InterestAction::Forward(FaceId::new(9)));
    }

    #[test]
    fn stale_cached_data_is_a_miss_not_a_hit() {
        use tactic_sim::time::SimDuration;

        let mut t = setup();
        let n = name("/prov/obj/0");
        // A requester pulls the chunk through: PIT entry, then Data with a
        // 500 ms freshness window cached at its arrival time (t = 1 s).
        let arrive = SimTime::from_secs(1);
        process_interest(
            &mut t,
            &Interest::new(n.clone(), 1),
            FaceId::new(1),
            arrive,
            vec![],
        );
        let mut d = Data::new(n.clone(), Payload::Synthetic(10));
        d.set_freshness_ms(500);
        assert!(process_data(&mut t, &d, arrive).cached);

        // Within the window: served from cache.
        let within = arrive + SimDuration::from_millis(400);
        match process_interest(
            &mut t,
            &Interest::new(n.clone(), 2),
            FaceId::new(1),
            within,
            vec![],
        ) {
            InterestAction::ReplyFromCache(hit) => assert_eq!(hit.name(), &n),
            other => panic!("fresh entry must hit, got {other:?}"),
        }

        // Past the window: the entry is stale — the Interest must go back
        // upstream, not be answered with expired content. (The historical
        // pipeline inserted at time zero and ignored freshness, so this
        // lookup served the stale Data forever.)
        let past = arrive + SimDuration::from_millis(600);
        let action = process_interest(
            &mut t,
            &Interest::new(n.clone(), 3),
            FaceId::new(1),
            past,
            vec![],
        );
        assert_eq!(action, InterestAction::Forward(FaceId::new(9)));
        assert!(t.cs.peek(&n).is_none(), "stale entry is evicted");
    }

    #[test]
    fn unsolicited_data_dropped() {
        let mut t = setup();
        let d = Data::new(name("/prov/obj/9"), Payload::Synthetic(10));
        let action = process_data(&mut t, &d, SimTime::ZERO);
        assert!(!action.cached);
        assert!(action.downstream.is_empty());
        assert!(t.cs.is_empty());
    }
}
