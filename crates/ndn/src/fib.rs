//! The Forwarding Information Base.
//!
//! Maps name prefixes to next-hop faces with longest-prefix-match lookup.
//! Implemented as a hash map keyed by exact prefix, probed from the longest
//! prefix of the lookup name downwards — names in our scenarios have at
//! most a handful of components, so lookup is a few hash probes (this is
//! also how NFD's name tree behaves asymptotically).

use std::collections::HashMap;

use crate::face::FaceId;
use crate::name::Name;

/// One candidate next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHop {
    /// The outgoing face.
    pub face: FaceId,
    /// Routing cost (lower is preferred).
    pub cost: u32,
}

/// The FIB: prefix → ranked next hops.
///
/// # Examples
///
/// ```
/// use tactic_ndn::face::FaceId;
/// use tactic_ndn::fib::Fib;
///
/// let mut fib = Fib::new();
/// fib.add_route("/prov".parse()?, FaceId::new(1), 10);
/// fib.add_route("/prov/special".parse()?, FaceId::new(2), 10);
///
/// let name = "/prov/special/obj".parse()?;
/// assert_eq!(fib.next_hop(&name), Some(FaceId::new(2)));
/// # Ok::<(), tactic_ndn::name::ParseNameError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fib {
    entries: HashMap<Name, Vec<NextHop>>,
}

impl Fib {
    /// Creates an empty FIB.
    pub fn new() -> Self {
        Fib::default()
    }

    /// Adds (or updates) a route. Next hops for a prefix stay sorted by
    /// cost; re-adding an existing face updates its cost.
    pub fn add_route(&mut self, prefix: Name, face: FaceId, cost: u32) {
        let hops = self.entries.entry(prefix).or_default();
        match hops.iter_mut().find(|h| h.face == face) {
            Some(h) => h.cost = cost,
            None => hops.push(NextHop { face, cost }),
        }
        hops.sort_by_key(|h| (h.cost, h.face));
    }

    /// Removes the route for `prefix` via `face`; returns whether it
    /// existed.
    pub fn remove_route(&mut self, prefix: &Name, face: FaceId) -> bool {
        if let Some(hops) = self.entries.get_mut(prefix) {
            let before = hops.len();
            hops.retain(|h| h.face != face);
            let removed = hops.len() != before;
            if hops.is_empty() {
                self.entries.remove(prefix);
            }
            return removed;
        }
        false
    }

    /// Longest-prefix-match: all next hops of the most specific matching
    /// prefix.
    pub fn lookup(&self, name: &Name) -> Option<&[NextHop]> {
        for take in (0..=name.len()).rev() {
            if let Some(hops) = self.entries.get(&name.prefix(take)) {
                if !hops.is_empty() {
                    return Some(hops);
                }
            }
        }
        None
    }

    /// The single best next hop under longest-prefix match.
    pub fn next_hop(&self, name: &Name) -> Option<FaceId> {
        self.lookup(name).map(|hops| hops[0].face)
    }

    /// Number of prefixes with at least one route.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the FIB has no routes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every route. Used when scheduled failures force a full
    /// recomputation of the routing plane.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.add_route(name("/a"), FaceId::new(1), 1);
        fib.add_route(name("/a/b"), FaceId::new(2), 1);
        assert_eq!(fib.next_hop(&name("/a/b/c")), Some(FaceId::new(2)));
        assert_eq!(fib.next_hop(&name("/a/x")), Some(FaceId::new(1)));
        assert_eq!(fib.next_hop(&name("/z")), None);
    }

    #[test]
    fn root_prefix_is_default_route() {
        let mut fib = Fib::new();
        fib.add_route(Name::root(), FaceId::new(9), 1);
        assert_eq!(
            fib.next_hop(&name("/anything/at/all")),
            Some(FaceId::new(9))
        );
    }

    #[test]
    fn lowest_cost_hop_preferred() {
        let mut fib = Fib::new();
        fib.add_route(name("/a"), FaceId::new(1), 20);
        fib.add_route(name("/a"), FaceId::new(2), 10);
        assert_eq!(fib.next_hop(&name("/a/x")), Some(FaceId::new(2)));
        // Updating cost re-ranks.
        fib.add_route(name("/a"), FaceId::new(2), 30);
        assert_eq!(fib.next_hop(&name("/a/x")), Some(FaceId::new(1)));
    }

    #[test]
    fn cost_tie_breaks_by_face_for_determinism() {
        let mut fib = Fib::new();
        fib.add_route(name("/a"), FaceId::new(5), 10);
        fib.add_route(name("/a"), FaceId::new(3), 10);
        assert_eq!(fib.next_hop(&name("/a")), Some(FaceId::new(3)));
    }

    #[test]
    fn remove_route_cleans_up() {
        let mut fib = Fib::new();
        fib.add_route(name("/a"), FaceId::new(1), 1);
        assert!(fib.remove_route(&name("/a"), FaceId::new(1)));
        assert!(!fib.remove_route(&name("/a"), FaceId::new(1)));
        assert!(fib.is_empty());
        assert_eq!(fib.next_hop(&name("/a")), None);
    }

    #[test]
    fn clear_empties_the_fib() {
        let mut fib = Fib::new();
        fib.add_route(name("/a"), FaceId::new(1), 1);
        fib.add_route(name("/b"), FaceId::new(2), 1);
        fib.clear();
        assert!(fib.is_empty());
        assert_eq!(fib.next_hop(&name("/a")), None);
    }

    #[test]
    fn exact_match_entry_applies_to_itself() {
        let mut fib = Fib::new();
        fib.add_route(name("/a/b"), FaceId::new(1), 1);
        assert_eq!(fib.next_hop(&name("/a/b")), Some(FaceId::new(1)));
        assert_eq!(fib.next_hop(&name("/a")), None);
    }
}
