//! # tactic-ndn
//!
//! A from-scratch Named-Data Networking substrate — the part of ndnSIM the
//! TACTIC paper builds on (§2's recap of NDN):
//!
//! * [`name`] — hierarchical names (`/provider/object/chunk`);
//! * [`packet`] — Interest / Data / Nack with an open extension TLV list
//!   (TACTIC's tag, flag `F`, and content-NACK ride as extensions);
//! * [`wire`] — a TLV codec for byte-accurate link transmission and
//!   lossless round-trips;
//! * [`face`] — face identifiers;
//! * [`fib`] — longest-prefix-match forwarding table;
//! * [`pit`] — pending-Interest table with the `<tag, F, in-face>`
//!   aggregation records of TACTIC's Protocol 4;
//! * [`cs`] — LRU content store;
//! * [`forwarder`] — the vanilla CS → PIT → FIB pipeline.
//!
//! # Examples
//!
//! ```
//! use tactic_ndn::face::FaceId;
//! use tactic_ndn::forwarder::{process_interest, InterestAction, Tables};
//! use tactic_ndn::packet::Interest;
//! use tactic_sim::time::SimTime;
//!
//! let mut tables: Tables = Tables::new(100);
//! tables.fib.add_route("/news".parse()?, FaceId::new(2), 1);
//!
//! let interest = Interest::new("/news/today/0".parse()?, 1);
//! let action = process_interest(&mut tables, &interest, FaceId::new(0), SimTime::ZERO, vec![]);
//! assert_eq!(action, InterestAction::Forward(FaceId::new(2)));
//! # Ok::<(), tactic_ndn::name::ParseNameError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cs;
pub mod face;
pub mod fib;
pub mod forwarder;
pub mod name;
pub mod packet;
pub mod pit;
pub mod wire;

pub use cs::ContentStore;
pub use face::FaceId;
pub use fib::Fib;
pub use name::Name;
pub use packet::{Data, Interest, Nack, NackReason, Packet, Payload};
pub use pit::Pit;
