//! The Pending Interest Table.
//!
//! The PIT aggregates in-flight Interests for the same name and routes
//! returning Data along the reverse paths. TACTIC extends each in-record
//! with a `note` — the `<tag, F>` pair of Protocol 4 — which the
//! aggregating router replays when the content arrives, validating each
//! aggregated tag individually. The paper observes this "adds an overhead
//! to the PIT entry but it is of the order of a couple hundred bytes".
//!
//! The note type is a table-wide generic parameter `N` (default
//! `Vec<u8>`, the opaque-bytes form vanilla callers use). TACTIC
//! instantiates it with its own typed note holding a shared
//! `Arc<SignedTag>` handle, so an aggregated tag is *referenced* by the
//! in-record — never re-serialized or re-parsed on replay.

use std::collections::{HashMap, VecDeque};

use tactic_sim::time::SimTime;

use crate::face::FaceId;
use crate::name::Name;

/// One downstream requester recorded in a PIT entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InRecord<N = Vec<u8>> {
    /// The face the Interest arrived on.
    pub face: FaceId,
    /// The Interest's nonce (loop detection).
    pub nonce: u64,
    /// When this record expires.
    pub expiry: SimTime,
    /// Application annotation (TACTIC: the `<tag, F>` pair).
    pub note: N,
}

/// A pending-Interest entry: one name, many downstream records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PitEntry<N = Vec<u8>> {
    name: Name,
    records: Vec<InRecord<N>>,
    forwarded: bool,
    /// Monotone insertion sequence, for oldest-first bounded eviction.
    seq: u64,
}

impl<N> PitEntry<N> {
    /// The pending name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The downstream records, oldest first.
    pub fn records(&self) -> &[InRecord<N>] {
        &self.records
    }

    /// Whether the Interest has been forwarded upstream.
    pub fn forwarded(&self) -> bool {
        self.forwarded
    }

    /// Consumes the entry into its records.
    pub fn into_records(self) -> Vec<InRecord<N>> {
        self.records
    }
}

/// Outcome of recording an incoming Interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PitInsert {
    /// First request for this name: the caller should forward upstream.
    New,
    /// Joined an existing entry: the caller must *not* forward.
    Aggregated,
    /// Same nonce seen before for this name: a loop; drop the Interest.
    DuplicateNonce,
}

/// The PIT.
///
/// # Examples
///
/// ```
/// use tactic_ndn::face::FaceId;
/// use tactic_ndn::pit::{Pit, PitInsert};
/// use tactic_sim::time::SimTime;
///
/// let mut pit: Pit = Pit::new();
/// let name = "/prov/obj/0".parse()?;
/// let t = SimTime::from_secs(4);
/// assert_eq!(pit.on_interest(&name, FaceId::new(1), 11, t, vec![]), PitInsert::New);
/// assert_eq!(pit.on_interest(&name, FaceId::new(2), 22, t, vec![]), PitInsert::Aggregated);
///
/// let entry = pit.take(&name).expect("pending");
/// assert_eq!(entry.records().len(), 2);
/// # Ok::<(), tactic_ndn::name::ParseNameError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pit<N = Vec<u8>> {
    entries: HashMap<Name, PitEntry<N>>,
    /// Maximum pending names (`None` = unbounded, the historical
    /// behaviour; see [`Pit::set_capacity`]).
    capacity: Option<usize>,
    /// Next insertion sequence number.
    seq: u64,
    /// Insertion order of live entries, oldest first, with lazy deletion:
    /// an item whose `seq` no longer matches the live entry is stale and
    /// skipped. Only maintained when a capacity is set, so the unbounded
    /// path allocates nothing extra.
    order: VecDeque<(u64, Name)>,
}

impl<N> Default for Pit<N> {
    fn default() -> Self {
        Pit {
            entries: HashMap::new(),
            capacity: None,
            seq: 0,
            order: VecDeque::new(),
        }
    }
}

impl<N> Pit<N> {
    /// Creates an empty PIT.
    pub fn new() -> Self {
        Pit::default()
    }

    /// Records an incoming Interest.
    ///
    /// Returns whether the Interest opened a new entry (forward it), was
    /// aggregated (drop it), or is a duplicate nonce (loop; drop it).
    pub fn on_interest(
        &mut self,
        name: &Name,
        face: FaceId,
        nonce: u64,
        expiry: SimTime,
        note: N,
    ) -> PitInsert {
        match self.entries.get_mut(name) {
            None => {
                let seq = self.seq;
                self.seq += 1;
                if self.capacity.is_some() {
                    self.order.push_back((seq, name.clone()));
                }
                self.entries.insert(
                    name.clone(),
                    PitEntry {
                        name: name.clone(),
                        records: vec![InRecord {
                            face,
                            nonce,
                            expiry,
                            note,
                        }],
                        forwarded: true,
                        seq,
                    },
                );
                PitInsert::New
            }
            Some(entry) => {
                if entry.records.iter().any(|r| r.nonce == nonce) {
                    return PitInsert::DuplicateNonce;
                }
                entry.records.push(InRecord {
                    face,
                    nonce,
                    expiry,
                    note,
                });
                PitInsert::Aggregated
            }
        }
    }

    /// Bounds the table at `capacity` pending names (`None` restores the
    /// unbounded historical behaviour). Callers must then invoke
    /// [`Pit::evict_over_capacity`] after inserts to enforce the bound —
    /// split so every caller can count the evicted records it gets back.
    ///
    /// # Panics
    ///
    /// Panics if the PIT is not empty: the eviction order of pre-existing
    /// entries would depend on hash-map iteration order, which is not
    /// deterministic. Set the capacity at build time.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        assert!(
            self.entries.is_empty(),
            "set_capacity must be called on an empty PIT"
        );
        self.capacity = capacity;
    }

    /// The configured bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Evicts the oldest entries until the table fits its capacity;
    /// returns them oldest first (empty when unbounded or within bounds).
    /// Deterministic: eviction order is insertion order of the pending
    /// names, never hash order.
    pub fn evict_over_capacity(&mut self) -> Vec<PitEntry<N>> {
        let Some(cap) = self.capacity else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        while self.entries.len() > cap {
            let Some((seq, name)) = self.order.pop_front() else {
                break;
            };
            if self.entries.get(&name).is_some_and(|e| e.seq == seq) {
                evicted.push(self.entries.remove(&name).expect("live entry"));
            }
        }
        // Lazy deletion keeps take/purge O(1), but a queue full of stale
        // items would defeat the memory bound — compact when stale items
        // dominate.
        if self.order.len() > self.entries.len().saturating_mul(2) + 64 {
            let entries = &self.entries;
            self.order
                .retain(|(seq, name)| entries.get(name).is_some_and(|e| e.seq == *seq));
        }
        evicted
    }

    /// Looks at the pending entry for `name` without consuming it.
    pub fn get(&self, name: &Name) -> Option<&PitEntry<N>> {
        self.entries.get(name)
    }

    /// Consumes and returns the entry for `name` (Data arrival).
    pub fn take(&mut self, name: &Name) -> Option<PitEntry<N>> {
        self.entries.remove(name)
    }

    /// Removes the downstream records matching `predicate` from the entry
    /// for `name`, dropping the entry if it empties. Returns the removed
    /// records. (TACTIC edge routers use this to drop a nacked tag's
    /// request while keeping other aggregated requesters pending.)
    pub fn remove_records<F>(&mut self, name: &Name, mut predicate: F) -> Vec<InRecord<N>>
    where
        N: Clone,
        F: FnMut(&InRecord<N>) -> bool,
    {
        let Some(entry) = self.entries.get_mut(name) else {
            return Vec::new();
        };
        let mut removed = Vec::new();
        entry.records.retain(|r| {
            if predicate(r) {
                removed.push(r.clone());
                false
            } else {
                true
            }
        });
        if entry.records.is_empty() {
            self.entries.remove(name);
        }
        removed
    }

    /// Drops expired records and empty entries; returns how many records
    /// were purged.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let mut purged = 0;
        self.entries.retain(|_, entry| {
            let before = entry.records.len();
            entry.records.retain(|r| r.expiry > now);
            purged += before - entry.records.len();
            !entry.records.is_empty()
        });
        purged
    }

    /// Number of pending names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total downstream records across all entries.
    pub fn total_records(&self) -> usize {
        self.entries.values().map(|e| e.records.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn first_interest_is_new_then_aggregates() {
        let mut pit: Pit = Pit::new();
        let n = name("/a/b");
        assert_eq!(
            pit.on_interest(&n, FaceId::new(1), 1, t(5), vec![1]),
            PitInsert::New
        );
        assert_eq!(
            pit.on_interest(&n, FaceId::new(2), 2, t(5), vec![2]),
            PitInsert::Aggregated
        );
        assert_eq!(
            pit.on_interest(&n, FaceId::new(3), 3, t(5), vec![3]),
            PitInsert::Aggregated
        );
        let entry = pit.take(&n).unwrap();
        assert_eq!(entry.records().len(), 3);
        assert!(entry.forwarded());
        assert_eq!(entry.records()[1].note, vec![2]);
        assert!(pit.is_empty());
    }

    #[test]
    fn duplicate_nonce_detected() {
        let mut pit: Pit = Pit::new();
        let n = name("/a");
        pit.on_interest(&n, FaceId::new(1), 42, t(5), vec![]);
        assert_eq!(
            pit.on_interest(&n, FaceId::new(2), 42, t(5), vec![]),
            PitInsert::DuplicateNonce
        );
        assert_eq!(pit.get(&n).unwrap().records().len(), 1);
    }

    #[test]
    fn take_consumes() {
        let mut pit: Pit = Pit::new();
        let n = name("/a");
        pit.on_interest(&n, FaceId::new(1), 1, t(5), vec![]);
        assert!(pit.take(&n).is_some());
        assert!(pit.take(&n).is_none());
    }

    #[test]
    fn remove_records_by_predicate() {
        let mut pit: Pit = Pit::new();
        let n = name("/a");
        pit.on_interest(&n, FaceId::new(1), 1, t(5), vec![10]);
        pit.on_interest(&n, FaceId::new(2), 2, t(5), vec![20]);
        let removed = pit.remove_records(&n, |r| r.note == vec![10]);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].face, FaceId::new(1));
        assert_eq!(pit.get(&n).unwrap().records().len(), 1);
        // Removing the last record drops the entry.
        let removed = pit.remove_records(&n, |_| true);
        assert_eq!(removed.len(), 1);
        assert!(pit.is_empty());
    }

    #[test]
    fn purge_expired_removes_stale_records() {
        let mut pit: Pit = Pit::new();
        let n = name("/a");
        pit.on_interest(&n, FaceId::new(1), 1, t(1), vec![]);
        pit.on_interest(&n, FaceId::new(2), 2, t(10), vec![]);
        let m = name("/b");
        pit.on_interest(&m, FaceId::new(3), 3, t(1), vec![]);
        assert_eq!(pit.purge_expired(t(5)), 2);
        assert_eq!(pit.len(), 1);
        assert_eq!(pit.total_records(), 1);
        assert!(pit.get(&m).is_none());
    }

    #[test]
    fn bounded_pit_evicts_oldest_first() {
        let mut pit: Pit = Pit::new();
        pit.set_capacity(Some(2));
        pit.on_interest(&name("/a"), FaceId::new(1), 1, t(5), vec![]);
        pit.on_interest(&name("/b"), FaceId::new(1), 2, t(5), vec![]);
        assert!(pit.evict_over_capacity().is_empty(), "within bounds");
        pit.on_interest(&name("/c"), FaceId::new(1), 3, t(5), vec![]);
        let evicted = pit.evict_over_capacity();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].name(), &name("/a"), "oldest entry goes first");
        assert_eq!(pit.len(), 2);
        assert!(pit.get(&name("/b")).is_some());
        assert!(pit.get(&name("/c")).is_some());
    }

    #[test]
    fn bounded_pit_skips_stale_queue_items() {
        let mut pit: Pit = Pit::new();
        pit.set_capacity(Some(1));
        // `/a` is inserted, satisfied (taken), then re-requested: the
        // first queue item for `/a` is stale and must not evict the
        // re-inserted entry.
        pit.on_interest(&name("/a"), FaceId::new(1), 1, t(5), vec![]);
        assert!(pit.take(&name("/a")).is_some());
        pit.on_interest(&name("/a"), FaceId::new(1), 2, t(5), vec![]);
        pit.on_interest(&name("/b"), FaceId::new(1), 3, t(5), vec![]);
        let evicted = pit.evict_over_capacity();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].name(), &name("/a"), "the re-insert, not `/b`");
        assert_eq!(pit.get(&name("/b")).unwrap().records().len(), 1);
    }

    #[test]
    fn bounded_pit_holds_len_under_sustained_flood() {
        let mut pit: Pit = Pit::new();
        pit.set_capacity(Some(8));
        let mut evicted_records = 0;
        for i in 0..1_000u64 {
            let n = name(&format!("/flood/{i}"));
            pit.on_interest(&n, FaceId::new(0), i, t(5), vec![]);
            evicted_records += pit
                .evict_over_capacity()
                .iter()
                .map(|e| e.records().len())
                .sum::<usize>();
            assert!(pit.len() <= 8, "cap breached at interest {i}");
        }
        assert_eq!(pit.len(), 8);
        assert_eq!(evicted_records, 1_000 - 8);
        // The order queue compacts: it cannot retain anywhere near one
        // item per historical insert.
        assert!(
            pit.order.len() <= 2 * pit.len() + 64,
            "order queue grew unboundedly: {}",
            pit.order.len()
        );
    }

    #[test]
    #[should_panic(expected = "set_capacity must be called on an empty PIT")]
    fn set_capacity_rejects_populated_pit() {
        let mut pit: Pit = Pit::new();
        pit.on_interest(&name("/a"), FaceId::new(1), 1, t(5), vec![]);
        pit.set_capacity(Some(4));
    }

    #[test]
    fn unbounded_pit_never_evicts() {
        let mut pit: Pit = Pit::new();
        assert_eq!(pit.capacity(), None);
        for i in 0..100u64 {
            pit.on_interest(&name(&format!("/n/{i}")), FaceId::new(0), i, t(5), vec![]);
        }
        assert!(pit.evict_over_capacity().is_empty());
        assert_eq!(pit.len(), 100);
        assert!(pit.order.is_empty(), "unbounded path must not track order");
    }

    #[test]
    fn distinct_names_do_not_aggregate() {
        let mut pit: Pit = Pit::new();
        assert_eq!(
            pit.on_interest(&name("/a"), FaceId::new(1), 1, t(5), vec![]),
            PitInsert::New
        );
        assert_eq!(
            pit.on_interest(&name("/b"), FaceId::new(1), 2, t(5), vec![]),
            PitInsert::New
        );
        assert_eq!(pit.len(), 2);
    }
}
