//! NDN packet types: Interest, Data, and Nack.
//!
//! Packets carry an open-ended list of TLV **extensions** (`(type, bytes)`
//! pairs) so higher layers can attach fields without this crate knowing
//! about them — TACTIC rides its tag, flag `F`, and content-NACK marker in
//! extensions (see `tactic::ext`). Extension types `0x8000..` are reserved
//! for applications.

use std::sync::Arc;

use tactic_crypto::schnorr::Signature;

use crate::name::Name;

/// An extension TLV carried by a packet. The value bytes are shared:
/// cloning a packet (fan-out, caching) bumps refcounts instead of copying
/// every extension payload.
pub type Extension = (u16, Arc<[u8]>);

/// Looks up the first extension with the given type.
fn find_ext(exts: &[Extension], ty: u16) -> Option<&[u8]> {
    exts.iter().find(|(t, _)| *t == ty).map(|(_, v)| &v[..])
}

/// Replaces (or inserts) the extension with the given type.
fn set_ext(exts: &mut Vec<Extension>, ty: u16, value: Arc<[u8]>) {
    if let Some(slot) = exts.iter_mut().find(|(t, _)| *t == ty) {
        slot.1 = value;
    } else {
        exts.push((ty, value));
    }
}

/// An NDN Interest: a named request.
///
/// # Examples
///
/// ```
/// use tactic_ndn::packet::Interest;
///
/// let i = Interest::new("/prov/obj/0".parse()?, 42);
/// assert_eq!(i.name().to_string(), "/prov/obj/0");
/// assert_eq!(i.nonce(), 42);
/// # Ok::<(), tactic_ndn::name::ParseNameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interest {
    name: Name,
    nonce: u64,
    lifetime_ms: u32,
    extensions: Vec<Extension>,
}

impl Interest {
    /// Default Interest lifetime (NDN's conventional 4 s is overridden by
    /// the paper's 1 s request expiry at clients; this is the packet-level
    /// default).
    pub const DEFAULT_LIFETIME_MS: u32 = 4_000;

    /// Creates an Interest for `name` with a caller-supplied nonce.
    pub fn new(name: Name, nonce: u64) -> Self {
        Interest {
            name,
            nonce,
            lifetime_ms: Self::DEFAULT_LIFETIME_MS,
            extensions: Vec::new(),
        }
    }

    /// The requested name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The loop-detection nonce.
    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// The Interest lifetime in milliseconds.
    pub fn lifetime_ms(&self) -> u32 {
        self.lifetime_ms
    }

    /// Sets the Interest lifetime.
    pub fn set_lifetime_ms(&mut self, ms: u32) {
        self.lifetime_ms = ms;
    }

    /// All extensions.
    pub fn extensions(&self) -> &[Extension] {
        &self.extensions
    }

    /// Reads an extension by type.
    pub fn extension(&self, ty: u16) -> Option<&[u8]> {
        find_ext(&self.extensions, ty)
    }

    /// Sets an extension, replacing any previous value of the same type.
    pub fn set_extension(&mut self, ty: u16, value: impl Into<Arc<[u8]>>) {
        set_ext(&mut self.extensions, ty, value.into());
    }

    /// Removes an extension; returns whether it was present.
    pub fn remove_extension(&mut self, ty: u16) -> bool {
        let before = self.extensions.len();
        self.extensions.retain(|(t, _)| *t != ty);
        self.extensions.len() != before
    }
}

/// The payload of a Data packet.
///
/// Simulated contents are usually `Synthetic(len)` — the bytes never exist,
/// only their length (which the link model charges). Tests and examples may
/// carry real `Bytes`; those are shared (`Arc`), so cloning a Data packet
/// never copies content bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// A payload of the given length whose bytes are never materialised.
    Synthetic(usize),
    /// Actual bytes, shared between all clones of the packet.
    Bytes(std::sync::Arc<[u8]>),
}

impl Payload {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::Synthetic(n) => *n,
            Payload::Bytes(b) => b.len(),
        }
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::Synthetic(0)
    }
}

/// An NDN Data packet: named, signed content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Data {
    name: Name,
    payload: Payload,
    signature: Option<Signature>,
    freshness_ms: u32,
    extensions: Vec<Extension>,
}

impl Data {
    /// Creates a Data packet.
    pub fn new(name: Name, payload: Payload) -> Self {
        Data {
            name,
            payload,
            signature: None,
            freshness_ms: 0,
            extensions: Vec::new(),
        }
    }

    /// The content name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The payload.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// The provider signature over the packet, if signed.
    pub fn signature(&self) -> Option<&Signature> {
        self.signature.as_ref()
    }

    /// Attaches a signature.
    pub fn set_signature(&mut self, sig: Signature) {
        self.signature = Some(sig);
    }

    /// Freshness period in milliseconds (0 = always fresh).
    pub fn freshness_ms(&self) -> u32 {
        self.freshness_ms
    }

    /// Sets the freshness period.
    pub fn set_freshness_ms(&mut self, ms: u32) {
        self.freshness_ms = ms;
    }

    /// All extensions.
    pub fn extensions(&self) -> &[Extension] {
        &self.extensions
    }

    /// Reads an extension by type.
    pub fn extension(&self, ty: u16) -> Option<&[u8]> {
        find_ext(&self.extensions, ty)
    }

    /// Sets an extension, replacing any previous value of the same type.
    pub fn set_extension(&mut self, ty: u16, value: impl Into<Arc<[u8]>>) {
        set_ext(&mut self.extensions, ty, value.into());
    }

    /// Removes an extension; returns whether it was present.
    pub fn remove_extension(&mut self, ty: u16) -> bool {
        let before = self.extensions.len();
        self.extensions.retain(|(t, _)| *t != ty);
        self.extensions.len() != before
    }

    /// The bytes a provider signs: name + payload length + extensions that
    /// are part of the signed content (access level, key locator).
    pub fn signable_bytes(&self) -> Vec<u8> {
        let mut out = self.name.to_bytes();
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        let mut exts: Vec<&Extension> = self.extensions.iter().collect();
        exts.sort_by_key(|(t, _)| *t);
        for (t, v) in exts {
            out.extend_from_slice(&t.to_le_bytes());
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        out
    }
}

/// Reasons a Nack may be returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NackReason {
    /// No FIB entry for the requested name.
    NoRoute,
    /// Nonce already seen (loop).
    Duplicate,
    /// TACTIC: the request's tag failed validation.
    InvalidTag,
    /// TACTIC: the access path in the request did not match the tag's.
    AccessPathMismatch,
}

impl std::fmt::Display for NackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NackReason::NoRoute => "no route",
            NackReason::Duplicate => "duplicate nonce",
            NackReason::InvalidTag => "invalid tag",
            NackReason::AccessPathMismatch => "access path mismatch",
        };
        f.write_str(s)
    }
}

/// A standalone network-layer Nack (distinct from TACTIC's content-attached
/// NACK marker, which rides as a Data extension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nack {
    interest: Interest,
    reason: NackReason,
}

impl Nack {
    /// Creates a Nack for the given Interest.
    pub fn new(interest: Interest, reason: NackReason) -> Self {
        Nack { interest, reason }
    }

    /// The nacked Interest.
    pub fn interest(&self) -> &Interest {
        &self.interest
    }

    /// Why the Interest was nacked.
    pub fn reason(&self) -> NackReason {
        self.reason
    }
}

/// Any NDN packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// A request.
    Interest(Interest),
    /// A content reply.
    Data(Data),
    /// A network-layer negative acknowledgement.
    Nack(Nack),
}

impl Packet {
    /// The name the packet pertains to.
    pub fn name(&self) -> &Name {
        match self {
            Packet::Interest(i) => i.name(),
            Packet::Data(d) => d.name(),
            Packet::Nack(n) => n.interest().name(),
        }
    }
}

impl From<Interest> for Packet {
    fn from(i: Interest) -> Self {
        Packet::Interest(i)
    }
}

impl From<Data> for Packet {
    fn from(d: Data) -> Self {
        Packet::Data(d)
    }
}

impl From<Nack> for Packet {
    fn from(n: Nack) -> Self {
        Packet::Nack(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tactic_crypto::schnorr::KeyPair;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn interest_extension_set_get_replace_remove() {
        let mut i = Interest::new(name("/a"), 1);
        assert_eq!(i.extension(0x8001), None);
        i.set_extension(0x8001, vec![1, 2]);
        assert_eq!(i.extension(0x8001), Some(&[1u8, 2][..]));
        i.set_extension(0x8001, vec![3]);
        assert_eq!(i.extension(0x8001), Some(&[3u8][..]));
        assert_eq!(i.extensions().len(), 1);
        assert!(i.remove_extension(0x8001));
        assert!(!i.remove_extension(0x8001));
    }

    #[test]
    fn payload_lengths() {
        assert_eq!(Payload::Synthetic(1024).len(), 1024);
        assert_eq!(Payload::Bytes(vec![0; 7].into()).len(), 7);
        assert!(Payload::default().is_empty());
    }

    #[test]
    fn data_signing_roundtrip() {
        let kp = KeyPair::derive(b"prov", 0);
        let mut d = Data::new(name("/prov/obj/0"), Payload::Synthetic(1024));
        d.set_extension(0x8002, vec![9]);
        let sig = kp.sign(&d.signable_bytes());
        d.set_signature(sig);
        assert!(kp
            .public()
            .verify(&d.signable_bytes(), d.signature().unwrap()));
    }

    #[test]
    fn signable_bytes_cover_extensions_and_are_order_independent() {
        let mut a = Data::new(name("/x"), Payload::Synthetic(10));
        a.set_extension(1, vec![1]);
        a.set_extension(2, vec![2]);
        let mut b = Data::new(name("/x"), Payload::Synthetic(10));
        b.set_extension(2, vec![2]);
        b.set_extension(1, vec![1]);
        assert_eq!(a.signable_bytes(), b.signable_bytes());
        let mut c = b.clone();
        c.set_extension(2, vec![3]);
        assert_ne!(a.signable_bytes(), c.signable_bytes());
    }

    #[test]
    fn packet_names() {
        let i = Interest::new(name("/n"), 5);
        assert_eq!(Packet::from(i.clone()).name(), &name("/n"));
        let d = Data::new(name("/n"), Payload::default());
        assert_eq!(Packet::from(d).name(), &name("/n"));
        let nk = Nack::new(i, NackReason::NoRoute);
        assert_eq!(nk.reason(), NackReason::NoRoute);
        assert_eq!(Packet::from(nk).name(), &name("/n"));
    }

    #[test]
    fn nack_reason_display() {
        assert_eq!(NackReason::InvalidTag.to_string(), "invalid tag");
        assert_eq!(
            NackReason::AccessPathMismatch.to_string(),
            "access path mismatch"
        );
    }
}
