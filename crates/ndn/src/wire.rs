//! TLV wire codec.
//!
//! Packets serialise to a TLV format so the link model can charge
//! byte-accurate transmission delays and so tests can assert lossless
//! round-trips. Headers are fixed-width (`u16` type + `u32` length, both
//! little-endian) rather than NDN's variable-width numbers — a documented
//! simplification that costs a few bytes per field and keeps the codec
//! trivially correct.
//!
//! Synthetic payloads encode as a length-only TLV (`TLV_PAYLOAD_SYNTH`), so
//! gigabytes of simulated content never materialise.

use tactic_crypto::schnorr::Signature;

use crate::name::{Component, Name};
use crate::packet::{Data, Interest, Nack, NackReason, Packet, Payload};

const TLV_INTEREST: u16 = 0x05;
const TLV_DATA: u16 = 0x06;
const TLV_NACK: u16 = 0x03;
const TLV_NAME: u16 = 0x07;
const TLV_COMPONENT: u16 = 0x08;
const TLV_NONCE: u16 = 0x0A;
const TLV_LIFETIME: u16 = 0x0C;
const TLV_PAYLOAD: u16 = 0x15;
const TLV_PAYLOAD_SYNTH: u16 = 0x17;
const TLV_SIGNATURE: u16 = 0x16;
const TLV_FRESHNESS: u16 = 0x19;
const TLV_NACK_REASON: u16 = 0x32;

const HEADER_LEN: usize = 2 + 4;

/// Errors produced when decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended inside a TLV.
    Truncated,
    /// An unexpected TLV type was found.
    UnexpectedType {
        /// The type that was found.
        found: u16,
    },
    /// A field had an invalid length or value.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::UnexpectedType { found } => write!(f, "unexpected TLV type {found:#06x}"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(128),
        }
    }

    fn tlv(&mut self, ty: u16, value: &[u8]) {
        self.buf.extend_from_slice(&ty.to_le_bytes());
        self.buf
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(value);
    }

    /// Opens a nested TLV, returning the patch position for its length.
    fn open(&mut self, ty: u16) -> usize {
        self.buf.extend_from_slice(&ty.to_le_bytes());
        let pos = self.buf.len();
        self.buf.extend_from_slice(&0u32.to_le_bytes());
        pos
    }

    fn close(&mut self, pos: usize) {
        let len = (self.buf.len() - pos - 4) as u32;
        self.buf[pos..pos + 4].copy_from_slice(&len.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn peek_type(&self) -> Result<u16, WireError> {
        let b = self
            .buf
            .get(self.pos..self.pos + 2)
            .ok_or(WireError::Truncated)?;
        Ok(u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    fn read(&mut self) -> Result<(u16, &'a [u8]), WireError> {
        let ty = self.peek_type()?;
        let lenb = self
            .buf
            .get(self.pos + 2..self.pos + 6)
            .ok_or(WireError::Truncated)?;
        let len = u32::from_le_bytes(lenb.try_into().expect("4 bytes")) as usize;
        // `len` is attacker-controlled: `start + len` must not wrap (on
        // 32-bit targets a length near u32::MAX would, turning the range
        // check below into a successful empty-slice read).
        let start = self.pos + HEADER_LEN;
        let end = start.checked_add(len).ok_or(WireError::Truncated)?;
        let value = self.buf.get(start..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok((ty, value))
    }

    fn expect(&mut self, ty: u16) -> Result<&'a [u8], WireError> {
        let (found, value) = self.read()?;
        if found != ty {
            return Err(WireError::UnexpectedType { found });
        }
        Ok(value)
    }
}

fn encode_name(w: &mut Writer, name: &Name) {
    let pos = w.open(TLV_NAME);
    for c in name.components() {
        w.tlv(TLV_COMPONENT, c.as_bytes());
    }
    w.close(pos);
}

fn decode_name(bytes: &[u8]) -> Result<Name, WireError> {
    let mut r = Reader::new(bytes);
    let mut components = Vec::new();
    while !r.done() {
        components.push(Component::new(r.expect(TLV_COMPONENT)?.to_vec()));
    }
    Ok(Name::from_components(components))
}

fn u64_field(value: &[u8]) -> Result<u64, WireError> {
    Ok(u64::from_le_bytes(
        value.try_into().map_err(|_| WireError::Malformed("u64"))?,
    ))
}

fn u32_field(value: &[u8]) -> Result<u32, WireError> {
    Ok(u32::from_le_bytes(
        value.try_into().map_err(|_| WireError::Malformed("u32"))?,
    ))
}

/// Encodes any packet to its wire form.
///
/// Synthetic payload bytes are *not* materialised; the payload encodes as a
/// length-only TLV.
pub fn encode(packet: &Packet) -> Vec<u8> {
    let mut w = Writer::new();
    match packet {
        Packet::Interest(i) => encode_interest(&mut w, i),
        Packet::Data(d) => encode_data(&mut w, d),
        Packet::Nack(n) => {
            let pos = w.open(TLV_NACK);
            w.tlv(TLV_NACK_REASON, &[nack_reason_code(n.reason())]);
            encode_interest(&mut w, n.interest());
            w.close(pos);
        }
    }
    w.buf
}

fn encode_interest(w: &mut Writer, i: &Interest) {
    let pos = w.open(TLV_INTEREST);
    encode_name(w, i.name());
    w.tlv(TLV_NONCE, &i.nonce().to_le_bytes());
    w.tlv(TLV_LIFETIME, &i.lifetime_ms().to_le_bytes());
    for (ty, v) in i.extensions() {
        w.tlv(*ty, v);
    }
    w.close(pos);
}

fn encode_data(w: &mut Writer, d: &Data) {
    let pos = w.open(TLV_DATA);
    encode_name(w, d.name());
    match d.payload() {
        Payload::Synthetic(n) => w.tlv(TLV_PAYLOAD_SYNTH, &(*n as u64).to_le_bytes()),
        Payload::Bytes(b) => w.tlv(TLV_PAYLOAD, b),
    }
    w.tlv(TLV_FRESHNESS, &d.freshness_ms().to_le_bytes());
    if let Some(sig) = d.signature() {
        w.tlv(TLV_SIGNATURE, &sig.to_bytes());
    }
    for (ty, v) in d.extensions() {
        w.tlv(*ty, v);
    }
    w.close(pos);
}

fn nack_reason_code(r: NackReason) -> u8 {
    match r {
        NackReason::NoRoute => 1,
        NackReason::Duplicate => 2,
        NackReason::InvalidTag => 3,
        NackReason::AccessPathMismatch => 4,
    }
}

fn nack_reason_from(code: u8) -> Result<NackReason, WireError> {
    Ok(match code {
        1 => NackReason::NoRoute,
        2 => NackReason::Duplicate,
        3 => NackReason::InvalidTag,
        4 => NackReason::AccessPathMismatch,
        _ => return Err(WireError::Malformed("nack reason")),
    })
}

/// The on-the-wire size of a packet in bytes.
///
/// Equal to `encode(packet).len()`, but computed without building the
/// buffer — including for synthetic payloads, whose *logical* length is
/// charged as if the bytes were present (this is what the link model
/// transmits).
pub fn wire_size(packet: &Packet) -> usize {
    match packet {
        Packet::Interest(i) => interest_size(i),
        Packet::Data(d) => data_size(d),
        Packet::Nack(n) => HEADER_LEN + (HEADER_LEN + 1) + interest_size(n.interest()),
    }
}

fn name_size(name: &Name) -> usize {
    HEADER_LEN
        + name
            .components()
            .iter()
            .map(|c| HEADER_LEN + c.len())
            .sum::<usize>()
}

fn interest_size(i: &Interest) -> usize {
    HEADER_LEN
        + name_size(i.name())
        + (HEADER_LEN + 8)
        + (HEADER_LEN + 4)
        + i.extensions()
            .iter()
            .map(|(_, v)| HEADER_LEN + v.len())
            .sum::<usize>()
}

fn data_size(d: &Data) -> usize {
    let payload = match d.payload() {
        // Charge the logical content length on the wire.
        Payload::Synthetic(n) => HEADER_LEN + (*n).max(8),
        Payload::Bytes(b) => HEADER_LEN + b.len(),
    };
    HEADER_LEN
        + name_size(d.name())
        + payload
        + (HEADER_LEN + 4)
        + d.signature()
            .map_or(0, |_| HEADER_LEN + Signature::WIRE_LEN)
        + d.extensions()
            .iter()
            .map(|(_, v)| HEADER_LEN + v.len())
            .sum::<usize>()
}

/// Decodes a packet from its wire form.
///
/// # Errors
///
/// Returns a [`WireError`] on truncation, unknown framing, or malformed
/// fields.
pub fn decode(bytes: &[u8]) -> Result<Packet, WireError> {
    let mut r = Reader::new(bytes);
    let (ty, value) = r.read()?;
    match ty {
        TLV_INTEREST => Ok(Packet::Interest(decode_interest(value)?)),
        TLV_DATA => Ok(Packet::Data(decode_data(value)?)),
        TLV_NACK => {
            let mut inner = Reader::new(value);
            let reason = nack_reason_from(
                *inner
                    .expect(TLV_NACK_REASON)?
                    .first()
                    .ok_or(WireError::Malformed("nack reason"))?,
            )?;
            let interest = decode_interest(inner.expect(TLV_INTEREST)?)?;
            Ok(Packet::Nack(Nack::new(interest, reason)))
        }
        other => Err(WireError::UnexpectedType { found: other }),
    }
}

fn decode_interest(bytes: &[u8]) -> Result<Interest, WireError> {
    let mut r = Reader::new(bytes);
    let name = decode_name(r.expect(TLV_NAME)?)?;
    let nonce = u64_field(r.expect(TLV_NONCE)?)?;
    let lifetime = u32_field(r.expect(TLV_LIFETIME)?)?;
    let mut interest = Interest::new(name, nonce);
    interest.set_lifetime_ms(lifetime);
    while !r.done() {
        let (ty, v) = r.read()?;
        interest.set_extension(ty, v.to_vec());
    }
    Ok(interest)
}

fn decode_data(bytes: &[u8]) -> Result<Data, WireError> {
    let mut r = Reader::new(bytes);
    let name = decode_name(r.expect(TLV_NAME)?)?;
    let (pty, pval) = r.read()?;
    let payload = match pty {
        TLV_PAYLOAD_SYNTH => Payload::Synthetic(u64_field(pval)? as usize),
        TLV_PAYLOAD => Payload::Bytes(pval.into()),
        found => return Err(WireError::UnexpectedType { found }),
    };
    let mut data = Data::new(name, payload);
    data.set_freshness_ms(u32_field(r.expect(TLV_FRESHNESS)?)?);
    while !r.done() {
        let (ty, v) = r.read()?;
        if ty == TLV_SIGNATURE {
            let arr: [u8; 16] = v
                .try_into()
                .map_err(|_| WireError::Malformed("signature"))?;
            data.set_signature(Signature::from_bytes(arr));
        } else {
            data.set_extension(ty, v.to_vec());
        }
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tactic_crypto::schnorr::KeyPair;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn interest_roundtrip() {
        let mut i = Interest::new(name("/prov/obj/3"), 0xDEADBEEF);
        i.set_lifetime_ms(1_000);
        i.set_extension(0x8001, vec![1, 2, 3]);
        let wire = encode(&Packet::from(i.clone()));
        assert_eq!(decode(&wire).unwrap(), Packet::Interest(i));
    }

    #[test]
    fn data_roundtrip_with_signature_and_synthetic_payload() {
        let kp = KeyPair::derive(b"p", 0);
        let mut d = Data::new(name("/prov/obj/3"), Payload::Synthetic(1024));
        d.set_freshness_ms(2_000);
        d.set_extension(0x8002, vec![7]);
        d.set_signature(kp.sign(&d.signable_bytes()));
        let wire = encode(&Packet::from(d.clone()));
        let back = decode(&wire).unwrap();
        assert_eq!(back, Packet::Data(d));
    }

    #[test]
    fn data_roundtrip_with_real_bytes() {
        let d = Data::new(name("/x"), Payload::Bytes(vec![9; 33].into()));
        let wire = encode(&Packet::from(d.clone()));
        assert_eq!(decode(&wire).unwrap(), Packet::Data(d));
    }

    #[test]
    fn nack_roundtrip() {
        let i = Interest::new(name("/x/y"), 7);
        let n = Nack::new(i, NackReason::InvalidTag);
        let wire = encode(&Packet::from(n.clone()));
        assert_eq!(decode(&wire).unwrap(), Packet::Nack(n));
    }

    #[test]
    fn wire_size_matches_encoding_for_interest_and_nack() {
        let mut i = Interest::new(name("/a/bb/ccc"), 1);
        i.set_extension(0x8001, vec![0; 50]);
        let p = Packet::from(i);
        assert_eq!(wire_size(&p), encode(&p).len());
        let n = Packet::from(Nack::new(Interest::new(name("/z"), 2), NackReason::NoRoute));
        assert_eq!(wire_size(&n), encode(&n).len());
    }

    #[test]
    fn wire_size_charges_synthetic_payload() {
        let small = Packet::from(Data::new(name("/x"), Payload::Synthetic(0)));
        let big = Packet::from(Data::new(name("/x"), Payload::Synthetic(1024)));
        assert_eq!(wire_size(&big) - wire_size(&small), 1024 - 8);
        // For byte payloads the size matches the encoding exactly.
        let real = Packet::from(Data::new(name("/x"), Payload::Bytes(vec![0; 100].into())));
        assert_eq!(wire_size(&real), encode(&real).len());
    }

    #[test]
    fn truncated_buffers_error() {
        let wire = encode(&Packet::from(Interest::new(name("/a"), 1)));
        for cut in [0, 1, 5, wire.len() - 1] {
            assert!(decode(&wire[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn unknown_frame_type_errors() {
        let mut w = Writer::new();
        w.tlv(0x99, b"junk");
        assert_eq!(
            decode(&w.buf),
            Err(WireError::UnexpectedType { found: 0x99 })
        );
    }

    #[test]
    fn wire_error_display() {
        assert_eq!(WireError::Truncated.to_string(), "truncated packet");
        assert!(WireError::UnexpectedType { found: 0x99 }
            .to_string()
            .contains("0x0099"));
    }

    #[test]
    fn tag_sized_interest_is_a_couple_hundred_bytes() {
        // The paper (§4.A) estimates a tag at "a couple hundred bytes"; an
        // Interest carrying one should land in that ballpark.
        let mut i = Interest::new(name("/prov/obj/0"), 1);
        i.set_extension(0x8001, vec![0; 150]); // serialized tag
        let sz = wire_size(&Packet::from(i));
        assert!((150..400).contains(&sz), "interest size {sz}");
    }
}
