//! The Content Store: an LRU cache of Data packets.
//!
//! Pervasive caching is the ICN fundamental TACTIC is built around — any
//! router holding a copy becomes a *content router* for that object and
//! must enforce access control on cache hits (paper §3.A).
//!
//! Eviction is least-recently-used, implemented with a use-stamp index
//! (`BTreeMap<stamp, name>`), giving `O(log n)` insert/touch/evict.

use std::collections::{BTreeMap, HashMap};

use tactic_sim::time::SimTime;

use crate::name::Name;
use crate::packet::Data;

/// An LRU Data cache.
///
/// # Examples
///
/// ```
/// use tactic_ndn::cs::ContentStore;
/// use tactic_ndn::packet::{Data, Payload};
///
/// let mut cs = ContentStore::new(2);
/// cs.insert(Data::new("/a".parse()?, Payload::Synthetic(10)));
/// cs.insert(Data::new("/b".parse()?, Payload::Synthetic(10)));
/// cs.get(&"/a".parse()?); // touch /a so /b becomes LRU
/// cs.insert(Data::new("/c".parse()?, Payload::Synthetic(10)));
/// assert!(cs.get(&"/a".parse()?).is_some());
/// assert!(cs.get(&"/b".parse()?).is_none()); // evicted
/// # Ok::<(), tactic_ndn::name::ParseNameError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ContentStore {
    capacity: usize,
    entries: HashMap<Name, Entry>,
    order: BTreeMap<u64, Name>,
    clock: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    data: Data,
    stamp: u64,
    inserted: SimTime,
}

impl ContentStore {
    /// Creates a store holding at most `capacity` packets. A capacity of 0
    /// disables caching entirely.
    pub fn new(capacity: usize) -> Self {
        ContentStore {
            capacity,
            entries: HashMap::new(),
            order: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Inserts (or refreshes) a Data packet, evicting the LRU entry if at
    /// capacity. Equivalent to [`insert_at`](Self::insert_at) at time zero
    /// (callers that don't use freshness semantics).
    pub fn insert(&mut self, data: Data) {
        self.insert_at(data, SimTime::ZERO);
    }

    /// Inserts a Data packet, recording `now` as its arrival time for
    /// freshness accounting.
    pub fn insert_at(&mut self, data: Data, now: SimTime) {
        if self.capacity == 0 {
            return;
        }
        let name = data.name().clone();
        let stamp = self.next_stamp();
        let entry = Entry {
            data,
            stamp,
            inserted: now,
        };
        if let Some(old) = self.entries.insert(name.clone(), entry) {
            self.order.remove(&old.stamp);
        }
        self.order.insert(stamp, name);
        while self.entries.len() > self.capacity {
            let (&oldest, _) = self.order.iter().next().expect("non-empty order");
            let victim = self.order.remove(&oldest).expect("indexed name");
            self.entries.remove(&victim);
        }
    }

    /// Exact-name lookup; touches the entry on hit and updates hit/miss
    /// counters.
    pub fn get(&mut self, name: &Name) -> Option<&Data> {
        if !self.entries.contains_key(name) {
            self.misses += 1;
            return None;
        }
        self.hits += 1;
        let stamp = self.next_stamp();
        let entry = self.entries.get_mut(name).expect("checked above");
        self.order.remove(&entry.stamp);
        entry.stamp = stamp;
        self.order.insert(stamp, name.clone());
        Some(&entry.data)
    }

    /// Like [`get`](Self::get), but honours NDN's `MustBeFresh`: an entry
    /// whose [`Data::freshness_ms`] is nonzero only matches within that
    /// period of its insertion (`freshness_ms == 0` means always fresh, as
    /// documented on [`Data`]). Stale entries count as misses and are
    /// evicted.
    pub fn get_fresh(&mut self, name: &Name, now: SimTime) -> Option<&Data> {
        let stale = match self.entries.get(name) {
            None => {
                self.misses += 1;
                return None;
            }
            Some(e) => {
                let f = e.data.freshness_ms();
                f != 0
                    && now.saturating_since(e.inserted)
                        > tactic_sim::time::SimDuration::from_millis(f as u64)
            }
        };
        if stale {
            self.remove(name);
            self.misses += 1;
            return None;
        }
        self.get(name)
    }

    /// Exact-name peek without touching LRU order or counters.
    pub fn peek(&self, name: &Name) -> Option<&Data> {
        self.entries.get(name).map(|e| &e.data)
    }

    /// Removes an entry; returns whether it existed.
    pub fn remove(&mut self, name: &Name) -> bool {
        if let Some(old) = self.entries.remove(name) {
            self.order.remove(&old.stamp);
            true
        } else {
            false
        }
    }

    /// Current number of cached packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache hits observed by [`get`](Self::get).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed by [`get`](Self::get).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio over all lookups (0 if none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Payload;

    fn data(s: &str) -> Data {
        Data::new(s.parse().unwrap(), Payload::Synthetic(100))
    }

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_get() {
        let mut cs = ContentStore::new(10);
        cs.insert(data("/a"));
        assert!(cs.get(&name("/a")).is_some());
        assert!(cs.get(&name("/b")).is_none());
        assert_eq!(cs.hits(), 1);
        assert_eq!(cs.misses(), 1);
        assert_eq!(cs.hit_ratio(), 0.5);
    }

    #[test]
    fn lru_eviction_order() {
        let mut cs = ContentStore::new(3);
        cs.insert(data("/a"));
        cs.insert(data("/b"));
        cs.insert(data("/c"));
        cs.get(&name("/a")); // /b is now LRU
        cs.insert(data("/d"));
        assert!(cs.peek(&name("/a")).is_some());
        assert!(cs.peek(&name("/b")).is_none());
        assert!(cs.peek(&name("/c")).is_some());
        assert!(cs.peek(&name("/d")).is_some());
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_entry() {
        let mut cs = ContentStore::new(2);
        cs.insert(data("/a"));
        cs.insert(data("/b"));
        cs.insert(data("/a")); // refresh /a; /b becomes LRU
        cs.insert(data("/c"));
        assert!(cs.peek(&name("/a")).is_some());
        assert!(cs.peek(&name("/b")).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cs = ContentStore::new(0);
        cs.insert(data("/a"));
        assert!(cs.is_empty());
        assert!(cs.get(&name("/a")).is_none());
    }

    #[test]
    fn peek_does_not_touch() {
        let mut cs = ContentStore::new(2);
        cs.insert(data("/a"));
        cs.insert(data("/b"));
        cs.peek(&name("/a")); // must NOT protect /a
        cs.insert(data("/c"));
        assert!(cs.peek(&name("/a")).is_none());
        assert_eq!(cs.hits(), 0);
    }

    #[test]
    fn remove_works() {
        let mut cs = ContentStore::new(2);
        cs.insert(data("/a"));
        assert!(cs.remove(&name("/a")));
        assert!(!cs.remove(&name("/a")));
        assert!(cs.is_empty());
    }

    #[test]
    fn freshness_is_honoured_by_get_fresh() {
        let mut cs = ContentStore::new(4);
        let mut d = data("/fresh");
        d.set_freshness_ms(1_000);
        cs.insert_at(d, SimTime::from_secs(10));
        // Within the freshness period: a hit.
        assert!(cs
            .get_fresh(&name("/fresh"), SimTime::from_secs_f64(10.5))
            .is_some());
        // Past it: a miss, and the stale entry is evicted.
        assert!(cs
            .get_fresh(&name("/fresh"), SimTime::from_secs(12))
            .is_none());
        assert!(cs.peek(&name("/fresh")).is_none(), "stale entry evicted");
    }

    #[test]
    fn zero_freshness_means_always_fresh() {
        let mut cs = ContentStore::new(4);
        cs.insert_at(data("/eternal"), SimTime::ZERO);
        assert!(cs
            .get_fresh(&name("/eternal"), SimTime::from_secs(1_000_000))
            .is_some());
    }

    #[test]
    fn plain_get_ignores_freshness() {
        let mut cs = ContentStore::new(4);
        let mut d = data("/stale-ok");
        d.set_freshness_ms(1);
        cs.insert_at(d, SimTime::ZERO);
        assert!(
            cs.get(&name("/stale-ok")).is_some(),
            "get is freshness-agnostic"
        );
    }

    #[test]
    fn stress_capacity_respected() {
        let mut cs = ContentStore::new(50);
        for i in 0..1_000 {
            cs.insert(data(&format!("/obj/{i}")));
            assert!(cs.len() <= 50);
        }
        // The newest 50 must all be present.
        for i in 950..1_000 {
            assert!(
                cs.peek(&name(&format!("/obj/{i}"))).is_some(),
                "missing /obj/{i}"
            );
        }
    }
}
