//! Property-based tests for the NDN substrate: codec round-trips and
//! table invariants.

use proptest::prelude::*;

use tactic_ndn::cs::ContentStore;
use tactic_ndn::face::FaceId;
use tactic_ndn::fib::Fib;
use tactic_ndn::name::{Component, Name};
use tactic_ndn::packet::{Data, Interest, Nack, NackReason, Packet, Payload};
use tactic_ndn::pit::Pit;
use tactic_ndn::wire;
use tactic_sim::time::SimTime;

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..12), 0..5)
        .prop_map(|comps| Name::from_components(comps.into_iter().map(Component::new).collect()))
}

fn arb_interest() -> impl Strategy<Value = Interest> {
    (
        arb_name(),
        any::<u64>(),
        1u32..100_000,
        proptest::collection::vec(
            (
                0x8000u16..0x9000,
                proptest::collection::vec(any::<u8>(), 0..64),
            ),
            0..4,
        ),
    )
        .prop_map(|(name, nonce, lifetime, exts)| {
            let mut i = Interest::new(name, nonce);
            i.set_lifetime_ms(lifetime);
            for (t, v) in exts {
                i.set_extension(t, v);
            }
            i
        })
}

fn arb_data() -> impl Strategy<Value = Data> {
    (
        arb_name(),
        prop_oneof![
            (0usize..100_000).prop_map(Payload::Synthetic),
            proptest::collection::vec(any::<u8>(), 0..256)
                .prop_map(|v: Vec<u8>| Payload::Bytes(v.into())),
        ],
        any::<u32>(),
        proptest::collection::vec(
            (
                0x8000u16..0x9000,
                proptest::collection::vec(any::<u8>(), 0..64),
            ),
            0..4,
        ),
    )
        .prop_map(|(name, payload, freshness, exts)| {
            let mut d = Data::new(name, payload);
            d.set_freshness_ms(freshness);
            for (t, v) in exts {
                d.set_extension(t, v);
            }
            d
        })
}

proptest! {
    #[test]
    fn name_uri_roundtrip(name in arb_name()) {
        let uri = name.to_string();
        let back: Name = uri.parse().unwrap();
        prop_assert_eq!(back, name);
    }

    #[test]
    fn name_prefix_relation_is_reflexive_and_monotone(name in arb_name(), take in 0usize..6) {
        prop_assert!(name.is_prefix_of(&name));
        let p = name.prefix(take);
        prop_assert!(p.is_prefix_of(&name));
        prop_assert!(p.len() <= name.len());
    }

    #[test]
    fn name_prefix_view_equals_owned_rebuild(name in arb_name(), take in 0usize..6) {
        // A prefix is a view sharing the parent's interned buffer; it must
        // be indistinguishable from a name built from scratch out of the
        // same components — equality, ordering, and hashing included.
        let take = take.min(name.len());
        let view = name.prefix(take);
        let owned = Name::from_components(name.components()[..take].to_vec());
        prop_assert_eq!(&view, &owned);
        prop_assert_eq!(view.cmp(&owned), std::cmp::Ordering::Equal);
        let mut map = std::collections::HashMap::new();
        map.insert(owned, 7u32);
        prop_assert_eq!(map.get(&view), Some(&7));
    }

    #[test]
    fn name_hash_is_repr_independent(name in arb_name()) {
        // The precomputed hash must depend only on the component bytes,
        // never on how the name was produced (parsed, rebuilt, cloned).
        use std::hash::{BuildHasher, RandomState};
        let s = RandomState::new();
        let reparsed: Name = name.to_string().parse().unwrap();
        let rebuilt = Name::from_components(name.components().to_vec());
        prop_assert_eq!(s.hash_one(&name), s.hash_one(&reparsed));
        prop_assert_eq!(s.hash_one(&name), s.hash_one(&rebuilt));
        #[allow(clippy::redundant_clone)]
        let cloned = name.clone();
        prop_assert_eq!(s.hash_one(&name), s.hash_one(&cloned));
    }

    #[test]
    fn prefix_compare_matches_structural_definition(a in arb_name(), b in arb_name()) {
        let structural = a.len() <= b.len() && a.components() == &b.components()[..a.len()];
        prop_assert_eq!(a.is_prefix_of(&b), structural);
    }

    #[test]
    fn interest_wire_roundtrip(interest in arb_interest()) {
        let pkt = Packet::from(interest);
        let encoded = wire::encode(&pkt);
        prop_assert_eq!(wire::wire_size(&pkt), encoded.len());
        prop_assert_eq!(wire::decode(&encoded).unwrap(), pkt);
    }

    #[test]
    fn data_wire_roundtrip(data in arb_data()) {
        let pkt = Packet::from(data);
        let encoded = wire::encode(&pkt);
        prop_assert_eq!(wire::decode(&encoded).unwrap(), pkt);
    }

    #[test]
    fn nack_wire_roundtrip(interest in arb_interest()) {
        let pkt = Packet::from(Nack::new(interest, NackReason::InvalidTag));
        let encoded = wire::encode(&pkt);
        prop_assert_eq!(wire::wire_size(&pkt), encoded.len());
        prop_assert_eq!(wire::decode(&encoded).unwrap(), pkt);
    }

    #[test]
    fn mutated_wire_never_panics(
        data in arb_data(),
        flips in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8),
    ) {
        // Corrupt arbitrary bytes of a valid encoding — including TLV
        // length fields, whose forged values feed the reader's offset
        // arithmetic — and require a clean Ok/Err, never a panic.
        let mut encoded = wire::encode(&Packet::from(data));
        for (pos, byte) in flips {
            let idx = pos % encoded.len();
            encoded[idx] = byte;
        }
        let _ = wire::decode(&encoded);
    }

    #[test]
    fn forged_max_length_tlv_is_rejected_not_panicking(data in arb_data()) {
        // Overwrite the outermost TLV length with u32::MAX: the reader's
        // `start + len` must fail closed as Truncated (an unchecked add
        // would wrap on 32-bit targets and mis-slice).
        let mut encoded = wire::encode(&Packet::from(data));
        encoded[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        prop_assert_eq!(wire::decode(&encoded), Err(wire::WireError::Truncated));
    }

    #[test]
    fn truncated_wire_never_panics(data in arb_data(), cut_frac in 0.0f64..1.0) {
        let encoded = wire::encode(&Packet::from(data));
        let cut = ((encoded.len() as f64) * cut_frac) as usize;
        // Must error or produce a packet, never panic.
        let _ = wire::decode(&encoded[..cut]);
    }

    #[test]
    fn fib_lpm_returns_a_registered_prefix(prefixes in proptest::collection::vec(arb_name(), 1..10), lookup in arb_name()) {
        let mut fib = Fib::new();
        for (i, p) in prefixes.iter().enumerate() {
            fib.add_route(p.clone(), FaceId::new(i as u32), 1);
        }
        if let Some(hops) = fib.lookup(&lookup) {
            prop_assert!(!hops.is_empty());
            // The matched prefix must actually prefix the lookup name.
            let matched = &prefixes[hops[0].face.index() as usize];
            prop_assert!(matched.is_prefix_of(&lookup) || prefixes.iter().any(|p| p.is_prefix_of(&lookup)));
        } else {
            prop_assert!(prefixes.iter().all(|p| !p.is_prefix_of(&lookup)));
        }
    }

    #[test]
    fn cs_never_exceeds_capacity(cap in 1usize..50, names in proptest::collection::vec(arb_name(), 0..100)) {
        let mut cs = ContentStore::new(cap);
        for n in &names {
            cs.insert(Data::new(n.clone(), Payload::Synthetic(1)));
            prop_assert!(cs.len() <= cap);
        }
    }

    #[test]
    fn pit_aggregation_preserves_all_records(name in arb_name(), faces in proptest::collection::vec(0u32..100, 1..20)) {
        let mut pit = Pit::new();
        let mut expected = 0;
        for (i, &f) in faces.iter().enumerate() {
            let r = pit.on_interest(&name, FaceId::new(f), i as u64, SimTime::from_secs(10), vec![i as u8]);
            if r != tactic_ndn::pit::PitInsert::DuplicateNonce {
                expected += 1;
            }
        }
        let entry = pit.take(&name).unwrap();
        prop_assert_eq!(entry.records().len(), expected);
    }
}
