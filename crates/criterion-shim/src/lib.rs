//! An offline, dependency-free stand-in for the [`criterion`] crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the real `criterion` cannot be vendored. This crate implements the
//! API subset the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::default().sample_size(..)
//! .warm_up_time(..).measurement_time(..)`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId::from_parameter`, and `BatchSize` — with
//! plain wall-clock timing and mean/min/max reporting instead of
//! criterion's statistical machinery.
//!
//! Under `cargo bench` (cargo passes `--bench` to the binary) every
//! benchmark is warmed up and measured for the configured durations.
//! Under `cargo test` (no `--bench` flag) each benchmark body runs once,
//! as a smoke test, so the suite stays fast.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `Bencher::iter_batched` amortises setup cost. The stand-in runs
/// setup before every routine invocation regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier (`BenchmarkId::from_parameter(size)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level benchmark configuration and driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    quick: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            quick: true,
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Applies cargo's CLI contract: `--bench` selects full measurement,
    /// anything else (e.g. `cargo test`) selects one-shot smoke mode; a
    /// bare argument is a substring filter on benchmark names. An explicit
    /// `--test` wins over `--bench` wherever it appears (cargo appends
    /// `--bench` after user-supplied arguments).
    pub fn configure_from_args(&mut self) {
        let mut bench = false;
        let mut test = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench = true,
                "--test" => test = true,
                a if !a.starts_with('-') => self.filter = Some(a.to_string()),
                _ => {}
            }
        }
        self.quick = !bench || test;
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// A stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.to_string(), None, f);
        self
    }

    fn run_one<F>(&self, id: String, sample_override: Option<usize>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            quick: self.quick,
            sample_size: sample_override.unwrap_or(self.sample_size),
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&id);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.criterion
            .run_one(format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; drives the timing loop.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration for each recorded sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` back to back.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if self.quick {
            black_box(routine());
            return;
        }
        // Warm up while calibrating how many iterations one sample needs
        // for the measurement window to cover `sample_size` samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter) as u64).max(1);

        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.quick {
            black_box(routine(setup()));
            return;
        }
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_spent = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            warm_spent += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = (warm_spent.as_secs_f64() / warm_iters as f64).max(1e-9);
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter) as u64).clamp(1, 1 << 20);

        for _ in 0..self.sample_size {
            let mut spent = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                spent += t.elapsed();
            }
            self.samples
                .push(spent.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.quick {
            println!("{id}: ok (smoke)");
            return;
        }
        let n = self.samples.len().max(1) as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{id:<56} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark targets sharing one configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            criterion.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
