//! Protocol 1 — the tag pre-check.
//!
//! A "low-cost tag pre-check ... employed by routers in `R_E` and `R_C^c`
//! to validate the received tag using the tag's `AL_u`, expiry time, and
//! provider's name prefix *before* the more expensive BF lookup and
//! signature verification operations" (§5).

use tactic_ndn::name::Name;
use tactic_sim::time::SimTime;

use crate::access::AccessLevel;
use crate::tag::Tag;

/// Why a tag failed the pre-check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreCheckError {
    /// Edge: `N(Pub_p^T) != N(D)` — the tag belongs to another provider
    /// (Protocol 1, lines 1–2).
    PrefixMismatch {
        /// The provider prefix in the tag.
        tag_prefix: Name,
        /// The prefix of the requested content.
        content_prefix: Name,
    },
    /// Edge: `T_e < T_current` — the tag expired (lines 3–4); expiry is
    /// the revocation mechanism.
    Expired {
        /// When the tag expired.
        expiry: SimTime,
        /// The current time.
        now: SimTime,
    },
    /// Content router: `AL_D > AL_u^T` — insufficient access level
    /// (lines 8–9).
    InsufficientAccessLevel {
        /// The content's required level.
        required: AccessLevel,
        /// The level granted by the tag.
        granted: AccessLevel,
    },
    /// Content router: `Pub_p^D != Pub_p^T` — the provider key locator in
    /// the content does not match the tag's (lines 10–11).
    ProviderKeyMismatch,
}

impl std::fmt::Display for PreCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreCheckError::PrefixMismatch {
                tag_prefix,
                content_prefix,
            } => {
                write!(
                    f,
                    "tag prefix {tag_prefix} does not match content prefix {content_prefix}"
                )
            }
            PreCheckError::Expired { expiry, now } => {
                write!(f, "tag expired at {expiry} (now {now})")
            }
            PreCheckError::InsufficientAccessLevel { required, granted } => {
                write!(f, "content requires {required} but tag grants {granted}")
            }
            PreCheckError::ProviderKeyMismatch => write!(f, "provider key locator mismatch"),
        }
    }
}

impl std::error::Error for PreCheckError {}

impl PreCheckError {
    /// The payload-free telemetry label for this rejection (the hook
    /// vocabulary lives below `tactic` in the crate graph, so it cannot
    /// carry the `Name`/`SimTime` details).
    pub fn telemetry_reason(&self) -> tactic_telemetry::RejectReason {
        use tactic_telemetry::RejectReason as R;
        match self {
            PreCheckError::PrefixMismatch { .. } => R::PrefixMismatch,
            PreCheckError::Expired { .. } => R::Expired,
            PreCheckError::InsufficientAccessLevel { .. } => R::InsufficientAccessLevel,
            PreCheckError::ProviderKeyMismatch => R::ProviderKeyMismatch,
        }
    }
}

/// The edge-router half of Protocol 1: provider-prefix match and expiry.
///
/// # Errors
///
/// [`PreCheckError::PrefixMismatch`] or [`PreCheckError::Expired`].
pub fn edge_precheck(tag: &Tag, content_name: &Name, now: SimTime) -> Result<(), PreCheckError> {
    let tag_prefix = tag.provider_prefix();
    let content_prefix = content_name.prefix(1);
    if tag_prefix != content_prefix {
        return Err(PreCheckError::PrefixMismatch {
            tag_prefix,
            content_prefix,
        });
    }
    if tag.is_expired(now) {
        return Err(PreCheckError::Expired {
            expiry: tag.expiry,
            now,
        });
    }
    Ok(())
}

/// The content-router half of Protocol 1: access level and provider key
/// locator against the (signed) fields embedded in the content.
///
/// # Errors
///
/// [`PreCheckError::InsufficientAccessLevel`] or
/// [`PreCheckError::ProviderKeyMismatch`].
pub fn content_precheck(
    tag: &Tag,
    content_access_level: AccessLevel,
    content_key_locator: &Name,
) -> Result<(), PreCheckError> {
    if !tag.access_level.satisfies(content_access_level) {
        return Err(PreCheckError::InsufficientAccessLevel {
            required: content_access_level,
            granted: tag.access_level,
        });
    }
    if content_key_locator != &tag.provider_key_locator {
        return Err(PreCheckError::ProviderKeyMismatch);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_path::AccessPath;

    fn tag() -> Tag {
        Tag {
            provider_key_locator: "/prov0/KEY/1".parse().unwrap(),
            access_level: AccessLevel::Level(2),
            client_key_locator: "/prov0/users/u/KEY".parse().unwrap(),
            access_path: AccessPath::EMPTY,
            expiry: SimTime::from_secs(10),
        }
    }

    #[test]
    fn edge_accepts_valid() {
        let name: Name = "/prov0/obj1/3".parse().unwrap();
        assert!(edge_precheck(&tag(), &name, SimTime::from_secs(5)).is_ok());
    }

    #[test]
    fn edge_rejects_cross_provider_use() {
        // Threat: "a client using a valid tag of Provider A to retrieve a
        // content from Provider B" (§6.A).
        let name: Name = "/prov1/obj1/3".parse().unwrap();
        let err = edge_precheck(&tag(), &name, SimTime::from_secs(5)).unwrap_err();
        assert!(matches!(err, PreCheckError::PrefixMismatch { .. }));
    }

    #[test]
    fn edge_rejects_expired() {
        let name: Name = "/prov0/obj1/3".parse().unwrap();
        let err = edge_precheck(&tag(), &name, SimTime::from_secs(10)).unwrap_err();
        assert!(matches!(err, PreCheckError::Expired { .. }));
    }

    #[test]
    fn prefix_checked_before_expiry() {
        // Protocol 1 orders the checks: prefix first.
        let name: Name = "/prov9/obj1/3".parse().unwrap();
        let err = edge_precheck(&tag(), &name, SimTime::from_secs(99)).unwrap_err();
        assert!(matches!(err, PreCheckError::PrefixMismatch { .. }));
    }

    #[test]
    fn content_accepts_sufficient_level() {
        let loc: Name = "/prov0/KEY/1".parse().unwrap();
        assert!(content_precheck(&tag(), AccessLevel::Level(2), &loc).is_ok());
        assert!(content_precheck(&tag(), AccessLevel::Level(0), &loc).is_ok());
        assert!(content_precheck(&tag(), AccessLevel::Public, &loc).is_ok());
    }

    #[test]
    fn content_rejects_higher_requirement() {
        let loc: Name = "/prov0/KEY/1".parse().unwrap();
        let err = content_precheck(&tag(), AccessLevel::Level(3), &loc).unwrap_err();
        assert_eq!(
            err,
            PreCheckError::InsufficientAccessLevel {
                required: AccessLevel::Level(3),
                granted: AccessLevel::Level(2)
            }
        );
    }

    #[test]
    fn content_rejects_key_mismatch() {
        let loc: Name = "/prov0/KEY/2".parse().unwrap();
        let err = content_precheck(&tag(), AccessLevel::Level(1), &loc).unwrap_err();
        assert_eq!(err, PreCheckError::ProviderKeyMismatch);
    }

    #[test]
    fn errors_display() {
        let e = PreCheckError::Expired {
            expiry: SimTime::from_secs(1),
            now: SimTime::from_secs(2),
        };
        assert!(e.to_string().contains("expired"));
        assert!(PreCheckError::ProviderKeyMismatch
            .to_string()
            .contains("mismatch"));
    }
}
