//! Traitor tracing — the paper's §9 future work, implemented.
//!
//! "In future, we plan to augment our mechanism with a traitor tracing
//! feature for preventing the clients from sharing their tags with
//! unauthorized users and thwarting replay attack."
//!
//! The mechanism: edge routers already see, for every tagged Interest, the
//! tag's client identity (the client key locator) and the access path the
//! request actually accumulated. A client who shares her tag necessarily
//! causes the *same identity* to appear with *conflicting access paths*
//! (or at different edge routers) within one tag-validity window — even
//! when access-path *enforcement* is off, the observations alone convict.
//! [`TraitorTracer`] aggregates such sightings and emits
//! [`TraitorAlert`]s; a provider can feed alerts into
//! [`crate::provider::Provider::revoke`], after which expiry finishes the
//! job.

use std::collections::HashMap;

use tactic_sim::time::{SimDuration, SimTime};

use crate::access_path::AccessPath;

/// One observation of a tag identity at an edge router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sighting {
    /// The tag's client identity (digest of the client key locator —
    /// stable across tag refreshes).
    pub identity: u64,
    /// The access path accumulated in the observed request.
    pub observed_path: AccessPath,
    /// The observing edge router (node id).
    pub edge_router: u64,
    /// When the request was observed.
    pub at: SimTime,
}

/// Evidence that a tag identity was used from multiple locations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraitorAlert {
    /// The convicted identity.
    pub identity: u64,
    /// The first sighting (the "home" location).
    pub first: Sighting,
    /// The conflicting sighting that triggered the alert.
    pub conflict: Sighting,
}

impl TraitorAlert {
    /// Time between the two conflicting sightings.
    pub fn spread(&self) -> SimDuration {
        self.conflict.at.saturating_since(self.first.at)
    }
}

/// Aggregates sightings and flags identities seen from conflicting
/// locations within a window.
///
/// # Examples
///
/// ```
/// use tactic::access_path::AccessPath;
/// use tactic::traitor::{Sighting, TraitorTracer};
/// use tactic_sim::time::{SimDuration, SimTime};
///
/// let mut tracer = TraitorTracer::new(SimDuration::from_secs(10));
/// let home = Sighting {
///     identity: 7,
///     observed_path: AccessPath::of([100]),
///     edge_router: 1,
///     at: SimTime::from_secs(1),
/// };
/// assert!(tracer.observe(home).is_none());
///
/// // The same tag identity appears behind a different access point:
/// let away = Sighting { observed_path: AccessPath::of([200]), edge_router: 2, at: SimTime::from_secs(2), ..home };
/// let alert = tracer.observe(away).expect("conflict detected");
/// assert_eq!(alert.identity, 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraitorTracer {
    window: SimDuration,
    last_seen: HashMap<u64, Sighting>,
    alerts: Vec<TraitorAlert>,
    flagged: HashMap<u64, usize>,
}

impl TraitorTracer {
    /// Creates a tracer; sightings of one identity more than `window`
    /// apart never conflict (clients legitimately move — the paper has
    /// them re-register at the new location, changing the tag's frozen
    /// path but not its identity).
    pub fn new(window: SimDuration) -> Self {
        TraitorTracer {
            window,
            ..Default::default()
        }
    }

    /// Ingests one sighting; returns an alert if it conflicts with a
    /// recent sighting of the same identity from another location.
    pub fn observe(&mut self, s: Sighting) -> Option<TraitorAlert> {
        let previous = self.last_seen.insert(s.identity, s);
        let prev = previous?;
        let recent = s.at.saturating_since(prev.at) <= self.window;
        let conflicting =
            prev.observed_path != s.observed_path || prev.edge_router != s.edge_router;
        if recent && conflicting {
            let alert = TraitorAlert {
                identity: s.identity,
                first: prev,
                conflict: s,
            };
            *self.flagged.entry(s.identity).or_insert(0) += 1;
            self.alerts.push(alert.clone());
            return Some(alert);
        }
        None
    }

    /// Ingests a batch, returning all alerts raised. Sightings should be
    /// fed in (roughly) chronological order.
    pub fn observe_all<I: IntoIterator<Item = Sighting>>(
        &mut self,
        sightings: I,
    ) -> Vec<TraitorAlert> {
        sightings
            .into_iter()
            .filter_map(|s| self.observe(s))
            .collect()
    }

    /// Every alert raised so far.
    pub fn alerts(&self) -> &[TraitorAlert] {
        &self.alerts
    }

    /// Identities flagged at least once, with their conflict counts.
    pub fn flagged(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.flagged.iter().map(|(&id, &n)| (id, n))
    }

    /// True if `identity` has been flagged.
    pub fn is_flagged(&self, identity: u64) -> bool {
        self.flagged.contains_key(&identity)
    }

    /// Drops per-identity state older than the window (bounded memory for
    /// long-running deployments).
    pub fn prune(&mut self, now: SimTime) {
        let window = self.window;
        self.last_seen
            .retain(|_, s| now.saturating_since(s.at) <= window);
    }

    /// Number of identities currently tracked.
    pub fn tracked(&self) -> usize {
        self.last_seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sight(identity: u64, ap: u64, edge: u64, secs: u64) -> Sighting {
        Sighting {
            identity,
            observed_path: AccessPath::of([ap]),
            edge_router: edge,
            at: SimTime::from_secs(secs),
        }
    }

    #[test]
    fn consistent_location_never_alerts() {
        let mut t = TraitorTracer::new(SimDuration::from_secs(10));
        for s in 0..100 {
            assert!(t.observe(sight(7, 100, 1, s)).is_none());
        }
        assert!(t.alerts().is_empty());
        assert!(!t.is_flagged(7));
    }

    #[test]
    fn conflicting_paths_alert() {
        let mut t = TraitorTracer::new(SimDuration::from_secs(10));
        t.observe(sight(7, 100, 1, 1));
        let alert = t.observe(sight(7, 200, 2, 2)).expect("conflict");
        assert_eq!(alert.identity, 7);
        assert_eq!(alert.spread(), SimDuration::from_secs(1));
        assert!(t.is_flagged(7));
    }

    #[test]
    fn same_path_different_edge_also_alerts() {
        // An identical rolling hash at a different edge router is still a
        // location conflict (distinct APs can collide in XOR space).
        let mut t = TraitorTracer::new(SimDuration::from_secs(10));
        t.observe(sight(7, 100, 1, 1));
        assert!(t
            .observe(Sighting {
                edge_router: 2,
                ..sight(7, 100, 1, 2)
            })
            .is_some());
    }

    #[test]
    fn slow_movement_is_not_a_conflict() {
        // A client who moved and re-registered appears at the new location
        // only after the window: legitimate mobility.
        let mut t = TraitorTracer::new(SimDuration::from_secs(10));
        t.observe(sight(7, 100, 1, 1));
        assert!(t.observe(sight(7, 200, 2, 20)).is_none());
        assert!(!t.is_flagged(7));
    }

    #[test]
    fn interleaved_sharing_produces_repeated_alerts() {
        let mut t = TraitorTracer::new(SimDuration::from_secs(10));
        let mut alerts = 0;
        for s in 0..10 {
            let ap = if s % 2 == 0 { 100 } else { 200 };
            let edge = if s % 2 == 0 { 1 } else { 2 };
            if t.observe(sight(7, ap, edge, s)).is_some() {
                alerts += 1;
            }
        }
        assert!(
            alerts >= 8,
            "ping-ponging identity must keep alerting ({alerts})"
        );
        let (id, n) = t.flagged().next().unwrap();
        assert_eq!(id, 7);
        assert_eq!(n, alerts);
    }

    #[test]
    fn distinct_identities_do_not_cross_talk() {
        let mut t = TraitorTracer::new(SimDuration::from_secs(10));
        t.observe(sight(7, 100, 1, 1));
        assert!(t.observe(sight(8, 200, 2, 2)).is_none());
    }

    #[test]
    fn observe_all_batches() {
        let mut t = TraitorTracer::new(SimDuration::from_secs(10));
        let alerts = t.observe_all(vec![
            sight(7, 100, 1, 1),
            sight(8, 100, 1, 1),
            sight(7, 200, 2, 2),
            sight(8, 100, 1, 3),
        ]);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].identity, 7);
    }

    #[test]
    fn prune_bounds_memory() {
        let mut t = TraitorTracer::new(SimDuration::from_secs(10));
        for id in 0..100 {
            t.observe(sight(id, 100, 1, 1));
        }
        assert_eq!(t.tracked(), 100);
        t.prune(SimTime::from_secs(100));
        assert_eq!(t.tracked(), 0);
        // Alerts survive pruning.
        t.observe(sight(7, 100, 1, 101));
        t.observe(sight(7, 200, 2, 102));
        t.prune(SimTime::from_secs(200));
        assert_eq!(t.alerts().len(), 1);
    }
}
