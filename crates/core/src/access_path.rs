//! Access paths (`AP_u`).
//!
//! "Client u's access path is the XOR of the hashed identity of all
//! network entities between u and [its edge router] r_E (excluding r_E).
//! Each intermediate entity ... adds its identity to the rolling hash"
//! (§4.A). The edge router compares the access path accumulated in the
//! request with the one frozen into the tag at registration; a mismatch
//! means the tag is being used from a different location (shared-tag
//! attack, threat (e)).
//!
//! The paper's own simulation left this feature out ("we left the
//! implementation of the access path feature as part of our future work",
//! §8.A); this library implements it fully, off by default in paper-replica
//! scenarios and exercised by the access-path ablation.

use tactic_crypto::hash::Hasher64;

/// A rolling XOR-of-hashed-identities accumulator.
///
/// # Examples
///
/// ```
/// use tactic::access_path::AccessPath;
///
/// // Client 7 behind access point 42:
/// let at_registration = AccessPath::EMPTY.extended(7).extended(42);
/// let in_request = AccessPath::EMPTY.extended(7).extended(42);
/// assert_eq!(at_registration, in_request);
///
/// // Same tag replayed from behind a different AP:
/// let elsewhere = AccessPath::EMPTY.extended(7).extended(99);
/// assert_ne!(at_registration, elsewhere);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AccessPath(u64);

impl AccessPath {
    /// The empty path (no entities accumulated yet).
    pub const EMPTY: AccessPath = AccessPath(0);

    /// Hashes one entity identity into the path (XOR, so order-independent
    /// and self-inverse — exactly the paper's rolling construction).
    pub fn extended(self, entity_id: u64) -> AccessPath {
        let mut h = Hasher64::with_seed(0xAC_CE55_0A77); // "access path"
        h.update_u64(entity_id);
        AccessPath(self.0 ^ h.finish())
    }

    /// Accumulates a whole path of entity identities.
    pub fn of(entities: impl IntoIterator<Item = u64>) -> AccessPath {
        entities
            .into_iter()
            .fold(AccessPath::EMPTY, AccessPath::extended)
    }

    /// The raw accumulator value (for wire encoding).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds from the wire encoding.
    pub fn from_u64(v: u64) -> AccessPath {
        AccessPath(v)
    }
}

impl std::fmt::Display for AccessPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ap:{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_is_order_independent() {
        let a = AccessPath::of([1, 2, 3]);
        let b = AccessPath::of([3, 1, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_entities_differ() {
        assert_ne!(AccessPath::of([1, 2]), AccessPath::of([1, 3]));
        assert_ne!(AccessPath::of([1]), AccessPath::EMPTY);
    }

    #[test]
    fn identities_are_hashed_not_raw() {
        // XOR of raw ids would collide for {1,2,3} vs {0} (1^2^3 == 0);
        // hashing prevents that trivial forgery.
        assert_ne!(AccessPath::of([1, 2, 3]), AccessPath::of([0]));
        assert_ne!(AccessPath::of([1, 2, 3]).as_u64(), 0);
    }

    #[test]
    fn self_inverse_models_leaving_the_path() {
        let with = AccessPath::of([10, 20]);
        let without = with.extended(20);
        assert_eq!(without, AccessPath::of([10]));
    }

    #[test]
    fn wire_roundtrip() {
        let ap = AccessPath::of([5, 6, 7]);
        assert_eq!(AccessPath::from_u64(ap.as_u64()), ap);
    }
}
