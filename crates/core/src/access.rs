//! Hierarchical access levels.
//!
//! A provider assigns each content object an access level `AL_D`, embedded
//! (and signed) in the content packets; each tag carries the client's
//! granted level `AL_u`. The paper's model is hierarchical: "tags with
//! higher access levels can retrieve content with lower access levels
//! (`AL_D ≤ AL_u`)" (§5), and "we set the `AL_D` of a publicly available
//! data to NULL, which allows [a content router] to return the requested
//! content without tag verification".

/// An access level: `Public` (the paper's NULL) or a rank in a hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessLevel {
    /// Publicly available content; no tag required.
    #[default]
    Public,
    /// A ranked level; higher grants subsume lower requirements.
    Level(u8),
}

impl AccessLevel {
    /// True if a tag granted `self` satisfies content requiring `required`
    /// (`AL_D ≤ AL_u` with `Public` as the bottom).
    ///
    /// # Examples
    ///
    /// ```
    /// use tactic::access::AccessLevel;
    ///
    /// assert!(AccessLevel::Level(3).satisfies(AccessLevel::Level(1)));
    /// assert!(!AccessLevel::Level(1).satisfies(AccessLevel::Level(3)));
    /// assert!(AccessLevel::Public.satisfies(AccessLevel::Public));
    /// ```
    pub fn satisfies(self, required: AccessLevel) -> bool {
        self.rank() >= required.rank()
    }

    /// True for public (NULL) content.
    pub fn is_public(self) -> bool {
        matches!(self, AccessLevel::Public)
    }

    /// Numeric rank with `Public` at the bottom.
    fn rank(self) -> u16 {
        match self {
            AccessLevel::Public => 0,
            AccessLevel::Level(l) => 1 + l as u16,
        }
    }

    /// Single-byte wire encoding.
    pub fn to_byte(self) -> u8 {
        match self {
            AccessLevel::Public => 0,
            AccessLevel::Level(l) => l.saturating_add(1).max(1),
        }
    }

    /// Decodes the single-byte form.
    pub fn from_byte(b: u8) -> Self {
        if b == 0 {
            AccessLevel::Public
        } else {
            AccessLevel::Level(b - 1)
        }
    }
}

impl PartialOrd for AccessLevel {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AccessLevel {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl std::fmt::Display for AccessLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessLevel::Public => write!(f, "NULL"),
            AccessLevel::Level(l) => write!(f, "AL{l}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_is_respected() {
        assert!(AccessLevel::Level(5).satisfies(AccessLevel::Level(5)));
        assert!(AccessLevel::Level(5).satisfies(AccessLevel::Level(0)));
        assert!(!AccessLevel::Level(0).satisfies(AccessLevel::Level(5)));
    }

    #[test]
    fn public_is_bottom() {
        assert!(AccessLevel::Level(0).satisfies(AccessLevel::Public));
        assert!(AccessLevel::Public.satisfies(AccessLevel::Public));
        assert!(!AccessLevel::Public.satisfies(AccessLevel::Level(0)));
    }

    #[test]
    fn byte_roundtrip() {
        for al in [
            AccessLevel::Public,
            AccessLevel::Level(0),
            AccessLevel::Level(7),
            AccessLevel::Level(254),
        ] {
            assert_eq!(AccessLevel::from_byte(al.to_byte()), al);
        }
    }

    #[test]
    fn ordering_matches_satisfies() {
        let mut levels = vec![
            AccessLevel::Level(3),
            AccessLevel::Public,
            AccessLevel::Level(1),
        ];
        levels.sort();
        assert_eq!(
            levels,
            vec![
                AccessLevel::Public,
                AccessLevel::Level(1),
                AccessLevel::Level(3)
            ]
        );
    }

    #[test]
    fn display_uses_paper_terms() {
        assert_eq!(AccessLevel::Public.to_string(), "NULL");
        assert_eq!(AccessLevel::Level(2).to_string(), "AL2");
    }
}
