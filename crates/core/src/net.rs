//! The event-driven network: topology + routers + providers + consumers
//! wired into the discrete-event engine.
//!
//! This is the reproduction's equivalent of the paper's ndnSIM scenario:
//! store-and-forward links with per-link FIFO serialisation (500 Mbps/1 ms
//! core, 10 Mbps/2 ms edge), access points that accumulate the access
//! path, routers running Protocols 1–4, providers issuing tags, and
//! Zipf-window consumers.

use std::collections::HashMap;

use tactic_crypto::cert::{CertStore, Certificate};
use tactic_crypto::schnorr::KeyPair;
use tactic_ndn::face::FaceId;
use tactic_ndn::name::Name;
use tactic_ndn::packet::Packet;
use tactic_ndn::wire::wire_size;
use tactic_sim::cost::CostModel;
use tactic_sim::engine::Engine;
use tactic_sim::rng::Rng;
use tactic_sim::time::{SimDuration, SimTime};
use tactic_topology::graph::{LinkSpec, NodeId, Role};
use tactic_topology::roles::{build_topology, Topology};
use tactic_topology::routing::routes_toward;

use crate::access::AccessLevel;
use crate::access_path::AccessPath;
use crate::consumer::{AttackerStrategy, CatalogEntry, Consumer, ConsumerConfig, ConsumerKind};
use crate::ext;
use crate::metrics::RunReport;
use crate::provider::{Provider, ProviderConfig};
use crate::router::{RouterConfig, RouterRole, TacticRouter};
use crate::scenario::{Scenario, TopologyChoice};

/// Events flowing through the engine.
#[derive(Debug)]
enum NetEvent {
    /// A packet finishes arriving at `node` on `face`.
    Deliver {
        node: NodeId,
        face: FaceId,
        packet: Packet,
    },
    /// A consumer begins its request loop.
    ConsumerStart { node: NodeId },
    /// A consumer's outstanding request may have expired.
    Timeout {
        node: NodeId,
        name: Name,
        sent: SimTime,
    },
    /// Periodic PIT / relay-state expiry sweep.
    Purge,
    /// A mobile client hands over to a new access point.
    Move { node: NodeId },
}

/// An access point: a transparent relay that accumulates the access path
/// on Interests and demultiplexes returning Data/NACKs to its users.
///
/// Demultiplexing is per *requester*, not per name: the edge router sends
/// one (tag-echoed) copy per authorised downstream record, and the AP
/// delivers each copy only to the association whose tag identity matches
/// — a layer-2 unicast, like a real wireless AP delivering to one station.
/// Without this, an attacker sharing the AP with a legitimate client would
/// overhear the client's copy of a chunk it also requested.
#[derive(Debug)]
struct ApRelay {
    id: NodeId,
    upstream: FaceId,
    /// name → [(user face, sent time, requester identity)]
    pending: HashMap<Name, Vec<(FaceId, SimTime, Option<u64>)>>,
}

impl ApRelay {
    fn purge(&mut self, now: SimTime, horizon: SimDuration) {
        self.pending.retain(|_, faces| {
            faces.retain(|&(_, t, _)| now.saturating_since(t) < horizon);
            !faces.is_empty()
        });
    }

    /// Removes and returns the pending faces a reply identified by
    /// `identity` should go to. `None` (no tag echo: public content,
    /// registration responses, standalone NACKs) delivers to everyone
    /// pending on the name.
    fn claim(&mut self, name: &Name, identity: Option<u64>) -> Vec<FaceId> {
        match identity {
            None => self
                .pending
                .remove(name)
                .unwrap_or_default()
                .into_iter()
                .map(|(f, _, _)| f)
                .collect(),
            Some(id) => {
                let Some(entries) = self.pending.get_mut(name) else {
                    return Vec::new();
                };
                let mut claimed = Vec::new();
                entries.retain(|&(f, _, eid)| {
                    if eid == Some(id) {
                        claimed.push(f);
                        false
                    } else {
                        true
                    }
                });
                if entries.is_empty() {
                    self.pending.remove(name);
                }
                claimed
            }
        }
    }
}

/// The requester identity carried in a tag (see
/// [`crate::tag::SignedTag::client_identity`]).
fn tag_identity(tag: &crate::tag::SignedTag) -> u64 {
    tag.client_identity()
}

enum NodeState {
    Router(Box<TacticRouter>),
    Provider(Box<Provider>),
    Consumer(Box<Consumer>),
    Ap(ApRelay),
}

/// The assembled simulation.
pub struct Network {
    engine: Engine<NetEvent>,
    nodes: Vec<NodeState>,
    /// Per node, per face index: (neighbor, link spec).
    neighbors: Vec<Vec<(NodeId, LinkSpec)>>,
    /// Per node: neighbor → local face.
    face_index: Vec<HashMap<NodeId, FaceId>>,
    /// Per directed link: when the transmitter is free again.
    link_busy: HashMap<(usize, usize), SimTime>,
    rng: Rng,
    cost: CostModel,
    duration: SimDuration,
    edge_router_set: Vec<bool>,
    access_points: Vec<NodeId>,
    mobility: Option<crate::scenario::MobilityConfig>,
    moves: u64,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("duration", &self.duration)
            .finish()
    }
}

impl Network {
    /// Builds the network for `scenario` with the given seed.
    pub fn build(scenario: &Scenario, seed: u64) -> Network {
        let mut rng = Rng::seed_from_u64(seed ^ 0x7AC7_1C00);
        let topo: Topology = match scenario.topology {
            TopologyChoice::Paper(p) => p.build(seed),
            TopologyChoice::Custom(spec) => build_topology(&spec, &mut rng.fork(1)),
        };
        let n = topo.graph.node_count();

        // Face tables from adjacency order.
        let mut neighbors: Vec<Vec<(NodeId, LinkSpec)>> = vec![Vec::new(); n];
        let mut face_index: Vec<HashMap<NodeId, FaceId>> = vec![HashMap::new(); n];
        for node in topo.graph.nodes() {
            for (peer, link_id) in topo.graph.incident(node) {
                let spec = topo.graph.link(link_id).spec;
                let face = FaceId::new(neighbors[node.0].len() as u32);
                neighbors[node.0].push((peer, spec));
                face_index[node.0].insert(peer, face);
            }
        }

        // PKI: one ISP trust anchor; every provider certified.
        let anchor = KeyPair::derive(b"isp-trust-anchor", seed);
        let mut certs = CertStore::new();
        certs.add_anchor(anchor.public());

        // Providers.
        let mut providers: HashMap<usize, Provider> = HashMap::new();
        let mut catalog: Vec<CatalogEntry> = Vec::new();
        for (i, &pnode) in topo.providers.iter().enumerate() {
            let prefix: Name = format!("/prov{i}").parse().expect("static prefix");
            let config = ProviderConfig {
                prefix: prefix.clone(),
                objects: scenario.objects_per_provider,
                chunks_per_object: scenario.chunks_per_object,
                chunk_size: scenario.chunk_size,
                tag_validity: scenario.tag_validity,
                access_levels: scenario.content_levels.clone(),
            };
            let provider = Provider::new(config);
            certs
                .register(Certificate::issue(
                    prefix.to_string(),
                    provider.keypair().public(),
                    &anchor,
                ))
                .expect("anchor-signed cert");
            catalog.push(CatalogEntry {
                prefix,
                objects: scenario.objects_per_provider,
                chunks: scenario.chunks_per_object,
            });
            providers.insert(pnode.0, provider);
        }

        // Routers.
        let mut edge_router_set = vec![false; n];
        for &e in &topo.edge_routers {
            edge_router_set[e.0] = true;
        }
        let mut routers: HashMap<usize, TacticRouter> = HashMap::new();
        for rnode in topo.routers() {
            let role = if edge_router_set[rnode.0] {
                RouterRole::Edge
            } else {
                RouterRole::Core
            };
            let config = RouterConfig {
                role,
                bf_params: scenario.bf_params(),
                cs_capacity: scenario.cs_capacity,
                access_path_enabled: scenario.access_path_enabled,
                flag_f_enabled: scenario.flag_f_enabled,
                content_nack_enabled: scenario.content_nack_enabled,
                record_sightings: scenario.record_sightings,
            };
            let mut router = TacticRouter::new(config, certs.clone());
            for (face_idx, &(peer, _)) in neighbors[rnode.0].iter().enumerate() {
                if topo.graph.role(peer) == Role::AccessPoint {
                    router.mark_downstream(FaceId::new(face_idx as u32));
                }
            }
            routers.insert(rnode.0, router);
        }

        // Routing: one Dijkstra per provider, FIB entries at every router.
        for (i, &pnode) in topo.providers.iter().enumerate() {
            let prefix: Name = format!("/prov{i}").parse().expect("static prefix");
            let routes = routes_toward(&topo.graph, pnode);
            for rnode in topo.routers() {
                if let Some(entry) = routes[rnode.0] {
                    let face = face_index[rnode.0][&entry.next_hop];
                    let cost_us = (entry.cost.as_nanos() / 1_000).min(u32::MAX as u64) as u32;
                    routers.get_mut(&rnode.0).expect("router").add_route(
                        prefix.clone(),
                        face,
                        cost_us,
                    );
                }
            }
        }

        // Consumers.
        let mut consumers: HashMap<usize, Consumer> = HashMap::new();
        let user_list: Vec<(NodeId, ConsumerKind)> = topo
            .clients
            .iter()
            .map(|&c| (c, ConsumerKind::Client))
            .chain(topo.attackers.iter().enumerate().map(|(i, &a)| {
                let strat = scenario.attacker_mix[i % scenario.attacker_mix.len()];
                (a, ConsumerKind::Attacker(strat))
            }))
            .collect();
        for &(unode, kind) in &user_list {
            let principal = unode.0 as u64;
            let config = ConsumerConfig {
                principal,
                kind,
                window: scenario.window,
                request_timeout: scenario.request_timeout,
                zipf_alpha: scenario.zipf_alpha,
                refresh_margin: scenario.tag_refresh_margin,
            };
            let mut consumer = Consumer::new(config, catalog.clone(), rng.fork(0x100 + principal));
            let own_ap = topo.access_point_of(unode);
            let own_path = AccessPath::of([own_ap.0 as u64]);
            match kind {
                ConsumerKind::Client => {
                    for p in providers.values_mut() {
                        p.grant(principal, scenario.client_level);
                    }
                }
                ConsumerKind::Attacker(AttackerStrategy::InsufficientLevel) => {
                    // A "freemium" principal: registered, bottom level.
                    for p in providers.values_mut() {
                        p.grant(principal, AccessLevel::Public);
                    }
                }
                ConsumerKind::Attacker(AttackerStrategy::ExpiredTag) => {
                    // A revoked client clinging to a once-genuine tag.
                    for (idx, &pnode) in topo.providers.iter().enumerate() {
                        let p = providers.get_mut(&pnode.0).expect("provider");
                        let tag = p.issue_tag(
                            principal,
                            scenario.client_level,
                            if scenario.access_path_enabled {
                                own_path
                            } else {
                                AccessPath::EMPTY
                            },
                            SimTime::from_nanos(1),
                        );
                        consumer.preset_tag(idx, tag);
                    }
                }
                ConsumerKind::Attacker(AttackerStrategy::SharedTag) => {
                    // A tag genuinely issued to a VICTIM client behind a
                    // different access point, shared with this attacker
                    // (§3.C threat (e)). Valid for the whole run so the
                    // access path / traitor tracing are the only defences.
                    // The victim keeps using her own identity too, which is
                    // what traitor tracing latches onto.
                    let victim = topo
                        .clients
                        .iter()
                        .copied()
                        .find(|&c| topo.access_point_of(c) != own_ap)
                        .or_else(|| topo.clients.first().copied());
                    let (victim_principal, victim_path) = match victim {
                        Some(v) => {
                            let vap = topo.access_point_of(v);
                            (v.0 as u64, AccessPath::of([vap.0 as u64]))
                        }
                        // Degenerate topology without clients: fall back to
                        // a fabricated absent principal.
                        None => (principal ^ 0xDEAD, AccessPath::EMPTY),
                    };
                    for (idx, &pnode) in topo.providers.iter().enumerate() {
                        let p = providers.get_mut(&pnode.0).expect("provider");
                        let tag = p.issue_tag(
                            victim_principal,
                            scenario.client_level,
                            victim_path,
                            SimTime::ZERO + scenario.duration,
                        );
                        consumer.preset_tag(idx, tag);
                    }
                }
                ConsumerKind::Attacker(_) => {}
            }
            consumers.insert(unode.0, consumer);
        }

        // Assemble node states.
        let mut nodes: Vec<NodeState> = Vec::with_capacity(n);
        for node in topo.graph.nodes() {
            let state = match topo.graph.role(node) {
                Role::CoreRouter | Role::EdgeRouter => {
                    NodeState::Router(Box::new(routers.remove(&node.0).expect("router built")))
                }
                Role::Provider => NodeState::Provider(Box::new(
                    providers.remove(&node.0).expect("provider built"),
                )),
                Role::Client | Role::Attacker => NodeState::Consumer(Box::new(
                    consumers.remove(&node.0).expect("consumer built"),
                )),
                Role::AccessPoint => {
                    let upstream = neighbors[node.0]
                        .iter()
                        .position(|&(peer, _)| topo.graph.role(peer) == Role::EdgeRouter)
                        .map(|i| FaceId::new(i as u32))
                        .expect("AP wired to an edge router");
                    NodeState::Ap(ApRelay {
                        id: node,
                        upstream,
                        pending: HashMap::new(),
                    })
                }
            };
            nodes.push(state);
        }

        // Schedule consumer starts (staggered over the first second) and
        // the periodic purge sweep.
        let mut engine = Engine::with_horizon(SimTime::ZERO + scenario.duration);
        for &(unode, _) in &user_list {
            let offset = SimDuration::from_nanos(rng.below(1_000_000_000));
            engine.schedule(
                SimTime::ZERO + offset,
                NetEvent::ConsumerStart { node: unode },
            );
        }
        engine.schedule(SimTime::from_secs(1), NetEvent::Purge);

        // Mobility: schedule the first handover for each mobile client.
        if let Some(m) = scenario.mobility {
            assert!(
                (0.0..=1.0).contains(&m.mobile_fraction),
                "mobile_fraction must be within [0, 1]"
            );
            let dwell =
                tactic_sim::dist::Exponential::from_mean(m.mean_dwell.as_secs_f64().max(1e-3));
            let mobile_count = (topo.clients.len() as f64 * m.mobile_fraction).round() as usize;
            for &c in topo.clients.iter().take(mobile_count) {
                let at = SimTime::from_secs_f64(dwell.sample(&mut rng));
                engine.schedule(at, NetEvent::Move { node: c });
            }
        }

        Network {
            engine,
            nodes,
            neighbors,
            face_index,
            link_busy: HashMap::new(),
            rng,
            cost: scenario.cost_model.clone(),
            duration: scenario.duration,
            edge_router_set,
            access_points: topo.access_points.clone(),
            mobility: scenario.mobility,
            moves: 0,
        }
    }

    /// Runs to the horizon and aggregates the [`RunReport`].
    pub fn run(mut self) -> RunReport {
        while let Some(ev) = self.engine.pop() {
            self.dispatch(ev);
        }
        let mut report = RunReport {
            duration: self.duration,
            events: self.engine.processed(),
            moves: self.moves,
            ..Default::default()
        };
        for (idx, state) in self.nodes.into_iter().enumerate() {
            match state {
                NodeState::Router(r) => {
                    for &(identity, observed_path, at) in r.sightings() {
                        report.sightings.push(crate::traitor::Sighting {
                            identity,
                            observed_path,
                            edge_router: idx as u64,
                            at,
                        });
                    }
                    if self.edge_router_set[idx] {
                        report.edge_ops.merge(r.counters());
                        report
                            .edge_reset_requests
                            .extend_from_slice(r.reset_request_counts());
                    } else {
                        report.core_ops.merge(r.counters());
                        report
                            .core_reset_requests
                            .extend_from_slice(r.reset_request_counts());
                    }
                }
                NodeState::Provider(p) => {
                    let c = p.counters();
                    report.providers.tags_issued += c.tags_issued;
                    report.providers.registrations_denied += c.registrations_denied;
                    report.providers.chunks_served += c.chunks_served;
                    report.providers.nacks += c.nacks;
                }
                NodeState::Consumer(c) => {
                    report.absorb_consumer(c.kind(), c.stats().clone());
                }
                NodeState::Ap(_) => {}
            }
        }
        report
    }

    fn dispatch(&mut self, ev: NetEvent) {
        match ev {
            NetEvent::Deliver { node, face, packet } => self.on_deliver(node, face, packet),
            NetEvent::ConsumerStart { node } => {
                let now = self.engine.now();
                let NodeState::Consumer(c) = &mut self.nodes[node.0] else {
                    return;
                };
                let sends = c.fill(now);
                let timeout = c.request_timeout();
                self.consumer_send(node, sends, timeout);
            }
            NetEvent::Timeout { node, name, sent } => {
                let now = self.engine.now();
                let NodeState::Consumer(c) = &mut self.nodes[node.0] else {
                    return;
                };
                let sends = c.on_timeout(&name, sent, now);
                let timeout = c.request_timeout();
                self.consumer_send(node, sends, timeout);
            }
            NetEvent::Move { node } => {
                self.perform_handover(node);
                if let Some(m) = self.mobility {
                    let dwell = tactic_sim::dist::Exponential::from_mean(
                        m.mean_dwell.as_secs_f64().max(1e-3),
                    );
                    let delay = SimDuration::from_secs_f64(dwell.sample(&mut self.rng));
                    self.engine.schedule_after(delay, NetEvent::Move { node });
                }
            }
            NetEvent::Purge => {
                let now = self.engine.now();
                for state in &mut self.nodes {
                    match state {
                        NodeState::Router(r) => {
                            r.purge_pit(now);
                        }
                        NodeState::Ap(ap) => ap.purge(now, SimDuration::from_secs(4)),
                        _ => {}
                    }
                }
                self.engine
                    .schedule_after(SimDuration::from_secs(1), NetEvent::Purge);
            }
        }
    }

    fn on_deliver(&mut self, node: NodeId, face: FaceId, packet: Packet) {
        let now = self.engine.now();
        match &mut self.nodes[node.0] {
            NodeState::Router(r) => {
                let out = match packet {
                    Packet::Interest(i) => {
                        r.handle_interest(i, face, now, &mut self.rng, &self.cost)
                    }
                    Packet::Data(d) => r.handle_data(d, face, now, &mut self.rng, &self.cost),
                    // Standalone NACKs travel downstream: relay toward the
                    // pending requesters, consuming the PIT state.
                    Packet::Nack(n) => r.handle_nack(&n),
                };
                for (out_face, pkt) in out.sends {
                    self.transmit(node, out_face, pkt, out.compute);
                }
            }
            NodeState::Provider(p) => {
                let (replies, compute) = match &packet {
                    Packet::Interest(i) => p.handle_interest(i, now, &mut self.rng, &self.cost),
                    _ => (Vec::new(), SimDuration::ZERO),
                };
                for pkt in replies {
                    self.transmit(node, face, pkt, compute);
                }
            }
            NodeState::Consumer(c) => {
                let sends = match &packet {
                    Packet::Data(d) => c.on_data(d, now),
                    Packet::Nack(n) => c.on_nack(n, now),
                    Packet::Interest(_) => Vec::new(),
                };
                let timeout = c.request_timeout();
                self.consumer_send(node, sends, timeout);
            }
            NodeState::Ap(ap) => {
                match packet {
                    Packet::Interest(mut i) => {
                        if face == ap.upstream {
                            return; // Interests never flow AP-ward.
                        }
                        // Accumulate the access path with the AP's identity.
                        let path = ext::interest_access_path(&i).extended(ap.id.0 as u64);
                        ext::set_interest_access_path(&mut i, path);
                        let identity = ext::interest_tag(&i).as_ref().map(tag_identity);
                        ap.pending
                            .entry(i.name().clone())
                            .or_default()
                            .push((face, now, identity));
                        let up = ap.upstream;
                        self.transmit(node, up, Packet::Interest(i), SimDuration::ZERO);
                    }
                    Packet::Data(d) => {
                        let identity = ext::data_tag(&d).as_ref().map(tag_identity);
                        let faces = ap.claim(d.name(), identity);
                        for f in faces {
                            self.transmit(node, f, Packet::Data(d.clone()), SimDuration::ZERO);
                        }
                    }
                    Packet::Nack(nk) => {
                        let identity = ext::interest_tag(nk.interest()).as_ref().map(tag_identity);
                        let faces = ap.claim(nk.interest().name(), identity);
                        for f in faces {
                            self.transmit(node, f, Packet::Nack(nk.clone()), SimDuration::ZERO);
                        }
                    }
                }
            }
        }
    }

    /// Re-attaches a mobile client to a uniformly random *other* access
    /// point: the client's single face now leads to the new AP (same
    /// 10 Mbps/2 ms wireless spec), the new AP gains a face back, and the
    /// consumer drops its tags so the next request re-registers from the
    /// new location.
    fn perform_handover(&mut self, node: NodeId) {
        if self.access_points.len() < 2 {
            return;
        }
        let Some(&(current_ap, spec)) = self.neighbors[node.0].first() else {
            return;
        };
        let new_ap = loop {
            let candidate = *self.rng.choose(&self.access_points);
            if candidate != current_ap {
                break candidate;
            }
        };
        // Client side: face 0 now points at the new AP.
        self.neighbors[node.0][0] = (new_ap, spec);
        self.face_index[node.0].clear();
        self.face_index[node.0].insert(new_ap, FaceId::new(0));
        // AP side: ensure the new AP has a face toward this client.
        if !self.face_index[new_ap.0].contains_key(&node) {
            let face = FaceId::new(self.neighbors[new_ap.0].len() as u32);
            self.neighbors[new_ap.0].push((node, spec));
            self.face_index[new_ap.0].insert(node, face);
        }
        self.moves += 1;
        let now = self.engine.now();
        if let NodeState::Consumer(c) = &mut self.nodes[node.0] {
            c.on_move(now);
            let sends = c.fill(now);
            let timeout = c.request_timeout();
            self.consumer_send(node, sends, timeout);
        }
    }

    fn consumer_send(
        &mut self,
        node: NodeId,
        sends: Vec<tactic_ndn::packet::Interest>,
        timeout: SimDuration,
    ) {
        let now = self.engine.now();
        for i in sends {
            self.engine.schedule(
                now + timeout,
                NetEvent::Timeout {
                    node,
                    name: i.name().clone(),
                    sent: now,
                },
            );
            self.transmit(node, FaceId::new(0), Packet::Interest(i), SimDuration::ZERO);
        }
    }

    /// Transmits on a link: FIFO serialisation + propagation delay, after
    /// the sender's computation time.
    fn transmit(&mut self, from: NodeId, out_face: FaceId, packet: Packet, compute: SimDuration) {
        let Some(&(to, spec)) = self.neighbors[from.0].get(out_face.index() as usize) else {
            return; // Dangling face: drop.
        };
        let now = self.engine.now();
        let size = wire_size(&packet);
        let ready = now + compute;
        let key = (from.0, to.0);
        let busy = self.link_busy.get(&key).copied().unwrap_or(SimTime::ZERO);
        let depart = ready.max(busy);
        let serialize = spec.serialization_delay(size);
        self.link_busy.insert(key, depart + serialize);
        let arrival = depart + serialize + spec.latency;
        // A handover may have torn down the reverse mapping (the receiver
        // moved away): the in-flight packet is lost with the radio link.
        let Some(&in_face) = self.face_index[to.0].get(&from) else {
            return;
        };
        self.engine.schedule(
            arrival,
            NetEvent::Deliver {
                node: to,
                face: in_face,
                packet,
            },
        );
    }
}

/// Convenience: build and run a scenario with one seed.
pub fn run_scenario(scenario: &Scenario, seed: u64) -> RunReport {
    Network::build(scenario, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run(seed: u64) -> RunReport {
        let mut s = Scenario::small();
        s.duration = SimDuration::from_secs(15);
        run_scenario(&s, seed)
    }

    #[test]
    fn clients_retrieve_attackers_do_not() {
        let r = small_run(1);
        assert!(
            r.delivery.client_requested > 100,
            "clients requested {}",
            r.delivery.client_requested
        );
        assert!(
            r.delivery.client_ratio() > 0.95,
            "client delivery ratio {} (req {}, recv {})",
            r.delivery.client_ratio(),
            r.delivery.client_requested,
            r.delivery.client_received
        );
        assert!(r.delivery.attacker_requested > 10);
        assert!(
            r.delivery.attacker_ratio() < 0.01,
            "attacker delivery ratio {}",
            r.delivery.attacker_ratio()
        );
    }

    #[test]
    fn tags_cycle_with_expiry() {
        let r = small_run(2);
        // 15 s run, 10 s tags: every client re-registers at least once per
        // provider it talks to.
        assert!(!r.tag_requests.is_empty());
        assert!(!r.tags_received.is_empty());
        assert!(r.tags_received.len() <= r.tag_requests.len());
        // Substantially all client registrations are answered.
        assert!(
            r.tags_received.len() as f64 >= 0.8 * r.tag_requests.len() as f64,
            "Q {} vs R {}",
            r.tag_requests.len(),
            r.tags_received.len()
        );
    }

    #[test]
    fn routers_do_work_and_lookups_dominate_verifications() {
        let r = small_run(3);
        assert!(r.edge_ops.bf_lookups > 0);
        assert!(r.edge_ops.interests > 0);
        assert!(r.core_ops.interests > 0);
        // Fig. 7's headline: BF lookups far outnumber signature
        // verifications at the edge.
        assert!(
            r.edge_ops.bf_lookups > r.edge_ops.sig_verifications,
            "edge L {} vs V {}",
            r.edge_ops.bf_lookups,
            r.edge_ops.sig_verifications
        );
    }

    #[test]
    fn latencies_are_recorded_and_plausible() {
        let r = small_run(4);
        assert!(r.latency.len() > 100);
        let mean = r.mean_latency();
        assert!(mean > 0.001 && mean < 1.0, "mean latency {mean}s");
        let series = r.latency.per_second_means();
        assert!(
            series.len() > 5,
            "per-second series has {} points",
            series.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small_run(7);
        let b = small_run(7);
        assert_eq!(a.delivery, b.delivery);
        assert_eq!(a.events, b.events);
        assert_eq!(a.edge_ops, b.edge_ops);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_run(8);
        let b = small_run(9);
        assert_ne!(a.events, b.events);
    }
}
