//! The TACTIC node plane: routers running Protocols 1–4, providers issuing
//! tags, access points accumulating the access path, and Zipf-window
//! consumers — all driven by the shared [`tactic_net`] transport.
//!
//! This is the reproduction's equivalent of the paper's ndnSIM scenario:
//! the transport supplies store-and-forward links with per-link FIFO
//! serialisation (500 Mbps/1 ms core, 10 Mbps/2 ms edge) and the
//! mobility/handover model; this module supplies only what is
//! TACTIC-specific.

use std::collections::HashMap;
use std::sync::Arc;

use tactic_crypto::cert::{CertStore, Certificate};
use tactic_crypto::schnorr::KeyPair;
use tactic_ndn::face::FaceId;
use tactic_ndn::name::Name;
use tactic_ndn::packet::Packet;
use tactic_net::{
    populate_fib, provider_prefix, run_sharded_profiled, ApRelay, AttackClass, ChurnConfig,
    EdgeDefense, Emit, Links, Net, NetConfig, NetObserver, NodePlane, NoopObserver, PlaneCtx,
    ShardSpec, ShardedStats, TransportReport, ATTACK_STREAM,
};
use tactic_sim::rng::Rng;
use tactic_sim::time::{SimDuration, SimTime};
use tactic_telemetry::{
    ratio_to_fp, Hop, NodeRole, NoopProtocolObserver, ProtocolObserver, RetrievalOutcome, SampleRow,
};
use tactic_topology::graph::{NodeId, Role};
use tactic_topology::roles::{build_topology, Topology};
use tactic_topology::shard::{ShardError, ShardMap};

use crate::access::AccessLevel;
use crate::access_path::AccessPath;
use crate::adversary::{self, AdversaryDriver};
use crate::consumer::{AttackerStrategy, CatalogEntry, Consumer, ConsumerConfig, ConsumerKind};
use crate::ext;
use crate::metrics::RunReport;
use crate::provider::{Provider, ProviderConfig};
use crate::router::{RouterConfig, RouterRole, TacticRouter};
use crate::scenario::{Scenario, TagLifetimePolicy, TopologyChoice};

/// The dedicated RNG stream for tag-lifecycle jitter (xor'd with the
/// consumer's principal). Forked only while a churn
/// [`TagLifetimePolicy`] is active, so [`TagLifetimePolicy::Fixed`] runs
/// draw nothing from it and stay byte-identical to builds that predate
/// the lifecycle layer.
pub const LIFECYCLE_STREAM: u64 = 0x11FE_C7C1_E000_0001;

/// The requester identity carried in a tag (see
/// [`crate::tag::SignedTag::client_identity`]).
fn tag_identity(tag: &crate::tag::SignedTag) -> u64 {
    tag.client_identity()
}

enum NodeState {
    Router(Box<TacticRouter>),
    Provider(Box<Provider>),
    Consumer(Box<Consumer>),
    Ap(ApRelay),
}

/// The TACTIC mechanism as a pluggable [`NodePlane`]: owns every node's
/// state and reacts to transport callbacks, reporting protocol decisions
/// to the [`ProtocolObserver`] `PO` (a no-op by default).
pub struct TacticPlane<PO: ProtocolObserver = NoopProtocolObserver> {
    nodes: Vec<NodeState>,
    edge_router_set: Vec<bool>,
    /// PIT records summed over this instance's live routers, one entry
    /// per purge sweep. Purge sweeps are mirrored in every shard at the
    /// same instants, so per-shard vectors add element-wise and the
    /// final max equals the sequential high-water mark.
    pit_sweep_sums: Vec<u64>,
    /// Content-store entries summed over this instance's live routers,
    /// one entry per purge sweep (same mirroring argument as
    /// `pit_sweep_sums`).
    cs_sweep_sums: Vec<u64>,
    /// Per-node attack drivers — `Some` only at attacker nodes while an
    /// [`crate::scenario::AttackPlan`] is active. A node with a driver
    /// ignores its windowed consumer entirely (open-loop fleet).
    adversaries: Vec<Option<AdversaryDriver>>,
    /// The sentinel timeout name that paces the attack drivers.
    attack_tick: Name,
    proto: PO,
}

impl<PO: ProtocolObserver> TacticPlane<PO> {
    /// Per-interest consumer emit pattern: each request schedules its
    /// expiry check *before* it is transmitted (the historical FIFO
    /// tie-break order). The expiry delay is per interest — a
    /// retransmitted chunk carries its backed-off timeout — and each
    /// emission is reported to the observer.
    fn push_consumer_sends(
        proto: &mut PO,
        hop: Hop,
        out: &mut Vec<Emit>,
        sends: Vec<tactic_ndn::packet::Interest>,
        c: &Consumer,
    ) {
        for i in sends {
            proto.on_interest_emitted(hop, i.nonce(), i.name());
            out.push(Emit::Timeout {
                name: i.name().clone(),
                delay: c.timeout_for(i.name()),
            });
            out.push(Emit::Send {
                face: FaceId::new(0),
                packet: Packet::Interest(i),
                compute: SimDuration::ZERO,
            });
        }
    }

    /// Consumes the plane into the aggregated [`RunReport`], returning
    /// the protocol observer alongside it.
    fn into_report(self, duration: SimDuration, transport: TransportReport) -> (RunReport, PO) {
        let mut report = RunReport {
            duration,
            events: transport.events,
            moves: transport.moves,
            peak_queue_depth: transport.peak_queue_depth,
            drops: transport.drops,
            peak_pit_records: self.pit_sweep_sums.iter().copied().max().unwrap_or(0),
            peak_cs_entries: self.cs_sweep_sums.iter().copied().max().unwrap_or(0),
            samples: transport.samples,
            profile: transport.profile,
            ..Default::default()
        };
        for (idx, state) in self.nodes.into_iter().enumerate() {
            match state {
                NodeState::Router(r) => {
                    for &(identity, observed_path, at) in r.sightings() {
                        report.sightings.push(crate::traitor::Sighting {
                            identity,
                            observed_path,
                            edge_router: idx as u64,
                            at,
                        });
                    }
                    if self.edge_router_set[idx] {
                        report.edge_ops.merge(r.counters());
                        report
                            .edge_reset_requests
                            .extend_from_slice(r.reset_request_counts());
                    } else {
                        report.core_ops.merge(r.counters());
                        report
                            .core_reset_requests
                            .extend_from_slice(r.reset_request_counts());
                    }
                }
                NodeState::Provider(p) => {
                    let c = p.counters();
                    report.providers.tags_issued += c.tags_issued;
                    report.providers.registrations_denied += c.registrations_denied;
                    report.providers.chunks_served += c.chunks_served;
                    report.providers.nacks += c.nacks;
                    report.providers.tags_renewed += c.tags_renewed;
                }
                NodeState::Consumer(c) => {
                    report.absorb_consumer(c.kind(), c.stats().clone());
                }
                NodeState::Ap(_) => {}
            }
        }
        (report, self.proto)
    }
}

impl<PO: ProtocolObserver> NodePlane for TacticPlane<PO> {
    fn on_packet(
        &mut self,
        node: NodeId,
        face: FaceId,
        packet: Packet,
        ctx: &mut PlaneCtx<'_>,
        out: &mut Vec<Emit>,
    ) {
        let now = ctx.now;
        let proto = &mut self.proto;
        let node_id = node.index() as u64;
        match &mut self.nodes[node.index()] {
            NodeState::Router(r) => {
                let mut prof = ctx.profiler.as_deref_mut();
                let res = match packet {
                    Packet::Interest(i) => r.handle_interest_observed(
                        i, face, now, ctx.rng, ctx.cost, node_id, proto, &mut prof,
                    ),
                    Packet::Data(d) => r.handle_data_observed(
                        d, face, now, ctx.rng, ctx.cost, node_id, proto, &mut prof,
                    ),
                    // Standalone NACKs travel downstream: relay toward the
                    // pending requesters, consuming the PIT state.
                    Packet::Nack(n) => r.handle_nack_observed(n, now, node_id, proto),
                };
                ctx.drops.pit_full += res.pit_evictions;
                for (out_face, pkt) in res.sends {
                    out.push(Emit::Send {
                        face: out_face,
                        packet: pkt,
                        compute: res.compute,
                    });
                }
            }
            NodeState::Provider(p) => {
                let (replies, compute) = match &packet {
                    Packet::Interest(i) => {
                        p.handle_interest_observed(i, now, ctx.rng, ctx.cost, node_id, proto)
                    }
                    _ => (Vec::new(), SimDuration::ZERO),
                };
                for pkt in replies {
                    out.push(Emit::Send {
                        face,
                        packet: pkt,
                        compute,
                    });
                }
            }
            NodeState::Consumer(c) => {
                if self.adversaries[node.index()].is_some() {
                    return; // Open-loop fleet: replies are never tracked.
                }
                let hop = Hop::new(node_id, NodeRole::Consumer, now);
                let sends = match &packet {
                    Packet::Data(d) => {
                        proto.on_retrieval(hop, d.name(), RetrievalOutcome::Data);
                        c.on_data(d, now)
                    }
                    Packet::Nack(n) => {
                        proto.on_retrieval(hop, n.interest().name(), RetrievalOutcome::Nack);
                        c.on_nack(n, now)
                    }
                    Packet::Interest(_) => Vec::new(),
                };
                Self::push_consumer_sends(proto, hop, out, sends, c);
            }
            NodeState::Ap(ap) => match packet {
                Packet::Interest(mut i) => {
                    if face == ap.upstream {
                        return; // Interests never flow AP-ward.
                    }
                    // Accumulate the access path with the AP's identity.
                    let path = ext::interest_access_path(&i).extended(ap.id.0 as u64);
                    ext::set_interest_access_path(&mut i, path);
                    let identity = ext::interest_tag(&i).as_deref().map(tag_identity);
                    ap.note(i.name().clone(), face, now, identity);
                    out.push(Emit::Send {
                        face: ap.upstream,
                        packet: Packet::Interest(i),
                        compute: SimDuration::ZERO,
                    });
                }
                Packet::Data(d) => {
                    let identity = ext::data_tag(&d).as_deref().map(tag_identity);
                    let faces = ap.claim(d.name(), identity);
                    // Clone only on genuine fan-out: the last claimant
                    // takes the packet by move.
                    let last = faces.len().saturating_sub(1);
                    let mut d = Some(d);
                    for (idx, f) in faces.iter().enumerate() {
                        let pkt = if idx == last {
                            d.take().expect("consumed only at the last claimant")
                        } else {
                            d.as_ref()
                                .expect("present before the last claimant")
                                .clone()
                        };
                        out.push(Emit::Send {
                            face: *f,
                            packet: Packet::Data(pkt),
                            compute: SimDuration::ZERO,
                        });
                    }
                }
                Packet::Nack(nk) => {
                    let identity = ext::interest_tag(nk.interest())
                        .as_deref()
                        .map(tag_identity);
                    let faces = ap.claim(nk.interest().name(), identity);
                    let last = faces.len().saturating_sub(1);
                    let mut nk = Some(nk);
                    for (idx, f) in faces.iter().enumerate() {
                        let pkt = if idx == last {
                            nk.take().expect("consumed only at the last claimant")
                        } else {
                            nk.as_ref()
                                .expect("present before the last claimant")
                                .clone()
                        };
                        out.push(Emit::Send {
                            face: *f,
                            packet: Packet::Nack(pkt),
                            compute: SimDuration::ZERO,
                        });
                    }
                }
            },
        }
    }

    fn on_start(&mut self, node: NodeId, ctx: &mut PlaneCtx<'_>, out: &mut Vec<Emit>) {
        if self.adversaries[node.index()].is_some() {
            // Arm the attack pacer instead of the windowed consumer.
            out.push(Emit::Timeout {
                name: self.attack_tick.clone(),
                delay: adversary::TICK,
            });
            return;
        }
        let NodeState::Consumer(c) = &mut self.nodes[node.index()] else {
            return;
        };
        let hop = Hop::new(node.index() as u64, NodeRole::Consumer, ctx.now);
        let sends = c.fill(ctx.now);
        Self::push_consumer_sends(&mut self.proto, hop, out, sends, c);
    }

    fn on_timeout(
        &mut self,
        node: NodeId,
        name: Name,
        sent: SimTime,
        ctx: &mut PlaneCtx<'_>,
        out: &mut Vec<Emit>,
    ) {
        if name == self.attack_tick {
            let Some(driver) = self.adversaries[node.index()].as_mut() else {
                return;
            };
            let hop = Hop::new(node.index() as u64, NodeRole::Consumer, ctx.now);
            for i in driver.on_tick(ctx.now) {
                self.proto.on_interest_emitted(hop, i.nonce(), i.name());
                out.push(Emit::Send {
                    face: FaceId::new(0),
                    packet: Packet::Interest(i),
                    compute: SimDuration::ZERO,
                });
            }
            out.push(Emit::Timeout {
                name,
                delay: adversary::TICK,
            });
            return;
        }
        let NodeState::Consumer(c) = &mut self.nodes[node.index()] else {
            return;
        };
        let hop = Hop::new(node.index() as u64, NodeRole::Consumer, ctx.now);
        self.proto.on_timeout_expired(hop, &name, sent);
        let sends = c.on_timeout(&name, sent, ctx.now);
        Self::push_consumer_sends(&mut self.proto, hop, out, sends, c);
    }

    fn on_purge(&mut self, now: SimTime) {
        // Sample PIT/CS occupancy *before* sweeping so the peaks reflect
        // what loss actually accumulated, then purge expired entries.
        let mut pit_records = 0u64;
        let mut cs_entries = 0u64;
        for state in &mut self.nodes {
            match state {
                NodeState::Router(r) => {
                    pit_records += r.tables().pit.total_records() as u64;
                    cs_entries += r.tables().cs.len() as u64;
                    r.purge_pit(now);
                }
                NodeState::Ap(ap) => ap.purge(now, SimDuration::from_secs(4)),
                _ => {}
            }
        }
        self.pit_sweep_sums.push(pit_records);
        self.cs_sweep_sums.push(cs_entries);
    }

    fn on_reroute(&mut self, routes: &[tactic_net::FibRoute]) {
        // Full replacement: the transport hands us the complete post-failure
        // routing plane, so every router's FIB is rebuilt from scratch.
        for state in &mut self.nodes {
            if let NodeState::Router(r) = state {
                r.clear_routes();
            }
        }
        for route in routes {
            if let NodeState::Router(r) = &mut self.nodes[route.router.index()] {
                r.add_route(route.prefix.clone(), route.face, route.cost_us);
            }
        }
    }

    fn on_sample(&mut self, _now: SimTime, owns: &dyn Fn(NodeId) -> bool, row: &mut SampleRow) {
        // Every gauge is an integer sum (or a fixed-point max) over the
        // nodes this instance owns, so K per-shard rows merge to exactly
        // the sequential row.
        for (idx, state) in self.nodes.iter().enumerate() {
            if !owns(NodeId(idx as u32)) {
                continue;
            }
            if let NodeState::Router(r) = state {
                let tables = r.tables();
                row.pit_records += tables.pit.total_records() as u64;
                row.cs_entries += tables.cs.len() as u64;
                let cache = r.validation_cache();
                row.bf_set_bits += cache.set_bits() as u64;
                row.bf_bits += cache.bit_count() as u64;
                row.bf_fpp_fp += ratio_to_fp(cache.estimated_fpp());
                row.bf_occ_max_fp = row.bf_occ_max_fp.max(ratio_to_fp(cache.occupancy()));
                row.bf_resets += cache.resets();
                row.bf_rotations += cache.rotations();
                row.bf_routers += 1;
            }
        }
    }

    fn on_handover(&mut self, node: NodeId, ctx: &mut PlaneCtx<'_>, out: &mut Vec<Emit>) {
        // The consumer drops its tags so the next request re-registers
        // from the new location, then refills its window immediately.
        if self.adversaries[node.index()].is_some() {
            return; // The open-loop fleet keeps its credentials and pace.
        }
        let NodeState::Consumer(c) = &mut self.nodes[node.index()] else {
            return;
        };
        let hop = Hop::new(node.index() as u64, NodeRole::Consumer, ctx.now);
        c.on_move(ctx.now);
        let sends = c.fill(ctx.now);
        Self::push_consumer_sends(&mut self.proto, hop, out, sends, c);
    }
}

/// The assembled simulation: the TACTIC plane on the shared transport,
/// optionally instrumented with a transport-level [`NetObserver`] `O`
/// and/or a protocol-level [`ProtocolObserver`] `PO`.
pub struct Network<O = NoopObserver, PO: ProtocolObserver = NoopProtocolObserver> {
    net: Net<TacticPlane<PO>, O>,
    duration: SimDuration,
}

impl<O, PO: ProtocolObserver> std::fmt::Debug for Network<O, PO> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("duration", &self.duration)
            .finish()
    }
}

impl Network {
    /// Builds the network for `scenario` with the given seed.
    pub fn build(scenario: &Scenario, seed: u64) -> Network {
        Self::build_observed(scenario, seed, NoopObserver)
    }

    /// Runs to the horizon and aggregates the [`RunReport`].
    pub fn run(self) -> RunReport {
        self.run_observed().0
    }
}

impl<O: NetObserver> Network<O> {
    /// Builds the network with an explicit transport observer (tracing,
    /// link-utilisation counters, drop accounting — see
    /// [`tactic_net::observer`]).
    pub fn build_observed(scenario: &Scenario, seed: u64, observer: O) -> Network<O> {
        Self::build_traced(scenario, seed, observer, NoopProtocolObserver)
    }

    /// Runs to the horizon; returns the aggregated [`RunReport`] and the
    /// observer with whatever it recorded.
    pub fn run_observed(self) -> (RunReport, O) {
        let (report, observer, _) = self.run_traced();
        (report, observer)
    }
}

impl<O: NetObserver, PO: ProtocolObserver> Network<O, PO> {
    /// Builds the network with both a transport observer and a
    /// protocol-decision observer (see [`tactic_telemetry`]). The
    /// protocol observer receives every Protocol 1–4 decision hook;
    /// a [`NoopProtocolObserver`] run is byte-identical to an
    /// unobserved one.
    pub fn build_traced(scenario: &Scenario, seed: u64, observer: O, proto: PO) -> Network<O, PO> {
        Self::build_inner(scenario, seed, observer, proto, None)
    }

    /// Shared construction path: a sequential run (`shard == None`) or
    /// one replica of a sharded run. Every shard builds the identical
    /// network from the identical seed; the [`ShardSpec`] only filters
    /// which bootstrap events enter this instance's calendar.
    fn build_inner(
        scenario: &Scenario,
        seed: u64,
        observer: O,
        proto: PO,
        shard: Option<ShardSpec>,
    ) -> Network<O, PO> {
        let rng = Rng::seed_from_u64(seed ^ 0x7AC7_1C00);
        let topo: Topology = match scenario.topology {
            TopologyChoice::Paper(p) => p.build(seed),
            TopologyChoice::Custom(spec) => build_topology(&spec, &mut rng.fork(1)),
        };
        let n = topo.graph.node_count();
        let links = Links::build(&topo);

        // PKI: one ISP trust anchor; every provider certified.
        let anchor = KeyPair::derive(b"isp-trust-anchor", seed);
        let mut certs = CertStore::new();
        certs.add_anchor(anchor.public());

        // Providers.
        let mut providers: HashMap<usize, Provider> = HashMap::new();
        let mut catalog: Vec<CatalogEntry> = Vec::new();
        for (i, &pnode) in topo.providers.iter().enumerate() {
            let prefix = provider_prefix(i);
            let config = ProviderConfig {
                prefix: prefix.clone(),
                objects: scenario.objects_per_provider,
                chunks_per_object: scenario.chunks_per_object,
                chunk_size: scenario.chunk_size,
                tag_validity: scenario.effective_tag_validity(),
                access_levels: scenario.content_levels.clone(),
            };
            let provider = Provider::new(config);
            certs
                .register(Certificate::issue(
                    prefix.to_string(),
                    provider.keypair().public(),
                    &anchor,
                ))
                .expect("anchor-signed cert");
            catalog.push(CatalogEntry {
                prefix,
                objects: scenario.objects_per_provider,
                chunks: scenario.chunks_per_object,
            });
            providers.insert(pnode.index(), provider);
        }

        // Routers.
        let mut edge_router_set = vec![false; n];
        for &e in &topo.edge_routers {
            edge_router_set[e.index()] = true;
        }
        let mut routers: HashMap<usize, TacticRouter> = HashMap::new();
        for rnode in topo.routers() {
            let role = if edge_router_set[rnode.index()] {
                RouterRole::Edge
            } else {
                RouterRole::Core
            };
            let config = RouterConfig {
                role,
                bf_params: scenario.bf_params(),
                cache_policy: scenario.cache_policy,
                track_revalidations: scenario.track_revalidations,
                cs_capacity: scenario.cs_capacity,
                access_path_enabled: scenario.access_path_enabled,
                flag_f_enabled: scenario.flag_f_enabled,
                content_nack_enabled: scenario.content_nack_enabled,
                record_sightings: scenario.record_sightings,
                pit_capacity: scenario.defense.pit_capacity,
            };
            let mut router = TacticRouter::new(config, certs.clone());
            for (face_idx, &(peer, _)) in links.neighbors[rnode.index()].iter().enumerate() {
                if topo.graph.role(peer) == Role::AccessPoint {
                    router.mark_downstream(FaceId::new(face_idx as u32));
                }
            }
            routers.insert(rnode.index(), router);
        }

        // Routing: one Dijkstra per provider, FIB entries at every router.
        populate_fib(&topo, &links, |rnode, _i, prefix, face, cost_us| {
            routers
                .get_mut(&rnode.index())
                .expect("router")
                .add_route(prefix, face, cost_us);
        });

        // Consumers.
        let mut consumers: HashMap<usize, Consumer> = HashMap::new();
        let user_list: Vec<(NodeId, ConsumerKind)> = topo
            .clients
            .iter()
            .map(|&c| (c, ConsumerKind::Client))
            .chain(topo.attackers.iter().enumerate().map(|(i, &a)| {
                let strat = scenario.attacker_mix[i % scenario.attacker_mix.len()];
                (a, ConsumerKind::Attacker(strat))
            }))
            .collect();
        for &(unode, kind) in &user_list {
            let principal = unode.index() as u64;
            let config = ConsumerConfig {
                principal,
                kind,
                window: scenario.window,
                request_timeout: scenario.request_timeout,
                zipf_alpha: scenario.zipf_alpha,
                refresh_margin: scenario.tag_refresh_margin,
                retransmit: scenario.retransmit,
            };
            let mut consumer = Consumer::new(config, catalog.clone(), rng.fork(0x100 + principal));
            if let TagLifetimePolicy::Churn { lead, jitter, .. } = scenario.lifetime {
                if kind == ConsumerKind::Client {
                    consumer.enable_renewal(lead, jitter, rng.fork(LIFECYCLE_STREAM ^ principal));
                }
            }
            let own_ap = topo.access_point_of(unode);
            let own_path = AccessPath::of([own_ap.0 as u64]);
            match kind {
                ConsumerKind::Client => {
                    for p in providers.values_mut() {
                        p.grant(principal, scenario.client_level);
                    }
                }
                ConsumerKind::Attacker(AttackerStrategy::InsufficientLevel) => {
                    // A "freemium" principal: registered, bottom level.
                    for p in providers.values_mut() {
                        p.grant(principal, AccessLevel::Public);
                    }
                }
                ConsumerKind::Attacker(AttackerStrategy::ExpiredTag) => {
                    // A revoked client clinging to a once-genuine tag.
                    for (idx, &pnode) in topo.providers.iter().enumerate() {
                        let p = providers.get_mut(&pnode.index()).expect("provider");
                        let tag = p.issue_tag(
                            principal,
                            scenario.client_level,
                            if scenario.access_path_enabled {
                                own_path
                            } else {
                                AccessPath::EMPTY
                            },
                            SimTime::from_nanos(1),
                        );
                        consumer.preset_tag(idx, tag);
                    }
                }
                ConsumerKind::Attacker(AttackerStrategy::SharedTag) => {
                    // A tag genuinely issued to a VICTIM client behind a
                    // different access point, shared with this attacker
                    // (§3.C threat (e)). Valid for the whole run so the
                    // access path / traitor tracing are the only defences.
                    // The victim keeps using her own identity too, which is
                    // what traitor tracing latches onto.
                    let victim = topo
                        .clients
                        .iter()
                        .copied()
                        .find(|&c| topo.access_point_of(c) != own_ap)
                        .or_else(|| topo.clients.first().copied());
                    let (victim_principal, victim_path) = match victim {
                        Some(v) => {
                            let vap = topo.access_point_of(v);
                            (v.0 as u64, AccessPath::of([vap.0 as u64]))
                        }
                        // Degenerate topology without clients: fall back to
                        // a fabricated absent principal.
                        None => (principal ^ 0xDEAD, AccessPath::EMPTY),
                    };
                    for (idx, &pnode) in topo.providers.iter().enumerate() {
                        let p = providers.get_mut(&pnode.index()).expect("provider");
                        let tag = p.issue_tag(
                            victim_principal,
                            scenario.client_level,
                            victim_path,
                            SimTime::ZERO + scenario.duration,
                        );
                        consumer.preset_tag(idx, tag);
                    }
                }
                ConsumerKind::Attacker(_) => {}
            }
            consumers.insert(unode.index(), consumer);
        }

        // Adversarial fleet: an active plan repurposes every attacker
        // into an open-loop traffic source ([`crate::adversary`]).
        // Credentials are issued here because only the assembly holds
        // the providers' signing state; Churn instead hands the
        // transport a schedule of aggressive Move events.
        let mut adversaries: Vec<Option<AdversaryDriver>> = (0..n).map(|_| None).collect();
        let mut churn: Option<ChurnConfig> = None;
        if scenario.attack.active() {
            let class = scenario.attack.class.expect("active plan names a class");
            if class == AttackClass::Churn {
                let mut nodes = topo.attackers.clone();
                nodes.sort_unstable();
                churn = Some(ChurnConfig {
                    nodes,
                    mean_dwell: SimDuration::from_secs(2),
                });
            } else {
                let lifetime_ms = (scenario.request_timeout.as_nanos() / 1_000_000) as u32;
                for &anode in &topo.attackers {
                    let principal = anode.index() as u64;
                    let path = if scenario.access_path_enabled {
                        AccessPath::of([topo.access_point_of(anode).0 as u64])
                    } else {
                        AccessPath::EMPTY
                    };
                    let mut issue = |prov_idx: usize, who: u64, expiry: SimTime| {
                        let pnode = topo.providers[prov_idx];
                        let p = providers.get_mut(&pnode.index()).expect("provider");
                        Arc::new(p.issue_tag(who, scenario.client_level, path, expiry))
                    };
                    let horizon = SimTime::ZERO + scenario.duration;
                    let issued: Vec<(usize, Arc<crate::tag::SignedTag>)> = match class {
                        AttackClass::Flood => (0..topo.providers.len())
                            .map(|idx| (idx, issue(idx, principal, horizon)))
                            .collect(),
                        AttackClass::ReplayExpired => (0..topo.providers.len())
                            .map(|idx| (idx, issue(idx, principal, SimTime::from_nanos(1))))
                            .collect(),
                        AttackClass::BfPollution => (0..adversary::POLLUTION_POOL)
                            .map(|k| {
                                let idx = k % topo.providers.len();
                                // Distinct synthetic principals yield
                                // distinct (still genuinely signed) tags.
                                let who = principal ^ ((k as u64 + 1) << 32);
                                (idx, issue(idx, who, horizon))
                            })
                            .collect(),
                        AttackClass::ForgeTags => Vec::new(),
                        AttackClass::Churn => unreachable!("handled above"),
                    };
                    adversaries[anode.index()] = Some(AdversaryDriver::new(
                        class,
                        principal,
                        scenario.attack.intensity,
                        lifetime_ms,
                        rng.fork(ATTACK_STREAM ^ principal),
                        catalog.clone(),
                        issued,
                    ));
                }
            }
        }

        // Edge defenses enforced by the transport at send time; the
        // bounded PIT is a router concern wired via `RouterConfig`.
        let defense =
            if scenario.defense.rate_limit.is_some() || scenario.defense.face_cap.is_some() {
                Some(EdgeDefense::new(
                    scenario.defense.rate_limit,
                    scenario.defense.face_cap,
                    topo.clients
                        .iter()
                        .chain(topo.attackers.iter())
                        .copied()
                        .collect(),
                    topo.access_points.clone(),
                    topo.edge_routers.clone(),
                ))
            } else {
                None
            };

        // Assemble node states.
        let mut nodes: Vec<NodeState> = Vec::with_capacity(n);
        for node in topo.graph.nodes() {
            let state = match topo.graph.role(node) {
                Role::CoreRouter | Role::EdgeRouter => NodeState::Router(Box::new(
                    routers.remove(&node.index()).expect("router built"),
                )),
                Role::Provider => NodeState::Provider(Box::new(
                    providers.remove(&node.index()).expect("provider built"),
                )),
                Role::Client | Role::Attacker => NodeState::Consumer(Box::new(
                    consumers.remove(&node.index()).expect("consumer built"),
                )),
                Role::AccessPoint => NodeState::Ap(
                    ApRelay::new(&topo, &links, node)
                        .expect("validated topology: AP wired to an edge router"),
                ),
            };
            nodes.push(state);
        }

        let plane = TacticPlane {
            nodes,
            edge_router_set,
            pit_sweep_sums: Vec::new(),
            cs_sweep_sums: Vec::new(),
            adversaries,
            attack_tick: adversary::tick_name(),
            proto,
        };
        let config = NetConfig {
            duration: scenario.duration,
            mobility: scenario.mobility,
            cost: scenario.cost_model.clone(),
            faults: scenario.faults.clone(),
            sample_every: scenario.sample_every,
            profile: scenario.profile,
            defense,
            churn,
        };
        Network {
            net: match shard {
                None => Net::assemble_observed(&topo, links, plane, rng, config, observer),
                Some(s) => Net::assemble_sharded(&topo, links, plane, rng, config, observer, s),
            },
            duration: scenario.duration,
        }
    }

    /// Runs to the horizon; returns the aggregated [`RunReport`], the
    /// transport observer, and the protocol observer.
    pub fn run_traced(self) -> (RunReport, O, PO) {
        let duration = self.duration;
        let (plane, observer, transport) = self.net.run();
        let (report, proto) = plane.into_report(duration, transport);
        (report, observer, proto)
    }
}

/// Convenience: build and run a scenario with one seed.
pub fn run_scenario(scenario: &Scenario, seed: u64) -> RunReport {
    Network::build(scenario, seed).run()
}

/// Runs `scenario` space-partitioned across `shards` worker threads,
/// with per-shard transport and protocol observers.
///
/// Each worker builds the full replicated network from `(scenario,
/// seed)` and processes only events homed at its owned nodes; the
/// conservative epoch coordinator (see [`tactic_net::sharded`])
/// exchanges cross-shard packets at lookahead barriers. The merged
/// [`RunReport`] is byte-identical to [`run_scenario`]'s for every
/// shard count (the engine-queue high-water mark, which is
/// partition-dependent, is excluded from the report's `Debug` output).
///
/// Per-shard observers are returned unmerged, in shard order — fold
/// them with their own merge operations
/// ([`NetCounters::merge`](tactic_net::NetCounters::merge),
/// `ProtocolRecorder::merge`) as needed.
pub fn run_traced_sharded<O, PO, MO, MP>(
    scenario: &Scenario,
    seed: u64,
    shards: usize,
    make_observer: MO,
    make_proto: MP,
) -> Result<(RunReport, Vec<O>, Vec<PO>, ShardedStats), ShardError>
where
    O: NetObserver + Send,
    PO: ProtocolObserver + Send,
    MO: Fn(u32) -> O + Sync,
    MP: Fn(u32) -> PO + Sync,
{
    // Partition on the caller's thread; workers rebuild the identical
    // topology from the identical seed, so the map transfers.
    let rng = Rng::seed_from_u64(seed ^ 0x7AC7_1C00);
    let topo: Topology = match scenario.topology {
        TopologyChoice::Paper(p) => p.build(seed),
        TopologyChoice::Custom(spec) => build_topology(&spec, &mut rng.fork(1)),
    };
    let shard_map = ShardMap::partition(&topo, shards)?;
    let lookahead = shard_map.lookahead(scenario.any_mobility());
    let horizon = SimTime::ZERO + scenario.duration;
    let shard_of = shard_map.shard_of.clone();
    drop(topo);

    let (results, mut stats) =
        run_sharded_profiled(shards, lookahead, horizon, scenario.profile, |s| {
            Network::build_inner(
                scenario,
                seed,
                make_observer(s),
                make_proto(s),
                Some(ShardSpec {
                    k: shards,
                    my_shard: s,
                    shard_of: shard_map.shard_of.clone(),
                }),
            )
            .net
        });
    stats.edge_cut = shard_map.edge_cut;

    let mut planes = Vec::with_capacity(shards);
    let mut observers = Vec::with_capacity(shards);
    let mut transports = Vec::with_capacity(shards);
    for (plane, obs, transport) in results {
        planes.push(plane);
        observers.push(obs);
        transports.push(transport);
    }
    let merged = TransportReport::merge_shards(&transports);

    // Stitch the owned node states back into one plane, in node-id
    // order, and fold the mirrored per-sweep PIT/CS sums element-wise.
    // Each shard's own sweep maxima feed the per-shard stats before the
    // fold erases them.
    let mut protos = Vec::with_capacity(shards);
    let mut edge_router_set: Vec<bool> = Vec::new();
    let mut pit_sweep_sums: Vec<u64> = Vec::new();
    let mut cs_sweep_sums: Vec<u64> = Vec::new();
    let mut per_shard_nodes: Vec<Vec<Option<NodeState>>> = Vec::with_capacity(shards);
    for plane in planes {
        let TacticPlane {
            nodes,
            edge_router_set: ers,
            pit_sweep_sums: sums,
            cs_sweep_sums: cs_sums,
            adversaries: _,
            attack_tick: _,
            proto,
        } = plane;
        if edge_router_set.is_empty() {
            edge_router_set = ers;
        }
        stats
            .per_shard_peak_pit
            .push(sums.iter().copied().max().unwrap_or(0));
        stats
            .per_shard_peak_cs
            .push(cs_sums.iter().copied().max().unwrap_or(0));
        if pit_sweep_sums.len() < sums.len() {
            pit_sweep_sums.resize(sums.len(), 0);
        }
        for (i, v) in sums.iter().enumerate() {
            pit_sweep_sums[i] += v;
        }
        if cs_sweep_sums.len() < cs_sums.len() {
            cs_sweep_sums.resize(cs_sums.len(), 0);
        }
        for (i, v) in cs_sums.iter().enumerate() {
            cs_sweep_sums[i] += v;
        }
        protos.push(proto);
        per_shard_nodes.push(nodes.into_iter().map(Some).collect());
    }
    let nodes: Vec<NodeState> = shard_of
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            per_shard_nodes[s as usize][i]
                .take()
                .expect("every node owned by exactly one shard")
        })
        .collect();
    let stitched = TacticPlane {
        nodes,
        edge_router_set,
        pit_sweep_sums,
        cs_sweep_sums,
        // The stitched plane only aggregates reports; it never handles
        // another event, so the fleet state is not reassembled.
        adversaries: Vec::new(),
        attack_tick: adversary::tick_name(),
        proto: NoopProtocolObserver,
    };
    let (report, _) = stitched.into_report(scenario.duration, merged);
    Ok((report, observers, protos, stats))
}

/// Convenience: [`run_traced_sharded`] with no observers.
pub fn run_scenario_sharded(
    scenario: &Scenario,
    seed: u64,
    shards: usize,
) -> Result<(RunReport, ShardedStats), ShardError> {
    let (report, _, _, stats) = run_traced_sharded(
        scenario,
        seed,
        shards,
        |_| NoopObserver,
        |_| NoopProtocolObserver,
    )?;
    Ok((report, stats))
}
