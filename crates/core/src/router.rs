//! The TACTIC router: Protocols 2 (edge), 3 (content), and 4
//! (intermediate) over the NDN tables.
//!
//! One [`TacticRouter`] type covers all three roles because the roles are
//! situational: a router is a *content* router for names it has cached, an
//! *intermediate* router otherwise, and an *edge* router additionally runs
//! Protocol 2 on Interests arriving from its client-side (downstream)
//! faces. Routers are pure state machines — handlers return the packets to
//! emit plus the sampled computation delay — so the protocols are testable
//! without the event engine.

use std::collections::HashSet;
use std::sync::Arc;

use tactic_bloom::{BloomParams, CacheChurn, CachePolicy, ValidationCache};
use tactic_crypto::cert::CertStore;
use tactic_ndn::face::FaceId;
use tactic_ndn::forwarder::Tables;
use tactic_ndn::packet::{Data, Interest, Nack, NackReason, Packet};
use tactic_ndn::pit::PitInsert;
use tactic_sim::cost::{CostModel, Op};
use tactic_sim::rng::Rng;
use tactic_sim::time::{SimDuration, SimTime};
use tactic_telemetry::{
    BfOutcome, Hop, NodeRole, NoopProtocolObserver, PrecheckStage, PrecheckVerdict,
    ProtocolObserver, RevalidationOutcome, SpanProfiler,
};

use crate::ext;
use crate::precheck::{content_precheck, edge_precheck, PreCheckError};
use crate::tag::SignedTag;

/// Whether a router is a designated edge router (`R_E`) or a core router
/// (`R_C`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterRole {
    /// Designated edge router: runs Protocol 2 on downstream Interests.
    Edge,
    /// Core router: Protocol 3 when it has the content, Protocol 4
    /// otherwise.
    Core,
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Edge or core.
    pub role: RouterRole,
    /// Bloom-filter sizing (the paper's default: 500-tag capacity, k = 5,
    /// max FPP 1e-4).
    pub bf_params: BloomParams,
    /// Content-store capacity in packets.
    pub cs_capacity: usize,
    /// Enforce access-path authentication at edge routers (§4.A; the
    /// paper's own simulation ran with this off).
    pub access_path_enabled: bool,
    /// Honour the cooperation flag `F` (ablation: when off, content
    /// routers treat every request as unvalidated, i.e. `F = 0`).
    pub flag_f_enabled: bool,
    /// Return content *with* a NACK marker on invalid tags so downstream
    /// aggregated valid requests are still satisfied (§5.B). Ablation:
    /// when off, invalid requests are simply dropped and co-aggregated
    /// valid requesters must re-request after a timeout.
    pub content_nack_enabled: bool,
    /// Record `(identity, observed path, time)` sightings of tagged
    /// requests at edge routers, feeding the traitor-tracing extension
    /// (`crate::traitor`). Off by default.
    pub record_sightings: bool,
    /// Bound on live PIT entries: when an Interest pushes the table over
    /// this capacity the oldest entry is evicted deterministically (see
    /// [`tactic_ndn::pit::Pit::evict_over_capacity`]). `None` (the
    /// default) keeps the historical unbounded PIT at zero cost.
    pub pit_capacity: Option<usize>,
    /// Validation-cache eviction policy: the paper's monolithic
    /// full-reset filter (the default, byte-identical to the historical
    /// bare-filter path) or `G` rotating generations with per-prefix
    /// partitioning (see [`ValidationCache`]).
    pub cache_policy: CachePolicy,
    /// Remember which tags this router has already signature-verified,
    /// so verifying an *already-seen* tag again — work forced by a
    /// cache reset or rotation that evicted still-valid state — counts
    /// into [`OpCounters::evicted_revalidations`]. Off by default: the
    /// tracking set costs memory per validated tag and only the
    /// `tagscale` experiment reads the counter.
    pub track_revalidations: bool,
}

impl RouterConfig {
    /// The paper's configuration for the given role.
    pub fn paper(role: RouterRole) -> Self {
        RouterConfig {
            role,
            bf_params: BloomParams::paper(500),
            cs_capacity: 1_000,
            access_path_enabled: false,
            flag_f_enabled: true,
            content_nack_enabled: true,
            record_sightings: false,
            pit_capacity: None,
            cache_policy: CachePolicy::MonolithicReset,
            track_revalidations: false,
        }
    }
}

/// Operation counters — the quantities plotted in Fig. 7 / Fig. 8 /
/// Table V.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Bloom-filter lookups on the first-validation path (`L`).
    pub bf_lookups: u64,
    /// Bloom-filter lookups attributable to the probabilistic `F > 0`
    /// re-validation path at content routers — split out of `L` so
    /// re-validation work is separately countable; Fig. 7 merges the two
    /// back into its `L` column.
    pub bf_lookups_reval: u64,
    /// Bloom-filter insertions (`I`).
    pub bf_insertions: u64,
    /// Signature verifications on the first-validation path (`V`).
    pub sig_verifications: u64,
    /// Signature verifications performed as probabilistic `F > 0`
    /// re-validations at content routers (Protocol 3 lines 11-12 and the
    /// aggregated-requester equivalent) — split out of `V`; Fig. 7
    /// merges them back into its `V` column.
    pub revalidations: u64,
    /// Bloom-filter resets.
    pub bf_resets: u64,
    /// Validation-cache generation rotations — the generational
    /// policy's partial evictions (always 0 under the default
    /// monolithic policy).
    pub bf_rotations: u64,
    /// Signature verifications of tags this router had *already*
    /// verified once — re-validation work forced by a reset or rotation
    /// that evicted still-valid state. Counted only when
    /// [`RouterConfig::track_revalidations`] is on (0 otherwise).
    pub evicted_revalidations: u64,
    /// Interests processed.
    pub interests: u64,
    /// Data packets processed.
    pub data: u64,
    /// Requests rejected by the Protocol 1 pre-check.
    pub precheck_rejections: u64,
    /// Pre-check failures caused specifically by an expired tag
    /// (`T_e < T_current`, [`PreCheckError::Expired`]) — the replay
    /// defence the adversarial suite exercises, kept distinct from
    /// invalid-signature rejections. Counted at both the edge Interest
    /// pre-check and the aggregated-requester Data-path pre-check.
    pub expired_rejections: u64,
    /// Requests rejected by access-path authentication.
    pub ap_rejections: u64,
    /// NACKs emitted (standalone or content-attached).
    pub nacks: u64,
    /// Content-store hits.
    pub cache_hits: u64,
}

impl OpCounters {
    /// Element-wise sum.
    pub fn merge(&mut self, other: &OpCounters) {
        self.bf_lookups += other.bf_lookups;
        self.bf_lookups_reval += other.bf_lookups_reval;
        self.bf_insertions += other.bf_insertions;
        self.sig_verifications += other.sig_verifications;
        self.revalidations += other.revalidations;
        self.bf_resets += other.bf_resets;
        self.bf_rotations += other.bf_rotations;
        self.evicted_revalidations += other.evicted_revalidations;
        self.interests += other.interests;
        self.data += other.data;
        self.precheck_rejections += other.precheck_rejections;
        self.expired_rejections += other.expired_rejections;
        self.ap_rejections += other.ap_rejections;
        self.nacks += other.nacks;
        self.cache_hits += other.cache_hits;
    }

    /// First-validation plus re-validation BF lookups — Fig. 7's merged
    /// `L` column.
    pub fn total_bf_lookups(&self) -> u64 {
        self.bf_lookups + self.bf_lookups_reval
    }

    /// First-validation plus re-validation signature verifications —
    /// Fig. 7's merged `V` column.
    pub fn total_sig_verifications(&self) -> u64 {
        self.sig_verifications + self.revalidations
    }
}

/// Hand-rolled to render exactly as it did before `expired_rejections`
/// existed: the golden snapshots compare `Debug` output byte-for-byte
/// and are pinned to the seed commit, and even unattacked runs see
/// expired tags (the paper's historical attacker mix replays them), so
/// the subclassification stays out of the frozen dump schema — like
/// `RunReport::samples`, it is surfaced through field access (the
/// `attacks` experiment CSV and telemetry), not through `Debug`.
/// `bf_rotations` and `evicted_revalidations` stay out for the same
/// reason: they are zero on every default-policy run and are surfaced
/// through the `tagscale` CSV and the run manifests instead.
impl std::fmt::Debug for OpCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpCounters")
            .field("bf_lookups", &self.bf_lookups)
            .field("bf_lookups_reval", &self.bf_lookups_reval)
            .field("bf_insertions", &self.bf_insertions)
            .field("sig_verifications", &self.sig_verifications)
            .field("revalidations", &self.revalidations)
            .field("bf_resets", &self.bf_resets)
            .field("interests", &self.interests)
            .field("data", &self.data)
            .field("precheck_rejections", &self.precheck_rejections)
            .field("ap_rejections", &self.ap_rejections)
            .field("nacks", &self.nacks)
            .field("cache_hits", &self.cache_hits)
            .finish()
    }
}

/// What a handler wants transmitted, plus the computation time it charged.
#[derive(Debug, Clone, Default)]
pub struct RouterOutput {
    /// `(out_face, packet)` pairs to transmit.
    pub sends: Vec<(FaceId, Packet)>,
    /// Total sampled computation delay for this packet's processing.
    pub compute: SimDuration,
    /// Pending records evicted because this packet pushed a bounded PIT
    /// over capacity (zero on the default unbounded configuration). The
    /// plane folds these into its drop accounting as `PitFull`.
    pub pit_evictions: u64,
}

/// A TACTIC router.
pub struct TacticRouter {
    config: RouterConfig,
    tables: Tables<TagNote>,
    cache: ValidationCache,
    certs: CertStore,
    counters: OpCounters,
    downstream: HashSet<FaceId>,
    requests_since_reset: u64,
    reset_request_counts: Vec<u64>,
    sightings: Vec<(u64, crate::access_path::AccessPath, SimTime)>,
    /// Tag ids this router has signature-verified at least once, for
    /// eviction-forced re-validation accounting. `None` (the default)
    /// skips all tracking.
    seen_tags: Option<HashSet<u64>>,
}

impl std::fmt::Debug for TacticRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TacticRouter")
            .field("role", &self.config.role)
            .field("counters", &self.counters)
            .finish()
    }
}

/// The PIT in-record note: Protocol 4's `<tag, F>` pair.
///
/// Stored typed — the tag as a shared [`Arc`] handle — so aggregating a
/// request costs one refcount bump and replaying it on the Data path reads
/// the fields directly, with no serialization round-trip. `f` is always
/// written from an already-sanitized flag (see [`ext::sanitize_flag_f`]),
/// and the note never leaves the process, so no re-sanitization is needed
/// on the way out.
#[derive(Debug, Clone, Default)]
pub struct TagNote {
    /// The cooperation flag `F` recorded with the request.
    pub f: f64,
    /// The request's signed tag, if it carried one.
    pub tag: Option<Arc<SignedTag>>,
}

/// Runs `f` under the span `name` when a profiler is attached; the
/// disabled path (`None`, the default everywhere) costs one branch and
/// no clock reads. Handlers thread `prof` by mutable reference so one
/// packet's phases all land in the same profiler.
#[inline]
fn timed<T>(prof: &mut Option<&mut SpanProfiler>, name: &'static str, f: impl FnOnce() -> T) -> T {
    match prof {
        Some(p) => p.time(name, f),
        None => f(),
    }
}

/// Outcome of the Protocol 3 content-serving decision.
#[derive(Debug)]
enum ServeDecision {
    /// Deliver the content (annotated in place).
    Serve(Data),
    /// The tag is invalid: routers downstream get content + NACK so their
    /// aggregated valid requests are still satisfied; *clients* get
    /// nothing (or a bare NACK).
    Invalid(Data, NackReason),
}

impl TacticRouter {
    /// Creates a router with the given configuration and provider-key
    /// registry.
    pub fn new(config: RouterConfig, certs: CertStore) -> Self {
        let mut tables = Tables::new(config.cs_capacity);
        tables.pit.set_capacity(config.pit_capacity);
        TacticRouter {
            cache: ValidationCache::new(config.bf_params, config.cache_policy),
            tables,
            seen_tags: config.track_revalidations.then(HashSet::new),
            config,
            certs,
            counters: OpCounters::default(),
            downstream: HashSet::new(),
            requests_since_reset: 0,
            reset_request_counts: Vec::new(),
            sightings: Vec::new(),
        }
    }

    /// The router's role.
    pub fn role(&self) -> RouterRole {
        self.config.role
    }

    /// Marks a face as downstream (client-side); edge routers run
    /// Protocol 2 on Interests arriving there.
    pub fn mark_downstream(&mut self, face: FaceId) {
        self.downstream.insert(face);
    }

    /// Installs a FIB route.
    pub fn add_route(&mut self, prefix: tactic_ndn::name::Name, face: FaceId, cost: u32) {
        self.tables.fib.add_route(prefix, face, cost);
    }

    /// Drops every FIB route. The fault layer calls this at failure
    /// instants before re-installing the recomputed routing plane.
    pub fn clear_routes(&mut self) {
        self.tables.fib.clear();
    }

    /// The operation counters.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Requests absorbed between consecutive BF resets (Fig. 8's metric);
    /// one entry per completed reset.
    pub fn reset_request_counts(&self) -> &[u64] {
        &self.reset_request_counts
    }

    /// Recorded `(identity, observed path, time)` sightings (empty unless
    /// [`RouterConfig::record_sightings`] is set).
    pub fn sightings(&self) -> &[(u64, crate::access_path::AccessPath, SimTime)] {
        &self.sightings
    }

    /// The validation cache (inspection / tests).
    pub fn validation_cache(&self) -> &ValidationCache {
        &self.cache
    }

    /// The first 8 bytes of a tag's Bloom key (itself a digest): the
    /// stable id the re-validation tracking set stores.
    fn tag_id(key: &[u8]) -> u64 {
        u64::from_le_bytes(key[..8].try_into().expect("bloom keys are 32 bytes"))
    }

    /// The NDN tables (inspection / tests).
    pub fn tables(&self) -> &Tables<TagNote> {
        &self.tables
    }

    /// Expires stale PIT records; call periodically.
    pub fn purge_pit(&mut self, now: SimTime) -> usize {
        self.tables.pit.purge_expired(now)
    }

    /// Relays a standalone NACK downstream to every pending requester,
    /// consuming the PIT entry.
    pub fn handle_nack(&mut self, nack: Nack) -> RouterOutput {
        self.handle_nack_observed(nack, SimTime::default(), 0, &mut NoopProtocolObserver)
    }

    /// [`Self::handle_nack`] with protocol-decision hooks.
    pub fn handle_nack_observed<O: ProtocolObserver>(
        &mut self,
        nack: Nack,
        now: SimTime,
        node: u64,
        obs: &mut O,
    ) -> RouterOutput {
        let mut out = RouterOutput::default();
        let hop = Hop::new(node, self.telemetry_role(), now);
        if let Some(entry) = self.tables.pit.take(nack.interest().name()) {
            let recs = entry.into_records();
            let last = recs.len().saturating_sub(1);
            let reason = nack.reason();
            let mut nack = Some(nack);
            for (idx, rec) in recs.iter().enumerate() {
                self.counters.nacks += 1;
                obs.on_nack(hop, reason);
                // Clone only on genuine fan-out: the last pending
                // requester takes the original by move.
                let pkt = if idx == last {
                    nack.take().expect("consumed only at the last record")
                } else {
                    nack.as_ref()
                        .expect("present before the last record")
                        .clone()
                };
                out.sends.push((rec.face, Packet::Nack(pkt)));
            }
        }
        out
    }

    fn is_downstream(&self, face: FaceId) -> bool {
        self.downstream.contains(&face)
    }

    /// This router's role in telemetry vocabulary.
    fn telemetry_role(&self) -> NodeRole {
        match self.config.role {
            RouterRole::Edge => NodeRole::EdgeRouter,
            RouterRole::Core => NodeRole::CoreRouter,
        }
    }

    /// Validation-cache lookup with cost charging and counting. `prefix`
    /// selects the generational partition (ignored by the monolithic
    /// policy). `reval` marks lookups on the probabilistic `F > 0`
    /// re-validation path, which count into `bf_lookups_reval` instead
    /// of `bf_lookups`.
    #[allow(clippy::too_many_arguments)]
    fn bf_contains<O: ProtocolObserver>(
        &mut self,
        prefix: &[u8],
        key: &[u8],
        reval: bool,
        hop: Hop,
        obs: &mut O,
        rng: &mut Rng,
        cost: &CostModel,
        charge: &mut SimDuration,
        prof: &mut Option<&mut SpanProfiler>,
    ) -> bool {
        if reval {
            self.counters.bf_lookups_reval += 1;
        } else {
            self.counters.bf_lookups += 1;
        }
        *charge += cost.sample(Op::BfLookup, rng);
        let hit = timed(prof, "bf_lookup", || self.cache.contains(prefix, key));
        obs.on_bf_lookup(
            hop,
            if hit { BfOutcome::Hit } else { BfOutcome::Miss },
            reval,
        );
        hit
    }

    /// Validation-cache insert with eviction accounting, cost charging,
    /// counting. The eviction decision itself lives in
    /// [`ValidationCache::insert`] so `counters.bf_resets` /
    /// `counters.bf_rotations` stay in lockstep with the cache's own
    /// `resets()` / `rotations()`.
    #[allow(clippy::too_many_arguments)]
    fn bf_insert<O: ProtocolObserver>(
        &mut self,
        prefix: &[u8],
        key: &[u8],
        hop: Hop,
        obs: &mut O,
        rng: &mut Rng,
        cost: &CostModel,
        charge: &mut SimDuration,
        prof: &mut Option<&mut SpanProfiler>,
    ) {
        self.counters.bf_insertions += 1;
        *charge += cost.sample(Op::BfInsert, rng);
        let churn = timed(prof, "bf_insert", || self.cache.insert(prefix, key));
        match churn {
            CacheChurn::Reset => {
                self.counters.bf_resets += 1;
                self.reset_request_counts.push(self.requests_since_reset);
                self.requests_since_reset = 0;
            }
            CacheChurn::Rotation => self.counters.bf_rotations += 1,
            CacheChurn::None => {}
        }
        if let Some(seen) = &mut self.seen_tags {
            seen.insert(Self::tag_id(key));
        }
        obs.on_bf_insert(hop, churn == CacheChurn::Reset);
    }

    /// Full tag validation: BF short-circuit, then signature verification
    /// against the registered provider key, inserting on success. `reval`
    /// routes the work into the re-validation counters.
    #[allow(clippy::too_many_arguments)]
    fn validate_tag<O: ProtocolObserver>(
        &mut self,
        tag: &SignedTag,
        reval: bool,
        hop: Hop,
        obs: &mut O,
        rng: &mut Rng,
        cost: &CostModel,
        charge: &mut SimDuration,
        prof: &mut Option<&mut SpanProfiler>,
    ) -> bool {
        let key = tag.bloom_key();
        let prefix = tag.partition_key();
        if self.bf_contains(prefix, &key, reval, hop, obs, rng, cost, charge, prof) {
            return true;
        }
        if reval {
            self.counters.revalidations += 1;
        } else {
            self.counters.sig_verifications += 1;
        }
        *charge += cost.sample(Op::SigVerify, rng);
        let valid = timed(prof, "sig_verify", || {
            let provider = self.certs.key_for(&tag.tag.provider_prefix().to_string());
            provider.is_some_and(|pk| tag.verify(&pk))
        });
        obs.on_sig_verify(hop, valid, reval);
        if valid {
            // A verified tag the cache had already seen means an eviction
            // (reset or rotation) forced this verification all over again.
            if let Some(seen) = &self.seen_tags {
                if seen.contains(&Self::tag_id(&key)) {
                    self.counters.evicted_revalidations += 1;
                }
            }
            self.bf_insert(prefix, &key, hop, obs, rng, cost, charge, prof);
        }
        valid
    }

    /// Handles an incoming Interest (Protocols 1, 2, and the Interest
    /// halves of 3 and 4).
    pub fn handle_interest(
        &mut self,
        interest: Interest,
        in_face: FaceId,
        now: SimTime,
        rng: &mut Rng,
        cost: &CostModel,
    ) -> RouterOutput {
        self.handle_interest_observed(
            interest,
            in_face,
            now,
            rng,
            cost,
            0,
            &mut NoopProtocolObserver,
            &mut None,
        )
    }

    /// [`Self::handle_interest`] with protocol-decision hooks: `node` is
    /// this router's id in the topology, stamped onto every hook. `prof`
    /// receives wall-clock spans for the hot phases when profiling.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_interest_observed<O: ProtocolObserver>(
        &mut self,
        mut interest: Interest,
        in_face: FaceId,
        now: SimTime,
        rng: &mut Rng,
        cost: &CostModel,
        node: u64,
        obs: &mut O,
        prof: &mut Option<&mut SpanProfiler>,
    ) -> RouterOutput {
        let mut out = RouterOutput::default();
        let hop = Hop::new(node, self.telemetry_role(), now);
        self.counters.interests += 1;
        self.requests_since_reset += 1;
        obs.on_interest_hop(hop, interest.nonce(), interest.name());
        let observed_f = ext::interest_flag_f(&interest);

        let from_client = self.config.role == RouterRole::Edge && self.is_downstream(in_face);
        let registration = ext::is_registration(&interest);
        // Decode the tag once per hop and share it from there: the PIT
        // note, sightings, and the serve path all borrow the same `Arc`.
        let tag = if registration {
            None
        } else {
            ext::interest_tag(&interest)
        };

        // Only Protocol 2 (the edge, below) may write F. Whatever a client
        // put on the wire — including a forged F that would skip content-
        // router validation — is discarded on every downstream face,
        // regardless of this router's role.
        if self.is_downstream(in_face) {
            ext::set_interest_flag_f(&mut interest, 0.0);
        }

        // ── Protocol 2, Interest side (edge routers, client-side faces) ──
        if from_client && !registration {
            if let Some(st) = &tag {
                if self.config.record_sightings {
                    self.sightings.push((
                        st.client_identity(),
                        ext::interest_access_path(&interest),
                        now,
                    ));
                }
                if self.config.access_path_enabled {
                    out.compute += cost.sample(Op::AccessPathCheck, rng);
                    let observed = ext::interest_access_path(&interest);
                    if observed != st.tag.access_path {
                        // Lines 1-2: drop and NACK the client.
                        self.counters.ap_rejections += 1;
                        self.counters.nacks += 1;
                        obs.on_precheck(
                            hop,
                            PrecheckStage::Edge,
                            PrecheckVerdict::Rejected(
                                tactic_telemetry::RejectReason::AccessPathMismatch,
                            ),
                        );
                        obs.on_nack(hop, NackReason::AccessPathMismatch);
                        out.sends.push((
                            in_face,
                            Packet::Nack(Nack::new(interest, NackReason::AccessPathMismatch)),
                        ));
                        return out;
                    }
                }
                // Protocol 1, edge half. Failures are dropped *silently*
                // (no NACK): the requester's window slot frees only via
                // its 1 s request expiry, which is the paper's
                // "request-based DoS prevention" (§8.B).
                out.compute += cost.sample(Op::PreCheck, rng);
                if let Err(e) = timed(prof, "precheck", || {
                    edge_precheck(&st.tag, interest.name(), now)
                }) {
                    self.counters.precheck_rejections += 1;
                    if matches!(e, PreCheckError::Expired { .. }) {
                        self.counters.expired_rejections += 1;
                    }
                    obs.on_precheck(
                        hop,
                        PrecheckStage::Edge,
                        PrecheckVerdict::Rejected(e.telemetry_reason()),
                    );
                    return out;
                }
                obs.on_precheck(hop, PrecheckStage::Edge, PrecheckVerdict::Accepted);
                // Lines 4-8: set F from the BF.
                let key = st.bloom_key();
                let f = if self.bf_contains(
                    st.partition_key(),
                    &key,
                    false,
                    hop,
                    obs,
                    rng,
                    cost,
                    &mut out.compute,
                    prof,
                ) {
                    // A hit with a pristine filter still means "validated":
                    // floor the flag so it stays distinguishable from 0.
                    self.cache.estimated_fpp().max(1e-9)
                } else {
                    0.0
                };
                ext::set_interest_flag_f(&mut interest, f);
            } else {
                ext::set_interest_flag_f(&mut interest, 0.0);
            }
        }

        let flag_f = if self.config.flag_f_enabled {
            ext::interest_flag_f(&interest)
        } else {
            0.0
        };
        obs.on_flag_f(hop, observed_f, flag_f);

        // ── Content store: Protocol 3 if we hold the content ──
        if !registration {
            if let Some(cached) = self.tables.cs.get(interest.name()) {
                let cached = cached.clone();
                self.counters.cache_hits += 1;
                obs.on_cache_hit(hop, interest.name());
                let decision = self.serve_content(
                    cached,
                    tag.as_deref(),
                    flag_f,
                    hop,
                    obs,
                    rng,
                    cost,
                    &mut out.compute,
                    prof,
                );
                match decision {
                    ServeDecision::Serve(d) => out.sends.push((in_face, Packet::Data(d))),
                    ServeDecision::Invalid(d, reason) => {
                        if from_client {
                            // Never hand unauthorized content to a client;
                            // drop silently so the attacker is throttled by
                            // its own request expiry.
                        } else if self.config.content_nack_enabled {
                            self.counters.nacks += 1;
                            obs.on_nack(hop, reason);
                            out.sends.push((in_face, Packet::Data(d)));
                        }
                    }
                }
                return out;
            }
        }

        // ── Protocol 4, Interest side: PIT aggregation, FIB forward ──
        let note = TagNote { f: flag_f, tag };
        let expiry = now + SimDuration::from_millis(interest.lifetime_ms() as u64);
        match timed(prof, "pit_ops", || {
            self.tables
                .pit
                .on_interest(interest.name(), in_face, interest.nonce(), expiry, note)
        }) {
            PitInsert::DuplicateNonce => {}
            PitInsert::Aggregated => {
                let depth = self
                    .tables
                    .pit
                    .get(interest.name())
                    .map_or(0, |e| e.records().len());
                obs.on_pit_aggregated(hop, depth);
            }
            PitInsert::New => match self.tables.fib.next_hop(interest.name()) {
                Some(next) => out.sends.push((next, Packet::Interest(interest))),
                None => {
                    self.tables.pit.take(interest.name());
                    self.counters.nacks += 1;
                    obs.on_nack(hop, NackReason::NoRoute);
                    out.sends.push((
                        in_face,
                        Packet::Nack(Nack::new(interest, NackReason::NoRoute)),
                    ));
                }
            },
        }
        for evicted in self.tables.pit.evict_over_capacity() {
            out.pit_evictions += evicted.records().len() as u64;
        }
        out
    }

    /// Protocol 3: decide how to answer a request for cached content.
    ///
    /// Takes the content by value — the caller's single clone out of the
    /// CS is the only copy the serve path makes; annotations are written
    /// onto it in place.
    #[allow(clippy::too_many_arguments)]
    fn serve_content<O: ProtocolObserver>(
        &mut self,
        mut cached: Data,
        tag: Option<&SignedTag>,
        flag_f: f64,
        hop: Hop,
        obs: &mut O,
        rng: &mut Rng,
        cost: &CostModel,
        charge: &mut SimDuration,
        prof: &mut Option<&mut SpanProfiler>,
    ) -> ServeDecision {
        let al = ext::data_access_level(&cached);
        // Public (NULL) content needs no tag verification at all.
        if al.is_public() {
            return ServeDecision::Serve(cached);
        }
        let Some(st) = tag else {
            // Protected content, no tag: content-NACK so downstream
            // aggregated (valid) requests are still satisfiable.
            obs.on_precheck(
                hop,
                PrecheckStage::Content,
                PrecheckVerdict::Rejected(tactic_telemetry::RejectReason::MissingTag),
            );
            ext::set_data_nack(&mut cached, NackReason::InvalidTag);
            return ServeDecision::Invalid(cached, NackReason::InvalidTag);
        };
        // Protocol 1, content half.
        *charge += cost.sample(Op::PreCheck, rng);
        let key_loc = ext::data_key_locator(&cached).unwrap_or_default();
        if let Err(e) = timed(prof, "precheck", || content_precheck(&st.tag, al, &key_loc)) {
            self.counters.precheck_rejections += 1;
            obs.on_precheck(
                hop,
                PrecheckStage::Content,
                PrecheckVerdict::Rejected(e.telemetry_reason()),
            );
            ext::set_data_tag(&mut cached, st);
            ext::set_data_nack(&mut cached, NackReason::InvalidTag);
            return ServeDecision::Invalid(cached, NackReason::InvalidTag);
        }
        obs.on_precheck(hop, PrecheckStage::Content, PrecheckVerdict::Accepted);
        let valid = if flag_f == 0.0 {
            // Lines 1-10: BF lookup; verify + insert on miss.
            self.validate_tag(st, false, hop, obs, rng, cost, charge, prof)
        } else if rng.chance(flag_f) {
            // Lines 11-12: probabilistic re-validation guards against the
            // edge filter's false positives.
            self.counters.revalidations += 1;
            *charge += cost.sample(Op::SigVerify, rng);
            let valid = timed(prof, "sig_verify", || {
                let provider = self.certs.key_for(&st.tag.provider_prefix().to_string());
                provider.is_some_and(|pk| st.verify(&pk))
            });
            obs.on_sig_verify(hop, valid, true);
            obs.on_revalidation(
                hop,
                if valid {
                    RevalidationOutcome::Verified
                } else {
                    RevalidationOutcome::Rejected
                },
            );
            valid
        } else {
            obs.on_revalidation(hop, RevalidationOutcome::Trusted);
            true // Trust the edge router's validation.
        };
        ext::set_data_tag(&mut cached, st);
        // Mirror the request's F into D (lines 2, 8, 13) so the edge
        // router knows whether to insert the tag into its own filter.
        ext::set_data_flag_f(&mut cached, flag_f);
        if valid {
            ServeDecision::Serve(cached)
        } else {
            ext::set_data_nack(&mut cached, NackReason::InvalidTag);
            ServeDecision::Invalid(cached, NackReason::InvalidTag)
        }
    }

    /// Handles an incoming Data packet (Protocol 2's content side and
    /// Protocol 4's content side).
    pub fn handle_data(
        &mut self,
        data: Data,
        in_face: FaceId,
        now: SimTime,
        rng: &mut Rng,
        cost: &CostModel,
    ) -> RouterOutput {
        self.handle_data_observed(
            data,
            in_face,
            now,
            rng,
            cost,
            0,
            &mut NoopProtocolObserver,
            &mut None,
        )
    }

    /// [`Self::handle_data`] with protocol-decision hooks.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_data_observed<O: ProtocolObserver>(
        &mut self,
        data: Data,
        _in_face: FaceId,
        now: SimTime,
        rng: &mut Rng,
        cost: &CostModel,
        node: u64,
        obs: &mut O,
        prof: &mut Option<&mut SpanProfiler>,
    ) -> RouterOutput {
        let mut out = RouterOutput::default();
        let hop = Hop::new(node, self.telemetry_role(), now);
        self.counters.data += 1;

        // Registration responses: edge inserts the fresh tag (Protocol 2
        // lines 11-12) and everyone forwards without caching.
        if let Some(new_tag) = ext::data_new_tag(&data) {
            let Some(entry) = timed(prof, "pit_ops", || self.tables.pit.take(data.name())) else {
                return out;
            };
            let recs = entry.into_records();
            let last = recs.len().saturating_sub(1);
            let mut data = Some(data);
            for (idx, rec) in recs.iter().enumerate() {
                if self.config.role == RouterRole::Edge && self.is_downstream(rec.face) {
                    self.bf_insert(
                        new_tag.partition_key(),
                        &new_tag.bloom_key(),
                        hop,
                        obs,
                        rng,
                        cost,
                        &mut out.compute,
                        prof,
                    );
                }
                // Clone only on genuine fan-out: the last pending
                // requester takes the response by move.
                let d = if idx == last {
                    data.take().expect("consumed only at the last record")
                } else {
                    data.as_ref()
                        .expect("present before the last record")
                        .clone()
                };
                out.sends.push((rec.face, Packet::Data(d)));
            }
            return out;
        }

        let echoed = ext::data_tag(&data);
        let nack = ext::data_nack(&data);
        let f_in_d = ext::data_flag_f(&data);
        let al = ext::data_access_level(&data);

        let Some(entry) = timed(prof, "pit_ops", || self.tables.pit.take(data.name())) else {
            return out; // Unsolicited: drop, don't cache (NFD policy).
        };

        // Cache the canonical content (annotations stripped); the content
        // itself is genuine even when a NACK rides along.
        let mut canonical = data.clone();
        ext::strip_delivery_annotations(&mut canonical);
        self.tables.cs.insert_at(canonical, now);

        // Replies are *decided* in PIT-record order (RNG draws, counters,
        // and observer calls all happen in the decision loop) and
        // *materialised* afterwards, so the last unannotated reply can take
        // `data` by move — clones happen only on genuine fan-out.
        enum Reply {
            /// Forward the incoming Data as-is.
            Plain(FaceId),
            /// Forward a re-annotated copy.
            Annotated(FaceId, Data),
        }
        let mut plan: Vec<Reply> = Vec::new();

        let echoed_key = echoed.as_deref().map(SignedTag::bloom_key);
        for rec in entry.into_records() {
            let TagNote {
                f: rec_f,
                tag: rec_tag,
            } = rec.note;
            let to_client = self.is_downstream(rec.face);
            let is_echo = match (&rec_tag, &echoed_key) {
                (Some(rt), Some(ek)) => &rt.bloom_key() == ek,
                (None, None) => true,
                _ => false,
            };

            if is_echo {
                // Protocol 2 lines 11-21 / Protocol 4 lines 6-10.
                match nack {
                    Some(reason) => {
                        if to_client {
                            // Edge: drop the nacked request (lines 19-20);
                            // the client's window frees via timeout.
                            let _ = reason;
                        } else {
                            plan.push(Reply::Plain(rec.face));
                        }
                    }
                    None => {
                        if to_client && f_in_d == 0.0 {
                            // Lines 14-15: upstream vouched; insert.
                            if let Some(rt) = &rec_tag {
                                self.bf_insert(
                                    rt.partition_key(),
                                    &rt.bloom_key(),
                                    hop,
                                    obs,
                                    rng,
                                    cost,
                                    &mut out.compute,
                                    prof,
                                );
                            }
                        }
                        plan.push(Reply::Plain(rec.face));
                    }
                }
                continue;
            }

            // Aggregated requesters: Protocol 4 lines 11-25 / Protocol 2
            // lines 22-23.
            let Some(rt) = rec_tag else {
                // Untagged aggregated request: only public content flows.
                if al.is_public() {
                    plan.push(Reply::Plain(rec.face));
                } else if !to_client && self.config.content_nack_enabled {
                    let mut d = data.clone();
                    ext::set_data_nack(&mut d, NackReason::InvalidTag);
                    self.counters.nacks += 1;
                    obs.on_nack(hop, NackReason::InvalidTag);
                    plan.push(Reply::Annotated(rec.face, d));
                }
                continue;
            };
            let flag_f = if self.config.flag_f_enabled {
                rec_f
            } else {
                0.0
            };
            if flag_f != 0.0 && !rng.chance(flag_f) {
                // Trust the edge router's prior validation.
                obs.on_revalidation(hop, RevalidationOutcome::Trusted);
                let mut d = data.clone();
                ext::set_data_tag(&mut d, &rt);
                ext::set_data_flag_f(&mut d, flag_f);
                plan.push(Reply::Annotated(rec.face, d));
                continue;
            }
            let reval = flag_f != 0.0;
            // Validate: pre-check (both halves apply here — the tag may
            // have expired while pending), then BF/signature.
            out.compute += cost.sample(Op::PreCheck, rng);
            let key_loc = ext::data_key_locator(&data).unwrap_or_default();
            let pre_ok = match timed(prof, "precheck", || {
                edge_precheck(&rt.tag, data.name(), now)
            }) {
                Err(e) => {
                    if matches!(e, PreCheckError::Expired { .. }) {
                        self.counters.expired_rejections += 1;
                    }
                    obs.on_precheck(
                        hop,
                        PrecheckStage::Edge,
                        PrecheckVerdict::Rejected(e.telemetry_reason()),
                    );
                    false
                }
                Ok(()) => {
                    obs.on_precheck(hop, PrecheckStage::Edge, PrecheckVerdict::Accepted);
                    match timed(prof, "precheck", || content_precheck(&rt.tag, al, &key_loc)) {
                        Err(e) => {
                            obs.on_precheck(
                                hop,
                                PrecheckStage::Content,
                                PrecheckVerdict::Rejected(e.telemetry_reason()),
                            );
                            false
                        }
                        Ok(()) => {
                            obs.on_precheck(hop, PrecheckStage::Content, PrecheckVerdict::Accepted);
                            true
                        }
                    }
                }
            };
            let valid = pre_ok
                && self.validate_tag(&rt, reval, hop, obs, rng, cost, &mut out.compute, prof);
            if reval {
                obs.on_revalidation(
                    hop,
                    if valid {
                        RevalidationOutcome::Verified
                    } else {
                        RevalidationOutcome::Rejected
                    },
                );
            }
            if valid {
                let mut d = data.clone();
                ext::set_data_tag(&mut d, &rt);
                ext::set_data_flag_f(&mut d, 0.0);
                plan.push(Reply::Annotated(rec.face, d));
            } else if to_client {
                // Edge: "forward D to w if valid and drop otherwise".
                if !pre_ok {
                    self.counters.precheck_rejections += 1;
                }
            } else if self.config.content_nack_enabled {
                let mut d = data.clone();
                ext::set_data_tag(&mut d, &rt);
                ext::set_data_nack(&mut d, NackReason::InvalidTag);
                self.counters.nacks += 1;
                obs.on_nack(hop, NackReason::InvalidTag);
                plan.push(Reply::Annotated(rec.face, d));
            }
        }

        // Materialise the plan: the last plain reply takes `data` by move;
        // earlier plain replies (true fan-out) clone.
        let last_plain = plan.iter().rposition(|r| matches!(r, Reply::Plain(_)));
        let mut data = Some(data);
        for (idx, reply) in plan.into_iter().enumerate() {
            let (face, d) = match reply {
                Reply::Annotated(face, d) => (face, d),
                Reply::Plain(face) => {
                    let d = if Some(idx) == last_plain {
                        data.take().expect("moved only at the last plain reply")
                    } else {
                        data.as_ref()
                            .expect("present until the last plain reply")
                            .clone()
                    };
                    (face, d)
                }
            };
            out.sends.push((face, Packet::Data(d)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessLevel;
    use crate::access_path::AccessPath;
    use crate::tag::Tag;
    use tactic_crypto::cert::Certificate;
    use tactic_crypto::schnorr::{KeyPair, Signature};
    use tactic_ndn::name::Name;
    use tactic_ndn::packet::Payload;

    const UP: FaceId = FaceId::new(0);
    const CLIENT: FaceId = FaceId::new(1);
    const CLIENT2: FaceId = FaceId::new(2);

    struct Fixture {
        router: TacticRouter,
        provider: KeyPair,
        rng: Rng,
        cost: CostModel,
    }

    fn fixture(role: RouterRole) -> Fixture {
        let anchor = KeyPair::derive(b"anchor", 0);
        let provider = KeyPair::derive(b"/prov", 0);
        let mut certs = CertStore::new();
        certs.add_anchor(anchor.public());
        certs
            .register(Certificate::issue("/prov", provider.public(), &anchor))
            .unwrap();
        let mut config = RouterConfig::paper(role);
        config.cs_capacity = 100;
        let mut router = TacticRouter::new(config, certs);
        router.add_route("/prov".parse().unwrap(), UP, 1);
        router.mark_downstream(CLIENT);
        router.mark_downstream(CLIENT2);
        Fixture {
            router,
            provider,
            rng: Rng::seed_from_u64(1),
            cost: CostModel::free(),
        }
    }

    fn make_tag(f: &Fixture, expiry_secs: u64) -> SignedTag {
        Tag {
            provider_key_locator: "/prov/KEY/1".parse().unwrap(),
            access_level: AccessLevel::Level(2),
            client_key_locator: "/prov/users/u/KEY".parse().unwrap(),
            access_path: AccessPath::EMPTY,
            expiry: SimTime::from_secs(expiry_secs),
        }
        .sign(&f.provider)
    }

    fn content(name: &str, al: AccessLevel) -> Data {
        let mut d = Data::new(name.parse().unwrap(), Payload::Synthetic(1024));
        ext::set_data_access_level(&mut d, al);
        ext::set_data_key_locator(&mut d, &"/prov/KEY/1".parse().unwrap());
        d
    }

    fn tagged_interest(name: &str, nonce: u64, tag: &SignedTag) -> Interest {
        let mut i = Interest::new(name.parse().unwrap(), nonce);
        ext::set_interest_tag(&mut i, tag);
        i
    }

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    /// A throwaway hook stamp for driving the private helpers directly.
    fn test_hop() -> Hop {
        Hop::new(0, NodeRole::EdgeRouter, SimTime::default())
    }

    #[test]
    fn edge_forwards_valid_tag_with_f_zero_on_bf_miss() {
        let mut f = fixture(RouterRole::Edge);
        let tag = make_tag(&f, 100);
        let i = tagged_interest("/prov/obj/0", 1, &tag);
        let out = f
            .router
            .handle_interest(i, CLIENT, SimTime::ZERO, &mut f.rng, &f.cost);
        assert_eq!(out.sends.len(), 1);
        let (face, pkt) = &out.sends[0];
        assert_eq!(*face, UP);
        let Packet::Interest(fw) = pkt else {
            panic!("expected Interest")
        };
        assert_eq!(ext::interest_flag_f(fw), 0.0);
        assert_eq!(f.router.counters().bf_lookups, 1);
    }

    #[test]
    fn edge_sets_nonzero_f_after_tag_known() {
        let mut f = fixture(RouterRole::Edge);
        let tag = make_tag(&f, 100);
        // Seed the BF as if the tag had been validated before.
        let mut charge = SimDuration::ZERO;
        f.router.bf_insert(
            tag.partition_key(),
            &tag.bloom_key(),
            test_hop(),
            &mut NoopProtocolObserver,
            &mut f.rng.clone(),
            &f.cost,
            &mut charge,
            &mut None,
        );
        let i = tagged_interest("/prov/obj/0", 1, &tag);
        let out = f
            .router
            .handle_interest(i, CLIENT, SimTime::ZERO, &mut f.rng, &f.cost);
        let Packet::Interest(fw) = &out.sends[0].1 else {
            panic!("expected Interest")
        };
        assert!(
            ext::interest_flag_f(fw) > 0.0,
            "F must be the BF's FPP, nonzero"
        );
    }

    #[test]
    fn edge_drops_expired_tag_silently() {
        let mut f = fixture(RouterRole::Edge);
        let tag = make_tag(&f, 5);
        let i = tagged_interest("/prov/obj/0", 1, &tag);
        let out = f
            .router
            .handle_interest(i, CLIENT, SimTime::from_secs(6), &mut f.rng, &f.cost);
        // Protocol 1 at the edge DROPS: no NACK, so the requester's window
        // slot frees only via request expiry (the DoS throttle of §8.B).
        assert!(out.sends.is_empty());
        assert_eq!(f.router.counters().precheck_rejections, 1);
        assert_eq!(
            f.router.counters().bf_lookups,
            0,
            "pre-check precedes BF lookup"
        );
    }

    #[test]
    fn edge_drops_cross_provider_tag() {
        let mut f = fixture(RouterRole::Edge);
        let tag = make_tag(&f, 100);
        let i = tagged_interest("/other/obj/0", 1, &tag);
        let mut router = f.router;
        router.add_route(name("/other"), UP, 1);
        let out = router.handle_interest(i, CLIENT, SimTime::ZERO, &mut f.rng, &f.cost);
        assert!(out.sends.is_empty());
        assert_eq!(router.counters().precheck_rejections, 1);
    }

    #[test]
    fn access_path_mismatch_nacked_when_enabled() {
        let mut f = fixture(RouterRole::Edge);
        let mut cfg = RouterConfig::paper(RouterRole::Edge);
        cfg.access_path_enabled = true;
        let certs = {
            let anchor = KeyPair::derive(b"anchor", 0);
            let mut c = CertStore::new();
            c.add_anchor(anchor.public());
            c.register(Certificate::issue("/prov", f.provider.public(), &anchor))
                .unwrap();
            c
        };
        let mut router = TacticRouter::new(cfg, certs);
        router.mark_downstream(CLIENT);
        router.add_route(name("/prov"), UP, 1);
        // Tag frozen with AP {7}; request arrives with AP {8}.
        let tag = Tag {
            provider_key_locator: "/prov/KEY/1".parse().unwrap(),
            access_level: AccessLevel::Level(2),
            client_key_locator: "/prov/users/u/KEY".parse().unwrap(),
            access_path: AccessPath::of([7]),
            expiry: SimTime::from_secs(100),
        }
        .sign(&f.provider);
        let mut i = tagged_interest("/prov/obj/0", 1, &tag);
        ext::set_interest_access_path(&mut i, AccessPath::of([8]));
        let out = router.handle_interest(i, CLIENT, SimTime::ZERO, &mut f.rng, &f.cost);
        assert!(
            matches!(&out.sends[0].1, Packet::Nack(n) if n.reason() == NackReason::AccessPathMismatch)
        );
        assert_eq!(router.counters().ap_rejections, 1);
    }

    #[test]
    fn content_router_serves_valid_tag_after_signature_verification() {
        let mut f = fixture(RouterRole::Core);
        f.router
            .tables
            .cs
            .insert(content("/prov/obj/0", AccessLevel::Level(1)));
        let tag = make_tag(&f, 100);
        let i = tagged_interest("/prov/obj/0", 1, &tag);
        let out = f
            .router
            .handle_interest(i, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        let Packet::Data(d) = &out.sends[0].1 else {
            panic!("expected Data")
        };
        assert!(ext::data_nack(d).is_none());
        assert_eq!(ext::data_tag(d).as_deref(), Some(&tag));
        assert_eq!(ext::data_flag_f(d), 0.0);
        assert_eq!(f.router.counters().sig_verifications, 1);
        assert_eq!(f.router.counters().bf_insertions, 1);
        assert_eq!(f.router.counters().cache_hits, 1);
    }

    #[test]
    fn content_router_skips_verification_on_bf_hit() {
        let mut f = fixture(RouterRole::Core);
        f.router
            .tables
            .cs
            .insert(content("/prov/obj/0", AccessLevel::Level(1)));
        let tag = make_tag(&f, 100);
        // First request verifies + inserts; second only looks up.
        let _ = f.router.handle_interest(
            tagged_interest("/prov/obj/0", 1, &tag),
            UP,
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        let out = f.router.handle_interest(
            tagged_interest("/prov/obj/0", 2, &tag),
            UP,
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        assert!(matches!(&out.sends[0].1, Packet::Data(_)));
        assert_eq!(
            f.router.counters().sig_verifications,
            1,
            "no re-verification"
        );
        assert_eq!(f.router.counters().bf_lookups, 2);
    }

    #[test]
    fn content_router_nacks_forged_tag_with_content_attached() {
        let mut f = fixture(RouterRole::Core);
        f.router
            .tables
            .cs
            .insert(content("/prov/obj/0", AccessLevel::Level(1)));
        let mut forged = make_tag(&f, 100);
        forged.signature = Signature::forged(9);
        let i = tagged_interest("/prov/obj/0", 1, &forged);
        let out = f
            .router
            .handle_interest(i, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        let Packet::Data(d) = &out.sends[0].1 else {
            panic!("expected Data+NACK")
        };
        assert_eq!(ext::data_nack(d), Some(NackReason::InvalidTag));
    }

    #[test]
    fn edge_cache_hit_with_invalid_tag_drops_silently() {
        let mut f = fixture(RouterRole::Edge);
        f.router
            .tables
            .cs
            .insert(content("/prov/obj/0", AccessLevel::Level(1)));
        let mut forged = make_tag(&f, 100);
        forged.signature = Signature::forged(5);
        let i = tagged_interest("/prov/obj/0", 1, &forged);
        let out = f
            .router
            .handle_interest(i, CLIENT, SimTime::ZERO, &mut f.rng, &f.cost);
        // Content must NOT reach the client; the attacker waits out its
        // request expiry.
        assert!(out.sends.is_empty(), "client must not get content");
        assert_eq!(
            f.router.counters().sig_verifications,
            1,
            "the forged tag was checked"
        );
    }

    #[test]
    fn public_content_served_without_tag() {
        let mut f = fixture(RouterRole::Core);
        f.router
            .tables
            .cs
            .insert(content("/prov/obj/0", AccessLevel::Public));
        let i = Interest::new(name("/prov/obj/0"), 1);
        let out = f
            .router
            .handle_interest(i, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        let Packet::Data(d) = &out.sends[0].1 else {
            panic!("expected Data")
        };
        assert!(ext::data_nack(d).is_none());
        assert_eq!(f.router.counters().sig_verifications, 0);
        assert_eq!(f.router.counters().bf_lookups, 0);
    }

    #[test]
    fn protected_content_without_tag_gets_content_nack_for_routers() {
        let mut f = fixture(RouterRole::Core);
        f.router
            .tables
            .cs
            .insert(content("/prov/obj/0", AccessLevel::Level(1)));
        let i = Interest::new(name("/prov/obj/0"), 1);
        let out = f
            .router
            .handle_interest(i, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        let Packet::Data(d) = &out.sends[0].1 else {
            panic!("expected Data")
        };
        assert_eq!(ext::data_nack(d), Some(NackReason::InvalidTag));
    }

    #[test]
    fn insufficient_access_level_rejected_at_content_router() {
        let mut f = fixture(RouterRole::Core);
        f.router
            .tables
            .cs
            .insert(content("/prov/obj/0", AccessLevel::Level(5)));
        let tag = make_tag(&f, 100); // grants Level(2)
        let i = tagged_interest("/prov/obj/0", 1, &tag);
        let out = f
            .router
            .handle_interest(i, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        let Packet::Data(d) = &out.sends[0].1 else {
            panic!("expected Data")
        };
        assert_eq!(ext::data_nack(d), Some(NackReason::InvalidTag));
        assert_eq!(f.router.counters().precheck_rejections, 1);
    }

    #[test]
    fn interest_aggregation_and_data_fanout() {
        let mut f = fixture(RouterRole::Core);
        let tag1 = make_tag(&f, 100);
        let tag2 = Tag {
            provider_key_locator: "/prov/KEY/1".parse().unwrap(),
            access_level: AccessLevel::Level(2),
            client_key_locator: "/prov/users/w/KEY".parse().unwrap(),
            access_path: AccessPath::EMPTY,
            expiry: SimTime::from_secs(100),
        }
        .sign(&f.provider);
        let out1 = f.router.handle_interest(
            tagged_interest("/prov/obj/0", 1, &tag1),
            FaceId::new(5),
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        assert_eq!(out1.sends.len(), 1, "first forwards");
        let out2 = f.router.handle_interest(
            tagged_interest("/prov/obj/0", 2, &tag2),
            FaceId::new(6),
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        assert!(out2.sends.is_empty(), "second aggregates");
        // Content returns echoing tag1.
        let mut d = content("/prov/obj/0", AccessLevel::Level(1));
        ext::set_data_tag(&mut d, &tag1);
        let out = f
            .router
            .handle_data(d, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        assert_eq!(out.sends.len(), 2, "both downstreams served");
        let faces: Vec<FaceId> = out.sends.iter().map(|(fc, _)| *fc).collect();
        assert!(faces.contains(&FaceId::new(5)) && faces.contains(&FaceId::new(6)));
        // The aggregated tag (tag2) was validated: one verification.
        assert_eq!(f.router.counters().sig_verifications, 1);
        // Content is now cached.
        assert!(f.router.tables().cs.peek(&name("/prov/obj/0")).is_some());
    }

    #[test]
    fn aggregated_invalid_tag_gets_content_nack_downstream() {
        let mut f = fixture(RouterRole::Core);
        let good = make_tag(&f, 100);
        let mut bad = make_tag(&f, 100);
        bad.tag.client_key_locator = "/prov/users/evil/KEY".parse().unwrap();
        bad.signature = Signature::forged(3);
        f.router.handle_interest(
            tagged_interest("/prov/obj/0", 1, &good),
            FaceId::new(5),
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        f.router.handle_interest(
            tagged_interest("/prov/obj/0", 2, &bad),
            FaceId::new(6),
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        let mut d = content("/prov/obj/0", AccessLevel::Level(1));
        ext::set_data_tag(&mut d, &good);
        let out = f
            .router
            .handle_data(d, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        let to6: Vec<_> = out
            .sends
            .iter()
            .filter(|(fc, _)| *fc == FaceId::new(6))
            .collect();
        assert_eq!(to6.len(), 1);
        let Packet::Data(dd) = &to6[0].1 else {
            panic!("expected data")
        };
        assert_eq!(ext::data_nack(dd), Some(NackReason::InvalidTag));
    }

    #[test]
    fn edge_drops_invalid_aggregated_requests_to_clients() {
        let mut f = fixture(RouterRole::Edge);
        let good = make_tag(&f, 100);
        let mut bad = make_tag(&f, 100);
        bad.signature = Signature::forged(4);
        // Two clients request the same chunk; the bad one is nonzero-F-free.
        f.router.handle_interest(
            tagged_interest("/prov/obj/0", 1, &good),
            CLIENT,
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        f.router.handle_interest(
            tagged_interest("/prov/obj/0", 2, &bad),
            CLIENT2,
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        let mut d = content("/prov/obj/0", AccessLevel::Level(1));
        ext::set_data_tag(&mut d, &good);
        let out = f
            .router
            .handle_data(d, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        // Only the good client receives data; the bad aggregated one is
        // dropped (no content, no NACK at the edge).
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].0, CLIENT);
    }

    #[test]
    fn edge_inserts_echo_tag_when_data_f_is_zero() {
        let mut f = fixture(RouterRole::Edge);
        let tag = make_tag(&f, 100);
        f.router.handle_interest(
            tagged_interest("/prov/obj/0", 1, &tag),
            CLIENT,
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        let mut d = content("/prov/obj/0", AccessLevel::Level(1));
        ext::set_data_tag(&mut d, &tag);
        ext::set_data_flag_f(&mut d, 0.0);
        let inserts_before = f.router.counters().bf_insertions;
        let out = f
            .router
            .handle_data(d, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(f.router.counters().bf_insertions, inserts_before + 1);
        assert!(f
            .router
            .validation_cache()
            .contains(tag.partition_key(), &tag.bloom_key()));
    }

    #[test]
    fn edge_skips_insert_when_data_f_nonzero() {
        let mut f = fixture(RouterRole::Edge);
        let tag = make_tag(&f, 100);
        // Pre-insert so the edge sets F != 0 on the interest.
        let mut charge = SimDuration::ZERO;
        let mut rng2 = f.rng.clone();
        f.router.bf_insert(
            tag.partition_key(),
            &tag.bloom_key(),
            test_hop(),
            &mut NoopProtocolObserver,
            &mut rng2,
            &f.cost,
            &mut charge,
            &mut None,
        );
        f.router.handle_interest(
            tagged_interest("/prov/obj/0", 1, &tag),
            CLIENT,
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        let mut d = content("/prov/obj/0", AccessLevel::Level(1));
        ext::set_data_tag(&mut d, &tag);
        ext::set_data_flag_f(&mut d, 1e-4);
        let inserts_before = f.router.counters().bf_insertions;
        f.router
            .handle_data(d, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        assert_eq!(
            f.router.counters().bf_insertions,
            inserts_before,
            "no redundant insert"
        );
    }

    #[test]
    fn edge_drops_nacked_request_without_forwarding_content() {
        let mut f = fixture(RouterRole::Edge);
        let mut forged = make_tag(&f, 100);
        forged.signature = Signature::forged(7);
        f.router.handle_interest(
            tagged_interest("/prov/obj/0", 1, &forged),
            CLIENT,
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        let mut d = content("/prov/obj/0", AccessLevel::Level(1));
        ext::set_data_tag(&mut d, &forged);
        ext::set_data_nack(&mut d, NackReason::InvalidTag);
        let out = f
            .router
            .handle_data(d, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        assert!(
            out.sends.is_empty(),
            "nacked content must not reach the client"
        );
        // But it IS cached for future valid requests.
        assert!(f.router.tables().cs.peek(&name("/prov/obj/0")).is_some());
    }

    #[test]
    fn core_forwards_nacked_content_downstream() {
        let mut f = fixture(RouterRole::Core);
        let mut forged = make_tag(&f, 100);
        forged.signature = Signature::forged(8);
        f.router.handle_interest(
            tagged_interest("/prov/obj/0", 1, &forged),
            FaceId::new(5),
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        let mut d = content("/prov/obj/0", AccessLevel::Level(1));
        ext::set_data_tag(&mut d, &forged);
        ext::set_data_nack(&mut d, NackReason::InvalidTag);
        let out = f
            .router
            .handle_data(d, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        assert_eq!(out.sends.len(), 1);
        let Packet::Data(dd) = &out.sends[0].1 else {
            panic!("data expected")
        };
        assert_eq!(ext::data_nack(dd), Some(NackReason::InvalidTag));
    }

    #[test]
    fn registration_response_inserted_at_edge_and_forwarded() {
        let mut f = fixture(RouterRole::Edge);
        let mut reg = Interest::new(name("/prov/register/u/1"), 1);
        reg.set_extension(ext::EXT_REGISTRATION, vec![1]);
        let out = f
            .router
            .handle_interest(reg, CLIENT, SimTime::ZERO, &mut f.rng, &f.cost);
        assert!(matches!(&out.sends[0].1, Packet::Interest(_)));
        let tag = make_tag(&f, 100);
        let mut resp = Data::new(name("/prov/register/u/1"), Payload::Synthetic(200));
        ext::set_data_new_tag(&mut resp, &tag);
        let out = f
            .router
            .handle_data(resp, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].0, CLIENT);
        assert!(f
            .router
            .validation_cache()
            .contains(tag.partition_key(), &tag.bloom_key()));
        // Registration responses are never cached.
        assert!(f.router.tables().cs.is_empty());
    }

    #[test]
    fn no_route_nacks() {
        let mut f = fixture(RouterRole::Core);
        let i = Interest::new(name("/unknown/x"), 1);
        let out = f
            .router
            .handle_interest(i, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        assert!(matches!(&out.sends[0].1, Packet::Nack(n) if n.reason() == NackReason::NoRoute));
    }

    #[test]
    fn bf_reset_accounting_tracks_request_counts() {
        let mut f = fixture(RouterRole::Core);
        let mut cfg = RouterConfig::paper(RouterRole::Core);
        cfg.bf_params = BloomParams::paper(20); // tiny: saturates fast
        let mut router = TacticRouter::new(cfg, CertStore::new());
        let mut charge = SimDuration::ZERO;
        for i in 0..500u64 {
            router.requests_since_reset += 1; // simulate request arrivals
            router.bf_insert(
                b"/prov",
                &i.to_le_bytes(),
                test_hop(),
                &mut NoopProtocolObserver,
                &mut f.rng,
                &f.cost,
                &mut charge,
                &mut None,
            );
        }
        assert!(router.counters().bf_resets >= 5);
        assert_eq!(
            router.reset_request_counts().len(),
            router.counters().bf_resets as usize
        );
        assert!(router.reset_request_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn flag_f_disabled_forces_validation() {
        let mut f = fixture(RouterRole::Core);
        let mut cfg = RouterConfig::paper(RouterRole::Core);
        cfg.flag_f_enabled = false;
        cfg.cs_capacity = 10;
        let certs = {
            let anchor = KeyPair::derive(b"anchor", 0);
            let mut c = CertStore::new();
            c.add_anchor(anchor.public());
            c.register(Certificate::issue("/prov", f.provider.public(), &anchor))
                .unwrap();
            c
        };
        let mut router = TacticRouter::new(cfg, certs);
        router
            .tables
            .cs
            .insert(content("/prov/obj/0", AccessLevel::Level(1)));
        let tag = make_tag(&f, 100);
        let mut i = tagged_interest("/prov/obj/0", 1, &tag);
        ext::set_interest_flag_f(&mut i, 0.5); // would normally mostly skip
        let _ = router.handle_interest(i, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        // With flag F ignored, the router takes the F == 0 path: BF lookup
        // then signature verification.
        assert_eq!(router.counters().bf_lookups, 1);
        assert_eq!(router.counters().sig_verifications, 1);
    }

    #[test]
    fn duplicate_nonce_is_dropped_silently() {
        let mut f = fixture(RouterRole::Core);
        let tag = make_tag(&f, 100);
        let i = tagged_interest("/prov/obj/0", 7, &tag);
        f.router.handle_interest(
            i.clone(),
            FaceId::new(5),
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        let out = f
            .router
            .handle_interest(i, FaceId::new(6), SimTime::ZERO, &mut f.rng, &f.cost);
        assert!(out.sends.is_empty());
    }

    /// Regression: a client forging F = 1.0 on its own Interest must not
    /// be able to steer the content router off the full-validation path —
    /// F is discarded on every downstream face.
    #[test]
    fn forged_flag_f_one_from_downstream_still_verifies() {
        let mut f = fixture(RouterRole::Core);
        f.router
            .tables
            .cs
            .insert(content("/prov/obj/0", AccessLevel::Level(1)));
        let tag = make_tag(&f, 100);
        let mut i = tagged_interest("/prov/obj/0", 1, &tag);
        ext::set_interest_flag_f(&mut i, 1.0);
        let out = f
            .router
            .handle_interest(i, CLIENT, SimTime::ZERO, &mut f.rng, &f.cost);
        let Packet::Data(d) = &out.sends[0].1 else {
            panic!("expected Data")
        };
        assert!(ext::data_nack(d).is_none());
        assert_eq!(
            ext::data_flag_f(d),
            0.0,
            "forged F must not be mirrored into D"
        );
        assert_eq!(
            f.router.counters().sig_verifications,
            1,
            "full validation must run"
        );
        assert_eq!(
            f.router.counters().bf_lookups,
            1,
            "F = 0 path: BF lookup first"
        );
    }

    /// Regression: F = NaN made `rng.chance(F)` false, so the pre-fix
    /// router fell into the "trust the edge" branch and served protected
    /// content with zero verifications. NaN (or any out-of-range F) must
    /// now be discarded like every other downstream F.
    #[test]
    fn forged_flag_f_nan_from_downstream_still_verifies() {
        let mut f = fixture(RouterRole::Core);
        f.router
            .tables
            .cs
            .insert(content("/prov/obj/0", AccessLevel::Level(1)));
        let tag = make_tag(&f, 100);
        let mut i = tagged_interest("/prov/obj/0", 1, &tag);
        ext::set_interest_flag_f(&mut i, f64::NAN);
        let out = f
            .router
            .handle_interest(i, CLIENT, SimTime::ZERO, &mut f.rng, &f.cost);
        let Packet::Data(d) = &out.sends[0].1 else {
            panic!("expected Data")
        };
        assert!(ext::data_nack(d).is_none());
        assert_eq!(
            f.router.counters().sig_verifications,
            1,
            "NaN F must not skip validation"
        );
    }

    /// Even on a non-downstream face, a NaN F on the wire decodes as 0
    /// (sanitized at the codec), forcing the full-validation path rather
    /// than the trust branch.
    #[test]
    fn nan_flag_f_from_upstream_decodes_as_zero() {
        let mut f = fixture(RouterRole::Core);
        f.router
            .tables
            .cs
            .insert(content("/prov/obj/0", AccessLevel::Level(1)));
        let tag = make_tag(&f, 100);
        let mut i = tagged_interest("/prov/obj/0", 1, &tag);
        ext::set_interest_flag_f(&mut i, f64::NAN);
        assert_eq!(
            ext::interest_flag_f(&i),
            0.0,
            "decode sanitizes non-finite F"
        );
        let _ = f
            .router
            .handle_interest(i, UP, SimTime::ZERO, &mut f.rng, &f.cost);
        assert_eq!(f.router.counters().sig_verifications, 1);
    }

    #[test]
    fn nack_relay_counts_every_notified_requester() {
        let mut f = fixture(RouterRole::Edge);
        let tag = make_tag(&f, 100);
        // Two clients aggregate on the same name in the PIT.
        let out1 = f.router.handle_interest(
            tagged_interest("/prov/obj/0", 1, &tag),
            CLIENT,
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        assert_eq!(out1.sends.len(), 1, "first request forwards upstream");
        let out2 = f.router.handle_interest(
            tagged_interest("/prov/obj/0", 2, &tag),
            CLIENT2,
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        assert!(out2.sends.is_empty(), "second request aggregates");
        let before = f.router.counters().nacks;
        let nack = Nack::new(Interest::new(name("/prov/obj/0"), 3), NackReason::NoRoute);
        let out = f.router.handle_nack(nack.clone());
        assert_eq!(out.sends.len(), 2, "both requesters get the NACK");
        assert_eq!(
            f.router.counters().nacks - before,
            2,
            "one count per relayed NACK"
        );
        // The PIT entry is consumed: a repeat NACK relays (and counts) nothing.
        let again = f.router.handle_nack(nack);
        assert!(again.sends.is_empty());
        assert_eq!(f.router.counters().nacks - before, 2);
    }

    #[test]
    fn pit_sweep_expires_aggregated_records_instead_of_leaking() {
        // Lossy-link scenario: the forwarded Interest's Data never comes
        // back. The periodic purge must reclaim the aggregated
        // `<tag, F, in-face>` records, and a Data that straggles in after
        // the sweep is unsolicited — dropped without panic or caching.
        let mut f = fixture(RouterRole::Edge);
        let tag = make_tag(&f, 100);
        let out1 = f.router.handle_interest(
            tagged_interest("/prov/obj/0", 1, &tag),
            CLIENT,
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        assert_eq!(out1.sends.len(), 1, "first request forwards upstream");
        let out2 = f.router.handle_interest(
            tagged_interest("/prov/obj/0", 2, &tag),
            CLIENT2,
            SimTime::ZERO,
            &mut f.rng,
            &f.cost,
        );
        assert!(out2.sends.is_empty(), "second request aggregates");
        assert_eq!(f.router.tables().pit.total_records(), 2);

        // Both records expire at t0 + Interest lifetime; sweep well past it.
        let later = SimTime::from_secs(60);
        assert_eq!(f.router.purge_pit(later), 2);
        assert_eq!(f.router.tables().pit.total_records(), 0);

        // The straggler Data finds no PIT entry: no sends, no cache entry.
        let d = content("/prov/obj/0", AccessLevel::Level(1));
        let out = f.router.handle_data(d, UP, later, &mut f.rng, &f.cost);
        assert!(out.sends.is_empty(), "unsolicited Data goes nowhere");
        assert!(
            f.router.tables().cs.peek(&name("/prov/obj/0")).is_none(),
            "unsolicited Data is not cached (NFD policy)"
        );
    }
}
