//! # tactic
//!
//! A full reproduction of **TACTIC** — the tag-based access-control
//! framework for information-centric wireless edge networks (Tourani,
//! Stubbs & Misra, IEEE ICDCS 2018).
//!
//! Providers issue signed [`tag::Tag`]s to registered clients; clients
//! attach tags to their Interests; and the network's routers — not an
//! always-online authentication server — enforce access control:
//!
//! * [`precheck`] — Protocol 1, the cheap field pre-check;
//! * [`router`] — Protocols 2/3/4 (edge, content, and intermediate
//!   routers) over Bloom-filter tag caches;
//! * [`provider`] — registration, tag issuance, chunked signed content;
//! * [`consumer`] — the Zipf-window client and the threat-model attackers;
//! * [`access`], [`access_path`], [`tag`], [`ext`] — the data model;
//! * [`adversary`] — the deterministic attack-fleet driver for the
//!   robustness suite (Interest flooding, forgery storms, BF pollution,
//!   expired-tag replay);
//! * [`scenario`], [`net`], [`metrics`] — the assembled simulation
//!   (topology + links + cost injection) and its measurements.
//!
//! # Examples
//!
//! Run a small end-to-end simulation:
//!
//! ```
//! use tactic::net::run_scenario;
//! use tactic::scenario::Scenario;
//! use tactic_sim::time::SimDuration;
//!
//! let mut scenario = Scenario::small();
//! scenario.duration = SimDuration::from_secs(5);
//! let report = run_scenario(&scenario, 42);
//! assert!(report.delivery.client_ratio() > 0.9);
//! assert!(report.delivery.attacker_ratio() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod access_path;
pub mod adversary;
pub mod consumer;
pub mod ext;
pub mod metrics;
pub mod net;
pub mod precheck;
pub mod provider;
pub mod router;
pub mod scenario;
pub mod tag;
pub mod traitor;

pub use access::AccessLevel;
pub use access_path::AccessPath;
pub use consumer::{AttackerStrategy, Consumer, ConsumerKind};
pub use metrics::{DeliveryStats, RunReport};
pub use net::{run_scenario, run_scenario_sharded, run_traced_sharded, Network};
pub use provider::Provider;
pub use router::{OpCounters, RouterRole, TacticRouter};
pub use scenario::Scenario;
pub use tag::{SignedTag, Tag};
