//! Authentication tags — TACTIC's central artifact.
//!
//! "A tag is a 6-tuple composed of the provider's public key locator
//! (`Pub_p`), the client's public key locator (`Pub_u`), the client's
//! access level (`AL_u`), the client's access path (`AP_u`), and an expiry
//! time (`T_e`)" (§4.A), signed by the provider to guarantee integrity and
//! provenance. Tag expiry is the revocation mechanism: a revoked client
//! simply stops receiving fresh tags.

use tactic_crypto::hash::Digest256;
use tactic_crypto::schnorr::{KeyPair, PublicKey, Signature};
use tactic_ndn::name::Name;
use tactic_sim::time::SimTime;

use crate::access::AccessLevel;
use crate::access_path::AccessPath;

/// The unsigned tag body `T_p^u = <Pub_p, AL_u, Pub_u, AP_u, T_e>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tag {
    /// The provider's public key locator (`Pub_p`): a name whose first
    /// component is the provider's routable prefix.
    pub provider_key_locator: Name,
    /// The client's granted access level (`AL_u`).
    pub access_level: AccessLevel,
    /// The client's public key locator (`Pub_u`).
    pub client_key_locator: Name,
    /// The access path frozen at registration (`AP_u`).
    pub access_path: AccessPath,
    /// Expiry instant (`T_e`); the tag is invalid at and after this time.
    pub expiry: SimTime,
}

impl Tag {
    /// The provider's name prefix `N(Pub_p)` — the first component of the
    /// key locator, used by the Protocol 1 edge pre-check.
    pub fn provider_prefix(&self) -> Name {
        self.provider_key_locator.prefix(1)
    }

    /// True if the tag has expired at `now` (`T_e < T_current` in
    /// Protocol 1; we treat `T_e == now` as expired too).
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.expiry <= now
    }

    /// Canonical byte serialisation (also the signed message).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        let p = self.provider_key_locator.to_bytes();
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(&p);
        out.push(self.access_level.to_byte());
        let c = self.client_key_locator.to_bytes();
        out.extend_from_slice(&(c.len() as u32).to_le_bytes());
        out.extend_from_slice(&c);
        out.extend_from_slice(&self.access_path.as_u64().to_le_bytes());
        out.extend_from_slice(&self.expiry.as_nanos().to_le_bytes());
        out
    }

    /// Signs the tag, producing a [`SignedTag`].
    pub fn sign(self, provider: &KeyPair) -> SignedTag {
        let signature = provider.sign(&self.to_bytes());
        SignedTag::new(self, signature)
    }
}

/// A provider-signed tag as carried in Interests.
///
/// Carries lazily-computed caches of its Bloom key and serialized form,
/// so a shared (`Arc`ed, interned) tag pays for each derivation once. The
/// caches are dropped by `clone()` and invisible to `==`/`Debug`. Mutating
/// `tag`/`signature` *after* calling [`bloom_key`](Self::bloom_key) or
/// [`encoded`](Self::encoded) on the same instance is unsupported — tests
/// that forge tags must mutate a fresh clone before first use (all do).
#[derive(Debug)]
pub struct SignedTag {
    /// The tag body.
    pub tag: Tag,
    /// The provider's signature over [`Tag::to_bytes`].
    pub signature: Signature,
    bloom_key: std::sync::OnceLock<[u8; 32]>,
    encoded: std::sync::OnceLock<std::sync::Arc<[u8]>>,
}

impl Clone for SignedTag {
    fn clone(&self) -> Self {
        // Deliberately start the clone with cold caches: the clone-then-
        // forge pattern mutates the copy's fields, and a carried cache
        // would silently describe the pre-mutation tag.
        SignedTag::new(self.tag.clone(), self.signature)
    }
}

impl PartialEq for SignedTag {
    fn eq(&self, other: &Self) -> bool {
        self.tag == other.tag && self.signature == other.signature
    }
}

impl Eq for SignedTag {}

impl SignedTag {
    /// Assembles a signed tag from its body and signature.
    pub fn new(tag: Tag, signature: Signature) -> Self {
        SignedTag {
            tag,
            signature,
            bloom_key: std::sync::OnceLock::new(),
            encoded: std::sync::OnceLock::new(),
        }
    }

    /// Verifies the provider signature.
    pub fn verify(&self, provider_key: &PublicKey) -> bool {
        provider_key.verify(&self.tag.to_bytes(), &self.signature)
    }

    /// The Bloom-filter key identifying this exact signed tag: a digest
    /// over body *and* signature, so forged signatures on a copied body
    /// map to different filter bits. Computed once per instance.
    pub fn bloom_key(&self) -> [u8; 32] {
        *self.bloom_key.get_or_init(|| {
            let body = self.tag.to_bytes();
            Digest256::of_parts(&[&body, &self.signature.to_bytes()]).to_bytes()
        })
    }

    /// The provider-prefix bytes the validation cache partitions on:
    /// the first component of the provider key locator, borrowed
    /// without allocation (hot path — called once per cache insert and
    /// lookup). Empty for a rootless locator.
    pub fn partition_key(&self) -> &[u8] {
        self.tag
            .provider_key_locator
            .get(0)
            .map_or(&[], |c| c.as_bytes())
    }

    /// The stable client identity of this tag: a digest of the client key
    /// locator. Stable across tag refreshes, so access points can
    /// demultiplex deliveries per requester and traitor tracing can link
    /// sightings of the same principal.
    pub fn client_identity(&self) -> u64 {
        Digest256::of(&self.tag.client_key_locator.to_bytes()).fold64()
    }

    /// Serialises tag + signature for the Interest extension / PIT note.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.tag.to_bytes();
        out.extend_from_slice(&self.signature.to_bytes());
        out
    }

    /// The [`encode`](Self::encode) form as a shared buffer, serialized
    /// once per instance — attaching an interned tag to a packet is a
    /// refcount bump.
    pub fn encoded(&self) -> std::sync::Arc<[u8]> {
        self.encoded.get_or_init(|| self.encode().into()).clone()
    }

    /// Parses the [`encode`](Self::encode) form.
    ///
    /// # Errors
    ///
    /// Returns [`TagDecodeError`] on truncated or malformed input.
    pub fn decode(bytes: &[u8]) -> Result<SignedTag, TagDecodeError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], TagDecodeError> {
            let s = bytes.get(*pos..*pos + n).ok_or(TagDecodeError)?;
            *pos += n;
            Ok(s)
        };
        let plen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        let pbytes = take(&mut pos, plen)?.to_vec();
        let provider_key_locator = name_from_bytes(&pbytes)?;
        let al = AccessLevel::from_byte(take(&mut pos, 1)?[0]);
        let clen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        let cbytes = take(&mut pos, clen)?.to_vec();
        let client_key_locator = name_from_bytes(&cbytes)?;
        let ap = AccessPath::from_u64(u64::from_le_bytes(
            take(&mut pos, 8)?.try_into().expect("8"),
        ));
        let expiry = SimTime::from_nanos(u64::from_le_bytes(
            take(&mut pos, 8)?.try_into().expect("8"),
        ));
        let sig = Signature::from_bytes(take(&mut pos, 16)?.try_into().expect("16"));
        if pos != bytes.len() {
            return Err(TagDecodeError);
        }
        Ok(SignedTag::new(
            Tag {
                provider_key_locator,
                access_level: al,
                client_key_locator,
                access_path: ap,
                expiry,
            },
            sig,
        ))
    }
}

/// Error decoding a serialized tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagDecodeError;

impl std::fmt::Display for TagDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed serialized tag")
    }
}

impl std::error::Error for TagDecodeError {}

/// Inverse of [`Name::to_bytes`] (length-prefixed components).
fn name_from_bytes(bytes: &[u8]) -> Result<Name, TagDecodeError> {
    let mut comps = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let len = u32::from_le_bytes(
            bytes
                .get(pos..pos + 4)
                .ok_or(TagDecodeError)?
                .try_into()
                .expect("4"),
        ) as usize;
        pos += 4;
        let c = bytes.get(pos..pos + len).ok_or(TagDecodeError)?;
        pos += len;
        comps.push(tactic_ndn::name::Component::new(c.to_vec()));
    }
    Ok(Name::from_components(comps))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tag() -> Tag {
        Tag {
            provider_key_locator: "/prov3/KEY/k1".parse().unwrap(),
            access_level: AccessLevel::Level(2),
            client_key_locator: "/prov3/users/u7/KEY".parse().unwrap(),
            access_path: AccessPath::of([7, 42]),
            expiry: SimTime::from_secs(10),
        }
    }

    #[test]
    fn sign_and_verify() {
        let kp = KeyPair::derive(b"/prov3", 0);
        let st = sample_tag().sign(&kp);
        assert!(st.verify(&kp.public()));
        let other = KeyPair::derive(b"/prov4", 0);
        assert!(!st.verify(&other.public()));
    }

    #[test]
    fn tampered_body_fails_verification() {
        let kp = KeyPair::derive(b"/prov3", 0);
        let mut st = sample_tag().sign(&kp);
        st.tag.access_level = AccessLevel::Level(9);
        assert!(!st.verify(&kp.public()));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let kp = KeyPair::derive(b"/prov3", 0);
        let st = sample_tag().sign(&kp);
        let bytes = st.encode();
        let back = SignedTag::decode(&bytes).unwrap();
        assert_eq!(back, st);
        assert!(back.verify(&kp.public()));
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let kp = KeyPair::derive(b"/prov3", 0);
        let bytes = sample_tag().sign(&kp).encode();
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(SignedTag::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(SignedTag::decode(&padded).is_err());
    }

    #[test]
    fn provider_prefix_extraction() {
        assert_eq!(sample_tag().provider_prefix().to_string(), "/prov3");
    }

    #[test]
    fn expiry_check() {
        let t = sample_tag();
        assert!(!t.is_expired(SimTime::from_secs(9)));
        assert!(t.is_expired(SimTime::from_secs(10)));
        assert!(t.is_expired(SimTime::from_secs(11)));
    }

    #[test]
    fn bloom_key_distinguishes_signatures_on_same_body() {
        let kp = KeyPair::derive(b"/prov3", 0);
        let genuine = sample_tag().sign(&kp);
        let forged = SignedTag::new(sample_tag(), Signature::forged(1));
        assert_ne!(genuine.bloom_key(), forged.bloom_key());
    }

    #[test]
    fn tag_is_a_couple_hundred_bytes() {
        // §4.A: "a tag [should] be a couple hundred bytes".
        let kp = KeyPair::derive(b"/prov3", 0);
        let len = sample_tag().sign(&kp).encode().len();
        assert!((50..300).contains(&len), "tag wire length {len}");
    }
}
