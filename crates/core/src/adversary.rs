//! The adversarial fleet driver: deterministic attack-traffic generation
//! for an active [`AttackPlan`](crate::scenario::AttackPlan).
//!
//! When a scenario names an [`AttackClass`], every attacker node stops
//! being a windowed threat-model consumer and becomes an open-loop
//! traffic source: a self-rescheduling tick (a sentinel transport
//! timeout, [`TICK`] apart) drains an integer nanosecond accumulator at
//! `intensity` Interests per second, crafting each Interest from the
//! class's credential recipe. Fire-and-forget — the fleet never tracks
//! replies, so its pressure is bounded only by the configured intensity
//! (and whatever edge defenses are armed).
//!
//! Every draw comes from the driver's own RNG, forked off
//! [`ATTACK_STREAM`](tactic_net::ATTACK_STREAM) `^ node index` at build
//! time; an inactive plan builds no driver and makes no draw, keeping
//! unattacked runs byte-identical to the golden snapshots.

use std::sync::Arc;

use tactic_crypto::schnorr::Signature;
use tactic_ndn::name::Name;
use tactic_ndn::packet::Interest;
use tactic_net::AttackClass;
use tactic_sim::rng::Rng;
use tactic_sim::time::{SimDuration, SimTime};

use crate::access::AccessLevel;
use crate::access_path::AccessPath;
use crate::consumer::CatalogEntry;
use crate::ext;
use crate::tag::{SignedTag, Tag};

/// Cadence of the self-rescheduling attack tick.
pub const TICK: SimDuration = SimDuration::from_millis(100);

/// Distinct credentials each BF-pollution attacker cycles through
/// (sized against the paper's 500-tag filter so a small fleet still
/// drives occupancy visibly).
pub const POLLUTION_POOL: usize = 256;

/// High bits folded into adversarial nonces so they can never collide
/// with the same principal's windowed-consumer nonces.
const NONCE_TAG: u64 = 0xAD5E_0000_0000_0000;

/// The sentinel timeout name that drives the tick (never transmitted).
pub fn tick_name() -> Name {
    "/__adversary/tick".parse().expect("static sentinel name")
}

/// What one attacker attaches to each crafted Interest.
enum Credential {
    /// A genuinely-issued tag per provider (Flood: valid for the whole
    /// run; ReplayExpired: already expired at issue).
    PerProvider(Vec<Arc<SignedTag>>),
    /// Forge a fresh signature for every Interest.
    Forge,
    /// Cycle a pool of distinct genuinely-issued `(provider index, tag)`
    /// credentials; each pooled tag pins its Interest to the issuing
    /// provider so the edge pre-check admits it.
    Pool {
        tags: Vec<(usize, Arc<SignedTag>)>,
        next: usize,
    },
}

/// One attacker node's open-loop traffic source.
pub struct AdversaryDriver {
    principal: u64,
    intensity: u32,
    lifetime_ms: u32,
    rng: Rng,
    catalog: Vec<CatalogEntry>,
    credential: Credential,
    nonce_seq: u64,
    acc_ns: u64,
}

impl std::fmt::Debug for AdversaryDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdversaryDriver")
            .field("principal", &self.principal)
            .field("intensity", &self.intensity)
            .finish()
    }
}

impl AdversaryDriver {
    /// Builds the driver for one attacker node.
    ///
    /// `class` must not be [`AttackClass::Churn`] — churn is a transport
    /// concern (scheduled Move events), not a traffic recipe — and the
    /// per-provider credential lists are supplied by the caller because
    /// only the scenario assembly holds the providers' signing keys.
    ///
    /// # Panics
    ///
    /// Panics on [`AttackClass::Churn`], an empty catalog, or a
    /// credential list that does not cover the catalog.
    pub fn new(
        class: AttackClass,
        principal: u64,
        intensity: u32,
        lifetime_ms: u32,
        rng: Rng,
        catalog: Vec<CatalogEntry>,
        issued: Vec<(usize, Arc<SignedTag>)>,
    ) -> AdversaryDriver {
        assert!(!catalog.is_empty(), "adversary needs a catalog");
        let credential = match class {
            AttackClass::Flood | AttackClass::ReplayExpired => {
                assert_eq!(issued.len(), catalog.len(), "one tag per provider");
                let mut per_prov = issued;
                per_prov.sort_by_key(|(p, _)| *p);
                Credential::PerProvider(per_prov.into_iter().map(|(_, t)| t).collect())
            }
            AttackClass::ForgeTags => Credential::Forge,
            AttackClass::BfPollution => {
                assert!(!issued.is_empty(), "pollution needs a credential pool");
                Credential::Pool {
                    tags: issued,
                    next: 0,
                }
            }
            AttackClass::Churn => unreachable!("churn is scheduled by the transport"),
        };
        AdversaryDriver {
            principal,
            intensity,
            lifetime_ms,
            rng,
            catalog,
            credential,
            nonce_seq: 0,
            acc_ns: 0,
        }
    }

    /// One tick: drains the rate accumulator into crafted Interests.
    pub fn on_tick(&mut self, _now: SimTime) -> Vec<Interest> {
        self.acc_ns += u64::from(self.intensity) * TICK.as_nanos();
        let n = self.acc_ns / 1_000_000_000;
        self.acc_ns -= n * 1_000_000_000;
        (0..n).map(|_| self.craft()).collect()
    }

    fn next_nonce(&mut self) -> u64 {
        self.nonce_seq += 1;
        NONCE_TAG ^ (self.principal << 24) ^ self.nonce_seq
    }

    /// Crafts one Interest: a uniformly random in-catalog name plus the
    /// class's credential. Pool credentials pin the provider (the edge
    /// pre-check only admits a tag against its issuer's names); the
    /// other classes spray uniformly across the whole catalog.
    fn craft(&mut self) -> Interest {
        let pooled = match &mut self.credential {
            Credential::Pool { tags, next } => {
                let picked = tags[*next].clone();
                *next = (*next + 1) % tags.len();
                Some(picked)
            }
            _ => None,
        };
        let prov = match &pooled {
            Some((p, _)) => *p,
            None => (self.rng.next_u64() % self.catalog.len() as u64) as usize,
        };
        let entry = self.catalog[prov].clone();
        let obj = (self.rng.next_u64() % entry.objects as u64) as usize;
        let chunk = (self.rng.next_u64() % entry.chunks as u64) as usize;
        let name = entry
            .prefix
            .child(format!("obj{obj}"))
            .child(format!("c{chunk}"));
        let nonce = self.next_nonce();
        let mut i = Interest::new(name, nonce);
        i.set_lifetime_ms(self.lifetime_ms);
        match (&self.credential, pooled) {
            (_, Some((_, tag))) => ext::set_interest_tag(&mut i, &tag),
            (Credential::PerProvider(tags), None) => ext::set_interest_tag(&mut i, &tags[prov]),
            (Credential::Forge, None) => {
                let forged = SignedTag::new(
                    Tag {
                        provider_key_locator: entry.prefix.child("KEY").child("1"),
                        access_level: AccessLevel::Level(200),
                        client_key_locator: entry
                            .prefix
                            .child("users")
                            .child(format!("u{}", self.principal))
                            .child("KEY"),
                        access_path: AccessPath::EMPTY,
                        expiry: SimTime::MAX,
                    },
                    Signature::forged(self.rng.next_u64()),
                );
                ext::set_interest_tag(&mut i, &forged);
            }
            (Credential::Pool { .. }, None) => unreachable!("pool always picks a credential"),
        }
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Vec<CatalogEntry> {
        vec![
            CatalogEntry {
                prefix: "/prov0".parse().unwrap(),
                objects: 10,
                chunks: 10,
            },
            CatalogEntry {
                prefix: "/prov1".parse().unwrap(),
                objects: 10,
                chunks: 10,
            },
        ]
    }

    fn forge_driver(intensity: u32) -> AdversaryDriver {
        AdversaryDriver::new(
            AttackClass::ForgeTags,
            9,
            intensity,
            1_000,
            Rng::seed_from_u64(7),
            catalog(),
            Vec::new(),
        )
    }

    #[test]
    fn accumulator_hits_the_configured_rate_exactly() {
        let mut d = forge_driver(37);
        let mut total = 0usize;
        for _ in 0..10 {
            total += d.on_tick(SimTime::ZERO).len();
        }
        assert_eq!(total, 37, "one second of ticks emits exactly `intensity`");
    }

    #[test]
    fn zero_intensity_emits_nothing() {
        let mut d = forge_driver(0);
        for _ in 0..50 {
            assert!(d.on_tick(SimTime::ZERO).is_empty());
        }
    }

    #[test]
    fn forged_interests_carry_fresh_bogus_signatures() {
        let mut d = forge_driver(20);
        let out = d.on_tick(SimTime::ZERO);
        assert_eq!(out.len(), 2);
        let t0 = ext::interest_tag(&out[0]).expect("forged tag");
        let t1 = ext::interest_tag(&out[1]).expect("forged tag");
        assert_ne!(t0.signature, t1.signature, "fresh forgery per Interest");
        assert!(out.iter().all(|i| i.lifetime_ms() == 1_000));
    }

    #[test]
    fn drivers_are_deterministic_per_stream() {
        let run = || {
            let mut d = forge_driver(50);
            let mut names = Vec::new();
            for _ in 0..20 {
                names.extend(d.on_tick(SimTime::ZERO).iter().map(|i| i.name().clone()));
            }
            names
        };
        assert_eq!(run(), run());
    }
}
