//! The content provider application.
//!
//! Providers publish chunked, signed, access-levelled content and run the
//! Client Registration Procedure: "a client registers her credential with
//! a content provider to obtain an authentication tag ... When p receives
//! a tag request, it verifies client u's credentials and provides her a
//! fresh tag if she is authorized or drops the request otherwise" (§4.A).
//!
//! Tag expiry is the revocation knob: "a shorter expiry time mandates
//! clients to request fresh tags more frequently, which allows a more
//! fine-grained and flexible client revocation" (§5).

use std::collections::HashMap;

use tactic_crypto::schnorr::KeyPair;
use tactic_ndn::name::Name;
use tactic_ndn::packet::{Data, Interest, NackReason, Packet, Payload};
use tactic_sim::cost::{CostModel, Op};
use tactic_sim::rng::Rng;
use tactic_sim::time::{SimDuration, SimTime};
use tactic_telemetry::{
    Hop, NodeRole, NoopProtocolObserver, PrecheckStage, PrecheckVerdict, ProtocolObserver,
    RejectReason,
};

use crate::access::AccessLevel;
use crate::access_path::AccessPath;
use crate::ext;
use crate::tag::{SignedTag, Tag};

/// Provider/catalog parameters (the paper: 50 objects × 50 chunks each,
/// 10 s tag validity).
#[derive(Debug, Clone)]
pub struct ProviderConfig {
    /// The provider's routable name prefix (e.g. `/prov3`).
    pub prefix: Name,
    /// Number of content objects.
    pub objects: usize,
    /// Chunks per object.
    pub chunks_per_object: usize,
    /// Chunk payload size in bytes.
    pub chunk_size: usize,
    /// Tag validity period (`T_e - T_issue`).
    pub tag_validity: SimDuration,
    /// Access levels assigned to objects, cycled (`levels[obj % len]`).
    /// Use `[AccessLevel::Public]` for an open catalog.
    pub access_levels: Vec<AccessLevel>,
}

impl ProviderConfig {
    /// The paper's configuration under the given prefix: 50 objects of 50
    /// chunks, 10 s tags, all content at `Level(1)`.
    pub fn paper(prefix: Name) -> Self {
        ProviderConfig {
            prefix,
            objects: 50,
            chunks_per_object: 50,
            chunk_size: 1024,
            tag_validity: SimDuration::from_secs(10),
            access_levels: vec![AccessLevel::Level(1)],
        }
    }
}

/// A registered principal's standing at the provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The access level this principal is entitled to.
    pub level: AccessLevel,
    /// Revoked principals are refused fresh tags (lazy revocation via
    /// expiry).
    pub revoked: bool,
}

/// Provider-side counters.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct ProviderCounters {
    /// Tags issued (registration responses).
    pub tags_issued: u64,
    /// Registrations refused (unknown or revoked principals).
    pub registrations_denied: u64,
    /// Content chunks served.
    pub chunks_served: u64,
    /// Requests answered with content + NACK (invalid tag at the origin).
    pub nacks: u64,
    /// Tags issued to a principal whose previously issued tag was still
    /// unexpired — i.e. renewals rather than first issuances. Nonzero in
    /// the paper's model too (the refresh margin renews just before
    /// expiry); renewal churn is where it dominates.
    pub tags_renewed: u64,
}

/// Hand-rolled to keep the lifecycle extension's `tags_renewed` out of
/// the frozen report schema: this struct is embedded in `RunReport`'s
/// pinned `Debug` snapshots, so the output must stay exactly the derived
/// form of the original four fields.
impl std::fmt::Debug for ProviderCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProviderCounters")
            .field("tags_issued", &self.tags_issued)
            .field("registrations_denied", &self.registrations_denied)
            .field("chunks_served", &self.chunks_served)
            .field("nacks", &self.nacks)
            .finish()
    }
}

/// A content provider.
pub struct Provider {
    config: ProviderConfig,
    keypair: KeyPair,
    key_locator: Name,
    registry: HashMap<u64, Grant>,
    /// Expiry of the most recent tag issued per principal via the
    /// registration procedure — the issuance authority's view of who
    /// currently holds a valid tag, used to classify re-issuances as
    /// renewals. Pre-seeded scenario tags bypass this on purpose.
    issued_until: HashMap<u64, SimTime>,
    counters: ProviderCounters,
}

impl std::fmt::Debug for Provider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Provider")
            .field("prefix", &self.config.prefix.to_string())
            .field("counters", &self.counters)
            .finish()
    }
}

impl Provider {
    /// Creates a provider; the key pair is derived from the prefix so runs
    /// are reproducible.
    pub fn new(config: ProviderConfig) -> Self {
        let keypair = KeyPair::derive(config.prefix.to_string().as_bytes(), 0);
        let key_locator = config.prefix.child("KEY").child("1");
        Provider {
            config,
            keypair,
            key_locator,
            registry: HashMap::new(),
            issued_until: HashMap::new(),
            counters: ProviderCounters::default(),
        }
    }

    /// The provider's configuration.
    pub fn config(&self) -> &ProviderConfig {
        &self.config
    }

    /// The signing key pair (the public half goes into the PKI).
    pub fn keypair(&self) -> &KeyPair {
        &self.keypair
    }

    /// The provider's key locator (`Pub_p`).
    pub fn key_locator(&self) -> &Name {
        &self.key_locator
    }

    /// The counters.
    pub fn counters(&self) -> &ProviderCounters {
        &self.counters
    }

    /// Registers (or updates) a principal's entitlement.
    pub fn grant(&mut self, principal: u64, level: AccessLevel) {
        self.registry.insert(
            principal,
            Grant {
                level,
                revoked: false,
            },
        );
    }

    /// Revokes a principal: no fresh tags; outstanding tags die at expiry.
    pub fn revoke(&mut self, principal: u64) {
        if let Some(g) = self.registry.get_mut(&principal) {
            g.revoked = true;
        }
    }

    /// The standing of a principal, if registered.
    pub fn grant_of(&self, principal: u64) -> Option<Grant> {
        self.registry.get(&principal).copied()
    }

    /// The name of chunk `chunk` of object `obj`: `/<prefix>/obj<i>/c<j>`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are outside the catalog.
    pub fn content_name(&self, obj: usize, chunk: usize) -> Name {
        assert!(
            obj < self.config.objects && chunk < self.config.chunks_per_object,
            "outside catalog"
        );
        self.config
            .prefix
            .child(format!("obj{obj}"))
            .child(format!("c{chunk}"))
    }

    /// The access level assigned to an object.
    pub fn object_level(&self, obj: usize) -> AccessLevel {
        self.config.access_levels[obj % self.config.access_levels.len()]
    }

    /// The registration Interest name a principal should use (unique per
    /// sequence number so responses are never served from caches).
    pub fn registration_name(&self, principal: u64, seq: u64) -> Name {
        self.config
            .prefix
            .child("register")
            .child(format!("u{principal}"))
            .child(format!("{seq}"))
    }

    /// Builds and signs the Data packet for a chunk. Content signatures
    /// are produced offline in deployment, so no per-request cost is
    /// charged.
    pub fn build_chunk(&self, obj: usize, chunk: usize) -> Data {
        let mut d = Data::new(
            self.content_name(obj, chunk),
            Payload::Synthetic(self.config.chunk_size),
        );
        ext::set_data_access_level(&mut d, self.object_level(obj));
        ext::set_data_key_locator(&mut d, &self.key_locator);
        let sig = self.keypair.sign(&d.signable_bytes());
        d.set_signature(sig);
        d
    }

    /// Issues a signed tag directly (scenario setup: pre-seeding expired
    /// or cross-location tags for attacker models).
    pub fn issue_tag(
        &mut self,
        principal: u64,
        level: AccessLevel,
        access_path: AccessPath,
        expiry: SimTime,
    ) -> SignedTag {
        self.counters.tags_issued += 1;
        Tag {
            provider_key_locator: self.key_locator.clone(),
            access_level: level,
            client_key_locator: self
                .config
                .prefix
                .child("users")
                .child(format!("u{principal}"))
                .child("KEY"),
            access_path,
            expiry,
        }
        .sign(&self.keypair)
    }

    /// Handles an Interest arriving at the provider. Returns the reply
    /// packets (for the arrival face) and the computation delay charged.
    pub fn handle_interest(
        &mut self,
        interest: &Interest,
        now: SimTime,
        rng: &mut Rng,
        cost: &CostModel,
    ) -> (Vec<Packet>, SimDuration) {
        self.handle_interest_observed(interest, now, rng, cost, 0, &mut NoopProtocolObserver)
    }

    /// [`Self::handle_interest`] with protocol-decision hooks: `node` is
    /// the provider's id in the topology, stamped onto every hook.
    pub fn handle_interest_observed<O: ProtocolObserver>(
        &mut self,
        interest: &Interest,
        now: SimTime,
        rng: &mut Rng,
        cost: &CostModel,
        node: u64,
        obs: &mut O,
    ) -> (Vec<Packet>, SimDuration) {
        let mut charge = SimDuration::ZERO;
        let hop = Hop::new(node, NodeRole::Provider, now);
        if ext::is_registration(interest) {
            return self.handle_registration(interest, now, rng, cost);
        }
        obs.on_interest_hop(hop, interest.nonce(), interest.name());
        // Content request reaching the origin: the provider is the origin
        // content router and validates like one.
        let Some((obj, chunk)) = self.parse_content_name(interest.name()) else {
            return (Vec::new(), charge); // Not ours / outside catalog: drop.
        };
        let data = self.build_chunk(obj, chunk);
        let level = self.object_level(obj);
        if level.is_public() {
            self.counters.chunks_served += 1;
            return (vec![Packet::Data(data)], charge);
        }
        let tag = ext::interest_tag(interest);
        let valid = match &tag {
            None => {
                obs.on_precheck(
                    hop,
                    PrecheckStage::Content,
                    PrecheckVerdict::Rejected(RejectReason::MissingTag),
                );
                false
            }
            Some(st) => {
                charge += cost.sample(Op::PreCheck, rng);
                let pre = match crate::precheck::edge_precheck(&st.tag, interest.name(), now) {
                    Err(e) => {
                        obs.on_precheck(
                            hop,
                            PrecheckStage::Edge,
                            PrecheckVerdict::Rejected(e.telemetry_reason()),
                        );
                        false
                    }
                    Ok(()) => {
                        obs.on_precheck(hop, PrecheckStage::Edge, PrecheckVerdict::Accepted);
                        match crate::precheck::content_precheck(&st.tag, level, &self.key_locator) {
                            Err(e) => {
                                obs.on_precheck(
                                    hop,
                                    PrecheckStage::Content,
                                    PrecheckVerdict::Rejected(e.telemetry_reason()),
                                );
                                false
                            }
                            Ok(()) => {
                                obs.on_precheck(
                                    hop,
                                    PrecheckStage::Content,
                                    PrecheckVerdict::Accepted,
                                );
                                true
                            }
                        }
                    }
                };
                if pre {
                    self.counters.chunks_served += 1; // optimistic; adjusted below
                    charge += cost.sample(Op::SigVerify, rng);
                    let ok = st.verify(&self.keypair.public());
                    obs.on_sig_verify(hop, ok, false);
                    if !ok {
                        self.counters.chunks_served -= 1;
                    }
                    ok
                } else {
                    false
                }
            }
        };
        let mut d = data;
        if let Some(st) = &tag {
            ext::set_data_tag(&mut d, st);
        }
        ext::set_data_flag_f(&mut d, ext::interest_flag_f(interest));
        if !valid {
            // Content + NACK so downstream aggregated valid requests are
            // satisfied while this requester is refused (§5.B).
            ext::set_data_nack(&mut d, NackReason::InvalidTag);
            self.counters.nacks += 1;
            obs.on_nack(hop, NackReason::InvalidTag);
        }
        (vec![Packet::Data(d)], charge)
    }

    fn handle_registration(
        &mut self,
        interest: &Interest,
        now: SimTime,
        rng: &mut Rng,
        cost: &CostModel,
    ) -> (Vec<Packet>, SimDuration) {
        let mut charge = SimDuration::ZERO;
        let Some(principal) = registration_principal(interest) else {
            return (Vec::new(), charge);
        };
        match self.registry.get(&principal) {
            Some(grant) if !grant.revoked => {
                let observed_ap = ext::interest_access_path(interest);
                charge += cost.sample(Op::SigSign, rng);
                if self.issued_until.get(&principal).is_some_and(|&u| now < u) {
                    self.counters.tags_renewed += 1;
                }
                let expiry = now + self.config.tag_validity;
                self.issued_until.insert(principal, expiry);
                let tag = self.issue_tag(principal, grant.level, observed_ap, expiry);
                let mut resp = Data::new(
                    interest.name().clone(),
                    Payload::Synthetic(tag.encode().len()),
                );
                ext::set_data_new_tag(&mut resp, &tag);
                (vec![Packet::Data(resp)], charge)
            }
            _ => {
                // "drops the request otherwise" — unknown or revoked.
                self.counters.registrations_denied += 1;
                (Vec::new(), charge)
            }
        }
    }

    /// Parses `/<prefix>/obj<i>/c<j>` back into catalog indices.
    pub fn parse_content_name(&self, name: &Name) -> Option<(usize, usize)> {
        if !self.config.prefix.is_prefix_of(name) || name.len() != self.config.prefix.len() + 2 {
            return None;
        }
        let obj_c = name.get(self.config.prefix.len())?;
        let chunk_c = name.get(self.config.prefix.len() + 1)?;
        let obj: usize = std::str::from_utf8(obj_c.as_bytes())
            .ok()?
            .strip_prefix("obj")?
            .parse()
            .ok()?;
        let chunk: usize = std::str::from_utf8(chunk_c.as_bytes())
            .ok()?
            .strip_prefix('c')?
            .parse()
            .ok()?;
        (obj < self.config.objects && chunk < self.config.chunks_per_object).then_some((obj, chunk))
    }
}

/// Extracts the principal id from a registration Interest's extension.
pub fn registration_principal(interest: &Interest) -> Option<u64> {
    interest
        .extension(ext::EXT_REGISTRATION)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
}

/// Builds a registration Interest for `principal` with sequence `seq`.
pub fn registration_interest(
    provider_prefix: &Name,
    principal: u64,
    seq: u64,
    nonce: u64,
) -> Interest {
    let name = provider_prefix
        .child("register")
        .child(format!("u{principal}"))
        .child(format!("{seq}"));
    let mut i = Interest::new(name, nonce);
    i.set_extension(ext::EXT_REGISTRATION, principal.to_le_bytes().to_vec());
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provider() -> Provider {
        let mut p = Provider::new(ProviderConfig::paper("/prov0".parse().unwrap()));
        p.grant(7, AccessLevel::Level(2));
        p
    }

    fn free() -> (Rng, CostModel) {
        (Rng::seed_from_u64(1), CostModel::free())
    }

    #[test]
    fn registration_issues_valid_tag() {
        let mut p = provider();
        let (mut rng, cost) = free();
        let i = registration_interest(&"/prov0".parse().unwrap(), 7, 0, 1);
        let (reply, _) = p.handle_interest(&i, SimTime::ZERO, &mut rng, &cost);
        assert_eq!(reply.len(), 1);
        let Packet::Data(d) = &reply[0] else {
            panic!("expected Data")
        };
        let tag = ext::data_new_tag(d).expect("tag attached");
        assert!(tag.verify(&p.keypair().public()));
        assert_eq!(tag.tag.access_level, AccessLevel::Level(2));
        assert_eq!(tag.tag.expiry, SimTime::ZERO + SimDuration::from_secs(10));
        assert_eq!(p.counters().tags_issued, 1);
    }

    #[test]
    fn reissuance_before_expiry_counts_as_renewal() {
        let mut p = provider();
        let (mut rng, cost) = free();
        let prefix: Name = "/prov0".parse().unwrap();
        // First issuance: not a renewal.
        p.handle_interest(
            &registration_interest(&prefix, 7, 0, 1),
            SimTime::ZERO,
            &mut rng,
            &cost,
        );
        assert_eq!(p.counters().tags_renewed, 0);
        // Re-registration at t=4s, old tag valid until 10s: a renewal.
        p.handle_interest(
            &registration_interest(&prefix, 7, 1, 2),
            SimTime::from_secs(4),
            &mut rng,
            &cost,
        );
        assert_eq!(p.counters().tags_renewed, 1);
        // Re-registration after the previous tag (valid to 14s) expired:
        // a fresh issuance again.
        p.handle_interest(
            &registration_interest(&prefix, 7, 2, 3),
            SimTime::from_secs(20),
            &mut rng,
            &cost,
        );
        assert_eq!(p.counters().tags_renewed, 1);
        assert_eq!(p.counters().tags_issued, 3);
    }

    #[test]
    fn counters_debug_excludes_lifecycle_extension() {
        // The struct is embedded in pinned report snapshots: its Debug
        // output must stay the derived form of the original four fields.
        let c = ProviderCounters {
            tags_issued: 1,
            registrations_denied: 2,
            chunks_served: 3,
            nacks: 4,
            tags_renewed: 99,
        };
        assert_eq!(
            format!("{c:?}"),
            "ProviderCounters { tags_issued: 1, registrations_denied: 2, \
             chunks_served: 3, nacks: 4 }"
        );
    }

    #[test]
    fn unknown_principal_dropped() {
        let mut p = provider();
        let (mut rng, cost) = free();
        let i = registration_interest(&"/prov0".parse().unwrap(), 99, 0, 1);
        let (reply, _) = p.handle_interest(&i, SimTime::ZERO, &mut rng, &cost);
        assert!(reply.is_empty());
        assert_eq!(p.counters().registrations_denied, 1);
    }

    #[test]
    fn revoked_principal_refused_fresh_tags() {
        let mut p = provider();
        p.revoke(7);
        let (mut rng, cost) = free();
        let i = registration_interest(&"/prov0".parse().unwrap(), 7, 1, 2);
        let (reply, _) = p.handle_interest(&i, SimTime::ZERO, &mut rng, &cost);
        assert!(reply.is_empty());
    }

    #[test]
    fn content_served_with_valid_tag() {
        let mut p = provider();
        let (mut rng, cost) = free();
        let tag = p.issue_tag(
            7,
            AccessLevel::Level(2),
            AccessPath::EMPTY,
            SimTime::from_secs(10),
        );
        let mut i = Interest::new(p.content_name(3, 4), 5);
        ext::set_interest_tag(&mut i, &tag);
        let (reply, _) = p.handle_interest(&i, SimTime::ZERO, &mut rng, &cost);
        let Packet::Data(d) = &reply[0] else {
            panic!("expected Data")
        };
        assert!(ext::data_nack(d).is_none());
        assert_eq!(d.payload().len(), 1024);
        assert_eq!(ext::data_access_level(d), AccessLevel::Level(1));
        assert_eq!(p.counters().chunks_served, 1);
    }

    #[test]
    fn content_nacked_without_tag() {
        let mut p = provider();
        let (mut rng, cost) = free();
        let i = Interest::new(p.content_name(0, 0), 1);
        let (reply, _) = p.handle_interest(&i, SimTime::ZERO, &mut rng, &cost);
        let Packet::Data(d) = &reply[0] else {
            panic!("expected Data")
        };
        assert_eq!(ext::data_nack(d), Some(NackReason::InvalidTag));
        assert_eq!(p.counters().nacks, 1);
        assert_eq!(p.counters().chunks_served, 0);
    }

    #[test]
    fn expired_tag_nacked_at_origin() {
        let mut p = provider();
        let (mut rng, cost) = free();
        let tag = p.issue_tag(
            7,
            AccessLevel::Level(2),
            AccessPath::EMPTY,
            SimTime::from_secs(1),
        );
        let mut i = Interest::new(p.content_name(0, 0), 1);
        ext::set_interest_tag(&mut i, &tag);
        let (reply, _) = p.handle_interest(&i, SimTime::from_secs(5), &mut rng, &cost);
        let Packet::Data(d) = &reply[0] else {
            panic!("expected Data")
        };
        assert_eq!(ext::data_nack(d), Some(NackReason::InvalidTag));
    }

    #[test]
    fn public_catalog_needs_no_tag() {
        let mut cfg = ProviderConfig::paper("/open".parse().unwrap());
        cfg.access_levels = vec![AccessLevel::Public];
        let mut p = Provider::new(cfg);
        let (mut rng, cost) = free();
        let i = Interest::new(p.content_name(0, 0), 1);
        let (reply, _) = p.handle_interest(&i, SimTime::ZERO, &mut rng, &cost);
        let Packet::Data(d) = &reply[0] else {
            panic!("expected Data")
        };
        assert!(ext::data_nack(d).is_none());
    }

    #[test]
    fn chunk_signature_verifies() {
        let p = provider();
        let d = p.build_chunk(1, 2);
        assert!(p
            .keypair()
            .public()
            .verify(&d.signable_bytes(), d.signature().unwrap()));
    }

    #[test]
    fn content_name_roundtrip() {
        let p = provider();
        let n = p.content_name(12, 34);
        assert_eq!(n.to_string(), "/prov0/obj12/c34");
        assert_eq!(p.parse_content_name(&n), Some((12, 34)));
        assert_eq!(
            p.parse_content_name(&"/prov0/obj99/c0".parse().unwrap()),
            None
        );
        assert_eq!(
            p.parse_content_name(&"/other/obj1/c1".parse().unwrap()),
            None
        );
        assert_eq!(
            p.parse_content_name(&"/prov0/register/u7/0".parse().unwrap()),
            None
        );
    }

    #[test]
    fn access_levels_cycle() {
        let mut cfg = ProviderConfig::paper("/p".parse().unwrap());
        cfg.access_levels = vec![AccessLevel::Level(1), AccessLevel::Level(2)];
        let p = Provider::new(cfg);
        assert_eq!(p.object_level(0), AccessLevel::Level(1));
        assert_eq!(p.object_level(1), AccessLevel::Level(2));
        assert_eq!(p.object_level(2), AccessLevel::Level(1));
    }

    #[test]
    fn object_and_grant_introspection() {
        let p = provider();
        assert_eq!(
            p.grant_of(7),
            Some(Grant {
                level: AccessLevel::Level(2),
                revoked: false
            })
        );
        assert_eq!(p.grant_of(8), None);
    }
}
