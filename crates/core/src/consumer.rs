//! Consumers: the Zipf-window client and the threat-model attackers.
//!
//! The paper's client model (§8.A): "a Zipf-window client in which each
//! client is equipped with a fixed size window for outstanding requests
//! (set to 5 ...). Clients take the content popularity (Zipf distribution
//! with α = 0.7) into account to select and request new contents. Clients
//! first register themselves at the content providers, if they do not
//! possess any valid tag from that provider, and then request the selected
//! contents." Attackers use the same windowed engine with a tag strategy
//! from the threat model (§3.C); their outstanding requests die by the 1 s
//! request expiry, which throttles them ("a secondary advantage of
//! request-based DoS prevention", §8.B).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use tactic_crypto::schnorr::Signature;
use tactic_ndn::name::Name;
use tactic_ndn::packet::{Data, Interest, Nack};
use tactic_net::fault::RetransmitPolicy;
use tactic_sim::dist::Zipf;
use tactic_sim::rng::Rng;
use tactic_sim::time::{SimDuration, SimTime};

use crate::access::AccessLevel;
use crate::access_path::AccessPath;
use crate::ext;
use crate::provider::registration_interest;
use crate::tag::{SignedTag, Tag};

/// One provider's catalog as seen by consumers.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The provider's prefix.
    pub prefix: Name,
    /// Objects in the catalog.
    pub objects: usize,
    /// Chunks per object.
    pub chunks: usize,
}

/// The attacker strategies of the threat model (§3.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackerStrategy {
    /// (a) request private content without possessing a tag.
    NoTag,
    /// (b) request with a fabricated tag (legit provider key locator,
    /// forged signature).
    FakeTag,
    /// (c) replay a genuinely-issued but expired tag (a revoked client).
    ExpiredTag,
    /// (d) use a genuine tag whose access level is below the content's.
    InsufficientLevel,
    /// (e) replay a tag issued to a client at another location (defeated
    /// only by access-path authentication).
    SharedTag,
}

impl AttackerStrategy {
    /// The paper-replica attacker mix — the threats its simulation covers
    /// (access paths were left to future work, so no `SharedTag`).
    pub const PAPER_MIX: [AttackerStrategy; 4] = [
        AttackerStrategy::NoTag,
        AttackerStrategy::FakeTag,
        AttackerStrategy::ExpiredTag,
        AttackerStrategy::InsufficientLevel,
    ];
}

/// Client or attacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsumerKind {
    /// A legitimate, registered client.
    Client,
    /// An unauthorized user following a strategy.
    Attacker(AttackerStrategy),
}

impl ConsumerKind {
    /// True for legitimate clients.
    pub fn is_client(self) -> bool {
        matches!(self, ConsumerKind::Client)
    }
}

/// Per-consumer measurement record.
#[derive(Debug, Clone, Default)]
pub struct ConsumerStats {
    /// Content chunks requested (excludes registrations and retries are
    /// counted again, as in the paper's "requested chunk" totals).
    pub requested_chunks: u64,
    /// Content chunks received.
    pub received_chunks: u64,
    /// Standalone NACKs received.
    pub nacks: u64,
    /// Outstanding requests that expired.
    pub timeouts: u64,
    /// Interests retransmitted after an expiry (resilience extension;
    /// zero under the paper's no-retry clients).
    pub retransmissions: u64,
    /// Chunks abandoned after exhausting their retransmission budget.
    pub gave_up: u64,
    /// Handovers performed (mobility extension).
    pub moves: u64,
    /// Times at which tag requests were sent (Fig. 6's `Q`).
    pub tag_requests: Vec<SimTime>,
    /// Times at which fresh tags arrived (Fig. 6's `R`).
    pub tags_received: Vec<SimTime>,
    /// `(arrival time, latency seconds)` per received chunk (Fig. 5).
    pub latencies: Vec<(SimTime, f64)>,
}

#[derive(Debug, Clone)]
enum PendingWork {
    Chunk {
        prov: usize,
        obj: usize,
        chunk: usize,
    },
    Registration {
        prov: usize,
    },
}

#[derive(Debug, Clone)]
struct Pending {
    sent: SimTime,
    /// 0 = original Interest only; bumped per retransmission.
    attempts: u32,
    work: PendingWork,
}

/// Consumer configuration.
#[derive(Debug, Clone)]
pub struct ConsumerConfig {
    /// Stable principal identifier (used in registrations and key names).
    pub principal: u64,
    /// Client or attacker.
    pub kind: ConsumerKind,
    /// Outstanding-request window (paper: 5).
    pub window: usize,
    /// Request expiry (paper: 1 s).
    pub request_timeout: SimDuration,
    /// Zipf exponent over the global object population (paper: 0.7).
    pub zipf_alpha: f64,
    /// Proactive tag-refresh margin: a tag within this much of expiry is
    /// treated as stale so in-flight requests don't cross the expiry and
    /// get dropped at the edge. Zero reproduces the paper's bare model.
    pub refresh_margin: SimDuration,
    /// Optional Interest retransmission (`None` = the paper's no-retry
    /// clients). A retransmission re-presents the consumer's current tag,
    /// so it re-exercises the edge's Protocol 2/3 validation path.
    pub retransmit: Option<RetransmitPolicy>,
}

/// Proactive-renewal state (the churn tag-lifetime policy): per-tag
/// deadlines and the dedicated lifecycle RNG the jitter is drawn from.
struct RenewalState {
    lead: SimDuration,
    jitter: SimDuration,
    rng: Rng,
    renew_at: HashMap<usize, SimTime>,
}

/// A windowed consumer (client or attacker).
pub struct Consumer {
    config: ConsumerConfig,
    catalog: Vec<CatalogEntry>,
    zipf: Zipf,
    rng: Rng,
    renewal: Option<RenewalState>,
    tags: HashMap<usize, Arc<SignedTag>>,
    preset_tags: HashMap<usize, Arc<SignedTag>>,
    reg_pending: Option<usize>,
    reg_seq: u64,
    nonce_seq: u64,
    current: Option<(usize, usize, usize)>,
    in_flight: HashMap<Name, Pending>,
    retry: VecDeque<(usize, usize, usize)>,
    stats: ConsumerStats,
}

impl std::fmt::Debug for Consumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("principal", &self.config.principal)
            .field("kind", &self.config.kind)
            .field("in_flight", &self.in_flight.len())
            .finish()
    }
}

impl Consumer {
    /// Creates a consumer over the given catalogs.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty or the window is zero.
    pub fn new(config: ConsumerConfig, catalog: Vec<CatalogEntry>, rng: Rng) -> Self {
        assert!(!catalog.is_empty(), "consumer needs a catalog");
        assert!(config.window > 0, "window must be positive");
        let total_objects: usize = catalog.iter().map(|c| c.objects).sum();
        let zipf = Zipf::new(total_objects, config.zipf_alpha);
        Consumer {
            config,
            catalog,
            zipf,
            rng,
            renewal: None,
            tags: HashMap::new(),
            preset_tags: HashMap::new(),
            reg_pending: None,
            reg_seq: 0,
            nonce_seq: 0,
            current: None,
            in_flight: HashMap::new(),
            retry: VecDeque::new(),
            stats: ConsumerStats::default(),
        }
    }

    /// The consumer's kind.
    pub fn kind(&self) -> ConsumerKind {
        self.config.kind
    }

    /// The principal id.
    pub fn principal(&self) -> u64 {
        self.config.principal
    }

    /// Measurement record.
    pub fn stats(&self) -> &ConsumerStats {
        &self.stats
    }

    /// Enables proactive tag renewal (the churn tag-lifetime policy):
    /// every fresh tag gets a renewal deadline `lead` plus a uniform
    /// jitter in `[0, jitter)` before its expiry, drawn once per tag from
    /// `rng`; past the deadline the consumer re-registers even though the
    /// tag is still valid. Callers must fork `rng` from the dedicated
    /// lifecycle stream so consumers without renewal draw nothing from it
    /// and stay byte-identical to pre-lifecycle builds.
    pub fn enable_renewal(&mut self, lead: SimDuration, jitter: SimDuration, rng: Rng) {
        self.renewal = Some(RenewalState {
            lead,
            jitter,
            rng,
            renew_at: HashMap::new(),
        });
    }

    /// Seeds a fixed tag for `provider_index` (expired-tag / shared-tag
    /// attacker setups).
    pub fn preset_tag(&mut self, provider_index: usize, tag: SignedTag) {
        self.preset_tags.insert(provider_index, Arc::new(tag));
    }

    /// Outstanding request count.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// The configured request timeout.
    pub fn request_timeout(&self) -> SimDuration {
        self.config.request_timeout
    }

    fn next_nonce(&mut self) -> u64 {
        self.nonce_seq += 1;
        (self.config.principal << 24) ^ self.nonce_seq
    }

    /// Maps a global Zipf rank to `(provider, object)`.
    fn locate(&self, mut rank: usize) -> (usize, usize) {
        for (i, c) in self.catalog.iter().enumerate() {
            if rank < c.objects {
                return (i, rank);
            }
            rank -= c.objects;
        }
        unreachable!("rank within total objects");
    }

    fn next_work(&mut self) -> (usize, usize, usize) {
        if let Some(w) = self.retry.pop_front() {
            return w;
        }
        match self.current {
            Some((p, o, c)) if c < self.catalog[p].chunks => {
                self.current = Some((p, o, c + 1));
                (p, o, c)
            }
            _ => {
                let rank = self.zipf.sample(&mut self.rng);
                let (p, o) = self.locate(rank);
                self.current = Some((p, o, 1));
                (p, o, 0)
            }
        }
    }

    /// True when the renewal deadline for `prov`'s tag has passed (always
    /// false without the churn policy).
    fn renewal_due(&self, prov: usize, now: SimTime) -> bool {
        self.renewal
            .as_ref()
            .is_some_and(|r| r.renew_at.get(&prov).is_some_and(|&at| now >= at))
    }

    fn tag_for(&mut self, prov: usize, now: SimTime) -> TagChoice {
        match self.config.kind {
            ConsumerKind::Client | ConsumerKind::Attacker(AttackerStrategy::InsufficientLevel) => {
                match self.tags.get(&prov) {
                    Some(t)
                        if !t.tag.is_expired(now + self.config.refresh_margin)
                            && !self.renewal_due(prov, now) =>
                    {
                        TagChoice::Use(t.clone())
                    }
                    _ => TagChoice::NeedRegistration,
                }
            }
            ConsumerKind::Attacker(AttackerStrategy::NoTag) => TagChoice::None,
            ConsumerKind::Attacker(AttackerStrategy::FakeTag) => {
                if let Some(t) = self.tags.get(&prov) {
                    return TagChoice::Use(t.clone());
                }
                // Fabricate: correct public naming, forged signature.
                let prefix = self.catalog[prov].prefix.clone();
                let fake = Arc::new(SignedTag::new(
                    Tag {
                        provider_key_locator: prefix.child("KEY").child("1"),
                        access_level: AccessLevel::Level(200),
                        client_key_locator: prefix
                            .child("users")
                            .child(format!("u{}", self.config.principal))
                            .child("KEY"),
                        access_path: AccessPath::EMPTY,
                        expiry: SimTime::MAX,
                    },
                    Signature::forged(self.rng.next_u64()),
                ));
                self.tags.insert(prov, fake.clone());
                TagChoice::Use(fake)
            }
            ConsumerKind::Attacker(AttackerStrategy::ExpiredTag)
            | ConsumerKind::Attacker(AttackerStrategy::SharedTag) => {
                match self.preset_tags.get(&prov) {
                    Some(t) => TagChoice::Use(t.clone()),
                    None => TagChoice::None,
                }
            }
        }
    }

    /// Fills the window; returns the Interests to transmit, each paired
    /// with the time the caller should fire its timeout check.
    pub fn fill(&mut self, now: SimTime) -> Vec<Interest> {
        let mut out = Vec::new();
        while self.in_flight.len() < self.config.window {
            let (prov, obj, chunk) = self.next_work();
            match self.tag_for(prov, now) {
                TagChoice::NeedRegistration => {
                    // Put the work back for after registration.
                    self.retry.push_front((prov, obj, chunk));
                    if self.reg_pending.is_some() {
                        break; // Already waiting for a tag.
                    }
                    self.reg_pending = Some(prov);
                    self.reg_seq += 1;
                    let nonce = self.next_nonce();
                    let i = registration_interest(
                        &self.catalog[prov].prefix,
                        self.config.principal,
                        self.reg_seq,
                        nonce,
                    );
                    self.stats.tag_requests.push(now);
                    self.in_flight.insert(
                        i.name().clone(),
                        Pending {
                            sent: now,
                            attempts: 0,
                            work: PendingWork::Registration { prov },
                        },
                    );
                    out.push(i);
                    break; // Window blocked until the tag arrives.
                }
                choice => {
                    let name = self.catalog[prov]
                        .prefix
                        .child(format!("obj{obj}"))
                        .child(format!("c{chunk}"));
                    if self.in_flight.contains_key(&name) {
                        continue; // Already outstanding (retry overlap).
                    }
                    let nonce = self.next_nonce();
                    let mut i = Interest::new(name.clone(), nonce);
                    i.set_lifetime_ms((self.config.request_timeout.as_nanos() / 1_000_000) as u32);
                    if let TagChoice::Use(t) = &choice {
                        ext::set_interest_tag(&mut i, t);
                    }
                    self.stats.requested_chunks += 1;
                    self.in_flight.insert(
                        name,
                        Pending {
                            sent: now,
                            attempts: 0,
                            work: PendingWork::Chunk { prov, obj, chunk },
                        },
                    );
                    out.push(i);
                }
            }
        }
        out
    }

    /// Handles an arriving Data packet; returns follow-up Interests.
    pub fn on_data(&mut self, data: &Data, now: SimTime) -> Vec<Interest> {
        let Some(pending) = self.in_flight.remove(data.name()) else {
            return self.fill(now); // Stale/duplicate: ignore, keep pumping.
        };
        match pending.work {
            PendingWork::Registration { prov } => {
                self.reg_pending = None;
                if let Some(tag) = ext::data_new_tag(data) {
                    self.stats.tags_received.push(now);
                    if let Some(r) = &mut self.renewal {
                        let jitter_ns = match r.jitter.as_nanos() {
                            0 => 0,
                            j => r.rng.next_u64() % j,
                        };
                        let deadline_ns = tag
                            .tag
                            .expiry
                            .as_nanos()
                            .saturating_sub(r.lead.as_nanos() + jitter_ns);
                        r.renew_at.insert(prov, SimTime::from_nanos(deadline_ns));
                    }
                    self.tags.insert(prov, Arc::new(tag));
                }
            }
            PendingWork::Chunk { .. } => {
                if ext::data_nack(data).is_some() {
                    // Content-attached NACK should have been filtered by
                    // the edge; treat defensively as a rejection.
                    self.stats.nacks += 1;
                } else {
                    self.stats.received_chunks += 1;
                    let latency = now.saturating_since(pending.sent).as_secs_f64();
                    self.stats.latencies.push((now, latency));
                }
            }
        }
        self.fill(now)
    }

    /// Handles a standalone NACK; returns follow-up Interests.
    pub fn on_nack(&mut self, nack: &Nack, now: SimTime) -> Vec<Interest> {
        let Some(pending) = self.in_flight.remove(nack.interest().name()) else {
            return self.fill(now);
        };
        self.stats.nacks += 1;
        match pending.work {
            PendingWork::Registration { .. } => {
                self.reg_pending = None;
            }
            PendingWork::Chunk { prov, obj, chunk } => {
                // An InvalidTag NACK usually means our tag expired in
                // flight: forget it so the next fill re-registers
                // (clients) or keeps hammering (attackers).
                if self.config.kind.is_client() {
                    self.tags.remove(&prov);
                }
                self.retry.push_back((prov, obj, chunk));
            }
        }
        self.fill(now)
    }

    /// Handover: the consumer moved to a new access point. Per §4.A ("a
    /// mobile client needs to request a new tag every time she moves to a
    /// new location") all cached tags are dropped, so the next fill
    /// re-registers from the new location; attacker preset tags are
    /// deliberately kept (a replayed tag does not renew itself).
    pub fn on_move(&mut self, _now: SimTime) {
        self.tags.clear();
        if let Some(r) = &mut self.renewal {
            r.renew_at.clear();
        }
        self.reg_pending = None;
        self.stats.moves += 1;
    }

    /// Timeout check for `name` sent at `sent`; fires only if that exact
    /// attempt is still outstanding (a stale expiry — the chunk was since
    /// retransmitted or completed — is a no-op). Under a retransmission
    /// policy an expired chunk is re-requested in place with a fresh
    /// nonce, a backed-off lifetime, and the consumer's *current* tag
    /// re-attached; exhausted chunks are given up. Returns follow-up
    /// Interests.
    pub fn on_timeout(&mut self, name: &Name, sent: SimTime, now: SimTime) -> Vec<Interest> {
        let still_pending = matches!(self.in_flight.get(name), Some(p) if p.sent == sent);
        if !still_pending {
            return Vec::new();
        }
        self.stats.timeouts += 1;
        let pending = self.in_flight.get(name).cloned().expect("checked above");
        match pending.work {
            PendingWork::Registration { .. } => {
                self.in_flight.remove(name);
                self.reg_pending = None;
                self.fill(now)
            }
            PendingWork::Chunk { prov, obj, chunk } => {
                if let Some(policy) = self.config.retransmit {
                    if pending.attempts < policy.max_retries {
                        match self.tag_for(prov, now) {
                            TagChoice::NeedRegistration => {
                                // The tag expired while the chunk was in
                                // flight: route the chunk through the
                                // ordinary retry path so the next fill
                                // re-registers first.
                                self.in_flight.remove(name);
                                self.retry.push_back((prov, obj, chunk));
                                return self.fill(now);
                            }
                            choice => {
                                let p = self.in_flight.get_mut(name).expect("checked above");
                                p.attempts += 1;
                                p.sent = now;
                                let attempts = p.attempts;
                                self.stats.retransmissions += 1;
                                let nonce = self.next_nonce();
                                let mut i = Interest::new(name.clone(), nonce);
                                let lifetime =
                                    policy.timeout_for(self.config.request_timeout, attempts);
                                i.set_lifetime_ms((lifetime.as_nanos() / 1_000_000) as u32);
                                if let TagChoice::Use(t) = &choice {
                                    ext::set_interest_tag(&mut i, t);
                                }
                                return vec![i];
                            }
                        }
                    }
                    self.stats.gave_up += 1;
                    self.in_flight.remove(name);
                    return self.fill(now);
                }
                self.in_flight.remove(name);
                self.retry.push_back((prov, obj, chunk));
                self.fill(now)
            }
        }
    }

    /// The expiry to schedule for the Interest currently in flight for
    /// `name`: the base timeout scaled by the retransmission backoff of
    /// its attempt count. Unknown names, registrations (never
    /// retransmitted, so never backed off), and policy-free consumers all
    /// get the base timeout.
    pub fn timeout_for(&self, name: &Name) -> SimDuration {
        match (self.config.retransmit, self.in_flight.get(name)) {
            (Some(policy), Some(p)) => policy.timeout_for(self.config.request_timeout, p.attempts),
            _ => self.config.request_timeout,
        }
    }
}

#[derive(Debug, Clone)]
enum TagChoice {
    Use(Arc<SignedTag>),
    None,
    NeedRegistration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tactic_crypto::schnorr::KeyPair;
    use tactic_ndn::packet::Payload;

    fn catalog() -> Vec<CatalogEntry> {
        vec![
            CatalogEntry {
                prefix: "/prov0".parse().unwrap(),
                objects: 5,
                chunks: 3,
            },
            CatalogEntry {
                prefix: "/prov1".parse().unwrap(),
                objects: 5,
                chunks: 3,
            },
        ]
    }

    fn client_with(kind: ConsumerKind, retransmit: Option<RetransmitPolicy>) -> Consumer {
        Consumer::new(
            ConsumerConfig {
                principal: 7,
                kind,
                window: 5,
                request_timeout: SimDuration::from_secs(1),
                zipf_alpha: 0.7,
                refresh_margin: SimDuration::ZERO,
                retransmit,
            },
            catalog(),
            Rng::seed_from_u64(42),
        )
    }

    fn client(kind: ConsumerKind) -> Consumer {
        client_with(kind, None)
    }

    fn issue_tag(prefix: &str, expiry: SimTime) -> SignedTag {
        let kp = KeyPair::derive(prefix.as_bytes(), 0);
        let prefix: Name = prefix.parse().unwrap();
        Tag {
            provider_key_locator: prefix.child("KEY").child("1"),
            access_level: AccessLevel::Level(2),
            client_key_locator: prefix.child("users").child("u7").child("KEY"),
            access_path: AccessPath::EMPTY,
            expiry,
        }
        .sign(&kp)
    }

    fn reg_response(name: &Name, tag: &SignedTag) -> Data {
        let mut d = Data::new(name.clone(), Payload::Synthetic(100));
        ext::set_data_new_tag(&mut d, tag);
        d
    }

    #[test]
    fn client_registers_before_requesting() {
        let mut c = client(ConsumerKind::Client);
        let sends = c.fill(SimTime::ZERO);
        assert_eq!(sends.len(), 1, "only the registration goes out first");
        assert!(ext::is_registration(&sends[0]));
        assert_eq!(c.stats().tag_requests.len(), 1);
        assert_eq!(c.stats().requested_chunks, 0);
    }

    #[test]
    fn tag_arrival_opens_the_window() {
        let mut c = client(ConsumerKind::Client);
        let sends = c.fill(SimTime::ZERO);
        let reg_name = sends[0].name().clone();
        let prov_prefix = reg_name.prefix(1).to_string();
        let tag = issue_tag(&prov_prefix, SimTime::from_secs(10));
        let follow = c.on_data(&reg_response(&reg_name, &tag), SimTime::from_secs_f64(0.01));
        assert_eq!(follow.len(), 5, "window fills after the tag arrives");
        assert!(follow.iter().all(|i| ext::interest_tag(i).is_some()));
        assert_eq!(c.stats().tags_received.len(), 1);
        assert_eq!(c.stats().requested_chunks, 5);
    }

    #[test]
    fn chunks_pipeline_within_an_object() {
        let mut c = client(ConsumerKind::Client);
        let sends = c.fill(SimTime::ZERO);
        let reg_name = sends[0].name().clone();
        let tag = issue_tag(&reg_name.prefix(1).to_string(), SimTime::from_secs(100));
        let follow = c.on_data(&reg_response(&reg_name, &tag), SimTime::ZERO);
        // 3-chunk objects: the first 3 interests are chunks 0..3 of one
        // object; the window continues into the next sampled object.
        let names: Vec<String> = follow.iter().map(|i| i.name().to_string()).collect();
        assert!(names[0].ends_with("/c0"));
        assert!(names[1].ends_with("/c1"));
        assert!(names[2].ends_with("/c2"));
    }

    #[test]
    fn data_receipt_records_latency_and_refills() {
        let mut c = client(ConsumerKind::Client);
        let sends = c.fill(SimTime::ZERO);
        let reg_name = sends[0].name().clone();
        let tag = issue_tag(&reg_name.prefix(1).to_string(), SimTime::from_secs(100));
        let follow = c.on_data(&reg_response(&reg_name, &tag), SimTime::ZERO);
        let first = follow[0].name().clone();
        let d = Data::new(first, Payload::Synthetic(1024));
        let more = c.on_data(&d, SimTime::from_secs_f64(0.050));
        assert_eq!(c.stats().received_chunks, 1);
        assert_eq!(c.stats().latencies.len(), 1);
        assert!((c.stats().latencies[0].1 - 0.050).abs() < 1e-9);
        assert_eq!(more.len(), 1, "freed slot is refilled");
        assert_eq!(c.in_flight(), 5);
    }

    #[test]
    fn timeout_retries_the_chunk() {
        let mut c = client(ConsumerKind::Client);
        let sends = c.fill(SimTime::ZERO);
        let reg_name = sends[0].name().clone();
        let tag = issue_tag(&reg_name.prefix(1).to_string(), SimTime::from_secs(100));
        let follow = c.on_data(&reg_response(&reg_name, &tag), SimTime::ZERO);
        let victim = follow[1].name().clone();
        let refills = c.on_timeout(&victim, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(c.stats().timeouts, 1);
        // The retried chunk goes out again (same name, new nonce).
        assert!(refills.iter().any(|i| i.name() == &victim));
        // A stale timeout (wrong send time) is a no-op.
        let noop = c.on_timeout(&victim, SimTime::ZERO, SimTime::from_secs(2));
        assert!(noop.is_empty());
        assert_eq!(c.stats().timeouts, 1);
    }

    #[test]
    fn retransmission_represents_the_tag_and_backs_off() {
        let policy = RetransmitPolicy {
            max_retries: 2,
            max_backoff_shift: 4,
        };
        let mut c = client_with(ConsumerKind::Client, Some(policy));
        let sends = c.fill(SimTime::ZERO);
        let reg_name = sends[0].name().clone();
        let tag = issue_tag(&reg_name.prefix(1).to_string(), SimTime::from_secs(100));
        let follow = c.on_data(&reg_response(&reg_name, &tag), SimTime::ZERO);
        let victim = follow[0].name().clone();
        assert_eq!(c.timeout_for(&victim), SimDuration::from_secs(1));

        // First expiry: the chunk is retransmitted in place with a fresh
        // nonce and the tag re-attached (Protocol 2/3 re-validation).
        let resend = c.on_timeout(&victim, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(resend.len(), 1);
        assert_eq!(resend[0].name(), &victim);
        assert_ne!(resend[0].nonce(), follow[0].nonce());
        assert_eq!(
            *ext::interest_tag(&resend[0]).expect("tag re-presented"),
            tag
        );
        assert_eq!(c.timeout_for(&victim), SimDuration::from_secs(2));
        // The original attempt's expiry is stale now: a no-op.
        assert!(c
            .on_timeout(&victim, SimTime::ZERO, SimTime::from_secs(2))
            .is_empty());
        assert_eq!(c.stats().retransmissions, 1);

        // Second expiry retransmits again; the third gives the chunk up
        // and refills the freed slot with other work.
        let t1 = SimTime::from_secs(1);
        let resend2 = c.on_timeout(&victim, t1, SimTime::from_secs(3));
        assert_eq!(resend2.len(), 1);
        let t2 = SimTime::from_secs(3);
        let refill = c.on_timeout(&victim, t2, SimTime::from_secs(7));
        assert!(refill.iter().all(|i| i.name() != &victim));
        assert_eq!(c.stats().gave_up, 1);
        assert_eq!(c.stats().retransmissions, 2);
        // Retransmissions never inflate the requested-chunk total.
        assert_eq!(c.stats().requested_chunks, 6);
    }

    #[test]
    fn retransmission_after_tag_expiry_reregisters_instead() {
        let mut c = client_with(ConsumerKind::Client, Some(RetransmitPolicy::default()));
        let sends = c.fill(SimTime::ZERO);
        let reg_name = sends[0].name().clone();
        let tag = issue_tag(&reg_name.prefix(1).to_string(), SimTime::from_secs(2));
        let follow = c.on_data(&reg_response(&reg_name, &tag), SimTime::ZERO);
        let victim = follow[0].name().clone();
        // The expiry fires after the tag itself lapsed: instead of
        // replaying a dead tag the consumer falls back to registration.
        let out = c.on_timeout(&victim, SimTime::ZERO, SimTime::from_secs(3));
        assert!(out.iter().any(ext::is_registration));
        assert_eq!(c.stats().retransmissions, 0);
        assert_eq!(c.stats().tag_requests.len(), 2);
    }

    #[test]
    fn expired_tag_triggers_reregistration() {
        let mut c = client(ConsumerKind::Client);
        let sends = c.fill(SimTime::ZERO);
        let reg_name = sends[0].name().clone();
        let tag = issue_tag(&reg_name.prefix(1).to_string(), SimTime::from_secs(10));
        c.on_data(&reg_response(&reg_name, &tag), SimTime::ZERO);
        // Drain the window via timeouts past the tag's expiry: the next
        // fill must re-register instead of using the stale tag.
        let names: Vec<Name> = c.in_flight.keys().cloned().collect();
        let mut regs = 0;
        for n in names {
            for i in c.on_timeout(&n, SimTime::ZERO, SimTime::from_secs(11)) {
                if ext::is_registration(&i) {
                    regs += 1;
                }
            }
        }
        assert_eq!(regs, 1, "exactly one re-registration");
        assert_eq!(c.stats().tag_requests.len(), 2);
    }

    #[test]
    fn renewal_churn_reregisters_before_expiry() {
        let mut c = client(ConsumerKind::Client);
        c.enable_renewal(
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
            Rng::seed_from_u64(9),
        );
        let sends = c.fill(SimTime::ZERO);
        let reg_name = sends[0].name().clone();
        let tag = issue_tag(&reg_name.prefix(1).to_string(), SimTime::from_secs(10));
        let follow = c.on_data(&reg_response(&reg_name, &tag), SimTime::ZERO);
        // The deadline lands in [7, 8) s: lead 2 s plus jitter < 1 s
        // before the 10 s expiry. At 5 s the tag is still used.
        let victim = follow[0].name().clone();
        let early = c.on_timeout(&victim, SimTime::ZERO, SimTime::from_secs(5));
        assert!(early.iter().all(|i| !ext::is_registration(i)));
        // Past the deadline — but well before expiry — the next fill
        // re-registers even though the tag is valid until 10 s.
        let names: Vec<Name> = c.in_flight.keys().cloned().collect();
        let mut regs = 0;
        for n in names {
            for i in c.on_timeout(&n, SimTime::from_secs(5), SimTime::from_secs(8)) {
                if ext::is_registration(&i) {
                    regs += 1;
                }
            }
        }
        assert_eq!(regs, 1, "exactly one proactive renewal request");
        assert_eq!(c.stats().tag_requests.len(), 2);
    }

    #[test]
    fn no_tag_attacker_sends_untagged_interests() {
        let mut a = client(ConsumerKind::Attacker(AttackerStrategy::NoTag));
        let sends = a.fill(SimTime::ZERO);
        assert_eq!(sends.len(), 5);
        assert!(sends.iter().all(|i| ext::interest_tag(i).is_none()));
        assert!(sends.iter().all(|i| !ext::is_registration(i)));
    }

    #[test]
    fn fake_tag_attacker_forges_plausible_tags() {
        let mut a = client(ConsumerKind::Attacker(AttackerStrategy::FakeTag));
        let sends = a.fill(SimTime::ZERO);
        assert_eq!(sends.len(), 5);
        let tag = ext::interest_tag(&sends[0]).expect("fake tag attached");
        // Plausible fields, bogus signature.
        assert!(tag.tag.provider_key_locator.to_string().contains("/KEY/"));
        let kp = KeyPair::derive(b"/prov0", 0);
        assert!(!tag.verify(&kp.public()));
    }

    #[test]
    fn expired_tag_attacker_uses_preset() {
        let mut a = client(ConsumerKind::Attacker(AttackerStrategy::ExpiredTag));
        let stale0 = issue_tag("/prov0", SimTime::from_nanos(1));
        let stale1 = issue_tag("/prov1", SimTime::from_nanos(1));
        a.preset_tag(0, stale0.clone());
        a.preset_tag(1, stale1.clone());
        let sends = a.fill(SimTime::from_secs(5));
        assert_eq!(sends.len(), 5);
        let t = ext::interest_tag(&sends[0]).unwrap();
        assert!(t.tag.is_expired(SimTime::from_secs(5)));
        assert!(*t == stale0 || *t == stale1);
    }

    #[test]
    fn nack_on_chunk_requeues_and_drops_client_tag() {
        let mut c = client(ConsumerKind::Client);
        let sends = c.fill(SimTime::ZERO);
        let reg_name = sends[0].name().clone();
        let tag = issue_tag(&reg_name.prefix(1).to_string(), SimTime::from_secs(100));
        let follow = c.on_data(&reg_response(&reg_name, &tag), SimTime::ZERO);
        let victim = follow[0].clone();
        let refills = c.on_nack(
            &Nack::new(victim.clone(), tactic_ndn::packet::NackReason::InvalidTag),
            SimTime::from_secs_f64(0.1),
        );
        assert_eq!(c.stats().nacks, 1);
        // Tag was dropped, so the refill starts with a re-registration.
        assert!(refills.iter().any(ext::is_registration));
    }

    #[test]
    fn window_never_exceeds_configured_size() {
        let mut a = client(ConsumerKind::Attacker(AttackerStrategy::NoTag));
        let mut out = a.fill(SimTime::ZERO);
        assert_eq!(a.in_flight(), 5);
        out.extend(a.fill(SimTime::from_secs(1)));
        assert_eq!(a.in_flight(), 5, "fill is idempotent at capacity");
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn zipf_prefers_popular_objects() {
        let mut a = client(ConsumerKind::Attacker(AttackerStrategy::NoTag));
        let mut first_obj = 0u32;
        for _ in 0..400 {
            let (p, o) = a.locate(a.zipf.sample(&mut a.rng.clone()));
            a.rng.next_u64(); // decorrelate
            if p == 0 && o == 0 {
                first_obj += 1;
            }
        }
        // Rank-0 of 10 objects under Zipf(0.7) has pmf ~0.23; uniform
        // would be 0.1.
        assert!(
            first_obj > 55,
            "only {first_obj}/400 hits on the most popular object"
        );
    }
}
