//! Scenario configuration: everything §8.A fixes about a simulation run.

use tactic_bloom::CachePolicy;
use tactic_sim::cost::CostModel;
use tactic_sim::time::SimDuration;
use tactic_topology::paper::PaperTopology;
use tactic_topology::roles::TopologySpec;

use crate::access::AccessLevel;
use crate::consumer::AttackerStrategy;

// Mobility, the fault model, and the adversarial layer live in the
// shared transport plane now; re-exported here so scenario construction
// keeps reading naturally.
pub use tactic_net::MobilityConfig;
pub use tactic_net::{AttackClass, AttackPlan, DefenseConfig, RateLimit};
pub use tactic_net::{FaultEvent, FaultKind, FaultPlan, LossModel, RetransmitPolicy};

/// How tag issuance and expiry churn are modelled — §5's expiry knob
/// ("a shorter expiry time mandates clients to request fresh tags more
/// frequently") made a first-class workload axis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TagLifetimePolicy {
    /// The paper's reactive model: tags live for
    /// [`Scenario::tag_validity`] and a client re-registers only once its
    /// tag is within the refresh margin of expiry. Draws nothing from the
    /// lifecycle RNG stream, so runs are byte-identical to builds that
    /// predate the lifecycle layer.
    #[default]
    Fixed,
    /// Issuance/renewal churn: `validity` overrides
    /// [`Scenario::tag_validity`], and each client proactively
    /// re-registers `lead` before expiry plus a per-tag uniform jitter in
    /// `[0, jitter)` drawn from the dedicated lifecycle RNG stream (the
    /// jitter desynchronises fleet-wide renewal waves). `validity` must
    /// comfortably exceed `lead + jitter` or clients spend their whole
    /// life re-registering.
    Churn {
        /// Tag validity period (`T_e - T_issue`).
        validity: SimDuration,
        /// How long before expiry the renewal fires.
        lead: SimDuration,
        /// Per-tag uniform jitter bound added to the lead.
        jitter: SimDuration,
    },
}

impl TagLifetimePolicy {
    /// True when proactive renewal churn is active.
    pub fn is_churn(&self) -> bool {
        matches!(self, TagLifetimePolicy::Churn { .. })
    }

    /// A compact token for run labels and manifests (`fixed` or
    /// `churn<validity>-<lead>-<jitter>` in milliseconds).
    pub fn summary(&self) -> String {
        match self {
            TagLifetimePolicy::Fixed => "fixed".to_string(),
            TagLifetimePolicy::Churn {
                validity,
                lead,
                jitter,
            } => format!(
                "churn{}-{}-{}",
                validity.as_nanos() / 1_000_000,
                lead.as_nanos() / 1_000_000,
                jitter.as_nanos() / 1_000_000
            ),
        }
    }
}

/// Which network to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyChoice {
    /// One of the paper's Table III topologies.
    Paper(PaperTopology),
    /// An arbitrary spec (tests, examples, sweeps).
    Custom(TopologySpec),
}

impl TopologyChoice {
    /// The entity counts.
    pub fn spec(&self) -> TopologySpec {
        match self {
            TopologyChoice::Paper(p) => p.spec(),
            TopologyChoice::Custom(s) => *s,
        }
    }
}

/// A complete experiment configuration.
///
/// Defaults ([`Scenario::paper`]) follow §8.A: Zipf(0.7) popularity,
/// window 5, 1 s request expiry, 10 s tag validity, 10 providers × 50
/// objects × 50 chunks, BF of 500 tags / 5 hashes / max FPP 1e-4, and the
/// benchmarked computation-cost injection.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The network.
    pub topology: TopologyChoice,
    /// Simulated duration (paper: 2000 s; reduced-scale runs use less).
    pub duration: SimDuration,
    /// Bloom-filter design capacity in tags (sizes the bit array together
    /// with [`bf_design_fpp`](Self::bf_design_fpp)).
    pub bf_capacity: usize,
    /// Bloom-filter hash count.
    pub bf_hashes: u32,
    /// The FPP the bit array is *sized* for at design capacity.
    pub bf_design_fpp: f64,
    /// The saturation threshold that triggers a reset (Fig. 8 sweeps this
    /// independently of the array size).
    pub bf_max_fpp: f64,
    /// Tag validity period.
    pub tag_validity: SimDuration,
    /// Tag issuance/renewal model ([`TagLifetimePolicy::Fixed`] = the
    /// paper's reactive clients; churn adds proactive pre-expiry renewal
    /// driven by a dedicated RNG stream).
    pub lifetime: TagLifetimePolicy,
    /// Validation-cache policy at every router
    /// ([`CachePolicy::MonolithicReset`] = the paper's saturate-and-reset
    /// filter; generational policies rotate sub-filters instead).
    pub cache_policy: CachePolicy,
    /// Routers remember the ids of tags they have validated and count
    /// re-validations forced by cache churn (a reset/rotation evicting a
    /// still-valid registration). Costs one hash-set entry per distinct
    /// tag per router; off by default.
    pub track_revalidations: bool,
    /// Objects per provider.
    pub objects_per_provider: usize,
    /// Chunks per object.
    pub chunks_per_object: usize,
    /// Chunk payload bytes. The paper does not state its payload size; we
    /// default to 8 KiB, which reproduces the paper's observed per-client
    /// throughput regime (~tens of chunks/s) on 10 Mbps edge links.
    pub chunk_size: usize,
    /// Access levels cycled over each provider's objects.
    pub content_levels: Vec<AccessLevel>,
    /// The level granted to legitimate clients.
    pub client_level: AccessLevel,
    /// Zipf exponent for content popularity.
    pub zipf_alpha: f64,
    /// Outstanding-request window per consumer.
    pub window: usize,
    /// Request expiry at consumers.
    pub request_timeout: SimDuration,
    /// Clients treat tags within this margin of expiry as stale and
    /// refresh proactively (keeps in-flight requests from crossing the
    /// expiry; set to zero for the paper's bare client model).
    pub tag_refresh_margin: SimDuration,
    /// Content-store capacity per router, in packets.
    pub cs_capacity: usize,
    /// Enforce access-path authentication (paper's sim: off).
    pub access_path_enabled: bool,
    /// Honour the cooperation flag `F` (ablation switch).
    pub flag_f_enabled: bool,
    /// Content routers answer invalid tags with content + NACK (§5.B);
    /// ablation: off means plain drops.
    pub content_nack_enabled: bool,
    /// Edge routers record tag sightings for traitor tracing (§9's future
    /// work, implemented in `tactic::traitor`).
    pub record_sightings: bool,
    /// Client mobility (None = the paper's static evaluation).
    pub mobility: Option<MobilityConfig>,
    /// Attacker strategies, assigned round-robin.
    pub attacker_mix: Vec<AttackerStrategy>,
    /// Computation-cost injection model.
    pub cost_model: CostModel,
    /// Transport-level fault injection: packet loss and scheduled
    /// link/node failures ([`FaultPlan::none`] = the paper's ideal links).
    pub faults: FaultPlan,
    /// Consumer Interest retransmission with exponential backoff
    /// (`None` = the paper's no-retry clients).
    pub retransmit: Option<RetransmitPolicy>,
    /// Deterministic sim-time sampling period: every `sample_every` of
    /// simulated time the transport snapshots queue depth, PIT/CS sizes,
    /// Bloom-filter occupancy, and drop counters into one
    /// [`SampleRow`](tactic_telemetry::SampleRow). `None` (the default)
    /// disables sampling at zero cost.
    pub sample_every: Option<SimDuration>,
    /// Collect the wall-clock span profile (hot-path handler classes,
    /// per-shard epoch spans). Nondeterministic metadata only — the
    /// simulation itself is bit-identical either way.
    pub profile: bool,
    /// What the attacker fleet does ([`AttackPlan::none`] = the paper's
    /// historical attacker mix; an active plan repurposes every attacker
    /// into the named adversarial class).
    pub attack: AttackPlan,
    /// The edge's defensive posture ([`DefenseConfig::none`] = all
    /// defenses off, provably zero-cost).
    pub defense: DefenseConfig,
}

impl Scenario {
    /// The paper-replica configuration on the given topology.
    pub fn paper(topology: PaperTopology) -> Self {
        Scenario {
            topology: TopologyChoice::Paper(topology),
            duration: SimDuration::from_secs(2_000),
            bf_capacity: 500,
            bf_hashes: 5,
            bf_design_fpp: 1e-4,
            bf_max_fpp: 1e-4,
            tag_validity: SimDuration::from_secs(10),
            lifetime: TagLifetimePolicy::Fixed,
            cache_policy: CachePolicy::MonolithicReset,
            track_revalidations: false,
            objects_per_provider: 50,
            chunks_per_object: 50,
            chunk_size: 8 * 1024,
            content_levels: vec![AccessLevel::Level(1)],
            client_level: AccessLevel::Level(1),
            zipf_alpha: 0.7,
            window: 5,
            request_timeout: SimDuration::from_secs(1),
            tag_refresh_margin: SimDuration::from_millis(250),
            cs_capacity: 300,
            access_path_enabled: false,
            flag_f_enabled: true,
            content_nack_enabled: true,
            record_sightings: false,
            mobility: None,
            attacker_mix: AttackerStrategy::PAPER_MIX.to_vec(),
            cost_model: CostModel::paper(),
            faults: FaultPlan::none(),
            retransmit: None,
            sample_every: None,
            profile: false,
            attack: AttackPlan::none(),
            defense: DefenseConfig::none(),
        }
    }

    /// A small, fast configuration for tests and examples: a custom
    /// topology and a short horizon.
    pub fn small() -> Self {
        let mut s = Scenario::paper(PaperTopology::Topo1);
        s.topology = TopologyChoice::Custom(TopologySpec {
            core_routers: 12,
            edge_routers: 4,
            providers: 2,
            clients: 6,
            attackers: 3,
        });
        s.duration = SimDuration::from_secs(30);
        s.objects_per_provider = 10;
        s.chunks_per_object = 10;
        s
    }

    /// Whether any handover machinery is active: client mobility, or an
    /// attacker-churn plan (which rides the same Move events with its
    /// own dwell). This — not `mobility.is_some()` alone — is what the
    /// sharded lookahead must conservatively account for, because
    /// handovers re-point radio links across shard boundaries at will.
    pub fn any_mobility(&self) -> bool {
        self.mobility.is_some()
            || (self.attack.active() && self.attack.class == Some(AttackClass::Churn))
    }

    /// The tag validity the providers actually issue under: the churn
    /// policy's `validity` when active, [`tag_validity`](Self::tag_validity)
    /// otherwise.
    pub fn effective_tag_validity(&self) -> SimDuration {
        match self.lifetime {
            TagLifetimePolicy::Churn { validity, .. } => validity,
            TagLifetimePolicy::Fixed => self.tag_validity,
        }
    }

    /// The Bloom-filter parameters for this scenario: the bit array is
    /// sized for `bf_capacity` tags at `bf_design_fpp` under `bf_hashes`
    /// hash functions, while `bf_max_fpp` acts only as the reset
    /// threshold.
    pub fn bf_params(&self) -> tactic_bloom::BloomParams {
        let mut p = tactic_bloom::BloomParams::with_fixed_hashes(
            self.bf_capacity,
            self.bf_hashes,
            self.bf_design_fpp,
        );
        p.max_fpp = self.bf_max_fpp;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_8a() {
        let s = Scenario::paper(PaperTopology::Topo2);
        assert_eq!(s.duration, SimDuration::from_secs(2000));
        assert_eq!(s.bf_capacity, 500);
        assert_eq!(s.bf_hashes, 5);
        assert_eq!(s.bf_max_fpp, 1e-4);
        assert_eq!(s.tag_validity, SimDuration::from_secs(10));
        assert_eq!(s.objects_per_provider, 50);
        assert_eq!(s.chunks_per_object, 50);
        assert_eq!(s.zipf_alpha, 0.7);
        assert_eq!(s.window, 5);
        assert!(
            !s.access_path_enabled,
            "the paper's sim left AP to future work"
        );
        assert_eq!(s.topology.spec().providers, 10);
    }

    #[test]
    fn bf_params_derive_from_scenario() {
        let s = Scenario::paper(PaperTopology::Topo1);
        let p = s.bf_params();
        assert_eq!(p.hashes, 5);
        assert_eq!(p.capacity, 500);
        assert_eq!(p.max_fpp, 1e-4);
    }

    #[test]
    fn lifecycle_defaults_are_the_paper_model() {
        let s = Scenario::paper(PaperTopology::Topo1);
        assert_eq!(s.lifetime, TagLifetimePolicy::Fixed);
        assert_eq!(s.cache_policy, CachePolicy::MonolithicReset);
        assert!(!s.track_revalidations);
        assert_eq!(s.effective_tag_validity(), s.tag_validity);
        assert_eq!(s.lifetime.summary(), "fixed");
        let churn = TagLifetimePolicy::Churn {
            validity: SimDuration::from_secs(2),
            lead: SimDuration::from_millis(500),
            jitter: SimDuration::from_millis(250),
        };
        assert!(churn.is_churn());
        assert_eq!(churn.summary(), "churn2000-500-250");
        let mut s2 = s;
        s2.lifetime = churn;
        assert_eq!(s2.effective_tag_validity(), SimDuration::from_secs(2));
    }

    #[test]
    fn small_scenario_is_small() {
        let s = Scenario::small();
        let spec = s.topology.spec();
        assert!(spec.routers() < 20);
        assert!(s.duration < SimDuration::from_secs(60));
    }
}
