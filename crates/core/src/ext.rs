//! TACTIC's packet extension fields.
//!
//! TACTIC annotates standard NDN packets rather than defining new ones:
//! Interests carry the signed tag, the cooperation flag `F`, and the
//! accumulated access path; Data packets carry the (signed) access level
//! and provider key locator, plus the per-delivery echoes — the tag being
//! answered, the flag `F` the content router chose, and the NACK marker
//! for invalid tags ("the content router returns the content-tag-NACK
//! tuple to inform downstream routers on the invalidity of `T_u`", §5.B).
//!
//! Extension type codes live in the application range (`0x8000..`) of
//! `tactic_ndn::packet`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use tactic_ndn::packet::{Data, Interest, NackReason};

use crate::access::AccessLevel;
use crate::tag::SignedTag;

/// Capacity bound of the per-thread tag intern cache; reached, the cache
/// is cleared wholesale (deterministic, no eviction order).
const TAG_INTERN_CAP: usize = 4096;

thread_local! {
    /// Decoded-tag intern cache: serialized bytes → shared decoded tag
    /// (`None` caches decode *failures*, so a replayed malformed tag is
    /// rejected without re-parsing). The same client tag rides hundreds of
    /// Interests through the same router threads; decoding each sighting
    /// once turns the per-hop tag cost into a map probe. Purely a
    /// memoization of the deterministic `SignedTag::decode` — sharing,
    /// capacity resets, and thread placement cannot affect behaviour.
    static TAG_INTERN: RefCell<HashMap<Vec<u8>, Option<Arc<SignedTag>>>> =
        RefCell::new(HashMap::new());
}

fn decode_tag_interned(bytes: &[u8]) -> Option<Arc<SignedTag>> {
    TAG_INTERN.with(|cache| {
        let mut map = cache.borrow_mut();
        if let Some(hit) = map.get(bytes) {
            return hit.clone();
        }
        let decoded = SignedTag::decode(bytes).ok().map(Arc::new);
        if map.len() >= TAG_INTERN_CAP {
            map.clear();
        }
        map.insert(bytes.to_vec(), decoded.clone());
        decoded
    })
}

/// Interest/Data extension: the serialized [`SignedTag`].
pub const EXT_TAG: u16 = 0x8001;
/// Interest/Data extension: the flag `F` (f64 bits, little-endian).
pub const EXT_FLAG_F: u16 = 0x8002;
/// Data extension: NACK marker (one reason byte) attached to content.
pub const EXT_NACK: u16 = 0x8003;
/// Interest extension: access path accumulated hop-by-hop (u64 LE).
pub const EXT_ACCESS_PATH: u16 = 0x8004;
/// Interest extension: registration request body.
pub const EXT_REGISTRATION: u16 = 0x8005;
/// Data extension: a freshly issued tag (registration response).
pub const EXT_NEW_TAG: u16 = 0x8006;
/// Data extension: the content's access level `AL_D` (one byte, signed).
pub const EXT_ACCESS_LEVEL: u16 = 0x8010;
/// Data extension: the provider's key locator `Pub_p^D` (name bytes, signed).
pub const EXT_KEY_LOCATOR: u16 = 0x8011;

/// Read the TACTIC tag on an Interest (interned: repeated sightings of
/// the same serialized tag share one decoded instance per thread).
pub fn interest_tag(i: &Interest) -> Option<Arc<SignedTag>> {
    i.extension(EXT_TAG).and_then(decode_tag_interned)
}

/// Attaches a tag to an Interest (shares the tag's cached encoding).
pub fn set_interest_tag(i: &mut Interest, tag: &SignedTag) {
    i.set_extension(EXT_TAG, tag.encoded());
}

/// The flag `F` on an Interest (absent ⇒ treat as 0).
///
/// The value comes off the wire, so it is sanitized: anything non-finite
/// or outside `[0, 1)` reads as 0, which forces full validation.
pub fn interest_flag_f(i: &Interest) -> f64 {
    i.extension(EXT_FLAG_F).map_or(0.0, decode_f64)
}

/// Sets the flag `F` on an Interest.
pub fn set_interest_flag_f(i: &mut Interest, f: f64) {
    i.set_extension(EXT_FLAG_F, f.to_bits().to_le_bytes());
}

/// The access path accumulated in the request so far.
pub fn interest_access_path(i: &Interest) -> crate::access_path::AccessPath {
    let v = i
        .extension(EXT_ACCESS_PATH)
        .and_then(|b| b.try_into().ok().map(u64::from_le_bytes))
        .unwrap_or(0);
    crate::access_path::AccessPath::from_u64(v)
}

/// Stores the accumulated access path (each entity between the user and
/// the edge router calls this with its extended value).
pub fn set_interest_access_path(i: &mut Interest, ap: crate::access_path::AccessPath) {
    i.set_extension(EXT_ACCESS_PATH, ap.as_u64().to_le_bytes());
}

/// True if the Interest is a registration (tag) request.
pub fn is_registration(i: &Interest) -> bool {
    i.extension(EXT_REGISTRATION).is_some()
}

/// The tag echoed on a Data packet (interned like [`interest_tag`]).
pub fn data_tag(d: &Data) -> Option<Arc<SignedTag>> {
    d.extension(EXT_TAG).and_then(decode_tag_interned)
}

/// Echoes a tag on a Data packet (shares the tag's cached encoding).
pub fn set_data_tag(d: &mut Data, tag: &SignedTag) {
    d.set_extension(EXT_TAG, tag.encoded());
}

/// The flag `F` on a Data packet (absent ⇒ 0; sanitized like
/// [`interest_flag_f`]).
pub fn data_flag_f(d: &Data) -> f64 {
    d.extension(EXT_FLAG_F).map_or(0.0, decode_f64)
}

/// Sets the flag `F` on a Data packet.
pub fn set_data_flag_f(d: &mut Data, f: f64) {
    d.set_extension(EXT_FLAG_F, f.to_bits().to_le_bytes());
}

/// The NACK marker attached to content, if any.
pub fn data_nack(d: &Data) -> Option<NackReason> {
    d.extension(EXT_NACK).and_then(|b| match b.first() {
        Some(3) => Some(NackReason::InvalidTag),
        Some(4) => Some(NackReason::AccessPathMismatch),
        Some(1) => Some(NackReason::NoRoute),
        Some(2) => Some(NackReason::Duplicate),
        _ => None,
    })
}

/// Attaches a NACK marker to content.
pub fn set_data_nack(d: &mut Data, reason: NackReason) {
    let code = match reason {
        NackReason::NoRoute => 1u8,
        NackReason::Duplicate => 2,
        NackReason::InvalidTag => 3,
        NackReason::AccessPathMismatch => 4,
    };
    d.set_extension(EXT_NACK, vec![code]);
}

/// A freshly issued tag on a registration response.
pub fn data_new_tag(d: &Data) -> Option<SignedTag> {
    d.extension(EXT_NEW_TAG)
        .and_then(|b| SignedTag::decode(b).ok())
}

/// Attaches a freshly issued tag to a registration response.
pub fn set_data_new_tag(d: &mut Data, tag: &SignedTag) {
    d.set_extension(EXT_NEW_TAG, tag.encode());
}

/// The content's access level `AL_D` (absent ⇒ `Public`).
pub fn data_access_level(d: &Data) -> AccessLevel {
    d.extension(EXT_ACCESS_LEVEL)
        .and_then(|b| b.first().copied())
        .map_or(AccessLevel::Public, AccessLevel::from_byte)
}

/// Sets the content's access level.
pub fn set_data_access_level(d: &mut Data, al: AccessLevel) {
    d.set_extension(EXT_ACCESS_LEVEL, vec![al.to_byte()]);
}

/// The provider key locator embedded in the content (`Pub_p^D`).
pub fn data_key_locator(d: &Data) -> Option<tactic_ndn::name::Name> {
    let bytes = d.extension(EXT_KEY_LOCATOR)?;
    std::str::from_utf8(bytes).ok()?.parse().ok()
}

/// Sets the provider key locator on content.
pub fn set_data_key_locator(d: &mut Data, locator: &tactic_ndn::name::Name) {
    d.set_extension(EXT_KEY_LOCATOR, locator.to_string().into_bytes());
}

/// Strips the per-delivery annotations (tag echo, flag, NACK) so a packet
/// can be cached canonically; the signed content fields (access level, key
/// locator) remain.
pub fn strip_delivery_annotations(d: &mut Data) {
    d.remove_extension(EXT_TAG);
    d.remove_extension(EXT_FLAG_F);
    d.remove_extension(EXT_NACK);
    d.remove_extension(EXT_NEW_TAG);
}

/// Clamps a wire-supplied cooperation flag to its valid domain.
///
/// `F` is a false-positive probability, so the only meaningful values are
/// finite and in `[0, 1)`. Anything else (`NaN`, `±inf`, negatives, or a
/// forged `F ≥ 1.0` that would let `rng.chance(F)` — or its complement —
/// skip validation deterministically) collapses to 0: full validation.
pub fn sanitize_flag_f(f: f64) -> f64 {
    if f.is_finite() && (0.0..1.0).contains(&f) {
        f
    } else {
        0.0
    }
}

fn decode_f64(b: &[u8]) -> f64 {
    sanitize_flag_f(
        b.try_into()
            .map(|arr| f64::from_bits(u64::from_le_bytes(arr)))
            .unwrap_or(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_path::AccessPath;
    use crate::tag::Tag;
    use tactic_crypto::schnorr::KeyPair;
    use tactic_ndn::packet::Payload;
    use tactic_sim::time::SimTime;

    fn tag() -> SignedTag {
        Tag {
            provider_key_locator: "/p/KEY/1".parse().unwrap(),
            access_level: AccessLevel::Level(1),
            client_key_locator: "/p/users/u/KEY".parse().unwrap(),
            access_path: AccessPath::EMPTY,
            expiry: SimTime::from_secs(10),
        }
        .sign(&KeyPair::derive(b"/p", 0))
    }

    #[test]
    fn interest_tag_roundtrip() {
        let mut i = Interest::new("/p/o/0".parse().unwrap(), 1);
        assert!(interest_tag(&i).is_none());
        let t = tag();
        set_interest_tag(&mut i, &t);
        assert_eq!(interest_tag(&i).as_deref(), Some(&t));
    }

    #[test]
    fn flag_f_roundtrip_and_default() {
        let mut i = Interest::new("/p/o/0".parse().unwrap(), 1);
        assert_eq!(interest_flag_f(&i), 0.0);
        set_interest_flag_f(&mut i, 1e-4);
        assert_eq!(interest_flag_f(&i), 1e-4);
        let mut d = Data::new("/p/o/0".parse().unwrap(), Payload::Synthetic(1));
        assert_eq!(data_flag_f(&d), 0.0);
        set_data_flag_f(&mut d, 0.25);
        assert_eq!(data_flag_f(&d), 0.25);
    }

    #[test]
    fn access_path_roundtrip() {
        let mut i = Interest::new("/p/o/0".parse().unwrap(), 1);
        assert_eq!(interest_access_path(&i), AccessPath::EMPTY);
        let ap = AccessPath::of([3, 4]);
        set_interest_access_path(&mut i, ap);
        assert_eq!(interest_access_path(&i), ap);
    }

    #[test]
    fn data_annotations_roundtrip() {
        let mut d = Data::new("/p/o/0".parse().unwrap(), Payload::Synthetic(1));
        let t = tag();
        set_data_tag(&mut d, &t);
        set_data_nack(&mut d, NackReason::InvalidTag);
        set_data_access_level(&mut d, AccessLevel::Level(3));
        set_data_key_locator(&mut d, &"/p/KEY/1".parse().unwrap());
        assert_eq!(data_tag(&d).as_deref(), Some(&t));
        assert_eq!(data_nack(&d), Some(NackReason::InvalidTag));
        assert_eq!(data_access_level(&d), AccessLevel::Level(3));
        assert_eq!(data_key_locator(&d), Some("/p/KEY/1".parse().unwrap()));
    }

    #[test]
    fn strip_keeps_signed_fields() {
        let mut d = Data::new("/p/o/0".parse().unwrap(), Payload::Synthetic(1));
        set_data_tag(&mut d, &tag());
        set_data_flag_f(&mut d, 0.5);
        set_data_nack(&mut d, NackReason::InvalidTag);
        set_data_access_level(&mut d, AccessLevel::Level(2));
        set_data_key_locator(&mut d, &"/p/KEY/1".parse().unwrap());
        strip_delivery_annotations(&mut d);
        assert!(data_tag(&d).is_none());
        assert_eq!(data_flag_f(&d), 0.0);
        assert!(data_nack(&d).is_none());
        assert_eq!(data_access_level(&d), AccessLevel::Level(2));
        assert!(data_key_locator(&d).is_some());
    }

    #[test]
    fn missing_access_level_means_public() {
        let d = Data::new("/p/o/0".parse().unwrap(), Payload::Synthetic(1));
        assert_eq!(data_access_level(&d), AccessLevel::Public);
    }

    #[test]
    fn registration_marker() {
        let mut i = Interest::new("/p/register/u/1".parse().unwrap(), 1);
        assert!(!is_registration(&i));
        i.set_extension(EXT_REGISTRATION, vec![1]);
        assert!(is_registration(&i));
    }

    #[test]
    fn garbage_tag_bytes_read_as_none() {
        let mut i = Interest::new("/p/o/0".parse().unwrap(), 1);
        i.set_extension(EXT_TAG, vec![1, 2, 3]);
        assert!(interest_tag(&i).is_none());
    }
}
