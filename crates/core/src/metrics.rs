//! Run-level measurement aggregation — the quantities behind every figure
//! and table in the paper's §8.

use tactic_sim::stats::{mean_u64, rate_per_second, ratio, TimeSeries};
use tactic_sim::time::{SimDuration, SimTime};
use tactic_telemetry::{SampleRow, SpanProfiler};

use crate::consumer::{ConsumerKind, ConsumerStats};
use crate::provider::ProviderCounters;
use crate::router::OpCounters;

/// Requested/received chunk totals split by principal class (Table IV).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Chunks requested by legitimate clients.
    pub client_requested: u64,
    /// Chunks received by legitimate clients.
    pub client_received: u64,
    /// Chunks requested by attackers.
    pub attacker_requested: u64,
    /// Chunks received by attackers.
    pub attacker_received: u64,
}

impl DeliveryStats {
    /// Clients' successful delivery ratio.
    pub fn client_ratio(&self) -> f64 {
        ratio(self.client_received, self.client_requested)
    }

    /// Attackers' successful delivery ratio.
    pub fn attacker_ratio(&self) -> f64 {
        ratio(self.attacker_received, self.attacker_requested)
    }
}

/// Everything measured in one simulation run.
#[derive(Clone, Default)]
pub struct RunReport {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Events the engine processed.
    pub events: u64,
    /// Table IV's delivery totals.
    pub delivery: DeliveryStats,
    /// Clients' per-chunk retrieval latency over time (Fig. 5).
    pub latency: TimeSeries,
    /// Clients' tag-request instants (Fig. 6's `Q`).
    pub tag_requests: Vec<SimTime>,
    /// Clients' tag-receipt instants (Fig. 6's `R`).
    pub tags_received: Vec<SimTime>,
    /// Summed operation counters over edge routers (Fig. 7a).
    pub edge_ops: OpCounters,
    /// Summed operation counters over core routers (Fig. 7b).
    pub core_ops: OpCounters,
    /// Requests absorbed between BF resets, edge routers (Fig. 8a).
    pub edge_reset_requests: Vec<u64>,
    /// Requests absorbed between BF resets, core routers (Fig. 8b).
    pub core_reset_requests: Vec<u64>,
    /// Summed provider counters.
    pub providers: ProviderCounters,
    /// Per-consumer records for drill-down.
    pub consumers: Vec<(ConsumerKind, ConsumerStats)>,
    /// Edge-router tag sightings, in collection order (only populated when
    /// the scenario enables `record_sightings`). Sort by time before
    /// feeding a `crate::traitor::TraitorTracer`.
    pub sightings: Vec<crate::traitor::Sighting>,
    /// Handovers performed by mobile clients (mobility extension).
    pub moves: u64,
    /// High-water mark of the engine's pending-event queue (run manifest
    /// provenance; not a paper metric).
    pub peak_queue_depth: u64,
    /// Transport drops split by reason (resilience extension; all zero on
    /// the paper's ideal links).
    pub drops: tactic_net::DropTotals,
    /// High-water mark of PIT records summed over every router, sampled at
    /// the periodic purge sweeps (resilience extension).
    pub peak_pit_records: u64,
    /// Client Interests retransmitted after an expiry (resilience
    /// extension; zero under the paper's no-retry clients).
    pub client_retransmissions: u64,
    /// Client chunks abandoned after exhausting the retransmission budget.
    pub client_gave_up: u64,
    /// Client request expiries (stale-timeout-filtered).
    pub client_timeouts: u64,
    /// High-water mark of content-store entries summed over every router,
    /// sampled at the periodic purge sweeps (observability extension).
    pub peak_cs_entries: u64,
    /// Deterministic sim-time samples (observability extension; empty
    /// unless the scenario sets `sample_every`). Exported as
    /// `*.timeseries.jsonl`, byte-identical across thread/shard counts.
    pub samples: Vec<SampleRow>,
    /// Wall-clock span profile (observability extension; `None` unless
    /// the scenario enables profiling). Nondeterministic — never golden.
    pub profile: Option<Box<SpanProfiler>>,
}

/// Manual `Debug`: every field except `peak_queue_depth` (a per-engine
/// quantity — a K-sharded run has K queues whose individual high-water
/// marks depend on the partition) and the observability extensions
/// (`peak_cs_entries`, `samples`, `profile` — `profile` is wall-clock
/// and inherently nondeterministic; the other two are deterministic but
/// adding them would invalidate the pinned golden snapshots, and the
/// timeseries has its own byte-identity regression). The formatted
/// report (golden snapshots, equivalence diffs) must stay byte-identical
/// across shard counts and sampler settings. All fields remain readable
/// for manifests and exporters.
impl std::fmt::Debug for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunReport")
            .field("duration", &self.duration)
            .field("events", &self.events)
            .field("delivery", &self.delivery)
            .field("latency", &self.latency)
            .field("tag_requests", &self.tag_requests)
            .field("tags_received", &self.tags_received)
            .field("edge_ops", &self.edge_ops)
            .field("core_ops", &self.core_ops)
            .field("edge_reset_requests", &self.edge_reset_requests)
            .field("core_reset_requests", &self.core_reset_requests)
            .field("providers", &self.providers)
            .field("consumers", &self.consumers)
            .field("sightings", &self.sightings)
            .field("moves", &self.moves)
            .field("drops", &self.drops)
            .field("peak_pit_records", &self.peak_pit_records)
            .field("client_retransmissions", &self.client_retransmissions)
            .field("client_gave_up", &self.client_gave_up)
            .field("client_timeouts", &self.client_timeouts)
            .finish()
    }
}

impl RunReport {
    /// Folds one consumer's stats into the run totals.
    pub fn absorb_consumer(&mut self, kind: ConsumerKind, stats: ConsumerStats) {
        if kind.is_client() {
            self.delivery.client_requested += stats.requested_chunks;
            self.delivery.client_received += stats.received_chunks;
            self.client_retransmissions += stats.retransmissions;
            self.client_gave_up += stats.gave_up;
            self.client_timeouts += stats.timeouts;
            for &(at, lat) in &stats.latencies {
                self.latency.record(at, lat);
            }
            self.tag_requests.extend_from_slice(&stats.tag_requests);
            self.tags_received.extend_from_slice(&stats.tags_received);
        } else {
            self.delivery.attacker_requested += stats.requested_chunks;
            self.delivery.attacker_received += stats.received_chunks;
        }
        self.consumers.push((kind, stats));
    }

    /// Mean client retrieval latency over the whole run (seconds).
    pub fn mean_latency(&self) -> f64 {
        self.latency.overall_mean()
    }

    /// Per-second tag-request rate averaged over the run (Fig. 6's `Q`).
    pub fn tag_request_rate(&self) -> f64 {
        rate_per_second(self.tag_requests.len(), self.duration)
    }

    /// Per-second tag-receive rate averaged over the run (Fig. 6's `R`).
    pub fn tag_receive_rate(&self) -> f64 {
        rate_per_second(self.tags_received.len(), self.duration)
    }

    /// Mean requests absorbed per BF reset at edge routers (Fig. 8a).
    pub fn edge_requests_per_reset(&self) -> f64 {
        mean_u64(&self.edge_reset_requests)
    }

    /// Mean requests absorbed per BF reset at core routers (Fig. 8b).
    pub fn core_requests_per_reset(&self) -> f64 {
        mean_u64(&self.core_reset_requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let d = DeliveryStats {
            client_requested: 1000,
            client_received: 999,
            attacker_requested: 200,
            attacker_received: 1,
        };
        assert!((d.client_ratio() - 0.999).abs() < 1e-12);
        assert!((d.attacker_ratio() - 0.005).abs() < 1e-12);
        assert_eq!(DeliveryStats::default().client_ratio(), 0.0);
    }

    #[test]
    fn absorb_consumer_splits_by_kind() {
        let mut r = RunReport {
            duration: SimDuration::from_secs(10),
            ..Default::default()
        };
        let cs = ConsumerStats {
            requested_chunks: 10,
            received_chunks: 9,
            latencies: vec![(SimTime::from_secs(1), 0.05)],
            tag_requests: vec![SimTime::from_secs(1)],
            ..Default::default()
        };
        r.absorb_consumer(ConsumerKind::Client, cs.clone());
        let att = ConsumerStats {
            requested_chunks: 5,
            ..Default::default()
        };
        r.absorb_consumer(
            ConsumerKind::Attacker(crate::consumer::AttackerStrategy::NoTag),
            att,
        );
        assert_eq!(r.delivery.client_requested, 10);
        assert_eq!(r.delivery.attacker_requested, 5);
        assert_eq!(r.latency.len(), 1);
        assert_eq!(r.tag_requests.len(), 1);
        assert!((r.tag_request_rate() - 0.1).abs() < 1e-12);
        assert_eq!(r.consumers.len(), 2);
    }

    #[test]
    fn reset_means() {
        let r = RunReport {
            edge_reset_requests: vec![10, 20, 30],
            ..Default::default()
        };
        assert_eq!(r.edge_requests_per_reset(), 20.0);
        assert_eq!(r.core_requests_per_reset(), 0.0);
    }
}
