//! Property tests for the consumer state machine: under *arbitrary*
//! interleavings of data arrivals, NACKs, and timeouts, the window
//! invariant and the accounting identities must hold.

use proptest::prelude::*;

use tactic::access::AccessLevel;
use tactic::access_path::AccessPath;
use tactic::consumer::{AttackerStrategy, CatalogEntry, Consumer, ConsumerConfig, ConsumerKind};
use tactic::ext;
use tactic::tag::Tag;
use tactic_crypto::schnorr::KeyPair;
use tactic_ndn::name::Name;
use tactic_ndn::packet::{Data, Interest, Nack, NackReason, Payload};
use tactic_sim::time::{SimDuration, SimTime};

#[derive(Debug, Clone)]
enum Step {
    /// Answer the i-th oldest outstanding request with Data.
    Answer(prop::sample::Index),
    /// NACK the i-th oldest outstanding request.
    Reject(prop::sample::Index),
    /// Fire the timeout of the i-th oldest outstanding request.
    Expire(prop::sample::Index),
    /// Advance time by millis and refill.
    Tick(u64),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<prop::sample::Index>().prop_map(Step::Answer),
        any::<prop::sample::Index>().prop_map(Step::Reject),
        any::<prop::sample::Index>().prop_map(Step::Expire),
        (1u64..2_000).prop_map(Step::Tick),
    ]
}

fn consumer(kind: ConsumerKind, window: usize) -> Consumer {
    Consumer::new(
        ConsumerConfig {
            principal: 7,
            kind,
            window,
            request_timeout: SimDuration::from_secs(1),
            zipf_alpha: 0.7,
            refresh_margin: SimDuration::ZERO,
            retransmit: None,
        },
        vec![CatalogEntry {
            prefix: "/prov0".parse().unwrap(),
            objects: 6,
            chunks: 4,
        }],
        tactic_sim::rng::Rng::seed_from_u64(1),
    )
}

fn reg_response(name: &Name) -> Data {
    let kp = KeyPair::derive(b"/prov0", 0);
    let prefix: Name = "/prov0".parse().unwrap();
    let tag = Tag {
        provider_key_locator: prefix.child("KEY").child("1"),
        access_level: AccessLevel::Level(2),
        client_key_locator: prefix.child("users").child("u7").child("KEY"),
        access_path: AccessPath::EMPTY,
        expiry: SimTime::from_secs(100_000),
    }
    .sign(&kp);
    let mut d = Data::new(name.clone(), Payload::Synthetic(64));
    ext::set_data_new_tag(&mut d, &tag);
    d
}

/// Tracks outstanding names with their send times so steps can target
/// real requests.
struct Harness {
    consumer: Consumer,
    outstanding: Vec<(Name, SimTime, bool)>, // (name, sent, is_registration)
    now: SimTime,
}

impl Harness {
    fn new(kind: ConsumerKind, window: usize) -> Self {
        let mut h = Harness {
            consumer: consumer(kind, window),
            outstanding: Vec::new(),
            now: SimTime::ZERO,
        };
        let sends = h.consumer.fill(h.now);
        h.track(sends);
        h
    }

    fn track(&mut self, sends: Vec<Interest>) {
        for i in sends {
            let is_reg = ext::is_registration(&i);
            self.outstanding.push((i.name().clone(), self.now, is_reg));
        }
    }

    fn apply(&mut self, step: &Step) {
        self.now += SimDuration::from_millis(1);
        match step {
            Step::Tick(ms) => {
                self.now += SimDuration::from_millis(*ms);
                let sends = self.consumer.fill(self.now);
                self.track(sends);
            }
            Step::Answer(idx) if !self.outstanding.is_empty() => {
                let (name, _, is_reg) = self.outstanding.remove(idx.index(self.outstanding.len()));
                let d = if is_reg {
                    reg_response(&name)
                } else {
                    Data::new(name, Payload::Synthetic(64))
                };
                let sends = self.consumer.on_data(&d, self.now);
                self.track(sends);
            }
            Step::Reject(idx) if !self.outstanding.is_empty() => {
                let (name, _, _) = self.outstanding.remove(idx.index(self.outstanding.len()));
                let nack = Nack::new(Interest::new(name, 0), NackReason::InvalidTag);
                let sends = self.consumer.on_nack(&nack, self.now);
                self.track(sends);
            }
            Step::Expire(idx) if !self.outstanding.is_empty() => {
                let (name, sent, _) = self.outstanding.remove(idx.index(self.outstanding.len()));
                let sends = self.consumer.on_timeout(&name, sent, self.now);
                self.track(sends);
            }
            _ => {}
        }
        // Our external tracking can drift from the consumer's (duplicate
        // names answered once); prune entries the consumer no longer holds.
        self.outstanding.retain(|_| true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The window invariant holds under any interleaving, for clients and
    /// attackers alike.
    #[test]
    fn window_never_exceeded(kind_sel in 0usize..3, window in 1usize..8, steps in proptest::collection::vec(arb_step(), 1..80)) {
        let kind = match kind_sel {
            0 => ConsumerKind::Client,
            1 => ConsumerKind::Attacker(AttackerStrategy::NoTag),
            _ => ConsumerKind::Attacker(AttackerStrategy::FakeTag),
        };
        let mut h = Harness::new(kind, window);
        prop_assert!(h.consumer.in_flight() <= window);
        for step in &steps {
            h.apply(step);
            prop_assert!(
                h.consumer.in_flight() <= window,
                "in_flight {} > window {window} after {step:?}",
                h.consumer.in_flight()
            );
        }
    }

    /// Accounting identity: received + nacks + timeouts never exceeds
    /// requests issued, and receipts produce matching latency records.
    #[test]
    fn accounting_identities(steps in proptest::collection::vec(arb_step(), 1..80)) {
        let mut h = Harness::new(ConsumerKind::Attacker(AttackerStrategy::NoTag), 5);
        for step in &steps {
            h.apply(step);
            let s = h.consumer.stats();
            prop_assert!(s.received_chunks + s.nacks + s.timeouts <= s.requested_chunks + s.tag_requests.len() as u64);
            prop_assert_eq!(s.latencies.len() as u64, s.received_chunks);
            // Latencies are bounded by the elapsed simulated time.
            for &(_, lat) in &s.latencies {
                prop_assert!(lat >= 0.0 && lat <= h.now.as_secs_f64());
            }
        }
    }

    /// A client never sends a content Interest without a tag, and never
    /// sends a second registration while one is pending.
    #[test]
    fn client_discipline(steps in proptest::collection::vec(arb_step(), 1..60)) {
        let mut h = Harness::new(ConsumerKind::Client, 5);
        for step in &steps {
            h.apply(step);
        }
        // Replay the outstanding set: every non-registration Interest a
        // client has in flight must carry a tag — verified by refilling
        // and inspecting fresh sends.
        let sends = h.consumer.fill(h.now);
        let regs = sends.iter().filter(|i| ext::is_registration(i)).count();
        prop_assert!(regs <= 1, "at most one registration in flight");
        for i in &sends {
            if !ext::is_registration(i) {
                prop_assert!(ext::interest_tag(i).is_some(), "client sent untagged content Interest");
            }
        }
    }

    /// Stale timeouts (wrong send time) are always no-ops.
    #[test]
    fn stale_timeouts_are_noops(ms_offset in 1u64..10_000) {
        let mut h = Harness::new(ConsumerKind::Attacker(AttackerStrategy::NoTag), 3);
        let (name, sent, _) = h.outstanding[0].clone();
        let wrong_sent = sent + SimDuration::from_millis(ms_offset);
        let before = h.consumer.stats().timeouts;
        let sends = h.consumer.on_timeout(&name, wrong_sent, h.now + SimDuration::from_secs(5));
        prop_assert!(sends.is_empty());
        prop_assert_eq!(h.consumer.stats().timeouts, before);
    }
}
