//! Adversarial property tests on the router: for *arbitrary* hostile
//! inputs, protected content must never flow to a client-side face
//! without a genuinely valid tag.

use proptest::prelude::*;

use tactic::access::AccessLevel;
use tactic::access_path::AccessPath;
use tactic::ext;
use tactic::router::{RouterConfig, RouterRole, TacticRouter};
use tactic::tag::{SignedTag, Tag};
use tactic_crypto::cert::{CertStore, Certificate};
use tactic_crypto::schnorr::{KeyPair, Signature};
use tactic_ndn::face::FaceId;
use tactic_ndn::packet::{Data, Interest, Packet, Payload};
use tactic_sim::cost::CostModel;
use tactic_sim::rng::Rng;
use tactic_sim::time::SimTime;

const UP: FaceId = FaceId::new(0);
const CLIENT: FaceId = FaceId::new(1);

fn provider() -> KeyPair {
    KeyPair::derive(b"/prov", 0)
}

fn edge_router_with_cache(cache_level: AccessLevel) -> TacticRouter {
    let anchor = KeyPair::derive(b"anchor", 0);
    let mut certs = CertStore::new();
    certs.add_anchor(anchor.public());
    certs
        .register(Certificate::issue("/prov", provider().public(), &anchor))
        .unwrap();
    let mut config = RouterConfig::paper(RouterRole::Edge);
    config.access_path_enabled = true;
    let mut r = TacticRouter::new(config, certs);
    r.mark_downstream(CLIENT);
    r.add_route("/prov".parse().unwrap(), UP, 1);
    // Pre-cache protected content so every hostile Interest faces the full
    // Protocol 3 decision.
    let mut d = Data::new("/prov/obj0/c0".parse().unwrap(), Payload::Synthetic(1024));
    ext::set_data_access_level(&mut d, cache_level);
    ext::set_data_key_locator(&mut d, &"/prov/KEY/1".parse().unwrap());
    let mut rng = Rng::seed_from_u64(0);
    let cost = CostModel::free();
    // Sneak it into the CS via the data path (PIT entry first).
    let mut i = Interest::new("/prov/obj0/c0".parse().unwrap(), u64::MAX);
    ext::set_interest_tag(&mut i, &genuine_tag(AccessLevel::Level(5), 1_000));
    r.handle_interest(i, UP, SimTime::ZERO, &mut rng, &cost);
    let mut echo = d.clone();
    ext::set_data_tag(&mut echo, &genuine_tag(AccessLevel::Level(5), 1_000));
    r.handle_data(echo, UP, SimTime::ZERO, &mut rng, &cost);
    r
}

fn genuine_tag(level: AccessLevel, expiry_secs: u64) -> SignedTag {
    Tag {
        provider_key_locator: "/prov/KEY/1".parse().unwrap(),
        access_level: level,
        client_key_locator: "/prov/users/honest/KEY".parse().unwrap(),
        access_path: AccessPath::EMPTY,
        expiry: SimTime::from_secs(expiry_secs),
    }
    .sign(&provider())
}

/// A hostile tag: arbitrary fields, arbitrary (usually bogus) signature.
fn arb_hostile_tag() -> impl Strategy<Value = SignedTag> {
    (
        any::<u8>(),         // access level byte
        any::<u64>(),        // access path
        0u64..2_000,         // expiry seconds
        any::<u64>(),        // forged signature seed
        proptest::bool::ANY, // correct provider locator or not
    )
        .prop_map(|(al, ap, exp, sig_seed, right_provider)| {
            let locator = if right_provider {
                "/prov/KEY/1"
            } else {
                "/mallory/KEY/1"
            };
            SignedTag::new(
                Tag {
                    provider_key_locator: locator.parse().unwrap(),
                    access_level: AccessLevel::from_byte(al),
                    client_key_locator: "/prov/users/evil/KEY".parse().unwrap(),
                    access_path: AccessPath::from_u64(ap),
                    expiry: SimTime::from_secs(exp),
                },
                Signature::forged(sig_seed),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No forged tag — whatever its fields claim — ever pulls protected
    /// cached content out of a client-side face.
    #[test]
    fn forged_tags_never_receive_content(tag in arb_hostile_tag(), now_secs in 0u64..1_000, seed in any::<u64>()) {
        let mut r = edge_router_with_cache(AccessLevel::Level(1));
        let mut rng = Rng::seed_from_u64(seed);
        let cost = CostModel::free();
        let mut i = Interest::new("/prov/obj0/c0".parse().unwrap(), 7);
        ext::set_interest_tag(&mut i, &tag);
        ext::set_interest_access_path(&mut i, tag.tag.access_path); // even a matching path
        let out = r.handle_interest(i, CLIENT, SimTime::from_secs(now_secs), &mut rng, &cost);
        for (face, pkt) in &out.sends {
            if *face == CLIENT {
                prop_assert!(
                    !matches!(pkt, Packet::Data(_)),
                    "forged tag pulled content to the client face"
                );
            }
        }
    }

    /// Interests without any tag never pull protected cached content.
    #[test]
    fn untagged_interests_never_receive_protected_content(nonce in any::<u64>(), now_secs in 0u64..1_000) {
        let mut r = edge_router_with_cache(AccessLevel::Level(1));
        let mut rng = Rng::seed_from_u64(1);
        let cost = CostModel::free();
        let i = Interest::new("/prov/obj0/c0".parse().unwrap(), nonce);
        let out = r.handle_interest(i, CLIENT, SimTime::from_secs(now_secs), &mut rng, &cost);
        for (face, pkt) in &out.sends {
            prop_assert!(!(*face == CLIENT && matches!(pkt, Packet::Data(_))));
        }
    }

    /// A GENUINE tag is honoured exactly when it should be: unexpired,
    /// matching path, sufficient level.
    #[test]
    fn genuine_tags_follow_the_rules(level_byte in 0u8..6, expiry in 1u64..200, now in 0u64..200, path_seed in any::<u64>()) {
        let level = AccessLevel::from_byte(level_byte);
        let tag = Tag {
            provider_key_locator: "/prov/KEY/1".parse().unwrap(),
            access_level: level,
            client_key_locator: "/prov/users/honest/KEY".parse().unwrap(),
            access_path: AccessPath::from_u64(path_seed),
            expiry: SimTime::from_secs(expiry),
        }
        .sign(&provider());
        let mut r = edge_router_with_cache(AccessLevel::Level(1));
        let mut rng = Rng::seed_from_u64(2);
        let cost = CostModel::free();
        let mut i = Interest::new("/prov/obj0/c0".parse().unwrap(), 9);
        ext::set_interest_tag(&mut i, &tag);
        ext::set_interest_access_path(&mut i, tag.tag.access_path);
        let out = r.handle_interest(i, CLIENT, SimTime::from_secs(now), &mut rng, &cost);
        let served = out
            .sends
            .iter()
            .any(|(f, p)| *f == CLIENT && matches!(p, Packet::Data(d) if ext::data_nack(d).is_none()));
        let should_serve = expiry > now && level.satisfies(AccessLevel::Level(1));
        prop_assert_eq!(served, should_serve, "expiry {} now {} level {}", expiry, now, level);
    }

    /// Data carrying a NACK marker never reaches a client-side face.
    #[test]
    fn nacked_content_never_reaches_clients(sig_seed in any::<u64>(), f_flag in 0.0f64..1.0) {
        let mut r = edge_router_with_cache(AccessLevel::Level(1));
        let mut rng = Rng::seed_from_u64(3);
        let cost = CostModel::free();
        // A pending hostile request...
        let mut hostile = genuine_tag(AccessLevel::Level(3), 1_000);
        hostile.signature = Signature::forged(sig_seed);
        let mut i = Interest::new("/prov/obj1/c0".parse().unwrap(), 11);
        ext::set_interest_tag(&mut i, &hostile);
        ext::set_interest_access_path(&mut i, hostile.tag.access_path);
        r.handle_interest(i, CLIENT, SimTime::ZERO, &mut rng, &cost);
        // ...answered upstream with content + NACK.
        let mut d = Data::new("/prov/obj1/c0".parse().unwrap(), Payload::Synthetic(512));
        ext::set_data_access_level(&mut d, AccessLevel::Level(1));
        ext::set_data_key_locator(&mut d, &"/prov/KEY/1".parse().unwrap());
        ext::set_data_tag(&mut d, &hostile);
        ext::set_data_flag_f(&mut d, f_flag);
        ext::set_data_nack(&mut d, tactic_ndn::packet::NackReason::InvalidTag);
        let out = r.handle_data(d, UP, SimTime::ZERO, &mut rng, &cost);
        for (face, pkt) in &out.sends {
            if *face == CLIENT {
                if let Packet::Data(dd) = pkt {
                    prop_assert!(ext::data_nack(dd).is_none(), "NACKed content leaked to client");
                }
            }
        }
    }
}
