//! Property-based tests for TACTIC's data model and protocol invariants.

use proptest::prelude::*;

use tactic::access::AccessLevel;
use tactic::access_path::AccessPath;
use tactic::ext;
use tactic::precheck::{content_precheck, edge_precheck};
use tactic::tag::{SignedTag, Tag};
use tactic_crypto::schnorr::KeyPair;
use tactic_ndn::name::{Component, Name};
use tactic_ndn::packet::{Data, Interest, Payload};
use tactic_sim::time::SimTime;

fn arb_level() -> impl Strategy<Value = AccessLevel> {
    prop_oneof![
        Just(AccessLevel::Public),
        (0u8..=254).prop_map(AccessLevel::Level)
    ]
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..10), 1..4)
        .prop_map(|comps| Name::from_components(comps.into_iter().map(Component::new).collect()))
}

fn arb_tag() -> impl Strategy<Value = Tag> {
    (
        arb_name(),
        arb_level(),
        arb_name(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(pk, al, ck, ap, exp)| Tag {
            provider_key_locator: pk,
            access_level: al,
            client_key_locator: ck,
            access_path: AccessPath::from_u64(ap),
            expiry: SimTime::from_nanos(exp),
        })
}

proptest! {
    #[test]
    fn access_level_satisfies_is_a_total_preorder(a in arb_level(), b in arb_level(), c in arb_level()) {
        // Reflexive.
        prop_assert!(a.satisfies(a));
        // Total: a satisfies b or b satisfies a.
        prop_assert!(a.satisfies(b) || b.satisfies(a));
        // Transitive.
        if a.satisfies(b) && b.satisfies(c) {
            prop_assert!(a.satisfies(c));
        }
        // Consistent with Ord.
        prop_assert_eq!(a.satisfies(b), a >= b);
    }

    #[test]
    fn access_level_byte_roundtrip(a in arb_level()) {
        prop_assert_eq!(AccessLevel::from_byte(a.to_byte()), a);
    }

    #[test]
    fn access_path_is_commutative_and_self_inverse(ids in proptest::collection::vec(any::<u64>(), 0..10), extra in any::<u64>()) {
        let forward = AccessPath::of(ids.clone());
        let mut reversed = ids.clone();
        reversed.reverse();
        prop_assert_eq!(forward, AccessPath::of(reversed));
        // Adding then removing an entity is the identity.
        prop_assert_eq!(forward.extended(extra).extended(extra), forward);
    }

    #[test]
    fn tag_encode_decode_roundtrip(tag in arb_tag(), nonce in 0u64..1000) {
        let kp = KeyPair::derive(b"any-provider", nonce);
        let st = tag.sign(&kp);
        let back = SignedTag::decode(&st.encode()).unwrap();
        prop_assert_eq!(&back, &st);
        prop_assert!(back.verify(&kp.public()));
    }

    #[test]
    fn tag_truncation_never_panics(tag in arb_tag(), cut_frac in 0.0f64..1.0) {
        let kp = KeyPair::derive(b"p", 0);
        let bytes = tag.sign(&kp).encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let _ = SignedTag::decode(&bytes[..cut]);
    }

    #[test]
    fn edge_precheck_accepts_iff_prefix_and_freshness(tag in arb_tag(), now_ns in any::<u64>()) {
        let now = SimTime::from_nanos(now_ns);
        let content = tag.provider_prefix().child("obj").child("c0");
        let verdict = edge_precheck(&tag, &content, now);
        prop_assert_eq!(verdict.is_ok(), !tag.is_expired(now));
    }

    #[test]
    fn edge_precheck_rejects_foreign_prefixes(tag in arb_tag(), other in arb_name()) {
        prop_assume!(other.prefix(1) != tag.provider_prefix());
        let verdict = edge_precheck(&tag, &other, SimTime::ZERO);
        prop_assert!(verdict.is_err());
    }

    #[test]
    fn content_precheck_mirrors_satisfies(tag in arb_tag(), content_level in arb_level()) {
        let verdict = content_precheck(&tag, content_level, &tag.provider_key_locator);
        prop_assert_eq!(verdict.is_ok(), tag.access_level.satisfies(content_level));
    }

    #[test]
    fn interest_tag_extension_roundtrip(tag in arb_tag(), name in arb_name(), nonce in any::<u64>()) {
        let kp = KeyPair::derive(b"p", 0);
        let st = tag.sign(&kp);
        let mut i = Interest::new(name, nonce);
        ext::set_interest_tag(&mut i, &st);
        let got = ext::interest_tag(&i);
        prop_assert_eq!(got.as_deref(), Some(&st));
    }

    #[test]
    fn data_annotations_roundtrip_and_strip(tag in arb_tag(), f in 0.0f64..1.0, level in arb_level()) {
        let kp = KeyPair::derive(b"p", 0);
        let st = tag.sign(&kp);
        let mut d = Data::new("/x/y".parse().unwrap(), Payload::Synthetic(10));
        ext::set_data_access_level(&mut d, level);
        ext::set_data_tag(&mut d, &st);
        ext::set_data_flag_f(&mut d, f);
        let got = ext::data_tag(&d);
        prop_assert_eq!(got.as_deref(), Some(&st));
        prop_assert_eq!(ext::data_flag_f(&d), f);
        ext::strip_delivery_annotations(&mut d);
        prop_assert_eq!(ext::data_tag(&d), None);
        prop_assert_eq!(ext::data_flag_f(&d), 0.0);
        prop_assert_eq!(ext::data_access_level(&d), level, "signed fields survive stripping");
    }

    #[test]
    fn garbage_extension_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut i = Interest::new("/x".parse().unwrap(), 1);
        i.set_extension(ext::EXT_TAG, bytes.clone());
        let _ = ext::interest_tag(&i);
        let mut d = Data::new("/x".parse().unwrap(), Payload::Synthetic(1));
        d.set_extension(ext::EXT_TAG, bytes.clone());
        d.set_extension(ext::EXT_FLAG_F, bytes.clone());
        d.set_extension(ext::EXT_NACK, bytes);
        let _ = ext::data_tag(&d);
        let _ = ext::data_flag_f(&d);
        let _ = ext::data_nack(&d);
    }
}
