//! End-to-end behaviour of the TACTIC plane on the shared transport:
//! delivery ratios, tag cycling, router workload shape, latency recording,
//! determinism, and observer accounting.

use tactic::metrics::RunReport;
use tactic::net::{run_scenario, Network};
use tactic::scenario::Scenario;
use tactic_net::NetCounters;
use tactic_sim::time::SimDuration;

fn small_run(seed: u64) -> RunReport {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(15);
    run_scenario(&s, seed)
}

#[test]
fn clients_retrieve_attackers_do_not() {
    let r = small_run(1);
    assert!(
        r.delivery.client_requested > 100,
        "clients requested {}",
        r.delivery.client_requested
    );
    assert!(
        r.delivery.client_ratio() > 0.95,
        "client delivery ratio {} (req {}, recv {})",
        r.delivery.client_ratio(),
        r.delivery.client_requested,
        r.delivery.client_received
    );
    assert!(r.delivery.attacker_requested > 10);
    assert!(
        r.delivery.attacker_ratio() < 0.01,
        "attacker delivery ratio {}",
        r.delivery.attacker_ratio()
    );
}

#[test]
fn tags_cycle_with_expiry() {
    let r = small_run(2);
    // 15 s run, 10 s tags: every client re-registers at least once per
    // provider it talks to.
    assert!(!r.tag_requests.is_empty());
    assert!(!r.tags_received.is_empty());
    assert!(r.tags_received.len() <= r.tag_requests.len());
    // Substantially all client registrations are answered.
    assert!(
        r.tags_received.len() as f64 >= 0.8 * r.tag_requests.len() as f64,
        "Q {} vs R {}",
        r.tag_requests.len(),
        r.tags_received.len()
    );
}

#[test]
fn routers_do_work_and_lookups_dominate_verifications() {
    let r = small_run(3);
    assert!(r.edge_ops.bf_lookups > 0);
    assert!(r.edge_ops.interests > 0);
    assert!(r.core_ops.interests > 0);
    // Fig. 7's headline: BF lookups far outnumber signature
    // verifications at the edge.
    assert!(
        r.edge_ops.bf_lookups > r.edge_ops.sig_verifications,
        "edge L {} vs V {}",
        r.edge_ops.bf_lookups,
        r.edge_ops.sig_verifications
    );
}

#[test]
fn latencies_are_recorded_and_plausible() {
    let r = small_run(4);
    assert!(r.latency.len() > 100);
    let mean = r.mean_latency();
    assert!(mean > 0.001 && mean < 1.0, "mean latency {mean}s");
    let series = r.latency.per_second_means();
    assert!(
        series.len() > 5,
        "per-second series has {} points",
        series.len()
    );
}

#[test]
fn deterministic_per_seed() {
    let a = small_run(7);
    let b = small_run(7);
    assert_eq!(a.delivery, b.delivery);
    assert_eq!(a.events, b.events);
    assert_eq!(a.edge_ops, b.edge_ops);
}

#[test]
fn different_seeds_differ() {
    let a = small_run(8);
    let b = small_run(9);
    assert_ne!(a.events, b.events);
}

#[test]
fn observer_sees_every_delivery_once() {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(10);
    let net = Network::build_observed(&s, 12, NetCounters::default());
    let (report, counters) = net.run_observed();
    assert!(counters.delivered > 0);
    assert!(counters.scheduled >= counters.delivered);
    assert!(counters.bytes_on_wire > 0);
    assert!(!counters.link_load.is_empty());
    // The transport's event total includes non-delivery events too.
    assert!(report.events >= counters.delivered);
}
