//! # tactic-bench
//!
//! Criterion benchmarks for the TACTIC reproduction:
//!
//! * `micro_ops` — the §8.A cost table's operations measured on *our*
//!   implementations (Bloom lookup/insert, Schnorr sign/verify, the tag
//!   pre-check, tag codec, name/wire parsing, PIT/FIB/CS primitives);
//! * `protocols` — Protocol 2/3/4 handler paths on a single router;
//! * `end_to_end` — scaled-down whole-network runs parameterised by each
//!   table/figure's knob (BF size for Fig. 5/Table V, tag expiry for
//!   Fig. 6/Fig. 8, threshold FPP for Fig. 8, the paper attacker mix for
//!   Table IV, and the baseline mechanisms);
//! * `sweep` — the deterministic grid runner end to end, serial vs the
//!   machine's full worker pool (results are identical either way; only
//!   wall-clock changes).
//!
//! Run with `cargo bench -p tactic-bench`. These complement (not replace)
//! the row/series regeneration in `tactic-experiments`.

#![forbid(unsafe_code)]

use tactic::scenario::Scenario;
use tactic_sim::time::SimDuration;
use tactic_topology::roles::TopologySpec;

/// A tiny scenario sized for benchmarking (a few wall-clock hundred ms per
/// run in release mode).
pub fn bench_scenario(sim_secs: u64) -> Scenario {
    let mut s = Scenario::small();
    s.topology = tactic::scenario::TopologyChoice::Custom(TopologySpec {
        core_routers: 10,
        edge_routers: 3,
        providers: 2,
        clients: 5,
        attackers: 2,
    });
    s.duration = SimDuration::from_secs(sim_secs);
    s.objects_per_provider = 10;
    s.chunks_per_object = 10;
    s
}
