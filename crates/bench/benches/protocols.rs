//! Benchmarks of the Protocol 2/3/4 handler paths on a single router:
//! what one Interest or Data costs a TACTIC router in each situation the
//! paper's Fig. 2 distinguishes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use tactic::access::AccessLevel;
use tactic::access_path::AccessPath;
use tactic::ext;
use tactic::router::{RouterConfig, RouterRole, TacticRouter};
use tactic::tag::{SignedTag, Tag};
use tactic_crypto::cert::{CertStore, Certificate};
use tactic_crypto::schnorr::KeyPair;
use tactic_ndn::face::FaceId;
use tactic_ndn::packet::{Data, Interest, Payload};
use tactic_sim::cost::CostModel;
use tactic_sim::rng::Rng;
use tactic_sim::time::SimTime;

const UP: FaceId = FaceId::new(0);
const CLIENT: FaceId = FaceId::new(1);

struct Setup {
    provider: KeyPair,
    certs: CertStore,
}

fn setup() -> Setup {
    let anchor = KeyPair::derive(b"anchor", 0);
    let provider = KeyPair::derive(b"/prov", 0);
    let mut certs = CertStore::new();
    certs.add_anchor(anchor.public());
    certs
        .register(Certificate::issue("/prov", provider.public(), &anchor))
        .unwrap();
    Setup { provider, certs }
}

fn make_router(s: &Setup, role: RouterRole) -> TacticRouter {
    let mut r = TacticRouter::new(RouterConfig::paper(role), s.certs.clone());
    r.add_route("/prov".parse().unwrap(), UP, 1);
    r.mark_downstream(CLIENT);
    r
}

fn make_tag(s: &Setup) -> SignedTag {
    Tag {
        provider_key_locator: "/prov/KEY/1".parse().unwrap(),
        access_level: AccessLevel::Level(2),
        client_key_locator: "/prov/users/u1/KEY".parse().unwrap(),
        access_path: AccessPath::EMPTY,
        expiry: SimTime::from_secs(100),
    }
    .sign(&s.provider)
}

fn content() -> Data {
    let mut d = Data::new("/prov/obj0/c0".parse().unwrap(), Payload::Synthetic(8192));
    ext::set_data_access_level(&mut d, AccessLevel::Level(1));
    ext::set_data_key_locator(&mut d, &"/prov/KEY/1".parse().unwrap());
    d
}

fn tagged_interest(tag: &SignedTag, nonce: u64) -> Interest {
    let mut i = Interest::new("/prov/obj0/c0".parse().unwrap(), nonce);
    ext::set_interest_tag(&mut i, tag);
    i
}

fn bench_edge_interest(c: &mut Criterion) {
    let s = setup();
    let tag = make_tag(&s);
    let cost = CostModel::free();
    let mut g = c.benchmark_group("protocol2_edge_interest");
    let mut nonce = 0u64;
    g.bench_function("valid_tag_bf_miss_forward", |b| {
        b.iter_batched(
            || (make_router(&s, RouterRole::Edge), Rng::seed_from_u64(1)),
            |(mut r, mut rng)| {
                nonce += 1;
                let out = r.handle_interest(
                    tagged_interest(&tag, nonce),
                    CLIENT,
                    SimTime::ZERO,
                    &mut rng,
                    &cost,
                );
                black_box(out.sends.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("expired_tag_precheck_drop", |b| {
        let mut r = make_router(&s, RouterRole::Edge);
        let mut rng = Rng::seed_from_u64(1);
        let mut expired = make_tag(&s);
        expired.tag.expiry = SimTime::from_nanos(1);
        b.iter(|| {
            nonce += 1;
            let out = r.handle_interest(
                tagged_interest(&expired, nonce),
                CLIENT,
                SimTime::from_secs(5),
                &mut rng,
                &cost,
            );
            black_box(out.sends.len())
        })
    });
    g.finish();
}

fn bench_content_router(c: &mut Criterion) {
    let s = setup();
    let tag = make_tag(&s);
    let cost = CostModel::free();
    let mut g = c.benchmark_group("protocol3_content_router");
    let mut nonce = 0u64;
    g.bench_function("serve_bf_hit", |b| {
        // Warm router: content cached, tag already validated once.
        let mut r = make_router(&s, RouterRole::Core);
        let mut rng = Rng::seed_from_u64(1);
        let d = content();
        let _ = r.handle_interest(tagged_interest(&tag, 1), UP, SimTime::ZERO, &mut rng, &cost);
        let _ = r.handle_data(
            {
                let mut dd = d.clone();
                ext::set_data_tag(&mut dd, &tag);
                dd
            },
            UP,
            SimTime::ZERO,
            &mut rng,
            &cost,
        );
        b.iter(|| {
            nonce += 1;
            let out = r.handle_interest(
                tagged_interest(&tag, nonce),
                UP,
                SimTime::ZERO,
                &mut rng,
                &cost,
            );
            black_box(out.sends.len())
        })
    });
    g.bench_function("serve_with_signature_verification", |b| {
        b.iter_batched(
            || {
                let mut r = make_router(&s, RouterRole::Core);
                let mut rng = Rng::seed_from_u64(1);
                // Prime the cache only (fresh BF: forces a verification).
                let _ =
                    r.handle_interest(tagged_interest(&tag, 1), UP, SimTime::ZERO, &mut rng, &cost);
                let mut dd = content();
                ext::set_data_tag(&mut dd, &tag);
                let _ = r.handle_data(dd, UP, SimTime::ZERO, &mut rng, &cost);
                // A different client's tag, unknown to the BF:
                let other = Tag {
                    provider_key_locator: "/prov/KEY/1".parse().unwrap(),
                    access_level: AccessLevel::Level(2),
                    client_key_locator: "/prov/users/u2/KEY".parse().unwrap(),
                    access_path: AccessPath::EMPTY,
                    expiry: SimTime::from_secs(100),
                }
                .sign(&s.provider);
                (r, rng, other)
            },
            |(mut r, mut rng, other)| {
                nonce += 1;
                let out = r.handle_interest(
                    tagged_interest(&other, nonce),
                    UP,
                    SimTime::ZERO,
                    &mut rng,
                    &cost,
                );
                black_box(out.sends.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_intermediate(c: &mut Criterion) {
    let s = setup();
    let tag = make_tag(&s);
    let cost = CostModel::free();
    let mut g = c.benchmark_group("protocol4_intermediate");
    g.bench_function("aggregate_and_fanout", |b| {
        let tag2 = Tag {
            provider_key_locator: "/prov/KEY/1".parse().unwrap(),
            access_level: AccessLevel::Level(2),
            client_key_locator: "/prov/users/u2/KEY".parse().unwrap(),
            access_path: AccessPath::EMPTY,
            expiry: SimTime::from_secs(100),
        }
        .sign(&s.provider);
        b.iter_batched(
            || (make_router(&s, RouterRole::Core), Rng::seed_from_u64(1)),
            |(mut r, mut rng)| {
                let _ = r.handle_interest(
                    tagged_interest(&tag, 1),
                    FaceId::new(5),
                    SimTime::ZERO,
                    &mut rng,
                    &cost,
                );
                let _ = r.handle_interest(
                    tagged_interest(&tag2, 2),
                    FaceId::new(6),
                    SimTime::ZERO,
                    &mut rng,
                    &cost,
                );
                let mut d = content();
                ext::set_data_tag(&mut d, &tag);
                let out = r.handle_data(d, UP, SimTime::ZERO, &mut rng, &cost);
                black_box(out.sends.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1_000))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_edge_interest, bench_content_router, bench_intermediate
}
criterion_main!(benches);
