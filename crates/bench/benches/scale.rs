//! Scale benchmark: event-engine throughput and peak memory as the
//! topology grows from 10³ to 10⁵ nodes.
//!
//! The paper's Table III presets top out at a few hundred nodes; this
//! bench drives the calendar-queue engine and the flat `Vec` plane
//! storage across fleet-scale networks built by
//! [`tactic_topology::fleet::build_fleet`]-shaped specs and reports, per
//! node count:
//!
//! * `events_per_sec` — engine throughput over the simulated run
//!   (wall-clock, machine-relative);
//! * `peak_rss_kb` — the process high-water mark (`VmHWM` from
//!   `/proc/self/status`), measured in a *child process per point* so one
//!   point's allocations cannot inflate the next point's number.
//!
//! Modes:
//!
//! * `cargo bench -p tactic-bench --bench scale` — run every point in
//!   `BENCH_SCALE_POINTS` (default `1000,10000,100000`) and print a
//!   summary table.
//! * With `BENCH_SCALE_JSON=<path>` also write `BENCH_scale.json`,
//!   including a paper-preset throughput check against the
//!   `BENCH_datapath.json` baseline recorded below — the scale refactor
//!   must not cost the small runs anything — a `"sampler"` point
//!   measuring the sim-time sampler disabled vs. enabled at the largest
//!   node count (ISSUE 8 budget: ≤ 5% events/s overhead at 10⁵ nodes),
//!   a `"defense"` point measuring the edge defenses disabled vs.
//!   armed-unattacked there too (ISSUE 9 budget: ≤ 5%; disabled builds
//!   no defense state at all and is the pre-feature code path), and a
//!   `"tag_churn"` point measuring the default reactive tag lifecycle
//!   vs. proactive renewal churn on both validation-cache policies
//!   (the inactive lifecycle layer must leave the default run
//!   `Debug`-identical, not merely fast).
//! * `BENCH_SCALE_CHILD=<nodes>:<sim_ms>` (internal) — run one point and
//!   print its JSON on stdout; the parent sets this when re-executing
//!   itself.

use std::process::Command;
use std::time::Instant;

use tactic::net::{run_scenario_sharded, Network};
use tactic::scenario::{Scenario, TopologyChoice};
use tactic_bench::bench_scenario;
use tactic_sim::time::SimDuration;
use tactic_topology::fleet::FleetSpec;

const DEFAULT_SHARD_COUNTS: &str = "1,2,4,8";

/// Post-refactor paper-preset throughput recorded in `BENCH_datapath.json`
/// (`tactic.after.events_per_sec`); the scale engine must stay at or above
/// this on the same machine.
const DATAPATH_TACTIC_EVENTS_PER_SEC: f64 = 824_987.0;

const DEFAULT_POINTS: &str = "1000,10000,100000";

/// Simulated horizon per point, shrinking with size so the largest run
/// stays minutes-not-hours: 10³ → 5 s, 10⁴ → 1 s, 10⁵ → 300 ms.
fn sim_ms_for(nodes: usize) -> u64 {
    (10_000_000 / nodes as u64).clamp(300, 5_000)
}

/// A fleet-shaped scenario: shares from [`FleetSpec::sized`], small
/// catalogue, short horizon. Deterministic per (nodes, sim_ms).
fn fleet_scenario(nodes: usize, sim_ms: u64) -> Scenario {
    let mut s = Scenario::small();
    s.topology = TopologyChoice::Custom(FleetSpec::sized(nodes).to_table_spec());
    s.duration = SimDuration::from_millis(sim_ms);
    s.objects_per_provider = 10;
    s.chunks_per_object = 10;
    s
}

/// `VmHWM` (peak resident set) of this process, in kB. Linux-only; other
/// platforms report 0 rather than lying.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

struct Point {
    nodes: usize,
    clients: usize,
    sim_ms: u64,
    build_secs: f64,
    run_secs: f64,
    events: u64,
    events_per_sec: f64,
    peak_rss_kb: u64,
}

impl Point {
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"nodes\": {}, \"clients\": {}, \"sim_ms\": {}, ",
                "\"build_secs\": {:.2}, \"run_secs\": {:.2}, \"sim_events\": {}, ",
                "\"events_per_sec\": {:.0}, \"peak_rss_kb\": {}}}"
            ),
            self.nodes,
            self.clients,
            self.sim_ms,
            self.build_secs,
            self.run_secs,
            self.events,
            self.events_per_sec,
            self.peak_rss_kb,
        )
    }
}

/// Runs one scale point in-process. Called in the child re-exec so the
/// RSS high-water mark belongs to this point alone.
fn measure_point(nodes: usize, sim_ms: u64) -> Point {
    let s = fleet_scenario(nodes, sim_ms);
    let spec = s.topology.spec();
    let t = Instant::now();
    let net = Network::build(&s, 1);
    let build_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let report = net.run();
    let run_secs = t.elapsed().as_secs_f64();
    Point {
        nodes,
        clients: spec.clients + spec.attackers,
        sim_ms,
        build_secs,
        run_secs,
        events: report.events,
        events_per_sec: report.events as f64 / run_secs.max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Re-executes this binary for one point and parses the marker line the
/// child prints. Falls back to in-process measurement if the spawn fails
/// (the RSS number then covers the whole run so far).
fn measure_point_isolated(nodes: usize, sim_ms: u64) -> Point {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(_) => return measure_point(nodes, sim_ms),
    };
    let out = Command::new(exe)
        .env("BENCH_SCALE_CHILD", format!("{nodes}:{sim_ms}"))
        .env_remove("BENCH_SCALE_JSON")
        .output();
    let Ok(out) = out else {
        return measure_point(nodes, sim_ms);
    };
    assert!(
        out.status.success(),
        "scale child ({nodes} nodes) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find_map(|l| l.strip_prefix("SCALE_POINT "))
        .expect("child printed no SCALE_POINT line");
    parse_point(line)
}

/// Parses the child's `SCALE_POINT` payload: the eight fields of
/// [`Point::json`] in order. Hand-rolled to keep the bench free of a JSON
/// dependency, like the rest of the harness.
fn parse_point(line: &str) -> Point {
    let field = |key: &str| -> f64 {
        let pat = format!("\"{key}\": ");
        let rest = &line[line.find(&pat).expect("missing field") + pat.len()..];
        let end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().expect("bad number")
    };
    Point {
        nodes: field("nodes") as usize,
        clients: field("clients") as usize,
        sim_ms: field("sim_ms") as u64,
        build_secs: field("build_secs"),
        run_secs: field("run_secs"),
        events: field("sim_events") as u64,
        events_per_sec: field("events_per_sec"),
        peak_rss_kb: field("peak_rss_kb") as u64,
    }
}

/// One events/s-vs-K measurement of the sharded conservative PDES.
struct ShardPoint {
    nodes: usize,
    k: usize,
    wall_secs: f64,
    events: u64,
    events_per_sec: f64,
    speedup_x: f64,
    epochs: u64,
    edge_cut: u64,
}

impl ShardPoint {
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"nodes\": {}, \"shards\": {}, \"wall_secs\": {:.2}, ",
                "\"sim_events\": {}, \"events_per_sec\": {:.0}, ",
                "\"speedup_x\": {:.2}, \"epochs\": {}, \"edge_cut\": {}}}"
            ),
            self.nodes,
            self.k,
            self.wall_secs,
            self.events,
            self.events_per_sec,
            self.speedup_x,
            self.epochs,
            self.edge_cut,
        )
    }
}

/// Runs the fleet scenario space-partitioned across `k` shards and
/// measures end-to-end wall time (the K replicated builds run in
/// parallel inside, so build cost weighs on every K equally). `K = 1`
/// anchors `speedup_x` for its node count.
fn measure_shard_point(nodes: usize, sim_ms: u64, k: usize, base_eps: f64) -> ShardPoint {
    let s = fleet_scenario(nodes, sim_ms);
    let t = Instant::now();
    let (report, stats) = run_scenario_sharded(&s, 1, k).expect("fleet outnumbers shards");
    let wall_secs = t.elapsed().as_secs_f64();
    let events_per_sec = report.events as f64 / wall_secs.max(1e-9);
    ShardPoint {
        nodes,
        k,
        wall_secs,
        events: report.events,
        events_per_sec,
        speedup_x: if base_eps > 0.0 {
            events_per_sec / base_eps
        } else {
            1.0
        },
        epochs: stats.epochs,
        edge_cut: stats.edge_cut,
    }
}

/// One disabled-vs-enabled measurement of the sim-time sampler.
struct SamplerPoint {
    nodes: usize,
    sim_ms: u64,
    samples: u64,
    base_events_per_sec: f64,
    sampled_events_per_sec: f64,
    overhead_pct: f64,
}

impl SamplerPoint {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"nodes\": {}, \"sim_ms\": {}, \"samples\": {}, ",
                "\"baseline_events_per_sec\": {:.0}, ",
                "\"sampled_events_per_sec\": {:.0}, \"overhead_pct\": {:.2}}}"
            ),
            self.nodes,
            self.sim_ms,
            self.samples,
            self.base_events_per_sec,
            self.sampled_events_per_sec,
            self.overhead_pct,
        )
    }
}

/// Sampler-overhead probe at one node count: the same fleet run with the
/// sim-time sampler off and then on at one tick per tenth of the
/// horizon. "Off" needs no measurement trick — a disabled sampler is an
/// `Option` that stays `None`, the identical code path as before the
/// feature existed — so the disabled run *is* the baseline, and the
/// enabled run's wall-clock delta is the whole cost (ISSUE 8 budget:
/// ≤ 5% events/s at 10⁵ nodes).
fn measure_sampler_point(nodes: usize, sim_ms: u64) -> SamplerPoint {
    let s = fleet_scenario(nodes, sim_ms);
    let net = Network::build(&s, 1);
    let t = Instant::now();
    let base = net.run();
    let base_secs = t.elapsed().as_secs_f64();

    let mut sampled_scenario = fleet_scenario(nodes, sim_ms);
    sampled_scenario.sample_every = Some(SimDuration::from_millis((sim_ms / 10).max(1)));
    let net = Network::build(&sampled_scenario, 1);
    let t = Instant::now();
    let sampled = net.run();
    let sampled_secs = t.elapsed().as_secs_f64();

    SamplerPoint {
        nodes,
        sim_ms,
        samples: sampled.samples.len() as u64,
        base_events_per_sec: base.events as f64 / base_secs.max(1e-9),
        sampled_events_per_sec: sampled.events as f64 / sampled_secs.max(1e-9),
        overhead_pct: (sampled_secs - base_secs) / base_secs.max(1e-9) * 100.0,
    }
}

/// One disabled-vs-armed measurement of the edge defenses, unattacked.
struct DefensePoint {
    nodes: usize,
    sim_ms: u64,
    base_events_per_sec: f64,
    defended_events_per_sec: f64,
    overhead_pct: f64,
    rate_limited: u64,
}

impl DefensePoint {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"nodes\": {}, \"sim_ms\": {}, ",
                "\"baseline_events_per_sec\": {:.0}, ",
                "\"defended_events_per_sec\": {:.0}, \"overhead_pct\": {:.2}, ",
                "\"rate_limited_drops\": {}}}"
            ),
            self.nodes,
            self.sim_ms,
            self.base_events_per_sec,
            self.defended_events_per_sec,
            self.overhead_pct,
            self.rate_limited,
        )
    }
}

/// Edge-defense overhead probe at one node count: the same unattacked
/// fleet run with the defenses off and then fully armed (token bucket,
/// face cap, bounded PIT). "Off" needs no measurement trick — a
/// disabled [`tactic::scenario::DefenseConfig`] builds no `EdgeDefense`
/// at all, the identical code path as before the feature existed — so
/// the disabled run *is* the baseline, and the armed run's wall-clock
/// delta is the whole admission-check cost (ISSUE 9 budget: ≤ 5%
/// events/s at 10⁵ nodes when no attack is underway).
fn measure_defense_point(nodes: usize, sim_ms: u64) -> DefensePoint {
    use tactic::scenario::{DefenseConfig, RateLimit};
    let s = fleet_scenario(nodes, sim_ms);
    let net = Network::build(&s, 1);
    let t = Instant::now();
    let base = net.run();
    let base_secs = t.elapsed().as_secs_f64();

    let mut defended_scenario = fleet_scenario(nodes, sim_ms);
    defended_scenario.defense = DefenseConfig {
        rate_limit: Some(RateLimit {
            per_sec: 150,
            burst: 50,
        }),
        face_cap: Some(400),
        pit_capacity: Some(512),
    };
    let net = Network::build(&defended_scenario, 1);
    let t = Instant::now();
    let defended = net.run();
    let defended_secs = t.elapsed().as_secs_f64();

    DefensePoint {
        nodes,
        sim_ms,
        base_events_per_sec: base.events as f64 / base_secs.max(1e-9),
        defended_events_per_sec: defended.events as f64 / defended_secs.max(1e-9),
        overhead_pct: (defended_secs - base_secs) / base_secs.max(1e-9) * 100.0,
        rate_limited: defended.drops.rate_limited,
    }
}

/// One baseline-vs-churn measurement of the tag lifecycle layer.
struct ChurnPoint {
    nodes: usize,
    sim_ms: u64,
    base_events_per_sec: f64,
    churn_events_per_sec: f64,
    generational_events_per_sec: f64,
    overhead_pct: f64,
    tag_renewals: u64,
    bf_resets: u64,
    bf_rotations: u64,
    default_matches_baseline: bool,
}

impl ChurnPoint {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"nodes\": {}, \"sim_ms\": {}, ",
                "\"baseline_events_per_sec\": {:.0}, ",
                "\"churn_events_per_sec\": {:.0}, ",
                "\"generational_events_per_sec\": {:.0}, ",
                "\"overhead_pct\": {:.2}, \"tag_renewals\": {}, ",
                "\"bf_resets\": {}, \"bf_rotations\": {}, ",
                "\"default_matches_baseline\": {}}}"
            ),
            self.nodes,
            self.sim_ms,
            self.base_events_per_sec,
            self.churn_events_per_sec,
            self.generational_events_per_sec,
            self.overhead_pct,
            self.tag_renewals,
            self.bf_resets,
            self.bf_rotations,
            self.default_matches_baseline,
        )
    }
}

/// Tag-churn probe at one node count: the same fleet run under (a) the
/// default lifecycle (`Fixed` expiry, monolithic-reset cache — the
/// pre-feature code path, which draws nothing from the lifecycle RNG
/// stream), (b) proactive renewal churn with a validity of a quarter of
/// the horizon on the monolithic cache, and (c) the same churn on the
/// generational cache. The default run is re-executed with every
/// lifecycle knob set explicitly to its default and the two reports are
/// compared `Debug`-for-`Debug` — the inactive lifecycle layer must be
/// invisible, not merely cheap.
fn measure_churn_point(nodes: usize, sim_ms: u64) -> ChurnPoint {
    use tactic::scenario::TagLifetimePolicy;
    use tactic_bloom::CachePolicy;

    let s = fleet_scenario(nodes, sim_ms);
    let net = Network::build(&s, 1);
    let t = Instant::now();
    let base = net.run();
    let base_secs = t.elapsed().as_secs_f64();

    let mut explicit = fleet_scenario(nodes, sim_ms);
    explicit.lifetime = TagLifetimePolicy::Fixed;
    explicit.cache_policy = CachePolicy::MonolithicReset;
    explicit.track_revalidations = false;
    let default_report = Network::build(&explicit, 1).run();
    let default_matches_baseline = format!("{base:#?}") == format!("{default_report:#?}");

    let churn = TagLifetimePolicy::Churn {
        validity: SimDuration::from_millis((sim_ms / 4).max(4)),
        lead: SimDuration::from_millis((sim_ms / 16).max(1)),
        jitter: SimDuration::from_millis((sim_ms / 32).max(1)),
    };
    let mut churn_scenario = fleet_scenario(nodes, sim_ms);
    churn_scenario.lifetime = churn;
    let net = Network::build(&churn_scenario, 1);
    let t = Instant::now();
    let churned = net.run();
    let churn_secs = t.elapsed().as_secs_f64();

    let mut gen_scenario = fleet_scenario(nodes, sim_ms);
    gen_scenario.lifetime = churn;
    gen_scenario.cache_policy = CachePolicy::Generational {
        generations: 4,
        partitions: 2,
    };
    let net = Network::build(&gen_scenario, 1);
    let t = Instant::now();
    let generational = net.run();
    let gen_secs = t.elapsed().as_secs_f64();

    ChurnPoint {
        nodes,
        sim_ms,
        base_events_per_sec: base.events as f64 / base_secs.max(1e-9),
        churn_events_per_sec: churned.events as f64 / churn_secs.max(1e-9),
        generational_events_per_sec: generational.events as f64 / gen_secs.max(1e-9),
        overhead_pct: (churn_secs - base_secs) / base_secs.max(1e-9) * 100.0,
        tag_renewals: churned.providers.tags_renewed,
        bf_resets: churned.edge_ops.bf_resets + churned.core_ops.bf_resets,
        bf_rotations: generational.edge_ops.bf_rotations + generational.core_ops.bf_rotations,
        default_matches_baseline,
    }
}

/// Paper-preset throughput probe: the same small scenario the datapath
/// bench measures, so the number is directly comparable to the
/// `BENCH_datapath.json` baseline.
fn measure_paper_preset() -> f64 {
    let s = bench_scenario(3);
    let _ = tactic::net::run_scenario(&s, 1); // warm
    let t = Instant::now();
    let report = tactic::net::run_scenario(&s, 1);
    report.events as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    // Child mode: one point, one marker line, exit.
    if let Ok(spec) = std::env::var("BENCH_SCALE_CHILD") {
        let (nodes, sim_ms) = spec.split_once(':').expect("BENCH_SCALE_CHILD=nodes:ms");
        let p = measure_point(
            nodes.parse().expect("nodes"),
            sim_ms.parse().expect("sim_ms"),
        );
        println!("SCALE_POINT {}", p.json().trim_start());
        return;
    }

    let points_env =
        std::env::var("BENCH_SCALE_POINTS").unwrap_or_else(|_| DEFAULT_POINTS.to_string());
    let sizes: Vec<usize> = points_env
        .split(',')
        .map(|p| p.trim().parse().expect("BENCH_SCALE_POINTS: bad size"))
        .collect();

    let mut points = Vec::new();
    for &nodes in &sizes {
        let sim_ms = sim_ms_for(nodes);
        eprintln!("scale: {nodes} nodes, {sim_ms} ms horizon...");
        let p = measure_point_isolated(nodes, sim_ms);
        eprintln!(
            "scale: {} nodes -> {:.0} events/s, peak RSS {} kB (build {:.2} s, run {:.2} s, {} events)",
            p.nodes, p.events_per_sec, p.peak_rss_kb, p.build_secs, p.run_secs, p.events
        );
        points.push(p);
    }

    // Events/s vs shard count on the 10⁴-and-up fleets: the intra-run
    // parallelism story, anchored to K = 1 of the same node count.
    let shard_env =
        std::env::var("BENCH_SCALE_SHARDS").unwrap_or_else(|_| DEFAULT_SHARD_COUNTS.to_string());
    let shard_counts: Vec<usize> = shard_env
        .split(',')
        .map(|p| p.trim().parse().expect("BENCH_SCALE_SHARDS: bad count"))
        .collect();
    let mut shard_points = Vec::new();
    for &nodes in sizes.iter().filter(|&&n| n >= 10_000) {
        let sim_ms = sim_ms_for(nodes);
        let mut base_eps = 0.0;
        for &k in &shard_counts {
            eprintln!("scale: {nodes} nodes, K={k} shards...");
            let p = measure_shard_point(nodes, sim_ms, k, base_eps);
            if k == 1 {
                base_eps = p.events_per_sec;
            }
            eprintln!(
                "scale: {} nodes K={} -> {:.0} events/s (x{:.2} vs K=1, {} epochs, edge cut {})",
                p.nodes, p.k, p.events_per_sec, p.speedup_x, p.epochs, p.edge_cut
            );
            shard_points.push(p);
        }
    }

    // Sampler overhead at the largest point: the enabled run's wall-clock
    // delta against the (structurally identical) disabled baseline.
    let sampler = sizes.iter().max().map(|&nodes| {
        let sim_ms = sim_ms_for(nodes);
        eprintln!("scale: {nodes} nodes, sampler off vs on...");
        let p = measure_sampler_point(nodes, sim_ms);
        eprintln!(
            "scale: {} nodes sampler -> {:.0} events/s off, {:.0} events/s on ({} samples, {:+.2}% wall)",
            p.nodes, p.base_events_per_sec, p.sampled_events_per_sec, p.samples, p.overhead_pct
        );
        p
    });

    // Edge-defense overhead at the largest point: the armed-unattacked
    // run's wall-clock delta against the (defense-free) disabled baseline.
    let defense = sizes.iter().max().map(|&nodes| {
        let sim_ms = sim_ms_for(nodes);
        eprintln!("scale: {nodes} nodes, defenses off vs armed (no attack)...");
        let p = measure_defense_point(nodes, sim_ms);
        eprintln!(
            "scale: {} nodes defense -> {:.0} events/s off, {:.0} events/s armed ({:+.2}% wall, {} rate-limited)",
            p.nodes, p.base_events_per_sec, p.defended_events_per_sec, p.overhead_pct, p.rate_limited
        );
        p
    });

    // Tag-churn cost at the largest point: proactive renewal under a
    // quarter-horizon validity vs the default reactive lifecycle, on both
    // cache policies, plus the inactive-layer invisibility check.
    let tag_churn = sizes.iter().max().map(|&nodes| {
        let sim_ms = sim_ms_for(nodes);
        eprintln!("scale: {nodes} nodes, tag lifecycle default vs churn...");
        let p = measure_churn_point(nodes, sim_ms);
        eprintln!(
            "scale: {} nodes tag churn -> {:.0} events/s default, {:.0} events/s churn, {:.0} events/s generational ({:+.2}% wall, {} renewals, {} resets, {} rotations, default-identical={})",
            p.nodes, p.base_events_per_sec, p.churn_events_per_sec, p.generational_events_per_sec,
            p.overhead_pct, p.tag_renewals, p.bf_resets, p.bf_rotations, p.default_matches_baseline
        );
        p
    });

    let preset_eps = measure_paper_preset();
    let throughput_x = preset_eps / DATAPATH_TACTIC_EVENTS_PER_SEC;
    eprintln!(
        "scale: paper preset {preset_eps:.0} events/s ({throughput_x:.3}x the datapath baseline)"
    );

    if let Ok(path) = std::env::var("BENCH_SCALE_JSON") {
        let body: Vec<String> = points.iter().map(Point::json).collect();
        let shard_body: Vec<String> = shard_points.iter().map(ShardPoint::json).collect();
        let json = format!(
            concat!(
                "{{\n  \"bench\": \"scale\",\n",
                "  \"engine\": \"calendar_queue\",\n",
                "  \"storage\": \"flat_vec\",\n",
                "  \"sync\": \"conservative_epochs\",\n",
                "  \"points\": [\n{}\n  ],\n",
                "  \"shards\": [\n{}\n  ],\n",
                "  \"sampler\": {},\n",
                "  \"defense\": {},\n",
                "  \"tag_churn\": {},\n",
                "  \"paper_preset\": {{\"baseline_events_per_sec\": {:.0}, ",
                "\"events_per_sec\": {:.0}, \"throughput_x\": {:.3}}}\n}}\n"
            ),
            body.join(",\n"),
            shard_body.join(",\n"),
            sampler
                .as_ref()
                .map_or_else(|| "null".to_string(), SamplerPoint::json),
            defense
                .as_ref()
                .map_or_else(|| "null".to_string(), DefensePoint::json),
            tag_churn
                .as_ref()
                .map_or_else(|| "null".to_string(), ChurnPoint::json),
            DATAPATH_TACTIC_EVENTS_PER_SEC,
            preset_eps,
            throughput_x,
        );
        std::fs::write(&path, &json).expect("write BENCH_scale.json");
        println!("wrote {path}");
        print!("{json}");
    }
}
