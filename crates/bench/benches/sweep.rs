//! Sweep bench: the deterministic grid runner end to end, serial vs the
//! machine's full worker pool. Compares wall-clock only — the grid's
//! results are byte-identical for any thread count by construction (each
//! run's RNG stream is derived from its grid coordinates, and reports are
//! collected in job order).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use tactic_bench::bench_scenario;
use tactic_experiments::opts::Verbosity;
use tactic_experiments::runner::{run_grid, scenario_id, GridJob};

const SIM_SECS: u64 = 2;
const GRID_RUNS: u64 = 8;

fn grid_jobs(scenario: &tactic::scenario::Scenario) -> Vec<GridJob<'_>> {
    (0..GRID_RUNS)
        .map(|i| GridJob {
            label: format!("bench run {i}"),
            topology: 1,
            scenario_id: scenario_id("bench_sweep", &[]),
            run_idx: i,
            scenario,
        })
        .collect()
}

/// The same 8-run grid at 1 worker thread and at every available core.
/// On an N-core machine the parallel case should approach N× the serial
/// throughput (capped by the grid size).
fn bench_sweep_threads(c: &mut Criterion) {
    let scenario = bench_scenario(SIM_SECS);
    let jobs = grid_jobs(&scenario);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut g = c.benchmark_group("sweep_grid_threads");
    g.sample_size(10);
    for threads in [1, cores] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || (),
                    |()| black_box(run_grid(&jobs, threads, Verbosity::Quiet).len()),
                    BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sweep_threads);
criterion_main!(benches);
