//! Data-path benchmark: transport-loop throughput and heap-allocation
//! counts for the zero-copy ownership refactor (interned `Name`s,
//! shared payloads, move-based packet flow).
//!
//! Two modes:
//!
//! * `cargo bench -p tactic-bench --bench datapath` — criterion timing of
//!   whole-network runs on both planes plus the `Name` hot operations.
//! * With `BENCH_DATAPATH_JSON=<path>` set (any mode, including the
//!   one-shot smoke under `cargo test` / `-- --test`), the binary also
//!   runs one deterministic allocation-counted simulation per plane and a
//!   short timed throughput probe, then writes `BENCH_datapath.json`
//!   comparing against the pre-refactor baseline recorded below.
//!
//! The allocation counts are exact and deterministic (the simulation is
//! seeded and single-threaded here); events/sec is wall-clock and only
//! meaningful relative to the `BEFORE` numbers measured on the same
//! machine in the same PR.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use tactic::net::run_scenario;
use tactic_baselines::mechanism::Mechanism;
use tactic_baselines::net::run_baseline;
use tactic_bench::bench_scenario;
use tactic_ndn::name::Name;

/// Counts every heap allocation (alloc/alloc_zeroed/realloc) made by the
/// process. Frees are not interesting here: the refactor's claim is about
/// how many times the data path asks the allocator for memory.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SIM_SECS: u64 = 3;

/// Pre-refactor baseline, measured at the seed commit of this PR with this
/// same binary (`BENCH_DATAPATH_JSON=/dev/null cargo bench -p tactic-bench
/// --bench datapath -- --test`). Allocation counts are exact; events/sec
/// was measured on the PR machine.
mod before {
    pub const TACTIC_ALLOCS_PER_INTEREST: f64 = 220.76;
    pub const TACTIC_EVENTS_PER_SEC: f64 = 542_954.0;
    pub const BASELINE_ALLOCS_PER_INTEREST: f64 = 68.48;
    pub const BASELINE_EVENTS_PER_SEC: f64 = 1_480_409.0;
}

fn bench_transport_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("datapath/transport");
    g.sample_size(10);
    let s = bench_scenario(SIM_SECS);
    g.bench_function("tactic_plane", |b| {
        b.iter(|| black_box(run_scenario(&s, 1).events))
    });
    g.bench_function("baseline_plane", |b| {
        b.iter(|| black_box(run_baseline(&s, Mechanism::NoAccessControl, 1).events))
    });
    g.finish();
}

fn bench_name_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("datapath/name");
    let name: Name = "/provider0/obj12/chunk3".parse().unwrap();
    g.bench_function("clone", |b| b.iter(|| black_box(name.clone())));
    g.bench_function("prefix", |b| b.iter(|| black_box(name.prefix(1))));
    g.bench_function("hash_as_key", |b| {
        let mut map = std::collections::HashMap::new();
        map.insert(name.clone(), 1u32);
        b.iter(|| black_box(map.get(&name)))
    });
    g.finish();
}

struct Measured {
    allocs_per_interest: f64,
    events_per_sec: f64,
    interests: u64,
    allocs: u64,
    events: u64,
}

fn measure_tactic() -> Measured {
    let s = bench_scenario(SIM_SECS);
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t = Instant::now();
    let report = run_scenario(&s, 1);
    let secs = t.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let interests = (report.delivery.client_requested + report.delivery.attacker_requested).max(1);
    Measured {
        allocs_per_interest: allocs as f64 / interests as f64,
        events_per_sec: report.events as f64 / secs,
        interests,
        allocs,
        events: report.events,
    }
}

fn measure_baseline() -> Measured {
    let s = bench_scenario(SIM_SECS);
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t = Instant::now();
    let report = run_baseline(&s, Mechanism::NoAccessControl, 1);
    let secs = t.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let interests = (report.client_requested + report.attacker_requested).max(1);
    Measured {
        allocs_per_interest: allocs as f64 / interests as f64,
        events_per_sec: report.events as f64 / secs,
        interests,
        allocs,
        events: report.events,
    }
}

fn plane_json(label: &str, m: &Measured, before_allocs: f64, before_eps: f64) -> String {
    let alloc_reduction = if before_allocs > 0.0 {
        1.0 - m.allocs_per_interest / before_allocs
    } else {
        0.0
    };
    let throughput_x = if before_eps > 0.0 {
        m.events_per_sec / before_eps
    } else {
        0.0
    };
    format!(
        concat!(
            "  \"{}\": {{\n",
            "    \"before\": {{\"allocs_per_interest\": {:.2}, \"events_per_sec\": {:.0}}},\n",
            "    \"after\": {{\"allocs_per_interest\": {:.2}, \"events_per_sec\": {:.0}, ",
            "\"interests\": {}, \"allocs\": {}, \"sim_events\": {}}},\n",
            "    \"alloc_reduction\": {:.4},\n",
            "    \"throughput_x\": {:.3}\n",
            "  }}"
        ),
        label,
        before_allocs,
        before_eps,
        m.allocs_per_interest,
        m.events_per_sec,
        m.interests,
        m.allocs,
        m.events,
        alloc_reduction,
        throughput_x,
    )
}

fn emit_json(path: &str) {
    // Warm once so lazy initialisation (thread-locals, the first run's
    // one-time setup) does not pollute the counted run, then measure.
    let _ = measure_tactic();
    let tactic = measure_tactic();
    let _ = measure_baseline();
    let baseline = measure_baseline();
    let json = format!(
        "{{\n  \"bench\": \"datapath\",\n  \"sim_secs\": {},\n{},\n{}\n}}\n",
        SIM_SECS,
        plane_json(
            "tactic",
            &tactic,
            before::TACTIC_ALLOCS_PER_INTEREST,
            before::TACTIC_EVENTS_PER_SEC,
        ),
        plane_json(
            "baseline",
            &baseline,
            before::BASELINE_ALLOCS_PER_INTEREST,
            before::BASELINE_EVENTS_PER_SEC,
        ),
    );
    std::fs::write(path, &json).expect("write BENCH_datapath.json");
    println!("wrote {path}");
    print!("{json}");
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_transport_loop, bench_name_ops
}

fn main() {
    if std::env::var_os("BENCH_DATAPATH_PROBE").is_some() {
        probe();
        return;
    }
    benches();
    if let Ok(path) = std::env::var("BENCH_DATAPATH_JSON") {
        emit_json(&path);
    }
}

/// Ad-hoc allocation probe for single operations (dev aid, not CI).
fn probe() {
    use tactic::access::AccessLevel;
    use tactic::access_path::AccessPath;
    use tactic::tag::Tag;
    use tactic_crypto::schnorr::KeyPair;
    use tactic_ndn::packet::{Data, Interest, Payload};
    use tactic_sim::time::SimTime;

    let kp = KeyPair::derive(b"/prov", 0);
    let tag = Tag {
        provider_key_locator: "/prov/KEY/1".parse().unwrap(),
        access_level: AccessLevel::Level(3),
        client_key_locator: "/client/7/KEY/1".parse().unwrap(),
        access_path: AccessPath::from_u64(0x1234),
        expiry: SimTime::from_secs(3600),
    };
    let st = tag.sign(&kp);
    let enc = st.encode();
    let count = |label: &str, f: &mut dyn FnMut()| {
        f(); // warm
        let a0 = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..100 {
            f();
        }
        let per = (ALLOCS.load(Ordering::Relaxed) - a0) as f64 / 100.0;
        println!("{label}: {per:.1} allocs");
    };
    count("SignedTag::decode", &mut || {
        black_box(tactic::tag::SignedTag::decode(black_box(&enc)).unwrap());
    });
    count("SignedTag::encode", &mut || {
        black_box(black_box(&st).encode());
    });
    count("bloom_key", &mut || {
        black_box(black_box(&st).bloom_key());
    });
    count("verify", &mut || {
        black_box(black_box(&st).verify(&kp.public()));
    });
    let name: tactic_ndn::name::Name = "/prov/obj3/c7".parse().unwrap();
    let mut d = Data::new(name.clone(), Payload::Synthetic(8192));
    tactic::ext::set_data_tag(&mut d, &st);
    count("Data::clone (tagged)", &mut || {
        black_box(black_box(&d).clone());
    });
    count("ext::data_tag decode", &mut || {
        black_box(tactic::ext::data_tag(black_box(&d)));
    });
    count("set_data_tag", &mut || {
        let mut d2 = d.clone();
        tactic::ext::set_data_tag(&mut d2, black_box(&st));
    });
    let mut i = Interest::new(name.clone(), 7);
    tactic::ext::set_interest_tag(&mut i, &st);
    count("Interest::clone (tagged)", &mut || {
        black_box(black_box(&i).clone());
    });
    count("ext::interest_tag decode", &mut || {
        black_box(tactic::ext::interest_tag(black_box(&i)));
    });
    count("Name::clone", &mut || {
        black_box(black_box(&name).clone());
    });
}
