//! Micro-benchmarks of the hot operations the paper benchmarked in §8.A
//! (Bloom-filter lookup/insert, signature verification) plus the rest of
//! the per-packet fast path (pre-check, tag codec, names, wire, tables).
//!
//! The simulator never charges *our* wall-clock costs — it injects the
//! paper's measured distributions — so these benches exist to (a) sanity
//! check that signature verification dominates Bloom-filter operations by
//! orders of magnitude in our implementations too and (b) track
//! performance of the substrate itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use tactic::access::AccessLevel;
use tactic::access_path::AccessPath;
use tactic::precheck::{content_precheck, edge_precheck};
use tactic::tag::{SignedTag, Tag};
use tactic_bloom::{BloomFilter, BloomParams};
use tactic_crypto::schnorr::KeyPair;
use tactic_ndn::cs::ContentStore;
use tactic_ndn::face::FaceId;
use tactic_ndn::fib::Fib;
use tactic_ndn::name::Name;
use tactic_ndn::packet::{Data, Interest, Packet, Payload};
use tactic_ndn::pit::Pit;
use tactic_ndn::wire;
use tactic_sim::time::SimTime;

fn sample_tag(kp: &KeyPair) -> SignedTag {
    Tag {
        provider_key_locator: "/prov0/KEY/1".parse().unwrap(),
        access_level: AccessLevel::Level(2),
        client_key_locator: "/prov0/users/u7/KEY".parse().unwrap(),
        access_path: AccessPath::of([7, 42]),
        expiry: SimTime::from_secs(10),
    }
    .sign(kp)
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    let mut bf = BloomFilter::new(BloomParams::paper(500));
    for i in 0..400u64 {
        bf.insert(&i.to_le_bytes());
    }
    g.bench_function("lookup_hit", |b| {
        b.iter(|| black_box(bf.contains(black_box(&42u64.to_le_bytes()))))
    });
    g.bench_function("lookup_miss", |b| {
        b.iter(|| black_box(bf.contains(black_box(&999_999u64.to_le_bytes()))))
    });
    g.bench_function("insert", |b| {
        let mut i = 0u64;
        b.iter_batched(
            || BloomFilter::new(BloomParams::paper(500)),
            |mut bf| {
                i += 1;
                bf.insert(&i.to_le_bytes());
                black_box(bf.lifetime_insertions())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("estimated_fpp", |b| {
        b.iter(|| black_box(bf.estimated_fpp()))
    });
    g.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let mut g = c.benchmark_group("schnorr");
    let kp = KeyPair::derive(b"/prov0", 0);
    let msg = b"the tag bytes to be signed for benchmarking purposes";
    let sig = kp.sign(msg);
    g.bench_function("sign", |b| b.iter(|| black_box(kp.sign(black_box(msg)))));
    g.bench_function("verify", |b| {
        b.iter(|| black_box(kp.public().verify(black_box(msg), black_box(&sig))))
    });
    g.finish();
}

fn bench_tag(c: &mut Criterion) {
    let mut g = c.benchmark_group("tag");
    let kp = KeyPair::derive(b"/prov0", 0);
    let tag = sample_tag(&kp);
    let encoded = tag.encode();
    let name: Name = "/prov0/obj3/c7".parse().unwrap();
    let locator: Name = "/prov0/KEY/1".parse().unwrap();
    g.bench_function("encode", |b| b.iter(|| black_box(tag.encode())));
    g.bench_function("decode", |b| {
        b.iter(|| black_box(SignedTag::decode(black_box(&encoded))))
    });
    g.bench_function("verify", |b| b.iter(|| black_box(tag.verify(&kp.public()))));
    g.bench_function("precheck_edge", |b| {
        b.iter(|| {
            black_box(edge_precheck(
                &tag.tag,
                black_box(&name),
                SimTime::from_secs(1),
            ))
        })
    });
    g.bench_function("precheck_content", |b| {
        b.iter(|| {
            black_box(content_precheck(
                &tag.tag,
                AccessLevel::Level(1),
                black_box(&locator),
            ))
        })
    });
    g.bench_function("bloom_key", |b| b.iter(|| black_box(tag.bloom_key())));
    g.finish();
}

fn bench_ndn(c: &mut Criterion) {
    let mut g = c.benchmark_group("ndn");
    g.bench_function("name_parse", |b| {
        b.iter(|| black_box("/prov0/obj3/c7".parse::<Name>().unwrap()))
    });
    let kp = KeyPair::derive(b"/prov0", 0);
    let mut interest = Interest::new("/prov0/obj3/c7".parse().unwrap(), 1234);
    tactic::ext::set_interest_tag(&mut interest, &sample_tag(&kp));
    let pkt = Packet::from(interest);
    let encoded = wire::encode(&pkt);
    g.bench_function("wire_encode_interest", |b| {
        b.iter(|| black_box(wire::encode(&pkt)))
    });
    g.bench_function("wire_decode_interest", |b| {
        b.iter(|| black_box(wire::decode(black_box(&encoded)).unwrap()))
    });
    g.bench_function("wire_size_data_8k", |b| {
        let d = Packet::from(Data::new(
            "/prov0/obj3/c7".parse().unwrap(),
            Payload::Synthetic(8192),
        ));
        b.iter(|| black_box(wire::wire_size(&d)))
    });

    let mut fib = Fib::new();
    for i in 0..10 {
        fib.add_route(format!("/prov{i}").parse().unwrap(), FaceId::new(i), 1);
    }
    let lookup_name: Name = "/prov7/obj3/c7".parse().unwrap();
    g.bench_function("fib_lpm", |b| {
        b.iter(|| black_box(fib.next_hop(&lookup_name)))
    });

    g.bench_function("pit_aggregate_cycle", |b| {
        let name: Name = "/prov0/obj3/c7".parse().unwrap();
        b.iter_batched(
            Pit::<Vec<u8>>::new,
            |mut pit| {
                pit.on_interest(&name, FaceId::new(1), 1, SimTime::from_secs(4), vec![]);
                pit.on_interest(&name, FaceId::new(2), 2, SimTime::from_secs(4), vec![]);
                black_box(pit.take(&name))
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("cs_insert_get", |b| {
        let d = Data::new("/prov0/obj3/c7".parse().unwrap(), Payload::Synthetic(8192));
        let name = d.name().clone();
        b.iter_batched(
            || ContentStore::new(300),
            |mut cs| {
                cs.insert(d.clone());
                black_box(cs.get(&name).is_some())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1_000))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bloom, bench_schnorr, bench_tag, bench_ndn
}
criterion_main!(benches);
