//! # tactic-crypto
//!
//! Simulation-grade cryptographic substrate for the TACTIC reproduction:
//!
//! * [`hash`] — FNV-1a/SplitMix hashing and a 256-bit digest;
//! * [`schnorr`] — toy Schnorr signatures over ℤ(2⁶¹−1)\*: public-key
//!   verifiable, deterministic, tamper-evident (see the module docs for the
//!   explicit "not real-world secure" caveat);
//! * [`cert`] — certificates and the routers' provider-key registry (the
//!   paper's assumed PKI, §3.B).
//!
//! Computation *time* for these operations is charged from the paper's
//! benchmarked distributions by `tactic_sim::cost`, never from our own
//! wall-clock speed.
//!
//! # Examples
//!
//! ```
//! use tactic_crypto::schnorr::KeyPair;
//!
//! let provider = KeyPair::derive(b"/video-provider", 0);
//! let tag_bytes = b"<serialized tag>";
//! let sig = provider.sign(tag_bytes);
//! assert!(provider.public().verify(tag_bytes, &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod hash;
pub mod schnorr;

pub use cert::{CertError, CertStore, Certificate};
pub use hash::{Digest256, Hasher64};
pub use schnorr::{KeyId, KeyPair, PublicKey, Signature};
