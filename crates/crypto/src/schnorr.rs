//! Toy Schnorr signatures over ℤp*, p = 2⁶¹ − 1.
//!
//! The paper's routers verify provider signatures on tags with standard
//! public-key cryptography (via ndn-cxx). A real crypto library is outside
//! this reproduction's dependency budget, so we implement a *behaviourally
//! faithful* miniature: textbook Schnorr identification-turned-signature in
//! the multiplicative group modulo the Mersenne prime `p = 2^61 - 1`.
//!
//! Faithful in the ways that matter to the simulation:
//!
//! * verification needs only the **public** key;
//! * signatures are deterministic (derandomised nonce, RFC 6979-style);
//! * any bit flip in the message or signature makes verification fail with
//!   overwhelming probability;
//! * a party without the private key cannot fabricate a passing signature
//!   short of solving a discrete log (which no simulated attacker attempts).
//!
//! **Not secure in the real world** — 61-bit discrete logs are trivially
//! breakable. The simulated *time cost* of operations is charged separately
//! from the paper's benchmarks (`tactic_sim::cost`), so the toy group's
//! speed does not skew results.

use crate::hash::{Digest256, Hasher64};

/// The Mersenne prime 2⁶¹ − 1.
pub const P: u64 = (1 << 61) - 1;
/// Group order bound used for exponents (the multiplicative group has order
/// p − 1; we reduce exponents mod p − 1).
pub const Q: u64 = P - 1;
/// Generator of a large subgroup of ℤp*.
pub const G: u64 = 3;

/// `a * b mod P` without overflow.
#[inline]
fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `base ^ exp mod P` by square-and-multiply.
#[inline]
pub fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// A Schnorr private key (a secret exponent).
#[derive(Clone, PartialEq, Eq)]
pub struct PrivateKey {
    x: u64,
}

impl std::fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret scalar.
        f.debug_struct("PrivateKey")
            .field("x", &"<redacted>")
            .finish()
    }
}

/// A Schnorr public key `y = g^x mod p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey {
    y: u64,
}

impl PublicKey {
    /// The group element.
    pub fn element(&self) -> u64 {
        self.y
    }

    /// A short fingerprint of the key, used as an identifier in
    /// certificates, key locators, and Bloom-filter entries.
    pub fn key_id(&self) -> KeyId {
        let mut h = Hasher64::with_seed(0x6B65_795F_6964); // "key_id"
        h.update_u64(self.y);
        KeyId(h.finish())
    }
}

/// A 64-bit public-key fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct KeyId(pub u64);

impl std::fmt::Display for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A Schnorr key pair.
///
/// # Examples
///
/// ```
/// use tactic_crypto::schnorr::KeyPair;
///
/// let kp = KeyPair::derive(b"provider/alpha", 0);
/// let sig = kp.sign(b"message");
/// assert!(kp.public().verify(b"message", &sig));
/// assert!(!kp.public().verify(b"tampered", &sig));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    private: PrivateKey,
    public: PublicKey,
}

impl KeyPair {
    /// Derives a key pair deterministically from a label and a nonce
    /// (simulation entities derive their keys from their names so that runs
    /// reproduce exactly).
    pub fn derive(label: &[u8], nonce: u64) -> Self {
        let mut h = Hasher64::with_seed(0x53_4348_4E4F_5252); // "SCHNORR"
        h.update(label);
        h.update_u64(nonce);
        // x in [1, Q-1]
        let x = h.finish() % (Q - 1) + 1;
        Self::from_secret(x)
    }

    /// Builds a key pair from an explicit secret exponent.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in `[1, Q-1]`.
    pub fn from_secret(x: u64) -> Self {
        assert!((1..Q).contains(&x), "secret exponent out of range");
        let y = powmod(G, x, P);
        KeyPair {
            private: PrivateKey { x },
            public: PublicKey { y },
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs a message (deterministic nonce).
    pub fn sign(&self, msg: &[u8]) -> Signature {
        // Derandomised nonce: k = H(x || msg), nonzero mod Q.
        let mut h = Hasher64::with_seed(0x6E_6F6E_6365); // "nonce"
        h.update_u64(self.private.x);
        h.update(msg);
        let mut k = h.finish() % Q;
        if k == 0 {
            k = 1;
        }
        let r = powmod(G, k, P);
        let e = challenge(r, self.public.y, msg);
        // s = k - x*e mod Q
        let xe = ((self.private.x as u128 * e as u128) % Q as u128) as u64;
        let s = (k + Q - xe % Q) % Q;
        Signature { s, e }
    }
}

/// Schnorr challenge `e = H(R || y || msg) mod Q`, nonzero.
fn challenge(r: u64, y: u64, msg: &[u8]) -> u64 {
    let d = Digest256::of_parts(&[&r.to_le_bytes(), &y.to_le_bytes(), msg]);
    let mut e = d.fold64() % Q;
    if e == 0 {
        e = 1;
    }
    e
}

/// A Schnorr signature `(s, e)` in compact (challenge) form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Signature {
    /// Response scalar.
    pub s: u64,
    /// Challenge scalar.
    pub e: u64,
}

impl Signature {
    /// Wire size in bytes (two 8-byte scalars).
    pub const WIRE_LEN: usize = 16;

    /// Serialises to 16 bytes.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.s.to_le_bytes());
        out[8..].copy_from_slice(&self.e.to_le_bytes());
        out
    }

    /// Parses from 16 bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Signature {
            s: u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
            e: u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes")),
        }
    }

    /// A syntactically valid but cryptographically garbage signature,
    /// deterministically derived from a seed. Used by simulated attackers
    /// forging tags (threat (b) in the paper's §3.C).
    pub fn forged(seed: u64) -> Self {
        let mut h = Hasher64::with_seed(0x666F_7267_6564); // "forged"
        h.update_u64(seed);
        let s = h.finish() % Q;
        h.update_u64(s);
        let e = h.finish() % Q;
        Signature {
            s,
            e: if e == 0 { 1 } else { e },
        }
    }
}

impl PublicKey {
    /// Verifies a signature on `msg`.
    ///
    /// Recomputes `R' = g^s · y^e` and accepts iff the challenge recomputed
    /// from `R'` equals `e`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        if sig.e == 0 || sig.e >= Q || sig.s >= Q {
            return false;
        }
        let r = mulmod(powmod(G, sig.s, P), powmod(self.y, sig.e, P), P);
        challenge(r, self.y, msg) == sig.e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_is_the_mersenne_prime() {
        assert_eq!(P, 2_305_843_009_213_693_951);
    }

    #[test]
    fn powmod_small_cases() {
        assert_eq!(powmod(2, 10, 1_000_000), 1024);
        assert_eq!(powmod(3, 0, 7), 1);
        assert_eq!(powmod(5, 3, 13), 8);
        // Fermat: g^(p-1) = 1 mod p.
        assert_eq!(powmod(G, P - 1, P), 1);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::derive(b"prov", 1);
        for i in 0..50u64 {
            let msg = format!("message-{i}");
            let sig = kp.sign(msg.as_bytes());
            assert!(kp.public().verify(msg.as_bytes(), &sig));
        }
    }

    #[test]
    fn verification_rejects_tampered_message() {
        let kp = KeyPair::derive(b"prov", 2);
        let sig = kp.sign(b"original");
        assert!(!kp.public().verify(b"0riginal", &sig));
    }

    #[test]
    fn verification_rejects_tampered_signature() {
        let kp = KeyPair::derive(b"prov", 3);
        let mut sig = kp.sign(b"msg");
        sig.s ^= 1;
        assert!(!kp.public().verify(b"msg", &sig));
        let mut sig2 = kp.sign(b"msg");
        sig2.e ^= 1;
        assert!(!kp.public().verify(b"msg", &sig2));
    }

    #[test]
    fn verification_rejects_wrong_key() {
        let a = KeyPair::derive(b"prov", 4);
        let b = KeyPair::derive(b"prov", 5);
        let sig = a.sign(b"msg");
        assert!(!b.public().verify(b"msg", &sig));
    }

    #[test]
    fn forged_signatures_fail() {
        let kp = KeyPair::derive(b"prov", 6);
        for seed in 0..100 {
            assert!(!kp.public().verify(b"msg", &Signature::forged(seed)));
        }
    }

    #[test]
    fn signatures_are_deterministic() {
        let kp = KeyPair::derive(b"prov", 7);
        assert_eq!(kp.sign(b"m"), kp.sign(b"m"));
    }

    #[test]
    fn signature_wire_roundtrip() {
        let kp = KeyPair::derive(b"prov", 8);
        let sig = kp.sign(b"wire");
        assert_eq!(Signature::from_bytes(sig.to_bytes()), sig);
    }

    #[test]
    fn key_ids_distinguish_keys() {
        let a = KeyPair::derive(b"a", 0).public().key_id();
        let b = KeyPair::derive(b"b", 0).public().key_id();
        assert_ne!(a, b);
    }

    #[test]
    fn debug_redacts_private_key() {
        let kp = KeyPair::derive(b"secret-holder", 0);
        let s = format!("{:?}", kp);
        assert!(s.contains("redacted"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_secret_rejected() {
        KeyPair::from_secret(0);
    }

    #[test]
    fn malformed_scalars_rejected_fast() {
        let kp = KeyPair::derive(b"prov", 9);
        assert!(!kp.public().verify(b"m", &Signature { s: 0, e: 0 }));
        assert!(!kp.public().verify(b"m", &Signature { s: Q, e: 1 }));
        assert!(!kp.public().verify(b"m", &Signature { s: 1, e: Q }));
    }
}
