//! Self-contained non-cryptographic hashes.
//!
//! The simulator needs fast, deterministic, well-mixed hashes for Bloom
//! filters, access paths, key fingerprints, and the Schnorr challenge. We
//! use FNV-1a as the absorbing core and a SplitMix64-style finalizer for
//! avalanche. **Not collision-resistant against adversaries** — adequate
//! only inside a simulation, which is documented in DESIGN.md.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// One-shot FNV-1a over a byte slice.
///
/// # Examples
///
/// ```
/// use tactic_crypto::hash::fnv1a64;
///
/// assert_eq!(fnv1a64(b""), 0xCBF29CE484222325);
/// assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64-style finalizer: full-avalanche mixing of a 64-bit word.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An incremental 64-bit hasher (FNV-1a core + finalizer).
///
/// # Examples
///
/// ```
/// use tactic_crypto::hash::Hasher64;
///
/// let mut h = Hasher64::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let joint = h.finish();
///
/// let mut h2 = Hasher64::new();
/// h2.update(b"hello world");
/// assert_eq!(joint, h2.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hasher64 {
    state: u64,
}

impl Default for Hasher64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher64 {
    /// Creates a hasher with the standard FNV offset.
    pub fn new() -> Self {
        Hasher64 { state: FNV_OFFSET }
    }

    /// Creates a seeded hasher (distinct hash families per seed).
    pub fn with_seed(seed: u64) -> Self {
        Hasher64 {
            state: FNV_OFFSET ^ mix64(seed),
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a little-endian u64.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Finalizes into a well-mixed 64-bit digest.
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }
}

/// A 256-bit digest, exposed as four 64-bit lanes.
///
/// Built from four independently-seeded [`Hasher64`] passes; used as the
/// message digest inside simulated signatures so that any single-byte
/// change flips the digest with overwhelming probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Digest256(pub [u64; 4]);

impl Digest256 {
    /// Hashes a byte slice into a 256-bit digest.
    ///
    /// # Examples
    ///
    /// ```
    /// use tactic_crypto::hash::Digest256;
    ///
    /// let a = Digest256::of(b"content");
    /// let b = Digest256::of(b"content");
    /// let c = Digest256::of(b"Content");
    /// assert_eq!(a, b);
    /// assert_ne!(a, c);
    /// ```
    pub fn of(bytes: &[u8]) -> Self {
        let mut lanes = [0u64; 4];
        for (i, lane) in lanes.iter_mut().enumerate() {
            let mut h = Hasher64::with_seed(
                0xD1B5_4A32_D192_ED03 ^ (i as u64).wrapping_mul(0xABCD_EF12_3456_789B),
            );
            h.update(bytes);
            *lane = h.finish();
        }
        Digest256(lanes)
    }

    /// Hashes the concatenation of several byte slices (length-prefixed, so
    /// `["ab","c"]` and `["a","bc"]` differ).
    pub fn of_parts(parts: &[&[u8]]) -> Self {
        let mut lanes = [0u64; 4];
        for (i, lane) in lanes.iter_mut().enumerate() {
            let mut h = Hasher64::with_seed(
                0xD1B5_4A32_D192_ED03 ^ (i as u64).wrapping_mul(0xABCD_EF12_3456_789B),
            );
            for p in parts {
                h.update_u64(p.len() as u64);
                h.update(p);
            }
            *lane = h.finish();
        }
        Digest256(lanes)
    }

    /// Folds the digest into a single 64-bit word.
    pub fn fold64(&self) -> u64 {
        mix64(
            self.0[0]
                ^ self.0[1].rotate_left(16)
                ^ self.0[2].rotate_left(32)
                ^ self.0[3].rotate_left(48),
        )
    }

    /// The digest as raw bytes (little-endian lanes).
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, lane) in self.0.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&lane.to_le_bytes());
        }
        out
    }
}

impl std::fmt::Display for Digest256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:016x}{:016x}{:016x}{:016x}",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn seeded_hashers_form_distinct_families() {
        let mut a = Hasher64::with_seed(1);
        let mut b = Hasher64::with_seed(2);
        a.update(b"same input");
        b.update(b"same input");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Hasher64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), mix64(fnv1a64(b"foobar")));
    }

    #[test]
    fn digest_parts_are_length_prefixed() {
        let a = Digest256::of_parts(&[b"ab", b"c"]);
        let b = Digest256::of_parts(&[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn digest_avalanche() {
        let a = Digest256::of(b"tag-0001");
        let b = Digest256::of(b"tag-0002");
        let differing =
            a.0.iter()
                .zip(b.0.iter())
                .map(|(x, y)| (x ^ y).count_ones())
                .sum::<u32>();
        // ~128 of 256 bits should flip; accept a broad band.
        assert!(
            (64..192).contains(&differing),
            "only {differing} bits differ"
        );
    }

    #[test]
    fn digest_bytes_roundtrip_lanes() {
        let d = Digest256::of(b"x");
        let bytes = d.to_bytes();
        assert_eq!(u64::from_le_bytes(bytes[0..8].try_into().unwrap()), d.0[0]);
        assert_eq!(
            u64::from_le_bytes(bytes[24..32].try_into().unwrap()),
            d.0[3]
        );
    }

    #[test]
    fn mix64_changes_zero() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn fold64_is_stable() {
        let d = Digest256::of(b"stable");
        assert_eq!(d.fold64(), Digest256::of(b"stable").fold64());
    }
}
