//! Certificates and the routers' provider-key registry.
//!
//! The paper assumes "the existence of a public key infrastructure (PKI) by
//! which routers store the providers' public keys and certificates" (§3.B),
//! and argues storing them scales because "the universe of providers that
//! require access control ... would potentially number in a few thousands"
//! (§5). [`CertStore`] is that registry: a trust-anchor-rooted store keyed
//! by provider name and by key fingerprint.

use std::collections::HashMap;

use crate::schnorr::{KeyId, KeyPair, PublicKey, Signature};

/// A certificate binding a subject name to a public key, signed by an
/// issuer (the trust anchor in our single-level PKI).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    subject: String,
    key: PublicKey,
    issuer: KeyId,
    signature: Signature,
}

impl Certificate {
    /// Issues a certificate for `subject`/`key` signed by `issuer`.
    pub fn issue(subject: impl Into<String>, key: PublicKey, issuer: &KeyPair) -> Self {
        let subject = subject.into();
        let signature = issuer.sign(&Self::tbs(&subject, &key));
        Certificate {
            subject,
            key,
            issuer: issuer.public().key_id(),
            signature,
        }
    }

    fn tbs(subject: &str, key: &PublicKey) -> Vec<u8> {
        let mut msg = Vec::with_capacity(subject.len() + 8);
        msg.extend_from_slice(subject.as_bytes());
        msg.extend_from_slice(&key.element().to_le_bytes());
        msg
    }

    /// The certified subject name.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// The certified public key.
    pub fn key(&self) -> PublicKey {
        self.key
    }

    /// Fingerprint of the issuing key.
    pub fn issuer(&self) -> KeyId {
        self.issuer
    }

    /// Verifies the certificate against the purported issuer key.
    pub fn verify(&self, issuer: &PublicKey) -> bool {
        issuer.key_id() == self.issuer
            && issuer.verify(&Self::tbs(&self.subject, &self.key), &self.signature)
    }
}

/// Errors returned by [`CertStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// The certificate's issuer is not a trust anchor of this store.
    UnknownIssuer(KeyId),
    /// The certificate's signature does not verify.
    BadSignature {
        /// The offending subject.
        subject: String,
    },
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::UnknownIssuer(id) => write!(f, "unknown issuer {id}"),
            CertError::BadSignature { subject } => {
                write!(f, "certificate signature for `{subject}` does not verify")
            }
        }
    }
}

impl std::error::Error for CertError {}

/// A router-side registry of provider keys, rooted in trust anchors.
///
/// # Examples
///
/// ```
/// use tactic_crypto::cert::{CertStore, Certificate};
/// use tactic_crypto::schnorr::KeyPair;
///
/// let anchor = KeyPair::derive(b"isp-root", 0);
/// let provider = KeyPair::derive(b"/netflix", 0);
/// let cert = Certificate::issue("/netflix", provider.public(), &anchor);
///
/// let mut store = CertStore::new();
/// store.add_anchor(anchor.public());
/// store.register(cert)?;
/// assert!(store.key_for("/netflix").is_some());
/// # Ok::<(), tactic_crypto::cert::CertError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CertStore {
    anchors: HashMap<KeyId, PublicKey>,
    by_subject: HashMap<String, Certificate>,
    by_key_id: HashMap<KeyId, PublicKey>,
}

impl CertStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a trust anchor.
    pub fn add_anchor(&mut self, anchor: PublicKey) {
        self.anchors.insert(anchor.key_id(), anchor);
    }

    /// Registers a certificate after verifying it chains to an anchor.
    ///
    /// # Errors
    ///
    /// [`CertError::UnknownIssuer`] if the issuer is not an anchor;
    /// [`CertError::BadSignature`] if verification fails.
    pub fn register(&mut self, cert: Certificate) -> Result<(), CertError> {
        let issuer = self
            .anchors
            .get(&cert.issuer())
            .ok_or(CertError::UnknownIssuer(cert.issuer()))?;
        if !cert.verify(issuer) {
            return Err(CertError::BadSignature {
                subject: cert.subject().to_owned(),
            });
        }
        self.by_key_id.insert(cert.key().key_id(), cert.key());
        self.by_subject.insert(cert.subject().to_owned(), cert);
        Ok(())
    }

    /// Looks up a provider key by subject name.
    pub fn key_for(&self, subject: &str) -> Option<PublicKey> {
        self.by_subject.get(subject).map(Certificate::key)
    }

    /// Looks up a key by fingerprint.
    pub fn key_by_id(&self, id: KeyId) -> Option<PublicKey> {
        self.by_key_id.get(&id).copied()
    }

    /// Number of registered certificates.
    pub fn len(&self) -> usize {
        self.by_subject.len()
    }

    /// True if no certificates are registered.
    pub fn is_empty(&self) -> bool {
        self.by_subject.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KeyPair, KeyPair, Certificate) {
        let anchor = KeyPair::derive(b"root", 0);
        let provider = KeyPair::derive(b"/cnn", 0);
        let cert = Certificate::issue("/cnn", provider.public(), &anchor);
        (anchor, provider, cert)
    }

    #[test]
    fn issue_and_verify() {
        let (anchor, _, cert) = setup();
        assert!(cert.verify(&anchor.public()));
    }

    #[test]
    fn verify_rejects_wrong_issuer() {
        let (_, _, cert) = setup();
        let other = KeyPair::derive(b"other-root", 0);
        assert!(!cert.verify(&other.public()));
    }

    #[test]
    fn store_accepts_chained_cert() {
        let (anchor, provider, cert) = setup();
        let mut store = CertStore::new();
        store.add_anchor(anchor.public());
        store.register(cert).unwrap();
        assert_eq!(store.key_for("/cnn"), Some(provider.public()));
        assert_eq!(
            store.key_by_id(provider.public().key_id()),
            Some(provider.public())
        );
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn store_rejects_unknown_issuer() {
        let (_, _, cert) = setup();
        let mut store = CertStore::new();
        let err = store.register(cert.clone()).unwrap_err();
        assert_eq!(err, CertError::UnknownIssuer(cert.issuer()));
    }

    #[test]
    fn store_rejects_forged_cert() {
        let (anchor, provider, _) = setup();
        let mallory = KeyPair::derive(b"mallory", 0);
        // Mallory self-issues a cert claiming the anchor signed it.
        let mut forged = Certificate::issue("/cnn", provider.public(), &mallory);
        forged.issuer = anchor.public().key_id();
        let mut store = CertStore::new();
        store.add_anchor(anchor.public());
        let err = store.register(forged).unwrap_err();
        assert!(matches!(err, CertError::BadSignature { .. }));
    }

    #[test]
    fn lookup_miss_returns_none() {
        let store = CertStore::new();
        assert!(store.key_for("/nope").is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn errors_display() {
        let (_, _, cert) = setup();
        let e = CertError::UnknownIssuer(cert.issuer());
        assert!(e.to_string().contains("unknown issuer"));
        let e2 = CertError::BadSignature {
            subject: "/x".into(),
        };
        assert!(e2.to_string().contains("/x"));
    }
}
