//! Property-based tests for the crypto substrate.

use proptest::prelude::*;

use tactic_crypto::cert::{CertStore, Certificate};
use tactic_crypto::hash::{Digest256, Hasher64};
use tactic_crypto::schnorr::{KeyPair, Signature, Q};

proptest! {
    #[test]
    fn sign_verify_roundtrip_any_message(label in proptest::collection::vec(any::<u8>(), 0..64), msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let kp = KeyPair::derive(&label, 0);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public().verify(&msg, &sig));
    }

    #[test]
    fn verification_rejects_any_single_byte_flip(msg in proptest::collection::vec(any::<u8>(), 1..128), idx in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let kp = KeyPair::derive(b"prover", 0);
        let sig = kp.sign(&msg);
        let mut tampered = msg.clone();
        let i = idx.index(tampered.len());
        tampered[i] ^= flip;
        prop_assert!(!kp.public().verify(&tampered, &sig));
    }

    #[test]
    fn verification_rejects_random_signatures(msg in proptest::collection::vec(any::<u8>(), 0..64), s in any::<u64>(), e in any::<u64>()) {
        let kp = KeyPair::derive(b"prover", 1);
        let sig = Signature { s: s % Q, e: e % Q };
        // The genuine signature is astronomically unlikely to be drawn.
        let genuine = kp.sign(&msg);
        prop_assume!(sig != genuine);
        prop_assert!(!kp.public().verify(&msg, &sig));
    }

    #[test]
    fn signature_wire_roundtrip(s in any::<u64>(), e in any::<u64>()) {
        let sig = Signature { s, e };
        prop_assert_eq!(Signature::from_bytes(sig.to_bytes()), sig);
    }

    #[test]
    fn distinct_keys_have_distinct_ids(a in 1u64..Q, b in 1u64..Q) {
        prop_assume!(a != b);
        let ka = KeyPair::from_secret(a).public();
        let kb = KeyPair::from_secret(b).public();
        // Distinct secrets can collide in y only if g^a == g^b.
        prop_assume!(ka != kb);
        prop_assert_ne!(ka.key_id(), kb.key_id());
    }

    #[test]
    fn hasher_is_deterministic_and_prefix_sensitive(data in proptest::collection::vec(any::<u8>(), 1..128)) {
        let mut h1 = Hasher64::new();
        h1.update(&data);
        let mut h2 = Hasher64::new();
        h2.update(&data);
        prop_assert_eq!(h1.finish(), h2.finish());
        let mut h3 = Hasher64::new();
        h3.update(&data[..data.len() - 1]);
        // Dropping the last byte must change the digest.
        prop_assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn digest_parts_injective_on_boundaries(a in proptest::collection::vec(any::<u8>(), 0..32), b in proptest::collection::vec(any::<u8>(), 1..32)) {
        // Moving a byte across the part boundary must change the digest.
        let mut a2 = a.clone();
        a2.push(b[0]);
        let d1 = Digest256::of_parts(&[&a, &b]);
        let d2 = Digest256::of_parts(&[&a2, &b[1..]]);
        prop_assert_ne!(d1, d2);
    }

    #[test]
    fn certificates_verify_only_under_their_issuer(subject in "[a-z/]{1,24}", issuer_nonce in 0u64..1000, other_nonce in 0u64..1000) {
        prop_assume!(issuer_nonce != other_nonce);
        let issuer = KeyPair::derive(b"issuer", issuer_nonce);
        let other = KeyPair::derive(b"issuer", other_nonce);
        let subject_key = KeyPair::derive(subject.as_bytes(), 0);
        let cert = Certificate::issue(subject.clone(), subject_key.public(), &issuer);
        prop_assert!(cert.verify(&issuer.public()));
        prop_assert!(!cert.verify(&other.public()));

        let mut store = CertStore::new();
        store.add_anchor(issuer.public());
        prop_assert!(store.register(cert).is_ok());
        prop_assert_eq!(store.key_for(&subject), Some(subject_key.public()));
    }
}
