//! The baseline access-control mechanisms TACTIC is motivated against.

/// A baseline mechanism class from the paper's §1–§2 taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// No access control at all: vanilla NDN. The upper bound on cache
    /// utilisation, the lower bound on security.
    NoAccessControl,
    /// Client-side (decryption-delegated) enforcement, à la Misra \[3]/\[7]
    /// and Mangili \[5]: *everyone* can retrieve the encrypted content from
    /// caches; only authorised clients hold decryption keys. Unauthorized
    /// retrievals waste bandwidth and enable the DDoS vector the paper
    /// warns about (§1).
    ClientSideAc,
    /// Provider-side enforcement, à la Wood \[14] and Li \[16]: an
    /// always-online provider authenticates every request, so protected
    /// content cannot be served from caches (sessions are per-client:
    /// unique names, no aggregation, no cache reuse).
    ProviderAuthAc,
}

impl Mechanism {
    /// All baselines, in comparison order.
    pub const ALL: [Mechanism; 3] = [
        Mechanism::NoAccessControl,
        Mechanism::ClientSideAc,
        Mechanism::ProviderAuthAc,
    ];

    /// Whether caches may serve protected content under this mechanism.
    pub fn caches_protected_content(self) -> bool {
        !matches!(self, Mechanism::ProviderAuthAc)
    }

    /// Whether the provider must authenticate every request.
    pub fn per_request_provider_auth(self) -> bool {
        matches!(self, Mechanism::ProviderAuthAc)
    }

    /// Whether unauthorized users can pull (encrypted) content out of the
    /// network.
    pub fn leaks_encrypted_content(self) -> bool {
        matches!(self, Mechanism::NoAccessControl | Mechanism::ClientSideAc)
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Mechanism::NoAccessControl => "no-access-control",
            Mechanism::ClientSideAc => "client-side-ac",
            Mechanism::ProviderAuthAc => "provider-auth-ac",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cacheability_matches_design() {
        assert!(Mechanism::NoAccessControl.caches_protected_content());
        assert!(Mechanism::ClientSideAc.caches_protected_content());
        assert!(!Mechanism::ProviderAuthAc.caches_protected_content());
    }

    #[test]
    fn auth_and_leak_properties() {
        assert!(Mechanism::ProviderAuthAc.per_request_provider_auth());
        assert!(!Mechanism::ClientSideAc.per_request_provider_auth());
        assert!(Mechanism::ClientSideAc.leaks_encrypted_content());
        assert!(!Mechanism::ProviderAuthAc.leaks_encrypted_content());
    }

    #[test]
    fn display_names() {
        assert_eq!(Mechanism::ClientSideAc.to_string(), "client-side-ac");
    }
}
