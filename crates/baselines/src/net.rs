//! A baseline-mechanism network simulation.
//!
//! Runs the same topologies, link models, and Zipf-window workload as the
//! TACTIC simulation, but with vanilla NDN routers and one of the
//! [`Mechanism`] baselines, to quantify the paper's motivation (§1): how
//! much bandwidth client-side AC wastes on unauthorized users, and how
//! much load/latency an always-online provider-auth scheme costs.

use std::collections::{HashMap, VecDeque};

use tactic::scenario::{Scenario, TopologyChoice};
use tactic_ndn::face::FaceId;
use tactic_ndn::forwarder::{process_data, process_interest, InterestAction, Tables};
use tactic_ndn::name::Name;
use tactic_ndn::packet::{Data, Interest, Packet, Payload};
use tactic_ndn::wire::wire_size;
use tactic_sim::cost::{CostModel, Op};
use tactic_sim::dist::Zipf;
use tactic_sim::engine::Engine;
use tactic_sim::rng::Rng;
use tactic_sim::stats::TimeSeries;
use tactic_sim::time::{SimDuration, SimTime};
use tactic_topology::graph::{LinkSpec, NodeId, Role};
use tactic_topology::roles::{build_topology, Topology};
use tactic_topology::routing::routes_toward;

use crate::mechanism::Mechanism;

/// What one baseline run measured.
#[derive(Debug, Clone, Default)]
pub struct BaselineReport {
    /// The mechanism simulated.
    pub mechanism_name: String,
    /// Chunks requested by clients.
    pub client_requested: u64,
    /// Chunks received by clients.
    pub client_received: u64,
    /// Chunks requested by attackers.
    pub attacker_requested: u64,
    /// Chunks delivered to attackers (for `ClientSideAc` these are the
    /// wasted encrypted deliveries; for `ProviderAuthAc` they should be 0).
    pub attacker_received: u64,
    /// Bytes of payload delivered to attackers.
    pub attacker_bytes: u64,
    /// Content requests the provider itself had to answer.
    pub provider_handled: u64,
    /// Per-request authentications performed by providers.
    pub provider_auth_ops: u64,
    /// Client retrieval latencies over time.
    pub latency: TimeSeries,
    /// Aggregate router cache hits.
    pub cache_hits: u64,
    /// Aggregate router cache misses.
    pub cache_misses: u64,
    /// Engine events processed.
    pub events: u64,
}

impl BaselineReport {
    /// Clients' delivery ratio.
    pub fn client_ratio(&self) -> f64 {
        ratio(self.client_received, self.client_requested)
    }

    /// Attackers' delivery ratio.
    pub fn attacker_ratio(&self) -> f64 {
        ratio(self.attacker_received, self.attacker_requested)
    }

    /// Mean client retrieval latency in seconds.
    pub fn mean_latency(&self) -> f64 {
        self.latency.overall_mean()
    }

    /// Router cache hit ratio.
    pub fn cache_hit_ratio(&self) -> f64 {
        ratio(self.cache_hits, self.cache_hits + self.cache_misses)
    }
}

fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

#[derive(Debug)]
enum Ev {
    Deliver {
        node: NodeId,
        face: FaceId,
        packet: Packet,
    },
    Start {
        node: NodeId,
    },
    Timeout {
        node: NodeId,
        name: Name,
        sent: SimTime,
    },
    Purge,
}

struct Requester {
    principal: u64,
    is_client: bool,
    window: usize,
    timeout: SimDuration,
    zipf: Zipf,
    rng: Rng,
    catalog: Vec<(Name, usize, usize)>, // (prefix, objects, chunks)
    per_session_names: bool,
    current: Option<(usize, usize, usize)>,
    retry: VecDeque<(usize, usize, usize)>,
    in_flight: HashMap<Name, SimTime>,
    nonce: u64,
    requested: u64,
    received: u64,
    received_bytes: u64,
    latencies: Vec<(SimTime, f64)>,
}

impl Requester {
    fn chunk_name(&self, prov: usize, obj: usize, chunk: usize) -> Name {
        let base = self.catalog[prov]
            .0
            .child(format!("obj{obj}"))
            .child(format!("c{chunk}"));
        if self.per_session_names {
            base.child(format!("u{}", self.principal))
        } else {
            base
        }
    }

    fn next_work(&mut self) -> (usize, usize, usize) {
        if let Some(w) = self.retry.pop_front() {
            return w;
        }
        match self.current {
            Some((p, o, c)) if c < self.catalog[p].2 => {
                self.current = Some((p, o, c + 1));
                (p, o, c)
            }
            _ => {
                let mut rank = self.zipf.sample(&mut self.rng);
                let mut prov = 0;
                for (i, c) in self.catalog.iter().enumerate() {
                    if rank < c.1 {
                        prov = i;
                        break;
                    }
                    rank -= c.1;
                }
                self.current = Some((prov, rank, 1));
                (prov, rank, 0)
            }
        }
    }

    fn fill(&mut self, now: SimTime) -> Vec<Interest> {
        let mut out = Vec::new();
        while self.in_flight.len() < self.window {
            let (p, o, c) = self.next_work();
            let name = self.chunk_name(p, o, c);
            if self.in_flight.contains_key(&name) {
                continue;
            }
            self.nonce += 1;
            let mut i = Interest::new(name.clone(), (self.principal << 24) ^ self.nonce);
            i.set_lifetime_ms((self.timeout.as_nanos() / 1_000_000) as u32);
            self.requested += 1;
            self.in_flight.insert(name, now);
            out.push(i);
        }
        out
    }

    fn on_data(&mut self, d: &Data, now: SimTime) -> Vec<Interest> {
        if let Some(sent) = self.in_flight.remove(d.name()) {
            self.received += 1;
            self.received_bytes += d.payload().len() as u64;
            self.latencies
                .push((now, now.saturating_since(sent).as_secs_f64()));
        }
        self.fill(now)
    }

    fn on_timeout(&mut self, name: &Name, sent: SimTime, now: SimTime) -> Vec<Interest> {
        if self.in_flight.get(name) != Some(&sent) {
            return Vec::new();
        }
        self.in_flight.remove(name);
        // Re-derive the work from the name is unnecessary: just refill; the
        // Zipf walk continues (lost chunks are abandoned, matching an
        // attacker hammering or a client moving on after expiry).
        self.fill(now)
    }
}

struct BaselineProvider {
    prefix: Name,
    objects: usize,
    chunks: usize,
    chunk_size: usize,
    authorized: std::collections::HashSet<u64>,
    handled: u64,
    auth_ops: u64,
}

impl BaselineProvider {
    /// Parses `/<prefix>/objI/cJ[/uN]`.
    fn parse(&self, name: &Name) -> Option<(usize, usize, Option<u64>)> {
        if !self.prefix.is_prefix_of(name) {
            return None;
        }
        let rest = name.len() - self.prefix.len();
        if !(2..=3).contains(&rest) {
            return None;
        }
        let obj: usize = std::str::from_utf8(name.get(self.prefix.len())?.as_bytes())
            .ok()?
            .strip_prefix("obj")?
            .parse()
            .ok()?;
        let chunk: usize = std::str::from_utf8(name.get(self.prefix.len() + 1)?.as_bytes())
            .ok()?
            .strip_prefix('c')?
            .parse()
            .ok()?;
        let principal = if rest == 3 {
            Some(
                std::str::from_utf8(name.get(self.prefix.len() + 2)?.as_bytes())
                    .ok()?
                    .strip_prefix('u')?
                    .parse()
                    .ok()?,
            )
        } else {
            None
        };
        (obj < self.objects && chunk < self.chunks).then_some((obj, chunk, principal))
    }

    fn handle(
        &mut self,
        interest: &Interest,
        mechanism: Mechanism,
        rng: &mut Rng,
        cost: &CostModel,
    ) -> (Option<Data>, SimDuration) {
        let mut charge = SimDuration::ZERO;
        let Some((_, _, principal)) = self.parse(interest.name()) else {
            return (None, charge);
        };
        self.handled += 1;
        if mechanism.per_request_provider_auth() {
            self.auth_ops += 1;
            charge += cost.sample(Op::SigVerify, rng);
            match principal {
                Some(p) if self.authorized.contains(&p) => {}
                _ => return (None, charge), // Unauthorized: drop.
            }
        }
        let d = Data::new(interest.name().clone(), Payload::Synthetic(self.chunk_size));
        (Some(d), charge)
    }
}

enum Node {
    Router(Tables),
    Provider(BaselineProvider),
    Requester(Box<Requester>),
    Ap {
        upstream: FaceId,
        pending: HashMap<Name, Vec<(FaceId, SimTime)>>,
    },
}

/// The assembled baseline simulation.
pub struct BaselineNetwork {
    mechanism: Mechanism,
    engine: Engine<Ev>,
    nodes: Vec<Node>,
    neighbors: Vec<Vec<(NodeId, LinkSpec)>>,
    face_index: Vec<HashMap<NodeId, FaceId>>,
    link_busy: HashMap<(usize, usize), SimTime>,
    rng: Rng,
    cost: CostModel,
    request_timeout: SimDuration,
}

impl BaselineNetwork {
    /// Builds a baseline run from the same [`Scenario`] shape the TACTIC
    /// simulation uses (tag-related fields are ignored).
    pub fn build(scenario: &Scenario, mechanism: Mechanism, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed ^ 0xBA5E_11E5);
        let topo: Topology = match scenario.topology {
            TopologyChoice::Paper(p) => p.build(seed),
            TopologyChoice::Custom(spec) => build_topology(&spec, &mut rng.fork(1)),
        };
        let n = topo.graph.node_count();
        let mut neighbors: Vec<Vec<(NodeId, LinkSpec)>> = vec![Vec::new(); n];
        let mut face_index: Vec<HashMap<NodeId, FaceId>> = vec![HashMap::new(); n];
        for node in topo.graph.nodes() {
            for (peer, link_id) in topo.graph.incident(node) {
                let spec = topo.graph.link(link_id).spec;
                let face = FaceId::new(neighbors[node.0].len() as u32);
                neighbors[node.0].push((peer, spec));
                face_index[node.0].insert(peer, face);
            }
        }

        let catalog: Vec<(Name, usize, usize)> = (0..topo.providers.len())
            .map(|i| {
                (
                    format!("/prov{i}").parse().expect("static"),
                    scenario.objects_per_provider,
                    scenario.chunks_per_object,
                )
            })
            .collect();

        let clients: std::collections::HashSet<u64> =
            topo.clients.iter().map(|c| c.0 as u64).collect();

        // Routers: disable caching entirely for provider-auth (protected
        // content must reach the provider).
        let cs_capacity = if mechanism.caches_protected_content() {
            scenario.cs_capacity
        } else {
            0
        };

        let mut tables_map: HashMap<usize, Tables> = HashMap::new();
        for r in topo.routers() {
            tables_map.insert(r.0, Tables::new(cs_capacity));
        }
        for (i, &pnode) in topo.providers.iter().enumerate() {
            let prefix: Name = format!("/prov{i}").parse().expect("static");
            let routes = routes_toward(&topo.graph, pnode);
            for r in topo.routers() {
                if let Some(entry) = routes[r.0] {
                    let face = face_index[r.0][&entry.next_hop];
                    tables_map.get_mut(&r.0).expect("router").fib.add_route(
                        prefix.clone(),
                        face,
                        (entry.cost.as_nanos() / 1_000).min(u32::MAX as u64) as u32,
                    );
                }
            }
        }

        let total_objects = catalog.iter().map(|c| c.1).sum::<usize>();
        let mut nodes = Vec::with_capacity(n);
        let mut provider_idx = 0usize;
        for node in topo.graph.nodes() {
            let state = match topo.graph.role(node) {
                Role::CoreRouter | Role::EdgeRouter => {
                    Node::Router(tables_map.remove(&node.0).expect("router"))
                }
                Role::Provider => {
                    let (prefix, objects, chunks) = catalog[provider_idx].clone();
                    provider_idx += 1;
                    Node::Provider(BaselineProvider {
                        prefix,
                        objects,
                        chunks,
                        chunk_size: scenario.chunk_size,
                        authorized: clients.clone(),
                        handled: 0,
                        auth_ops: 0,
                    })
                }
                Role::Client | Role::Attacker => Node::Requester(Box::new(Requester {
                    principal: node.0 as u64,
                    is_client: topo.graph.role(node) == Role::Client,
                    window: scenario.window,
                    timeout: scenario.request_timeout,
                    zipf: Zipf::new(total_objects, scenario.zipf_alpha),
                    rng: rng.fork(0x200 + node.0 as u64),
                    catalog: catalog.clone(),
                    per_session_names: mechanism.per_request_provider_auth(),
                    current: None,
                    retry: VecDeque::new(),
                    in_flight: HashMap::new(),
                    nonce: 0,
                    requested: 0,
                    received: 0,
                    received_bytes: 0,
                    latencies: Vec::new(),
                })),
                Role::AccessPoint => {
                    let upstream = neighbors[node.0]
                        .iter()
                        .position(|&(peer, _)| topo.graph.role(peer) == Role::EdgeRouter)
                        .map(|i| FaceId::new(i as u32))
                        .expect("AP wired to edge router");
                    Node::Ap {
                        upstream,
                        pending: HashMap::new(),
                    }
                }
            };
            nodes.push(state);
        }

        let mut engine = Engine::with_horizon(SimTime::ZERO + scenario.duration);
        for u in topo.users() {
            let offset = SimDuration::from_nanos(rng.below(1_000_000_000));
            engine.schedule(SimTime::ZERO + offset, Ev::Start { node: u });
        }
        engine.schedule(SimTime::from_secs(1), Ev::Purge);

        BaselineNetwork {
            mechanism,
            engine,
            nodes,
            neighbors,
            face_index,
            link_busy: HashMap::new(),
            rng,
            cost: scenario.cost_model.clone(),
            request_timeout: scenario.request_timeout,
        }
    }

    /// Runs to the horizon and reports.
    pub fn run(mut self) -> BaselineReport {
        while let Some(ev) = self.engine.pop() {
            self.dispatch(ev);
        }
        let mut report = BaselineReport {
            mechanism_name: self.mechanism.to_string(),
            events: self.engine.processed(),
            ..Default::default()
        };
        for node in self.nodes {
            match node {
                Node::Router(t) => {
                    report.cache_hits += t.cs.hits();
                    report.cache_misses += t.cs.misses();
                }
                Node::Provider(p) => {
                    report.provider_handled += p.handled;
                    report.provider_auth_ops += p.auth_ops;
                }
                Node::Requester(r) => {
                    if r.is_client {
                        report.client_requested += r.requested;
                        report.client_received += r.received;
                        for (at, lat) in r.latencies {
                            report.latency.record(at, lat);
                        }
                    } else {
                        report.attacker_requested += r.requested;
                        report.attacker_received += r.received;
                        report.attacker_bytes += r.received_bytes;
                    }
                }
                Node::Ap { .. } => {}
            }
        }
        report
    }

    fn dispatch(&mut self, ev: Ev) {
        let now = self.engine.now();
        match ev {
            Ev::Start { node } => {
                let Node::Requester(r) = &mut self.nodes[node.0] else {
                    return;
                };
                let sends = r.fill(now);
                self.requester_send(node, sends);
            }
            Ev::Timeout { node, name, sent } => {
                let Node::Requester(r) = &mut self.nodes[node.0] else {
                    return;
                };
                let sends = r.on_timeout(&name, sent, now);
                self.requester_send(node, sends);
            }
            Ev::Purge => {
                for node in &mut self.nodes {
                    match node {
                        Node::Router(t) => {
                            t.pit.purge_expired(now);
                        }
                        Node::Ap { pending, .. } => {
                            pending.retain(|_, v| {
                                v.retain(|&(_, t)| {
                                    now.saturating_since(t) < SimDuration::from_secs(4)
                                });
                                !v.is_empty()
                            });
                        }
                        _ => {}
                    }
                }
                self.engine
                    .schedule_after(SimDuration::from_secs(1), Ev::Purge);
            }
            Ev::Deliver { node, face, packet } => match &mut self.nodes[node.0] {
                Node::Router(tables) => {
                    let sends: Vec<(FaceId, Packet)> = match &packet {
                        Packet::Interest(i) => {
                            match process_interest(tables, i, face, now, Vec::new()) {
                                InterestAction::ReplyFromCache(d) => vec![(face, Packet::Data(d))],
                                InterestAction::Forward(f) => vec![(f, packet.clone())],
                                _ => Vec::new(),
                            }
                        }
                        Packet::Data(d) => {
                            let action = process_data(tables, d);
                            action
                                .downstream
                                .into_iter()
                                .map(|rec| (rec.face, Packet::Data(d.clone())))
                                .collect()
                        }
                        Packet::Nack(_) => Vec::new(),
                    };
                    for (f, pkt) in sends {
                        self.transmit(node, f, pkt, SimDuration::ZERO);
                    }
                }
                Node::Provider(p) => {
                    if let Packet::Interest(i) = &packet {
                        let (reply, charge) =
                            p.handle(i, self.mechanism, &mut self.rng, &self.cost);
                        if let Some(d) = reply {
                            self.transmit(node, face, Packet::Data(d), charge);
                        }
                    }
                }
                Node::Requester(r) => {
                    if let Packet::Data(d) = &packet {
                        let sends = r.on_data(d, now);
                        self.requester_send(node, sends);
                    }
                }
                Node::Ap { upstream, pending } => match packet {
                    Packet::Interest(i) => {
                        if face == *upstream {
                            return;
                        }
                        pending
                            .entry(i.name().clone())
                            .or_default()
                            .push((face, now));
                        let up = *upstream;
                        self.transmit(node, up, Packet::Interest(i), SimDuration::ZERO);
                    }
                    Packet::Data(d) => {
                        let faces = pending.remove(d.name()).unwrap_or_default();
                        for (f, _) in faces {
                            self.transmit(node, f, Packet::Data(d.clone()), SimDuration::ZERO);
                        }
                    }
                    Packet::Nack(_) => {}
                },
            },
        }
    }

    fn requester_send(&mut self, node: NodeId, sends: Vec<Interest>) {
        let now = self.engine.now();
        for i in sends {
            self.engine.schedule(
                now + self.request_timeout,
                Ev::Timeout {
                    node,
                    name: i.name().clone(),
                    sent: now,
                },
            );
            self.transmit(node, FaceId::new(0), Packet::Interest(i), SimDuration::ZERO);
        }
    }

    fn transmit(&mut self, from: NodeId, out_face: FaceId, packet: Packet, compute: SimDuration) {
        let Some(&(to, spec)) = self.neighbors[from.0].get(out_face.index() as usize) else {
            return;
        };
        let now = self.engine.now();
        let size = wire_size(&packet);
        let ready = now + compute;
        let busy = self
            .link_busy
            .get(&(from.0, to.0))
            .copied()
            .unwrap_or(SimTime::ZERO);
        let depart = ready.max(busy);
        let serialize = spec.serialization_delay(size);
        self.link_busy.insert((from.0, to.0), depart + serialize);
        let arrival = depart + serialize + spec.latency;
        let in_face = self.face_index[to.0][&from];
        self.engine.schedule(
            arrival,
            Ev::Deliver {
                node: to,
                face: in_face,
                packet,
            },
        );
    }
}

/// Builds and runs one baseline.
pub fn run_baseline(scenario: &Scenario, mechanism: Mechanism, seed: u64) -> BaselineReport {
    BaselineNetwork::build(scenario, mechanism, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        let mut s = Scenario::small();
        s.duration = SimDuration::from_secs(10);
        s
    }

    #[test]
    fn client_side_ac_leaks_encrypted_content_to_attackers() {
        let r = run_baseline(&scenario(), Mechanism::ClientSideAc, 1);
        assert!(r.client_ratio() > 0.9, "client ratio {}", r.client_ratio());
        assert!(
            r.attacker_ratio() > 0.9,
            "attackers must receive encrypted content (ratio {})",
            r.attacker_ratio()
        );
        assert!(
            r.attacker_bytes > 100_000,
            "wasted bytes {}",
            r.attacker_bytes
        );
        assert!(r.cache_hits > 0, "caches must be used");
    }

    #[test]
    fn provider_auth_blocks_attackers_but_loads_provider() {
        let r = run_baseline(&scenario(), Mechanism::ProviderAuthAc, 1);
        assert!(r.client_ratio() > 0.9, "client ratio {}", r.client_ratio());
        assert_eq!(r.attacker_received, 0, "provider auth must block attackers");
        assert_eq!(r.cache_hits, 0, "no cache reuse under provider auth");
        assert!(r.provider_auth_ops > 0);
        // Every answered chunk hit the provider.
        assert!(r.provider_handled >= r.client_received);
    }

    #[test]
    fn provider_auth_handles_more_requests_than_cached_baseline() {
        let cached = run_baseline(&scenario(), Mechanism::NoAccessControl, 2);
        let always_on = run_baseline(&scenario(), Mechanism::ProviderAuthAc, 2);
        // With caching, the provider sees only misses; without, everything.
        let cached_frac = cached.provider_handled as f64 / cached.client_received.max(1) as f64;
        let auth_frac = always_on.provider_handled as f64 / always_on.client_received.max(1) as f64;
        assert!(
            auth_frac > cached_frac,
            "provider load: cached {cached_frac:.3} vs always-online {auth_frac:.3}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_baseline(&scenario(), Mechanism::ClientSideAc, 5);
        let b = run_baseline(&scenario(), Mechanism::ClientSideAc, 5);
        assert_eq!(a.client_received, b.client_received);
        assert_eq!(a.events, b.events);
    }
}
