//! The baseline node plane: vanilla NDN routers plus one of the
//! [`Mechanism`] baselines, driven by the *same* shared [`tactic_net`]
//! transport as the TACTIC simulation.
//!
//! Because both planes run on one event loop, "same topologies, link
//! models, and Zipf-window workload" is structural: the comparison in the
//! paper's motivation (§1) — how much bandwidth client-side AC wastes on
//! unauthorized users, how much load/latency always-online provider auth
//! costs — differs only in node logic.

use std::collections::HashMap;

use tactic::scenario::{Scenario, TopologyChoice};
use tactic_ndn::face::FaceId;
use tactic_ndn::forwarder::{process_data, process_interest, InterestAction, Tables};
use tactic_ndn::name::Name;
use tactic_ndn::packet::{Interest, Packet};
use tactic_net::{
    populate_fib, provider_prefix, run_sharded_profiled, ApRelay, AttackClass, Catalog,
    ChurnConfig, EdgeDefense, Emit, Links, Net, NetConfig, NetObserver, NodePlane, NoopObserver,
    PlaneCtx, RequesterConfig, ShardSpec, ShardedStats, TransportReport, ZipfRequester,
    ATTACK_STREAM,
};
use tactic_sim::rng::Rng;
use tactic_sim::stats::{ratio, TimeSeries};
use tactic_sim::time::{SimDuration, SimTime};
use tactic_telemetry::{
    Hop, NodeRole, NoopProtocolObserver, ProtocolObserver, RetrievalOutcome, SampleRow,
    SpanProfiler,
};
use tactic_topology::graph::{NodeId, Role};
use tactic_topology::roles::{build_topology, Topology};
use tactic_topology::shard::{ShardError, ShardMap};

use crate::adversary::{self, BaselineAdversary};
use crate::mechanism::Mechanism;
use crate::provider::BaselineProvider;

/// What one baseline run measured.
#[derive(Clone, Default)]
pub struct BaselineReport {
    /// The mechanism simulated.
    pub mechanism_name: String,
    /// Chunks requested by clients.
    pub client_requested: u64,
    /// Chunks received by clients.
    pub client_received: u64,
    /// Chunks requested by attackers.
    pub attacker_requested: u64,
    /// Chunks delivered to attackers (for `ClientSideAc` these are the
    /// wasted encrypted deliveries; for `ProviderAuthAc` they should be 0).
    pub attacker_received: u64,
    /// Bytes of payload delivered to attackers.
    pub attacker_bytes: u64,
    /// Content requests the provider itself had to answer.
    pub provider_handled: u64,
    /// Per-request authentications performed by providers.
    pub provider_auth_ops: u64,
    /// Client retrieval latencies over time.
    pub latency: TimeSeries,
    /// Aggregate router cache hits.
    pub cache_hits: u64,
    /// Aggregate router cache misses.
    pub cache_misses: u64,
    /// Engine events processed.
    pub events: u64,
    /// High-water mark of the engine's pending-event queue (run manifest
    /// provenance; not a paper metric).
    pub peak_queue_depth: u64,
    /// Transport drops split by reason (resilience extension; all zero on
    /// the paper's ideal links).
    pub drops: tactic_net::DropTotals,
    /// High-water mark of PIT records summed over every router, sampled at
    /// the periodic purge sweeps (resilience extension).
    pub peak_pit_records: u64,
    /// Client Interests retransmitted after an expiry (resilience
    /// extension; zero without a retransmission policy).
    pub client_retransmitted: u64,
    /// Client chunks abandoned after exhausting the retransmission budget.
    pub client_gave_up: u64,
    /// Client request expiries (stale-timeout-filtered).
    pub client_timeouts: u64,
    /// High-water mark of content-store entries summed over every router,
    /// sampled at the periodic purge sweeps (observability extension).
    pub peak_cs_entries: u64,
    /// Deterministic sim-time samples (observability extension; empty
    /// unless the scenario sets `sample_every`).
    pub samples: Vec<SampleRow>,
    /// Wall-clock span profile (observability extension; `None` unless
    /// the scenario enables profiling). Nondeterministic — never golden.
    pub profile: Option<Box<SpanProfiler>>,
}

/// Manual `Debug`: every field except `peak_queue_depth` (a per-engine
/// quantity that depends on the shard partition) and the observability
/// extensions (`peak_cs_entries`, `samples`, `profile`) — excluding
/// them keeps formatted reports (golden snapshots, equivalence diffs)
/// byte-identical across shard counts and sampler settings.
impl std::fmt::Debug for BaselineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineReport")
            .field("mechanism_name", &self.mechanism_name)
            .field("client_requested", &self.client_requested)
            .field("client_received", &self.client_received)
            .field("attacker_requested", &self.attacker_requested)
            .field("attacker_received", &self.attacker_received)
            .field("attacker_bytes", &self.attacker_bytes)
            .field("provider_handled", &self.provider_handled)
            .field("provider_auth_ops", &self.provider_auth_ops)
            .field("latency", &self.latency)
            .field("cache_hits", &self.cache_hits)
            .field("cache_misses", &self.cache_misses)
            .field("events", &self.events)
            .field("drops", &self.drops)
            .field("peak_pit_records", &self.peak_pit_records)
            .field("client_retransmitted", &self.client_retransmitted)
            .field("client_gave_up", &self.client_gave_up)
            .field("client_timeouts", &self.client_timeouts)
            .finish()
    }
}

impl BaselineReport {
    /// Clients' delivery ratio.
    pub fn client_ratio(&self) -> f64 {
        ratio(self.client_received, self.client_requested)
    }

    /// Attackers' delivery ratio.
    pub fn attacker_ratio(&self) -> f64 {
        ratio(self.attacker_received, self.attacker_requested)
    }

    /// Mean client retrieval latency in seconds.
    pub fn mean_latency(&self) -> f64 {
        self.latency.overall_mean()
    }

    /// Router cache hit ratio.
    pub fn cache_hit_ratio(&self) -> f64 {
        ratio(self.cache_hits, self.cache_hits + self.cache_misses)
    }
}

enum Node {
    Router(Tables),
    Provider(BaselineProvider),
    Requester(Box<ZipfRequester>),
    Ap(ApRelay),
}

/// A baseline mechanism as a pluggable [`NodePlane`].
///
/// Generic over a [`ProtocolObserver`] so telemetry can watch the same
/// decision points the TACTIC plane exposes. Baseline routers carry no
/// edge/core distinction in their logic, so all router hops are stamped
/// [`NodeRole::CoreRouter`].
pub struct BaselinePlane<PO: ProtocolObserver = NoopProtocolObserver> {
    mechanism: Mechanism,
    nodes: Vec<Node>,
    /// PIT records summed over this instance's live routers, one entry
    /// per purge sweep (see `TacticPlane` for the shard-merge rationale).
    pit_sweep_sums: Vec<u64>,
    /// Content-store entries summed the same way, one entry per sweep.
    cs_sweep_sums: Vec<u64>,
    /// Per-node attack drivers — `Some` only at attacker nodes while an
    /// attack plan is active. A node with a driver ignores its windowed
    /// requester entirely (open-loop fleet).
    adversaries: Vec<Option<BaselineAdversary>>,
    /// The sentinel timeout name that paces the attack drivers.
    attack_tick: Name,
    proto: PO,
}

impl<PO: ProtocolObserver> BaselinePlane<PO> {
    fn push_requester_sends(
        proto: &mut PO,
        hop: Hop,
        r: &ZipfRequester,
        out: &mut Vec<Emit>,
        sends: Vec<Interest>,
    ) {
        for i in sends {
            proto.on_interest_emitted(hop, i.nonce(), i.name());
            out.push(Emit::Timeout {
                name: i.name().clone(),
                delay: r.timeout_for(i.name()),
            });
            out.push(Emit::Send {
                face: FaceId::new(0),
                packet: Packet::Interest(i),
                compute: SimDuration::ZERO,
            });
        }
    }

    fn into_report(self, transport: TransportReport) -> (BaselineReport, PO) {
        let mut report = BaselineReport {
            mechanism_name: self.mechanism.to_string(),
            events: transport.events,
            peak_queue_depth: transport.peak_queue_depth,
            drops: transport.drops,
            peak_pit_records: self.pit_sweep_sums.iter().copied().max().unwrap_or(0),
            peak_cs_entries: self.cs_sweep_sums.iter().copied().max().unwrap_or(0),
            samples: transport.samples,
            profile: transport.profile,
            ..Default::default()
        };
        for node in self.nodes {
            match node {
                Node::Router(t) => {
                    report.cache_hits += t.cs.hits();
                    report.cache_misses += t.cs.misses();
                }
                Node::Provider(p) => {
                    report.provider_handled += p.handled;
                    report.provider_auth_ops += p.auth_ops;
                }
                Node::Requester(r) => {
                    if r.is_client {
                        report.client_requested += r.requested;
                        report.client_received += r.received;
                        report.client_retransmitted += r.retransmitted;
                        report.client_gave_up += r.gave_up;
                        report.client_timeouts += r.timeouts;
                        for (at, lat) in r.latencies {
                            report.latency.record(at, lat);
                        }
                    } else {
                        report.attacker_requested += r.requested;
                        report.attacker_received += r.received;
                        report.attacker_bytes += r.received_bytes;
                    }
                }
                Node::Ap(_) => {}
            }
        }
        (report, self.proto)
    }
}

impl<PO: ProtocolObserver> NodePlane for BaselinePlane<PO> {
    fn on_packet(
        &mut self,
        node: NodeId,
        face: FaceId,
        packet: Packet,
        ctx: &mut PlaneCtx<'_>,
        out: &mut Vec<Emit>,
    ) {
        let now = ctx.now;
        let proto = &mut self.proto;
        let node_id = node.index() as u64;
        match &mut self.nodes[node.index()] {
            Node::Router(tables) => {
                let hop = Hop::new(node_id, NodeRole::CoreRouter, now);
                let sends: Vec<(FaceId, Packet)> = match packet {
                    Packet::Interest(i) => {
                        proto.on_interest_hop(hop, i.nonce(), i.name());
                        match process_interest(tables, &i, face, now, Vec::new()) {
                            InterestAction::ReplyFromCache(d) => {
                                proto.on_cache_hit(hop, d.name());
                                vec![(face, Packet::Data(d))]
                            }
                            // Relay the Interest by move: no copy made.
                            InterestAction::Forward(f) => vec![(f, Packet::Interest(i))],
                            _ => Vec::new(),
                        }
                    }
                    Packet::Data(d) => {
                        let action = process_data(tables, &d, now);
                        // Clone only on genuine fan-out: the last pending
                        // requester takes the Data by move.
                        let recs = action.downstream;
                        let last = recs.len().saturating_sub(1);
                        let mut d = Some(d);
                        recs.iter()
                            .enumerate()
                            .map(|(idx, rec)| {
                                let pkt = if idx == last {
                                    d.take().expect("consumed only at the last record")
                                } else {
                                    d.as_ref().expect("present before the last record").clone()
                                };
                                (rec.face, Packet::Data(pkt))
                            })
                            .collect()
                    }
                    Packet::Nack(_) => Vec::new(),
                };
                // Bounded-PIT enforcement (no-op when unbounded): evicted
                // records surface through the shared drop ledger.
                for evicted in tables.pit.evict_over_capacity() {
                    ctx.drops.pit_full += evicted.records().len() as u64;
                }
                for (f, pkt) in sends {
                    out.push(Emit::Send {
                        face: f,
                        packet: pkt,
                        compute: SimDuration::ZERO,
                    });
                }
            }
            Node::Provider(p) => {
                if let Packet::Interest(i) = &packet {
                    let hop = Hop::new(node_id, NodeRole::Provider, now);
                    proto.on_interest_hop(hop, i.nonce(), i.name());
                    let auth_before = p.auth_ops;
                    let (reply, charge) = p.handle(i, self.mechanism, ctx.rng, ctx.cost);
                    if p.auth_ops > auth_before {
                        proto.on_sig_verify(hop, reply.is_some(), false);
                    }
                    if let Some(d) = reply {
                        out.push(Emit::Send {
                            face,
                            packet: Packet::Data(d),
                            compute: charge,
                        });
                    }
                }
            }
            Node::Requester(r) => {
                if self.adversaries[node.index()].is_some() {
                    return; // Open-loop fleet: replies are never tracked.
                }
                if let Packet::Data(d) = &packet {
                    let hop = Hop::new(node_id, NodeRole::Consumer, now);
                    proto.on_retrieval(hop, d.name(), RetrievalOutcome::Data);
                    let sends = r.on_data(d, now);
                    Self::push_requester_sends(proto, hop, r, out, sends);
                }
            }
            Node::Ap(ap) => match packet {
                Packet::Interest(i) => {
                    if face == ap.upstream {
                        return; // Interests never flow AP-ward.
                    }
                    // No tag, no identity: baseline replies are broadcast
                    // to everyone pending on the name.
                    ap.note(i.name().clone(), face, now, None);
                    out.push(Emit::Send {
                        face: ap.upstream,
                        packet: Packet::Interest(i),
                        compute: SimDuration::ZERO,
                    });
                }
                Packet::Data(d) => {
                    let faces = ap.claim(d.name(), None);
                    // Clone only on genuine fan-out: the last claimant
                    // takes the packet by move.
                    let last = faces.len().saturating_sub(1);
                    let mut d = Some(d);
                    for (idx, f) in faces.iter().enumerate() {
                        let pkt = if idx == last {
                            d.take().expect("consumed only at the last claimant")
                        } else {
                            d.as_ref()
                                .expect("present before the last claimant")
                                .clone()
                        };
                        out.push(Emit::Send {
                            face: *f,
                            packet: Packet::Data(pkt),
                            compute: SimDuration::ZERO,
                        });
                    }
                }
                Packet::Nack(_) => {}
            },
        }
    }

    fn on_start(&mut self, node: NodeId, ctx: &mut PlaneCtx<'_>, out: &mut Vec<Emit>) {
        if self.adversaries[node.index()].is_some() {
            // Arm the attack pacer instead of the windowed requester.
            out.push(Emit::Timeout {
                name: self.attack_tick.clone(),
                delay: adversary::TICK,
            });
            return;
        }
        let Node::Requester(r) = &mut self.nodes[node.index()] else {
            return;
        };
        let sends = r.fill(ctx.now);
        let hop = Hop::new(node.index() as u64, NodeRole::Consumer, ctx.now);
        Self::push_requester_sends(&mut self.proto, hop, r, out, sends);
    }

    fn on_timeout(
        &mut self,
        node: NodeId,
        name: Name,
        sent: SimTime,
        ctx: &mut PlaneCtx<'_>,
        out: &mut Vec<Emit>,
    ) {
        if name == self.attack_tick {
            let Some(driver) = self.adversaries[node.index()].as_mut() else {
                return;
            };
            let hop = Hop::new(node.index() as u64, NodeRole::Consumer, ctx.now);
            for i in driver.on_tick(ctx.now) {
                self.proto.on_interest_emitted(hop, i.nonce(), i.name());
                out.push(Emit::Send {
                    face: FaceId::new(0),
                    packet: Packet::Interest(i),
                    compute: SimDuration::ZERO,
                });
            }
            out.push(Emit::Timeout {
                name,
                delay: adversary::TICK,
            });
            return;
        }
        let Node::Requester(r) = &mut self.nodes[node.index()] else {
            return;
        };
        let hop = Hop::new(node.index() as u64, NodeRole::Consumer, ctx.now);
        self.proto.on_timeout_expired(hop, &name, sent);
        let sends = r.on_timeout(&name, sent, ctx.now);
        Self::push_requester_sends(&mut self.proto, hop, r, out, sends);
    }

    fn on_purge(&mut self, now: SimTime) {
        // Sample PIT/CS occupancy *before* sweeping so the peaks reflect
        // what loss actually accumulated, then purge expired entries.
        let mut pit_records = 0u64;
        let mut cs_entries = 0u64;
        for node in &mut self.nodes {
            match node {
                Node::Router(t) => {
                    pit_records += t.pit.total_records() as u64;
                    cs_entries += t.cs.len() as u64;
                    t.pit.purge_expired(now);
                }
                Node::Ap(ap) => ap.purge(now, SimDuration::from_secs(4)),
                _ => {}
            }
        }
        self.pit_sweep_sums.push(pit_records);
        self.cs_sweep_sums.push(cs_entries);
    }

    fn on_sample(&mut self, _now: SimTime, owns: &dyn Fn(NodeId) -> bool, row: &mut SampleRow) {
        // Baseline routers carry no Bloom filter, so only the table
        // gauges contribute; every term is an integer sum over owned
        // nodes, which is what makes per-shard rows merge exactly.
        for (idx, node) in self.nodes.iter().enumerate() {
            if !owns(NodeId(idx as u32)) {
                continue;
            }
            if let Node::Router(t) = node {
                row.pit_records += t.pit.total_records() as u64;
                row.cs_entries += t.cs.len() as u64;
            }
        }
    }

    fn on_reroute(&mut self, routes: &[tactic_net::FibRoute]) {
        // Full replacement: rebuild every router's FIB from the
        // post-failure routing plane the transport computed.
        for node in &mut self.nodes {
            if let Node::Router(t) = node {
                t.fib.clear();
            }
        }
        for route in routes {
            if let Node::Router(t) = &mut self.nodes[route.router.index()] {
                t.fib
                    .add_route(route.prefix.clone(), route.face, route.cost_us);
            }
        }
    }

    fn on_handover(&mut self, node: NodeId, ctx: &mut PlaneCtx<'_>, out: &mut Vec<Emit>) {
        if self.adversaries[node.index()].is_some() {
            return; // The open-loop fleet keeps its pace across moves.
        }
        let Node::Requester(r) = &mut self.nodes[node.index()] else {
            return;
        };
        let sends = r.on_move(ctx.now);
        let hop = Hop::new(node.index() as u64, NodeRole::Consumer, ctx.now);
        Self::push_requester_sends(&mut self.proto, hop, r, out, sends);
    }
}

/// The assembled baseline simulation on the shared transport.
pub struct BaselineNetwork<O = NoopObserver, PO: ProtocolObserver = NoopProtocolObserver> {
    net: Net<BaselinePlane<PO>, O>,
}

impl BaselineNetwork {
    /// Builds a baseline run from the same [`Scenario`] shape the TACTIC
    /// simulation uses (tag-related fields are ignored; mobility is
    /// honoured through the shared transport).
    pub fn build(scenario: &Scenario, mechanism: Mechanism, seed: u64) -> Self {
        Self::build_observed(scenario, mechanism, seed, NoopObserver)
    }

    /// Runs to the horizon and reports.
    pub fn run(self) -> BaselineReport {
        self.run_observed().0
    }
}

impl<O: NetObserver> BaselineNetwork<O> {
    /// Builds a baseline run with an explicit transport observer.
    pub fn build_observed(
        scenario: &Scenario,
        mechanism: Mechanism,
        seed: u64,
        observer: O,
    ) -> Self {
        Self::build_traced(scenario, mechanism, seed, observer, NoopProtocolObserver)
    }

    /// Runs to the horizon; returns the report and the observer.
    pub fn run_observed(self) -> (BaselineReport, O) {
        let (report, observer, _) = self.run_traced();
        (report, observer)
    }
}

impl<O: NetObserver, PO: ProtocolObserver> BaselineNetwork<O, PO> {
    /// Builds a baseline run with both a transport observer and a
    /// protocol observer.
    pub fn build_traced(
        scenario: &Scenario,
        mechanism: Mechanism,
        seed: u64,
        observer: O,
        proto: PO,
    ) -> Self {
        Self::build_inner(scenario, mechanism, seed, observer, proto, None)
    }

    /// Shared construction path: a sequential run (`shard == None`) or
    /// one replica of a sharded run (see `tactic::net` for the
    /// replicated-state protocol).
    fn build_inner(
        scenario: &Scenario,
        mechanism: Mechanism,
        seed: u64,
        observer: O,
        proto: PO,
        shard: Option<ShardSpec>,
    ) -> Self {
        let rng = Rng::seed_from_u64(seed ^ 0xBA5E_11E5);
        let topo: Topology = match scenario.topology {
            TopologyChoice::Paper(p) => p.build(seed),
            TopologyChoice::Custom(spec) => build_topology(&spec, &mut rng.fork(1)),
        };
        let n = topo.graph.node_count();
        let links = Links::build(&topo);

        let catalog: Catalog = (0..topo.providers.len())
            .map(|i| {
                (
                    provider_prefix(i),
                    scenario.objects_per_provider,
                    scenario.chunks_per_object,
                )
            })
            .collect();

        let clients: std::collections::HashSet<u64> =
            topo.clients.iter().map(|c| c.index() as u64).collect();

        // Routers: disable caching entirely for provider-auth (protected
        // content must reach the provider).
        let cs_capacity = if mechanism.caches_protected_content() {
            scenario.cs_capacity
        } else {
            0
        };

        let mut tables_map: HashMap<usize, Tables> = HashMap::new();
        for r in topo.routers() {
            let mut tables = Tables::new(cs_capacity);
            tables.pit.set_capacity(scenario.defense.pit_capacity);
            tables_map.insert(r.index(), tables);
        }
        populate_fib(&topo, &links, |rnode, _i, prefix, face, cost_us| {
            tables_map
                .get_mut(&rnode.index())
                .expect("router")
                .fib
                .add_route(prefix, face, cost_us);
        });

        let mut nodes = Vec::with_capacity(n);
        let mut provider_idx = 0usize;
        for node in topo.graph.nodes() {
            let state = match topo.graph.role(node) {
                Role::CoreRouter | Role::EdgeRouter => {
                    Node::Router(tables_map.remove(&node.index()).expect("router"))
                }
                Role::Provider => {
                    let (prefix, objects, chunks) = catalog[provider_idx].clone();
                    provider_idx += 1;
                    Node::Provider(BaselineProvider::new(
                        prefix,
                        objects,
                        chunks,
                        scenario.chunk_size,
                        clients.clone(),
                    ))
                }
                Role::Client | Role::Attacker => Node::Requester(Box::new(ZipfRequester::new(
                    RequesterConfig {
                        principal: node.index() as u64,
                        is_client: topo.graph.role(node) == Role::Client,
                        window: scenario.window,
                        timeout: scenario.request_timeout,
                        zipf_alpha: scenario.zipf_alpha,
                        per_session_names: mechanism.per_request_provider_auth(),
                        retransmit: scenario.retransmit,
                    },
                    catalog.clone(),
                    rng.fork(0x200 + node.index() as u64),
                ))),
                Role::AccessPoint => Node::Ap(
                    ApRelay::new(&topo, &links, node)
                        .expect("validated topology: AP wired to an edge router"),
                ),
            };
            nodes.push(state);
        }

        // Adversarial fleet: an active plan repurposes every attacker
        // into an open-loop traffic source ([`crate::adversary`]);
        // Churn instead hands the transport a schedule of aggressive
        // Move events, exactly as on the TACTIC plane.
        let mut adversaries: Vec<Option<BaselineAdversary>> = (0..n).map(|_| None).collect();
        let mut churn: Option<ChurnConfig> = None;
        if scenario.attack.active() {
            let class = scenario.attack.class.expect("active plan names a class");
            if class == AttackClass::Churn {
                let mut churn_nodes = topo.attackers.clone();
                churn_nodes.sort_unstable();
                churn = Some(ChurnConfig {
                    nodes: churn_nodes,
                    mean_dwell: SimDuration::from_secs(2),
                });
            } else {
                let lifetime_ms = (scenario.request_timeout.as_nanos() / 1_000_000) as u32;
                for &anode in &topo.attackers {
                    let principal = anode.index() as u64;
                    adversaries[anode.index()] = Some(BaselineAdversary::new(
                        class,
                        principal,
                        scenario.attack.intensity,
                        lifetime_ms,
                        rng.fork(ATTACK_STREAM ^ principal),
                        catalog.clone(),
                        mechanism.per_request_provider_auth(),
                    ));
                }
            }
        }

        // Edge defenses enforced by the transport at send time; the
        // bounded PIT is applied to the router tables above.
        let defense =
            if scenario.defense.rate_limit.is_some() || scenario.defense.face_cap.is_some() {
                Some(EdgeDefense::new(
                    scenario.defense.rate_limit,
                    scenario.defense.face_cap,
                    topo.clients
                        .iter()
                        .chain(topo.attackers.iter())
                        .copied()
                        .collect(),
                    topo.access_points.clone(),
                    topo.edge_routers.clone(),
                ))
            } else {
                None
            };

        let plane = BaselinePlane {
            mechanism,
            nodes,
            pit_sweep_sums: Vec::new(),
            cs_sweep_sums: Vec::new(),
            adversaries,
            attack_tick: adversary::tick_name(),
            proto,
        };
        let config = NetConfig {
            duration: scenario.duration,
            mobility: scenario.mobility,
            cost: scenario.cost_model.clone(),
            faults: scenario.faults.clone(),
            sample_every: scenario.sample_every,
            profile: scenario.profile,
            defense,
            churn,
        };
        BaselineNetwork {
            net: match shard {
                None => Net::assemble_observed(&topo, links, plane, rng, config, observer),
                Some(s) => Net::assemble_sharded(&topo, links, plane, rng, config, observer, s),
            },
        }
    }

    /// Runs to the horizon; returns the report, the transport observer,
    /// and the protocol observer.
    pub fn run_traced(self) -> (BaselineReport, O, PO) {
        let (plane, observer, transport) = self.net.run();
        let (report, proto) = plane.into_report(transport);
        (report, observer, proto)
    }
}

/// Builds and runs one baseline.
pub fn run_baseline(scenario: &Scenario, mechanism: Mechanism, seed: u64) -> BaselineReport {
    BaselineNetwork::build(scenario, mechanism, seed).run()
}

/// Runs one baseline space-partitioned across `shards` worker threads,
/// with per-shard transport and protocol observers. The merged
/// [`BaselineReport`] is byte-identical to [`run_baseline`]'s for every
/// shard count (see `tactic::net::run_traced_sharded` for the
/// protocol; this is the same machinery on the baseline plane).
pub fn run_baseline_traced_sharded<O, PO, MO, MP>(
    scenario: &Scenario,
    mechanism: Mechanism,
    seed: u64,
    shards: usize,
    make_observer: MO,
    make_proto: MP,
) -> Result<(BaselineReport, Vec<O>, Vec<PO>, ShardedStats), ShardError>
where
    O: NetObserver + Send,
    PO: ProtocolObserver + Send,
    MO: Fn(u32) -> O + Sync,
    MP: Fn(u32) -> PO + Sync,
{
    let rng = Rng::seed_from_u64(seed ^ 0xBA5E_11E5);
    let topo: Topology = match scenario.topology {
        TopologyChoice::Paper(p) => p.build(seed),
        TopologyChoice::Custom(spec) => build_topology(&spec, &mut rng.fork(1)),
    };
    let shard_map = ShardMap::partition(&topo, shards)?;
    let lookahead = shard_map.lookahead(scenario.any_mobility());
    let horizon = SimTime::ZERO + scenario.duration;
    let shard_of = shard_map.shard_of.clone();
    drop(topo);

    let (results, mut stats) =
        run_sharded_profiled(shards, lookahead, horizon, scenario.profile, |s| {
            BaselineNetwork::build_inner(
                scenario,
                mechanism,
                seed,
                make_observer(s),
                make_proto(s),
                Some(ShardSpec {
                    k: shards,
                    my_shard: s,
                    shard_of: shard_map.shard_of.clone(),
                }),
            )
            .net
        });
    stats.edge_cut = shard_map.edge_cut;

    let mut planes = Vec::with_capacity(shards);
    let mut observers = Vec::with_capacity(shards);
    let mut transports = Vec::with_capacity(shards);
    for (plane, obs, transport) in results {
        planes.push(plane);
        observers.push(obs);
        transports.push(transport);
    }
    let merged = TransportReport::merge_shards(&transports);

    // Stitch the owned node states back into one plane, in node-id
    // order, folding the mirrored per-sweep PIT/CS sums element-wise.
    // Per-shard sweep maxima feed the stats before the fold erases them.
    let mut protos = Vec::with_capacity(shards);
    let mut pit_sweep_sums: Vec<u64> = Vec::new();
    let mut cs_sweep_sums: Vec<u64> = Vec::new();
    let mut per_shard_nodes: Vec<Vec<Option<Node>>> = Vec::with_capacity(shards);
    for plane in planes {
        let BaselinePlane {
            mechanism: _,
            nodes,
            pit_sweep_sums: sums,
            cs_sweep_sums: cs_sums,
            adversaries: _,
            attack_tick: _,
            proto,
        } = plane;
        stats
            .per_shard_peak_pit
            .push(sums.iter().copied().max().unwrap_or(0));
        stats
            .per_shard_peak_cs
            .push(cs_sums.iter().copied().max().unwrap_or(0));
        if pit_sweep_sums.len() < sums.len() {
            pit_sweep_sums.resize(sums.len(), 0);
        }
        for (i, v) in sums.iter().enumerate() {
            pit_sweep_sums[i] += v;
        }
        if cs_sweep_sums.len() < cs_sums.len() {
            cs_sweep_sums.resize(cs_sums.len(), 0);
        }
        for (i, v) in cs_sums.iter().enumerate() {
            cs_sweep_sums[i] += v;
        }
        protos.push(proto);
        per_shard_nodes.push(nodes.into_iter().map(Some).collect());
    }
    let nodes: Vec<Node> = shard_of
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            per_shard_nodes[s as usize][i]
                .take()
                .expect("every node owned by exactly one shard")
        })
        .collect();
    let stitched = BaselinePlane {
        mechanism,
        nodes,
        pit_sweep_sums,
        cs_sweep_sums,
        adversaries: Vec::new(),
        attack_tick: adversary::tick_name(),
        proto: NoopProtocolObserver,
    };
    let (report, _) = stitched.into_report(merged);
    Ok((report, observers, protos, stats))
}

/// Convenience: [`run_baseline_traced_sharded`] with no observers.
pub fn run_baseline_sharded(
    scenario: &Scenario,
    mechanism: Mechanism,
    seed: u64,
    shards: usize,
) -> Result<(BaselineReport, ShardedStats), ShardError> {
    let (report, _, _, stats) = run_baseline_traced_sharded(
        scenario,
        mechanism,
        seed,
        shards,
        |_| NoopObserver,
        |_| NoopProtocolObserver,
    )?;
    Ok((report, stats))
}
