//! The Table II qualitative comparison model.
//!
//! The paper compares TACTIC against ten prior ICN access-control
//! mechanisms along six axes (communication overhead, computation burden
//! on provider/network/client, extra infrastructure, revocation style, and
//! enforcement point). This module encodes that comparison as data so the
//! `table2` experiment can regenerate the table, and so library users can
//! query the design space programmatically.

/// Qualitative magnitude used across Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Burden {
    /// Not applicable / none.
    None,
    /// Low.
    Low,
    /// Moderate.
    Moderate,
    /// High.
    High,
    /// Extreme.
    Extreme,
}

impl std::fmt::Display for Burden {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Burden::None => "-",
            Burden::Low => "Low",
            Burden::Moderate => "Moderate",
            Burden::High => "High",
            Burden::Extreme => "Extreme",
        };
        f.write_str(s)
    }
}

/// Where access control is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Enforcement {
    /// In-network (routers) — TACTIC's point.
    Network,
    /// At the provider (implies an always-online server).
    Provider,
    /// At the client (decryption-based; bandwidth-wasteful).
    Client,
}

impl std::fmt::Display for Enforcement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Enforcement::Network => "Network",
            Enforcement::Provider => "Provider",
            Enforcement::Client => "Client",
        };
        f.write_str(s)
    }
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MechanismProfile {
    /// Mechanism name as the paper cites it.
    pub name: &'static str,
    /// Communication overhead.
    pub communication: Burden,
    /// Computation burden at the provider.
    pub provider_burden: Burden,
    /// Computation burden in the network.
    pub network_burden: Burden,
    /// Computation burden at the client.
    pub client_burden: Burden,
    /// Whether additional infrastructure is required.
    pub extra_infrastructure: bool,
    /// The revocation mechanism.
    pub revocation: &'static str,
    /// The enforcement point.
    pub enforcement: Enforcement,
}

/// The full Table II, TACTIC first.
pub const TABLE_II: [MechanismProfile; 11] = [
    MechanismProfile {
        name: "TACTIC",
        communication: Burden::Low,
        provider_burden: Burden::None,
        network_burden: Burden::Low,
        client_burden: Burden::None,
        extra_infrastructure: false,
        revocation: "Tunable Time-based",
        enforcement: Enforcement::Network,
    },
    MechanismProfile {
        name: "Misra et al. [3], [7]",
        communication: Burden::Moderate,
        provider_burden: Burden::None,
        network_burden: Burden::None,
        client_burden: Burden::Moderate,
        extra_infrastructure: false,
        revocation: "Threshold Based",
        enforcement: Enforcement::Client,
    },
    MechanismProfile {
        name: "Chen et al. [8]",
        communication: Burden::Low,
        provider_burden: Burden::High,
        network_burden: Burden::Low,
        client_burden: Burden::None,
        extra_infrastructure: false,
        revocation: "Daily Re-encryption",
        enforcement: Enforcement::Provider,
    },
    MechanismProfile {
        name: "Kurihara et al. [9]",
        communication: Burden::High,
        provider_burden: Burden::High,
        network_burden: Burden::Moderate,
        client_burden: Burden::None,
        extra_infrastructure: true,
        revocation: "Lazy Revocation",
        enforcement: Enforcement::Provider,
    },
    MechanismProfile {
        name: "Da Silva et al. [10]",
        communication: Burden::Low,
        provider_burden: Burden::None,
        network_burden: Burden::High,
        client_burden: Burden::None,
        extra_infrastructure: true,
        revocation: "Key Update per Revoc.",
        enforcement: Enforcement::Network,
    },
    MechanismProfile {
        name: "Hamdane et al. [11]",
        communication: Burden::Low,
        provider_burden: Burden::High,
        network_burden: Burden::None,
        client_burden: Burden::Moderate,
        extra_infrastructure: false,
        revocation: "System Re-key",
        enforcement: Enforcement::Provider,
    },
    MechanismProfile {
        name: "Li et al. [4], [12]",
        communication: Burden::Moderate,
        provider_burden: Burden::Moderate,
        network_burden: Burden::None,
        client_burden: Burden::Moderate,
        extra_infrastructure: true,
        revocation: "N/A",
        enforcement: Enforcement::Client,
    },
    MechanismProfile {
        name: "Wood et al. [14]",
        communication: Burden::Low,
        provider_burden: Burden::High,
        network_burden: Burden::None,
        client_burden: Burden::None,
        extra_infrastructure: false,
        revocation: "N/A",
        enforcement: Enforcement::Provider,
    },
    MechanismProfile {
        name: "Mangili et al. [5]",
        communication: Burden::Low,
        provider_burden: Burden::High,
        network_burden: Burden::None,
        client_burden: Burden::Moderate,
        extra_infrastructure: false,
        revocation: "Partial Re-encryption",
        enforcement: Enforcement::Client,
    },
    MechanismProfile {
        name: "Tan et al. [15]",
        communication: Burden::High,
        provider_burden: Burden::Extreme,
        network_burden: Burden::None,
        client_burden: Burden::None,
        extra_infrastructure: false,
        revocation: "Provider Authentication",
        enforcement: Enforcement::Provider,
    },
    MechanismProfile {
        name: "Li et al. [16]",
        communication: Burden::Low,
        provider_burden: Burden::Moderate,
        network_burden: Burden::Low,
        client_burden: Burden::None,
        extra_infrastructure: false,
        revocation: "N/A",
        enforcement: Enforcement::Provider,
    },
];

/// Renders Table II as an aligned text table (one string per line).
pub fn render_table_ii() -> Vec<String> {
    let mut lines = Vec::new();
    lines.push(format!(
        "{:<22} {:<14} {:<10} {:<10} {:<10} {:<8} {:<24} {}",
        "Mechanism",
        "Comm. Ovhd",
        "Prov.",
        "Network",
        "Client",
        "Infra",
        "Client Revocation",
        "Enforcement"
    ));
    for m in &TABLE_II {
        lines.push(format!(
            "{:<22} {:<14} {:<10} {:<10} {:<10} {:<8} {:<24} {}",
            m.name,
            m.communication.to_string(),
            m.provider_burden.to_string(),
            m.network_burden.to_string(),
            m.client_burden.to_string(),
            if m.extra_infrastructure {
                "Required"
            } else {
                "N/A"
            },
            m.revocation,
            m.enforcement
        ));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tactic_leads_and_matches_paper_row() {
        let t = &TABLE_II[0];
        assert_eq!(t.name, "TACTIC");
        assert_eq!(t.communication, Burden::Low);
        assert_eq!(t.network_burden, Burden::Low);
        assert_eq!(t.provider_burden, Burden::None);
        assert!(!t.extra_infrastructure);
        assert_eq!(t.enforcement, Enforcement::Network);
    }

    #[test]
    fn eleven_mechanisms_as_in_the_paper() {
        assert_eq!(TABLE_II.len(), 11);
        // Exactly TACTIC and Da Silva enforce in-network.
        let network: Vec<&str> = TABLE_II
            .iter()
            .filter(|m| m.enforcement == Enforcement::Network)
            .map(|m| m.name)
            .collect();
        assert_eq!(network, ["TACTIC", "Da Silva et al. [10]"]);
    }

    #[test]
    fn only_tactic_has_network_enforcement_without_extra_infrastructure() {
        let winners: Vec<&str> = TABLE_II
            .iter()
            .filter(|m| m.enforcement == Enforcement::Network && !m.extra_infrastructure)
            .map(|m| m.name)
            .collect();
        assert_eq!(winners, ["TACTIC"]);
    }

    #[test]
    fn render_has_header_plus_rows() {
        let lines = render_table_ii();
        assert_eq!(lines.len(), 12);
        assert!(lines[0].contains("Mechanism"));
        assert!(lines[1].starts_with("TACTIC"));
        assert!(lines.iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn burden_ordering() {
        assert!(Burden::None < Burden::Low);
        assert!(Burden::Low < Burden::Moderate);
        assert!(Burden::Moderate < Burden::High);
        assert!(Burden::High < Burden::Extreme);
        assert_eq!(Burden::None.to_string(), "-");
    }
}
