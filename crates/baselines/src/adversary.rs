//! The baselines' adversarial fleet driver: the same open-loop attack
//! pacer as [`tactic::adversary`], restated for tagless mechanisms.
//!
//! Baseline planes carry no tags, so the credential dimension of each
//! [`AttackClass`] degrades to its traffic shape:
//!
//! * [`Flood`](AttackClass::Flood), [`ForgeTags`](AttackClass::ForgeTags)
//!   and [`ReplayExpired`](AttackClass::ReplayExpired) — a uniform spray
//!   over the catalog. An attacker principal is already unauthorized to
//!   every baseline provider, so a forged or expired credential is
//!   indistinguishable from plain unauthorized traffic here; what the
//!   classes still measure is how each mechanism absorbs the load
//!   (client-side AC wastes deliveries, provider-auth burns auth ops).
//! * [`BfPollution`](AttackClass::BfPollution) — there is no Bloom
//!   filter to pollute, so the analog is state pollution: a
//!   deterministic breadth-first walk over the *entire* name space,
//!   maximizing distinct names to churn content stores and PITs.
//! * [`Churn`](AttackClass::Churn) is a transport concern (scheduled
//!   Move events) on every plane and never reaches this driver.
//!
//! Rate mechanics are identical to the TACTIC driver: a sentinel tick
//! every [`TICK`] drains an integer nanosecond accumulator at exactly
//! `intensity` Interests per second, with every random draw taken from
//! a dedicated stream forked off [`ATTACK_STREAM`] so an inactive plan
//! leaves the run byte-identical to its golden snapshot.

pub use tactic::adversary::TICK;

use tactic_ndn::name::Name;
use tactic_ndn::packet::Interest;
use tactic_net::{AttackClass, Catalog};
use tactic_sim::rng::Rng;
use tactic_sim::time::SimTime;

#[allow(unused_imports)] // doc links
use tactic_net::ATTACK_STREAM;

/// High bits folded into adversarial nonces; the composed requester
/// nonce is `principal << 40 | counter` with principals far below 2²⁴,
/// so the tag keeps the two spaces disjoint.
const NONCE_TAG: u64 = 0xAD5E_0000_0000_0000;

/// The sentinel timeout name that paces the baseline fleet (never
/// transmitted; same sentinel the TACTIC plane uses).
pub fn tick_name() -> Name {
    tactic::adversary::tick_name()
}

/// One attacker node's open-loop traffic source on a baseline plane.
pub struct BaselineAdversary {
    principal: u64,
    intensity: u32,
    lifetime_ms: u32,
    rng: Rng,
    catalog: Catalog,
    /// Append the per-principal session component (provider-auth
    /// mechanisms key their auth on it).
    per_session: bool,
    /// `BfPollution` analog: walk the name space breadth-first instead
    /// of spraying uniformly.
    breadth: Option<u64>,
    nonce_seq: u64,
    acc_ns: u64,
}

impl std::fmt::Debug for BaselineAdversary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineAdversary")
            .field("principal", &self.principal)
            .field("intensity", &self.intensity)
            .finish()
    }
}

impl BaselineAdversary {
    /// Builds the driver for one attacker node.
    ///
    /// # Panics
    ///
    /// Panics on [`AttackClass::Churn`] (scheduled by the transport) or
    /// an empty catalog.
    pub fn new(
        class: AttackClass,
        principal: u64,
        intensity: u32,
        lifetime_ms: u32,
        rng: Rng,
        catalog: Catalog,
        per_session: bool,
    ) -> BaselineAdversary {
        assert!(!catalog.is_empty(), "adversary needs a catalog");
        let breadth = match class {
            AttackClass::BfPollution => Some(0),
            AttackClass::Churn => unreachable!("churn is scheduled by the transport"),
            _ => None,
        };
        BaselineAdversary {
            principal,
            intensity,
            lifetime_ms,
            rng,
            catalog,
            per_session,
            breadth,
            nonce_seq: 0,
            acc_ns: 0,
        }
    }

    /// One tick: drains the rate accumulator into crafted Interests.
    pub fn on_tick(&mut self, _now: SimTime) -> Vec<Interest> {
        self.acc_ns += u64::from(self.intensity) * TICK.as_nanos();
        let n = self.acc_ns / 1_000_000_000;
        self.acc_ns -= n * 1_000_000_000;
        (0..n).map(|_| self.craft()).collect()
    }

    fn craft(&mut self) -> Interest {
        let (prov, obj, chunk) = match &mut self.breadth {
            Some(cursor) => {
                // Deterministic breadth-first walk: consecutive cursors
                // land on different providers, then different objects,
                // so short bursts already maximize name diversity.
                let c = *cursor;
                *cursor += 1;
                let provs = self.catalog.len() as u64;
                let prov = (c % provs) as usize;
                let (_, objects, chunks) = self.catalog[prov];
                let obj = ((c / provs) % objects as u64) as usize;
                let chunk = ((c / (provs * objects as u64)) % chunks as u64) as usize;
                (prov, obj, chunk)
            }
            None => {
                let prov = (self.rng.next_u64() % self.catalog.len() as u64) as usize;
                let (_, objects, chunks) = self.catalog[prov];
                let obj = (self.rng.next_u64() % objects as u64) as usize;
                let chunk = (self.rng.next_u64() % chunks as u64) as usize;
                (prov, obj, chunk)
            }
        };
        let mut name = self.catalog[prov]
            .0
            .child(format!("obj{obj}"))
            .child(format!("c{chunk}"));
        if self.per_session {
            name = name.child(format!("u{}", self.principal));
        }
        self.nonce_seq += 1;
        let nonce = NONCE_TAG ^ (self.principal << 40) ^ self.nonce_seq;
        let mut i = Interest::new(name, nonce);
        i.set_lifetime_ms(self.lifetime_ms);
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        vec![
            ("/prov0".parse().unwrap(), 10, 10),
            ("/prov1".parse().unwrap(), 10, 10),
        ]
    }

    fn driver(class: AttackClass, intensity: u32) -> BaselineAdversary {
        BaselineAdversary::new(
            class,
            9,
            intensity,
            1_000,
            Rng::seed_from_u64(7),
            catalog(),
            false,
        )
    }

    #[test]
    fn accumulator_hits_the_configured_rate_exactly() {
        let mut d = driver(AttackClass::Flood, 37);
        let mut total = 0usize;
        for _ in 0..10 {
            total += d.on_tick(SimTime::ZERO).len();
        }
        assert_eq!(total, 37, "one second of ticks emits exactly `intensity`");
    }

    #[test]
    fn breadth_walk_maximizes_distinct_names() {
        let mut d = driver(AttackClass::BfPollution, 1_000);
        let out = d.on_tick(SimTime::ZERO);
        assert_eq!(out.len(), 100);
        let distinct: std::collections::HashSet<_> = out.iter().map(|i| i.name().clone()).collect();
        assert_eq!(distinct.len(), 100, "every pollution Interest is fresh");
        // Consecutive names alternate providers: breadth before depth.
        assert_ne!(
            out[0].name().components()[0].to_string(),
            out[1].name().components()[0].to_string()
        );
    }

    #[test]
    fn session_names_carry_the_principal() {
        let mut d = BaselineAdversary::new(
            AttackClass::Flood,
            9,
            10,
            1_000,
            Rng::seed_from_u64(7),
            catalog(),
            true,
        );
        let out = d.on_tick(SimTime::ZERO);
        assert!(!out.is_empty());
        assert!(out
            .iter()
            .all(|i| i.name().components().last().unwrap().to_string() == "u9"));
    }

    #[test]
    fn drivers_are_deterministic_per_stream() {
        let run = || {
            let mut d = driver(AttackClass::ForgeTags, 50);
            let mut names = Vec::new();
            for _ in 0..20 {
                names.extend(d.on_tick(SimTime::ZERO).iter().map(|i| i.name().clone()));
            }
            names
        };
        assert_eq!(run(), run());
    }
}
