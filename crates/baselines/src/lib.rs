//! # tactic-baselines
//!
//! The comparison points the TACTIC paper argues against:
//!
//! * [`mechanism`] — the baseline classes: no access control, client-side
//!   (decryption-delegated) AC, and always-online provider-auth AC;
//! * [`net`] — a vanilla-NDN network simulation running those baselines on
//!   the same topologies/workloads as TACTIC, quantifying §1's motivation
//!   (bandwidth wasted on unauthorized users; provider load without cache
//!   reuse);
//! * [`adversary`] — the baselines' open-loop attack fleet: the same
//!   deterministic pacer as `tactic::adversary`, with tagless analogs of
//!   each attack class;
//! * [`comparison`] — the Table II qualitative comparison, encoded as data.
//!
//! # Examples
//!
//! ```
//! use tactic_baselines::comparison::{render_table_ii, TABLE_II};
//!
//! assert_eq!(TABLE_II[0].name, "TACTIC");
//! assert_eq!(render_table_ii().len(), 12); // header + 11 mechanisms
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod comparison;
pub mod mechanism;
pub mod net;
pub mod provider;

pub use comparison::{render_table_ii, Burden, Enforcement, MechanismProfile, TABLE_II};
pub use mechanism::Mechanism;
pub use net::{
    run_baseline, run_baseline_sharded, run_baseline_traced_sharded, BaselineNetwork,
    BaselineReport,
};
pub use provider::BaselineProvider;
