//! The baseline origin server: serves `/prefix/objI/cJ[/uN]` chunks,
//! optionally authenticating every request (the always-online
//! provider-auth mechanism).

use std::collections::HashSet;

use tactic_ndn::name::Name;
use tactic_ndn::packet::{Data, Interest, Payload};
use tactic_sim::cost::{CostModel, Op};
use tactic_sim::rng::Rng;
use tactic_sim::time::SimDuration;

use crate::mechanism::Mechanism;

/// One provider's content catalog and per-request accounting.
pub struct BaselineProvider {
    prefix: Name,
    objects: usize,
    chunks: usize,
    chunk_size: usize,
    authorized: HashSet<u64>,
    /// Content requests this provider answered (or vetted).
    pub handled: u64,
    /// Per-request authentications performed.
    pub auth_ops: u64,
}

impl BaselineProvider {
    /// Creates a provider serving `objects × chunks` chunks of
    /// `chunk_size` bytes under `prefix`, with `authorized` principals.
    pub fn new(
        prefix: Name,
        objects: usize,
        chunks: usize,
        chunk_size: usize,
        authorized: HashSet<u64>,
    ) -> Self {
        BaselineProvider {
            prefix,
            objects,
            chunks,
            chunk_size,
            authorized,
            handled: 0,
            auth_ops: 0,
        }
    }

    /// Parses `/<prefix>/objI/cJ[/uN]`.
    fn parse(&self, name: &Name) -> Option<(usize, usize, Option<u64>)> {
        if !self.prefix.is_prefix_of(name) {
            return None;
        }
        let rest = name.len() - self.prefix.len();
        if !(2..=3).contains(&rest) {
            return None;
        }
        let obj: usize = std::str::from_utf8(name.get(self.prefix.len())?.as_bytes())
            .ok()?
            .strip_prefix("obj")?
            .parse()
            .ok()?;
        let chunk: usize = std::str::from_utf8(name.get(self.prefix.len() + 1)?.as_bytes())
            .ok()?
            .strip_prefix('c')?
            .parse()
            .ok()?;
        let principal = if rest == 3 {
            Some(
                std::str::from_utf8(name.get(self.prefix.len() + 2)?.as_bytes())
                    .ok()?
                    .strip_prefix('u')?
                    .parse()
                    .ok()?,
            )
        } else {
            None
        };
        (obj < self.objects && chunk < self.chunks).then_some((obj, chunk, principal))
    }

    /// Handles one Interest: returns the reply (if any) and the
    /// computation time to charge before it goes on the wire.
    pub fn handle(
        &mut self,
        interest: &Interest,
        mechanism: Mechanism,
        rng: &mut Rng,
        cost: &CostModel,
    ) -> (Option<Data>, SimDuration) {
        let mut charge = SimDuration::ZERO;
        let Some((_, _, principal)) = self.parse(interest.name()) else {
            return (None, charge);
        };
        self.handled += 1;
        if mechanism.per_request_provider_auth() {
            self.auth_ops += 1;
            charge += cost.sample(Op::SigVerify, rng);
            match principal {
                Some(p) if self.authorized.contains(&p) => {}
                _ => return (None, charge), // Unauthorized: drop.
            }
        }
        let d = Data::new(interest.name().clone(), Payload::Synthetic(self.chunk_size));
        (Some(d), charge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provider() -> BaselineProvider {
        BaselineProvider::new(
            "/prov0".parse().unwrap(),
            4,
            2,
            512,
            [10u64].into_iter().collect(),
        )
    }

    #[test]
    fn serves_valid_names_and_rejects_garbage() {
        let mut p = provider();
        let mut rng = Rng::seed_from_u64(1);
        let cost = CostModel::free();
        let ok = Interest::new("/prov0/obj1/c1".parse().unwrap(), 1);
        assert!(p
            .handle(&ok, Mechanism::NoAccessControl, &mut rng, &cost)
            .0
            .is_some());
        for bad in ["/prov1/obj1/c1", "/prov0/obj9/c1", "/prov0/obj1", "/prov0"] {
            let i = Interest::new(bad.parse().unwrap(), 2);
            assert!(
                p.handle(&i, Mechanism::NoAccessControl, &mut rng, &cost)
                    .0
                    .is_none(),
                "{bad} must not be served"
            );
        }
    }

    #[test]
    fn provider_auth_gates_on_the_session_principal() {
        let mut p = provider();
        let mut rng = Rng::seed_from_u64(2);
        let cost = CostModel::free();
        let authorized = Interest::new("/prov0/obj0/c0/u10".parse().unwrap(), 1);
        let stranger = Interest::new("/prov0/obj0/c0/u66".parse().unwrap(), 2);
        let anonymous = Interest::new("/prov0/obj0/c0".parse().unwrap(), 3);
        assert!(p
            .handle(&authorized, Mechanism::ProviderAuthAc, &mut rng, &cost)
            .0
            .is_some());
        assert!(p
            .handle(&stranger, Mechanism::ProviderAuthAc, &mut rng, &cost)
            .0
            .is_none());
        assert!(p
            .handle(&anonymous, Mechanism::ProviderAuthAc, &mut rng, &cost)
            .0
            .is_none());
        assert_eq!(p.auth_ops, 3);
        assert_eq!(p.handled, 3);
    }
}
