//! End-to-end behaviour of the baseline mechanisms on the shared
//! transport: leakage/blocking profiles, provider load, determinism, and
//! survival under the mobility model.

use tactic::scenario::Scenario;
use tactic_baselines::net::run_baseline;
use tactic_baselines::Mechanism;
use tactic_net::MobilityConfig;
use tactic_sim::time::SimDuration;

fn scenario() -> Scenario {
    let mut s = Scenario::small();
    s.duration = SimDuration::from_secs(10);
    s
}

#[test]
fn client_side_ac_leaks_encrypted_content_to_attackers() {
    let r = run_baseline(&scenario(), Mechanism::ClientSideAc, 1);
    assert!(r.client_ratio() > 0.9, "client ratio {}", r.client_ratio());
    assert!(
        r.attacker_ratio() > 0.9,
        "attackers must receive encrypted content (ratio {})",
        r.attacker_ratio()
    );
    assert!(
        r.attacker_bytes > 100_000,
        "wasted bytes {}",
        r.attacker_bytes
    );
    assert!(r.cache_hits > 0, "caches must be used");
}

#[test]
fn provider_auth_blocks_attackers_but_loads_provider() {
    let r = run_baseline(&scenario(), Mechanism::ProviderAuthAc, 1);
    assert!(r.client_ratio() > 0.9, "client ratio {}", r.client_ratio());
    assert_eq!(r.attacker_received, 0, "provider auth must block attackers");
    assert_eq!(r.cache_hits, 0, "no cache reuse under provider auth");
    assert!(r.provider_auth_ops > 0);
    // Every answered chunk hit the provider.
    assert!(r.provider_handled >= r.client_received);
}

#[test]
fn provider_auth_handles_more_requests_than_cached_baseline() {
    let cached = run_baseline(&scenario(), Mechanism::NoAccessControl, 2);
    let always_on = run_baseline(&scenario(), Mechanism::ProviderAuthAc, 2);
    // With caching, the provider sees only misses; without, everything.
    let cached_frac = cached.provider_handled as f64 / cached.client_received.max(1) as f64;
    let auth_frac = always_on.provider_handled as f64 / always_on.client_received.max(1) as f64;
    assert!(
        auth_frac > cached_frac,
        "provider load: cached {cached_frac:.3} vs always-online {auth_frac:.3}"
    );
}

#[test]
fn deterministic_per_seed() {
    let a = run_baseline(&scenario(), Mechanism::ClientSideAc, 5);
    let b = run_baseline(&scenario(), Mechanism::ClientSideAc, 5);
    assert_eq!(a.client_received, b.client_received);
    assert_eq!(a.events, b.events);
}

#[test]
fn baselines_run_under_mobility() {
    // Before the shared transport, the baseline `transmit` panicked on
    // the first handover (unchecked reverse-face lookup). Now every
    // mechanism must ride the same mobility model the TACTIC plane uses.
    let mut s = scenario();
    s.mobility = Some(MobilityConfig {
        mean_dwell: SimDuration::from_secs(2),
        mobile_fraction: 1.0,
    });
    for mechanism in [
        Mechanism::NoAccessControl,
        Mechanism::ClientSideAc,
        Mechanism::ProviderAuthAc,
    ] {
        let r = run_baseline(&s, mechanism, 3);
        assert!(
            r.client_ratio() > 0.5,
            "{mechanism}: mobile client ratio {}",
            r.client_ratio()
        );
    }
}

#[test]
fn mobility_off_matches_legacy_schedule() {
    // `mobility: None` must be byte-for-byte the pre-mobility schedule:
    // no extra engine events, no extra RNG draws.
    let mut with_field = scenario();
    with_field.mobility = None;
    let a = run_baseline(&with_field, Mechanism::ClientSideAc, 9);
    let b = run_baseline(&with_field, Mechanism::ClientSideAc, 9);
    assert_eq!(a.events, b.events);
    assert_eq!(a.client_received, b.client_received);
    assert_eq!(a.attacker_received, b.attacker_received);
}
