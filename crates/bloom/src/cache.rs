//! The router's validation-state cache, abstracted over its eviction
//! policy.
//!
//! TACTIC routers remember which tags they have already
//! signature-verified. The paper keeps that memory in a single Bloom
//! filter and handles saturation with a full reset that dumps *all*
//! validated state at once (Fig. 8 / Table V count these resets). At the
//! fleet scales the engine now reaches (10⁵–10⁶ clients per router) that
//! policy has a measurable cliff: every reset forces the whole client
//! population back through signature verification simultaneously.
//!
//! [`ValidationCache`] puts both designs behind one API:
//!
//! * [`CachePolicy::MonolithicReset`] — the paper's design, and the
//!   default. One [`BloomFilter`], full reset at saturation. This path
//!   delegates to the exact pre-refactor filter calls so default runs
//!   stay packet-for-packet byte-identical to the golden snapshots.
//! * [`CachePolicy::Generational`] — `G` rotating sub-filters per
//!   partition. Inserts go to the head (youngest) generation, lookups
//!   probe every live generation, and when the head saturates only the
//!   *oldest* generation is retired, so a rotation evicts `1/G` of the
//!   validated state instead of all of it. Keys are partitioned by
//!   provider prefix, so one hot prefix saturates (and rotates) its own
//!   partition without dumping every other prefix's state.
//!
//! Per-generation filters take a proportional slice of the configured
//! monolithic geometry: bits and capacity divided evenly across
//! partitions and live generations, hash count and max-FPP target kept,
//! so the aggregate bit budget and the saturation fill fraction match
//! the monolithic configuration.

use std::collections::VecDeque;

use tactic_crypto::hash::Hasher64;

use crate::filter::BloomFilter;
use crate::params::BloomParams;

/// Seed for the prefix → partition hash (distinct from the filter's own
/// probe-hash seeds).
const PARTITION_SEED: u64 = 0x7AC7_1CCA_C4E0_0001;

/// Which eviction policy a [`ValidationCache`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// The paper's design: one filter, full reset at saturation.
    #[default]
    MonolithicReset,
    /// `generations` rotating sub-filters in each of `partitions`
    /// prefix-partitions; saturation retires only the oldest generation
    /// of the affected partition.
    Generational {
        /// Live sub-filters per partition (`G >= 1`).
        generations: usize,
        /// Prefix partitions (`P >= 1`).
        partitions: usize,
    },
}

impl CachePolicy {
    /// Stable one-token summary for scenario provenance lines
    /// (`monolithic` or `genGxP`).
    pub fn summary(&self) -> String {
        match self {
            CachePolicy::MonolithicReset => "monolithic".to_string(),
            CachePolicy::Generational {
                generations,
                partitions,
            } => format!("gen{generations}x{partitions}"),
        }
    }
}

/// What an insert evicted, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheChurn {
    /// Nothing was evicted.
    None,
    /// A monolithic full reset: all validated state was dumped.
    Reset,
    /// A generational rotation: the oldest generation of one partition
    /// was retired.
    Rotation,
}

#[derive(Debug, Clone, PartialEq)]
enum CacheState {
    Monolithic(BloomFilter),
    Generational {
        /// `partitions[p]` is the rotation queue for prefix-partition
        /// `p`: front is the oldest generation, back is the head that
        /// receives inserts.
        partitions: Vec<VecDeque<BloomFilter>>,
        gen_params: BloomParams,
        rotations: u64,
    },
}

/// A router's validated-tag memory behind one policy-agnostic API.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationCache {
    policy: CachePolicy,
    state: CacheState,
}

impl ValidationCache {
    /// Builds a cache for `params` under `policy`.
    ///
    /// For [`CachePolicy::Generational`] each per-generation filter
    /// takes a proportional `1/(generations × partitions)` slice of the
    /// monolithic geometry — bits and capacity divided, hash count and
    /// `max_fpp` kept — so the aggregate bit budget matches the
    /// monolithic configuration exactly and every generation saturates
    /// at the same *fill fraction* the monolithic filter resets at
    /// (sizing the slices fresh at `max_fpp` would instead strip the
    /// design-FPP headroom and make the generational arm retire state
    /// early — an unfair comparison).
    ///
    /// # Panics
    ///
    /// Panics if a generational policy has zero generations or
    /// partitions.
    pub fn new(params: BloomParams, policy: CachePolicy) -> Self {
        let state = match policy {
            CachePolicy::MonolithicReset => CacheState::Monolithic(BloomFilter::new(params)),
            CachePolicy::Generational {
                generations,
                partitions,
            } => {
                assert!(generations >= 1, "need at least one generation");
                assert!(partitions >= 1, "need at least one partition");
                let div = generations * partitions;
                let gen_params = BloomParams {
                    bits: (params.bits / div).max(8),
                    hashes: params.hashes,
                    capacity: (params.capacity / div).max(1),
                    max_fpp: params.max_fpp,
                };
                let partitions = (0..partitions)
                    .map(|_| {
                        (0..generations)
                            .map(|_| BloomFilter::new(gen_params))
                            .collect()
                    })
                    .collect();
                CacheState::Generational {
                    partitions,
                    gen_params,
                    rotations: 0,
                }
            }
        };
        ValidationCache { policy, state }
    }

    /// The policy this cache was built with.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    fn partition_index(prefix: &[u8], count: usize) -> usize {
        let mut h = Hasher64::with_seed(PARTITION_SEED);
        h.update(prefix);
        (h.finish() % count as u64) as usize
    }

    /// Records a validated key. `prefix` selects the partition under
    /// the generational policy (the monolithic cache ignores it).
    /// Returns what, if anything, the insert evicted.
    pub fn insert(&mut self, prefix: &[u8], key: &[u8]) -> CacheChurn {
        match &mut self.state {
            // The golden path: the exact pre-refactor call, reset checked
            // before the insert lands.
            CacheState::Monolithic(bf) => {
                if bf.insert_with_reset(key) {
                    CacheChurn::Reset
                } else {
                    CacheChurn::None
                }
            }
            CacheState::Generational {
                partitions,
                gen_params,
                rotations,
            } => {
                let p = Self::partition_index(prefix, partitions.len());
                let gens = &mut partitions[p];
                let mut churn = CacheChurn::None;
                if gens.back().expect("at least one generation").is_saturated() {
                    gens.pop_front();
                    gens.push_back(BloomFilter::new(*gen_params));
                    *rotations += 1;
                    churn = CacheChurn::Rotation;
                }
                gens.back_mut()
                    .expect("at least one generation")
                    .insert(key);
                churn
            }
        }
    }

    /// Membership test: was this key validated and is it still live?
    /// Probes every live generation of the key's partition.
    pub fn contains(&self, prefix: &[u8], key: &[u8]) -> bool {
        match &self.state {
            CacheState::Monolithic(bf) => bf.contains(key),
            CacheState::Generational { partitions, .. } => {
                let p = Self::partition_index(prefix, partitions.len());
                partitions[p].iter().any(|bf| bf.contains(key))
            }
        }
    }

    /// Bits currently set, summed over every live filter.
    pub fn set_bits(&self) -> usize {
        match &self.state {
            CacheState::Monolithic(bf) => bf.set_bits(),
            CacheState::Generational { partitions, .. } => partitions
                .iter()
                .flat_map(|gens| gens.iter())
                .map(BloomFilter::set_bits)
                .sum(),
        }
    }

    /// Total bits across every live filter — the occupancy denominator.
    pub fn bit_count(&self) -> usize {
        match &self.state {
            CacheState::Monolithic(bf) => bf.bit_count(),
            CacheState::Generational { partitions, .. } => partitions
                .iter()
                .flat_map(|gens| gens.iter())
                .map(BloomFilter::bit_count)
                .sum(),
        }
    }

    /// Set-bit fraction across the live filters, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        match &self.state {
            CacheState::Monolithic(bf) => bf.occupancy(),
            CacheState::Generational { .. } => self.set_bits() as f64 / self.bit_count() as f64,
        }
    }

    /// The false-positive probability a lookup sees. Monolithic: the
    /// filter's fill-based estimate (the flag-`F` value). Generational:
    /// a lookup probes all `G` generations of one partition, so per
    /// partition the FPP is the union `1 − Π(1 − fpp_g)`; this returns
    /// the mean over partitions.
    pub fn estimated_fpp(&self) -> f64 {
        match &self.state {
            CacheState::Monolithic(bf) => bf.estimated_fpp(),
            CacheState::Generational { partitions, .. } => {
                let sum: f64 = partitions
                    .iter()
                    .map(|gens| {
                        1.0 - gens
                            .iter()
                            .map(|bf| 1.0 - bf.estimated_fpp())
                            .product::<f64>()
                    })
                    .sum();
                sum / partitions.len() as f64
            }
        }
    }

    /// Full resets performed (always 0 under the generational policy —
    /// it never dumps everything).
    pub fn resets(&self) -> u64 {
        match &self.state {
            CacheState::Monolithic(bf) => bf.resets(),
            CacheState::Generational { .. } => 0,
        }
    }

    /// Generation rotations performed (always 0 under the monolithic
    /// policy).
    pub fn rotations(&self) -> u64 {
        match &self.state {
            CacheState::Monolithic(_) => 0,
            CacheState::Generational { rotations, .. } => *rotations,
        }
    }

    /// The underlying filter when running the monolithic policy — for
    /// golden-equivalence tests and Fig. 8-style accounting.
    pub fn as_monolithic(&self) -> Option<&BloomFilter> {
        match &self.state {
            CacheState::Monolithic(bf) => Some(bf),
            CacheState::Generational { .. } => None,
        }
    }

    /// Live filters (1 for monolithic, `G × P` for generational).
    pub fn live_filters(&self) -> usize {
        match &self.state {
            CacheState::Monolithic(_) => 1,
            CacheState::Generational { partitions, .. } => {
                partitions.iter().map(VecDeque::len).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(i: u64) -> Vec<u8> {
        format!("tag-{i}").into_bytes()
    }

    fn paper_cache(policy: CachePolicy) -> ValidationCache {
        ValidationCache::new(BloomParams::paper(500), policy)
    }

    #[test]
    fn monolithic_delegates_bit_for_bit() {
        let mut cache = paper_cache(CachePolicy::MonolithicReset);
        let mut raw = BloomFilter::new(BloomParams::paper(500));
        for i in 0..3_000u64 {
            let reset = raw.insert_with_reset(&key(i));
            let churn = cache.insert(b"prefix-ignored", &key(i));
            assert_eq!(reset, churn == CacheChurn::Reset, "reset decision at {i}");
            assert_eq!(cache.as_monolithic(), Some(&raw), "filter state at {i}");
        }
        assert_eq!(cache.set_bits(), raw.set_bits());
        assert_eq!(cache.bit_count(), raw.bit_count());
        assert_eq!(cache.estimated_fpp(), raw.estimated_fpp());
        assert_eq!(cache.occupancy(), raw.occupancy());
        assert_eq!(cache.resets(), raw.resets());
        assert_eq!(cache.rotations(), 0);
    }

    #[test]
    fn generational_rotates_instead_of_resetting() {
        let mut cache = paper_cache(CachePolicy::Generational {
            generations: 4,
            partitions: 2,
        });
        for i in 0..5_000u64 {
            cache.insert(b"/prov/a", &key(i));
        }
        assert!(cache.rotations() > 0, "head generations never saturated");
        assert_eq!(
            cache.resets(),
            0,
            "generational policy must never full-reset"
        );
        assert_eq!(cache.live_filters(), 8, "rotation must keep G filters live");
    }

    #[test]
    fn rotation_keeps_recent_generations_queryable() {
        let g = 3;
        let mut cache = ValidationCache::new(
            BloomParams::paper(300),
            CachePolicy::Generational {
                generations: g,
                partitions: 1,
            },
        );
        cache.insert(b"/p", b"anchor");
        let mut i = 0u64;
        // Drive exactly G-1 rotations; the anchor's generation is then the
        // oldest live one and must still answer lookups.
        while cache.rotations() < (g - 1) as u64 {
            cache.insert(b"/p", &key(i));
            i += 1;
            assert!(i < 100_000, "never rotated");
            assert!(
                cache.contains(b"/p", b"anchor"),
                "anchor lost after {} rotations (< G = {g})",
                cache.rotations()
            );
        }
    }

    #[test]
    fn hot_prefix_rotations_do_not_evict_other_partitions() {
        let mut cache = ValidationCache::new(
            BloomParams::paper(400),
            CachePolicy::Generational {
                generations: 2,
                partitions: 4,
            },
        );
        // Find two prefixes living in different partitions.
        let cold = b"/prov/cold".as_slice();
        let hot = (0..64u64)
            .map(|i| format!("/prov/hot-{i}").into_bytes())
            .find(|h| {
                ValidationCache::partition_index(h, 4) != ValidationCache::partition_index(cold, 4)
            })
            .expect("some prefix hashes elsewhere");
        cache.insert(cold, b"cold-tag");
        let before = cache.rotations();
        for i in 0..20_000u64 {
            cache.insert(&hot, &key(i));
        }
        assert!(
            cache.rotations() > before + 4,
            "hot partition never churned"
        );
        assert!(
            cache.contains(cold, b"cold-tag"),
            "a hot prefix must not evict another partition's state"
        );
    }

    proptest! {
        /// `MonolithicReset` through the new API is bit-for-bit the old
        /// filter, for arbitrary insert sequences.
        #[test]
        fn monolithic_equivalence_holds_for_arbitrary_sequences(
            keys in prop::collection::vec(any::<u64>(), 1..400),
            capacity in 8usize..200,
        ) {
            let params = BloomParams::paper(capacity.max(8));
            let mut cache = ValidationCache::new(params, CachePolicy::MonolithicReset);
            let mut raw = BloomFilter::new(params);
            for k in &keys {
                let reset = raw.insert_with_reset(&key(*k));
                let churn = cache.insert(b"p", &key(*k));
                prop_assert_eq!(reset, churn == CacheChurn::Reset);
            }
            prop_assert_eq!(cache.as_monolithic(), Some(&raw));
        }

        /// A registration inserted fewer than G rotations ago is always
        /// found (no false negatives across rotation).
        #[test]
        fn registrations_survive_up_to_g_rotations(
            generations in 2usize..6,
            filler in prop::collection::vec(any::<u64>(), 1..2000),
        ) {
            let mut cache = ValidationCache::new(
                BloomParams::paper(100),
                CachePolicy::Generational { generations, partitions: 1 },
            );
            cache.insert(b"/p", b"anchor");
            for f in &filler {
                if cache.rotations() >= generations as u64 {
                    break;
                }
                prop_assert!(
                    cache.contains(b"/p", b"anchor"),
                    "anchor lost after only {} rotations (G = {})",
                    cache.rotations(),
                    generations
                );
                cache.insert(b"/p", &key(*f));
            }
        }

        /// Retired generations never resurrect: once a key's generation
        /// has rotated out (G rotations after its insert), the key is
        /// gone — modulo the designed false-positive probability, which
        /// the test makes negligible.
        #[test]
        fn retired_generations_never_resurrect(
            generations in 1usize..4,
            anchors in prop::collection::vec(any::<u64>(), 1..8),
        ) {
            let mut cache = ValidationCache::new(
                // Tight FPP so a post-retirement hit would be a real
                // resurrection, not filter noise.
                BloomParams::for_capacity(200, 1e-9),
                CachePolicy::Generational { generations, partitions: 1 },
            );
            for a in &anchors {
                cache.insert(b"/p", &format!("anchor-{a}").into_bytes());
            }
            let target = cache.rotations() + generations as u64;
            let mut i = 0u64;
            while cache.rotations() < target {
                cache.insert(b"/p", &key(i));
                i += 1;
                prop_assert!(i < 1_000_000, "never rotated {} times", generations);
            }
            for a in &anchors {
                prop_assert!(
                    !cache.contains(b"/p", &format!("anchor-{a}").into_bytes()),
                    "anchor-{} resurrected after {} rotations",
                    a,
                    generations
                );
            }
        }
    }
}
