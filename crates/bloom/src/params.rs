//! Bloom-filter parameter derivation.
//!
//! Standard analysis (Mullin, "A second look at Bloom filters", CACM 1983 —
//! the paper's reference [18]): for a filter of `m` bits, `k` hash
//! functions and `n` inserted elements the false-positive probability is
//! `(1 - (1 - 1/m)^(kn))^k ≈ (1 - e^(-kn/m))^k`. The optimal bit count for
//! a target probability `p` at capacity `n` is `m = -n·ln p / (ln 2)²`, and
//! the optimal hash count is `k = (m/n)·ln 2`.

/// Sizing and policy parameters for a [`crate::BloomFilter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BloomParams {
    /// Number of bits `m`.
    pub bits: usize,
    /// Number of hash functions `k`.
    pub hashes: u32,
    /// Design capacity `n` (elements the filter is sized for).
    pub capacity: usize,
    /// FPP threshold at which the filter counts as saturated and is reset.
    pub max_fpp: f64,
}

impl BloomParams {
    /// Derives optimal `m` and `k` for `capacity` elements at `target_fpp`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `target_fpp` is outside `(0, 1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tactic_bloom::BloomParams;
    ///
    /// let p = BloomParams::for_capacity(1000, 0.01);
    /// assert!(p.bits >= 9000 && p.bits <= 10000);
    /// assert_eq!(p.hashes, 7);
    /// ```
    pub fn for_capacity(capacity: usize, target_fpp: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            target_fpp > 0.0 && target_fpp < 1.0,
            "target_fpp must be in (0, 1)"
        );
        let ln2 = std::f64::consts::LN_2;
        let m = (-(capacity as f64) * target_fpp.ln() / (ln2 * ln2)).ceil() as usize;
        let k = ((m as f64 / capacity as f64) * ln2).round().max(1.0) as u32;
        BloomParams {
            bits: m.max(8),
            hashes: k,
            capacity,
            max_fpp: target_fpp,
        }
    }

    /// The paper's configuration: `k = 5` hash functions, maximum FPP
    /// `1e-4`, with the bit count sized for `capacity` tags at that FPP
    /// under `k = 5` (solving `(1 - e^(-kn/m))^k = p` for `m`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn paper(capacity: usize) -> Self {
        Self::with_fixed_hashes(capacity, 5, 1e-4)
    }

    /// Sizes the bit array for `capacity` elements at `max_fpp` with a
    /// *fixed* hash count (the paper pins `k = 5` while sweeping FPP).
    ///
    /// From `(1 - e^(-kn/m))^k = p`: `m = -kn / ln(1 - p^(1/k))`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `hashes == 0`, or `max_fpp` ∉ (0, 1).
    pub fn with_fixed_hashes(capacity: usize, hashes: u32, max_fpp: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(hashes > 0, "need at least one hash function");
        assert!(max_fpp > 0.0 && max_fpp < 1.0, "max_fpp must be in (0, 1)");
        let k = hashes as f64;
        let n = capacity as f64;
        let m = (-k * n / (1.0 - max_fpp.powf(1.0 / k)).ln()).ceil() as usize;
        BloomParams {
            bits: m.max(8),
            hashes,
            capacity,
            max_fpp,
        }
    }

    /// The smallest set-bit count at which the filter counts as
    /// saturated — the integer form of the historical float rule
    /// `fill_ratio^k >= max_fpp`.
    ///
    /// Saturation used to be decided per insert by recomputing the
    /// float estimate; this precomputes the decision boundary once, by
    /// binary search over set-bit counts of the *identical* float
    /// expression (which is monotone in the set-bit count), so the
    /// boundary provably matches the old rule bit for bit while the
    /// per-insert decision becomes a deterministic integer compare.
    pub fn saturation_set_bits(&self) -> usize {
        let saturated =
            |s: usize| (s as f64 / self.bits as f64).powi(self.hashes as i32) >= self.max_fpp;
        if !saturated(self.bits) {
            // max_fpp > 1: the filter can never saturate.
            return self.bits + 1;
        }
        let (mut lo, mut hi) = (0usize, self.bits);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if saturated(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Theoretical FPP after `inserted` elements: `(1 - e^(-k·i/m))^k`.
    pub fn fpp_after(&self, inserted: usize) -> f64 {
        let k = self.hashes as f64;
        let exponent = -k * inserted as f64 / self.bits as f64;
        (1.0 - exponent.exp()).powf(k)
    }

    /// Memory footprint of the bit array in bytes.
    pub fn bytes(&self) -> usize {
        self.bits.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_sizing_hits_target() {
        let p = BloomParams::for_capacity(500, 1e-4);
        let fpp = p.fpp_after(500);
        assert!(fpp <= 1.2e-4, "fpp at capacity {fpp}");
    }

    #[test]
    fn paper_params_match_stated_config() {
        let p = BloomParams::paper(500);
        assert_eq!(p.hashes, 5);
        assert_eq!(p.max_fpp, 1e-4);
        // At design capacity the theoretical FPP must sit at ~max_fpp.
        let fpp = p.fpp_after(500);
        assert!((0.5e-4..=1.05e-4).contains(&fpp), "fpp {fpp}");
    }

    #[test]
    fn fixed_hash_sizing_monotone_in_capacity() {
        let small = BloomParams::with_fixed_hashes(500, 5, 1e-4);
        let large = BloomParams::with_fixed_hashes(5000, 5, 1e-4);
        assert!(
            large.bits > small.bits * 9,
            "{} vs {}",
            large.bits,
            small.bits
        );
    }

    #[test]
    fn looser_fpp_needs_fewer_bits() {
        let tight = BloomParams::with_fixed_hashes(500, 5, 1e-4);
        let loose = BloomParams::with_fixed_hashes(500, 5, 1e-2);
        assert!(loose.bits < tight.bits);
    }

    #[test]
    fn fpp_after_is_monotone() {
        let p = BloomParams::paper(1000);
        let mut last = 0.0;
        for i in [0, 100, 500, 1000, 2000, 10_000] {
            let f = p.fpp_after(i);
            assert!(f >= last, "fpp decreased at {i}");
            last = f;
        }
        assert_eq!(p.fpp_after(0), 0.0);
    }

    #[test]
    fn bytes_rounds_up() {
        let p = BloomParams {
            bits: 9,
            hashes: 1,
            capacity: 1,
            max_fpp: 0.5,
        };
        assert_eq!(p.bytes(), 2);
    }

    /// The integer saturation boundary must agree with the historical
    /// float predicate `(set_bits/bits)^k >= max_fpp` at **every**
    /// possible set-bit count, for every configuration the goldens and
    /// the paper sweeps exercise — float drift must never flip a reset.
    #[test]
    fn saturation_boundary_matches_float_predicate_exactly() {
        let configs = [
            BloomParams::paper(500),
            BloomParams::paper(100),
            BloomParams::paper(2_500),
            BloomParams::for_capacity(1_000, 0.01),
            BloomParams::for_capacity(50, 1e-6),
            BloomParams::with_fixed_hashes(500, 5, 1e-2),
            BloomParams::with_fixed_hashes(500, 1, 0.5),
        ];
        for p in configs {
            let threshold = p.saturation_set_bits();
            for s in 0..=p.bits {
                let float_rule = (s as f64 / p.bits as f64).powi(p.hashes as i32) >= p.max_fpp;
                assert_eq!(
                    s >= threshold,
                    float_rule,
                    "boundary mismatch at set_bits={s} for {p:?} (threshold {threshold})"
                );
            }
        }
    }

    #[test]
    fn saturation_threshold_unreachable_when_fpp_cap_exceeds_one() {
        let p = BloomParams {
            bits: 64,
            hashes: 2,
            capacity: 8,
            max_fpp: 2.0,
        };
        assert_eq!(p.saturation_set_bits(), p.bits + 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        BloomParams::for_capacity(0, 0.01);
    }

    #[test]
    #[should_panic(expected = "max_fpp")]
    fn bad_fpp_panics() {
        BloomParams::with_fixed_hashes(10, 5, 1.5);
    }
}
