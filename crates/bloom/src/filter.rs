//! The Bloom filter proper, with the saturation/reset policy TACTIC's
//! routers rely on (§5, §8).

use tactic_crypto::hash::Hasher64;

use crate::params::BloomParams;

/// A Bloom filter over byte-slice keys with Kirsch–Mitzenmacher double
/// hashing, fill-based FPP estimation, and reset accounting.
///
/// TACTIC routers insert *validated tags* and consult the filter instead of
/// re-verifying signatures; when the estimated FPP reaches
/// [`BloomParams::max_fpp`] the filter is saturated and the router resets
/// it (the paper counts these resets in Fig. 8 / Table V).
///
/// # Examples
///
/// ```
/// use tactic_bloom::{BloomFilter, BloomParams};
///
/// let mut bf = BloomFilter::new(BloomParams::paper(500));
/// bf.insert(b"tag-1");
/// assert!(bf.contains(b"tag-1"));
/// assert!(!bf.contains(b"tag-2"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BloomFilter {
    params: BloomParams,
    blocks: Vec<u64>,
    set_bits: usize,
    /// Precomputed integer saturation boundary
    /// ([`BloomParams::saturation_set_bits`]), so the per-insert
    /// saturation decision is a deterministic integer compare.
    saturation_bits: usize,
    inserted_since_reset: u64,
    lifetime_insertions: u64,
    resets: u64,
}

impl BloomFilter {
    /// Creates an empty filter with the given parameters.
    pub fn new(params: BloomParams) -> Self {
        BloomFilter {
            blocks: vec![0u64; params.bits.div_ceil(64)],
            saturation_bits: params.saturation_set_bits(),
            params,
            set_bits: 0,
            inserted_since_reset: 0,
            lifetime_insertions: 0,
            resets: 0,
        }
    }

    /// The filter's parameters.
    pub fn params(&self) -> &BloomParams {
        &self.params
    }

    #[inline]
    fn base_hashes(&self, key: &[u8]) -> (u64, u64) {
        let mut h1 = Hasher64::with_seed(0xB100_F117_E500_0001);
        h1.update(key);
        let mut h2 = Hasher64::with_seed(0xB100_F117_E500_0002);
        h2.update(key);
        // h2 must be odd so the probe sequence spans the table.
        (h1.finish(), h2.finish() | 1)
    }

    #[inline]
    fn bit_index(&self, h1: u64, h2: u64, i: u32) -> usize {
        let combined = h1.wrapping_add((i as u64).wrapping_mul(h2));
        (combined % self.params.bits as u64) as usize
    }

    /// Inserts a key. Returns `true` if at least one bit was newly set
    /// (i.e. the key was definitely not present before).
    pub fn insert(&mut self, key: &[u8]) -> bool {
        let (h1, h2) = self.base_hashes(key);
        let mut fresh = false;
        for i in 0..self.params.hashes {
            let idx = self.bit_index(h1, h2, i);
            let (block, bit) = (idx / 64, idx % 64);
            let mask = 1u64 << bit;
            if self.blocks[block] & mask == 0 {
                self.blocks[block] |= mask;
                self.set_bits += 1;
                fresh = true;
            }
        }
        self.inserted_since_reset += 1;
        self.lifetime_insertions += 1;
        fresh
    }

    /// Membership test (may yield false positives, never false negatives).
    pub fn contains(&self, key: &[u8]) -> bool {
        let (h1, h2) = self.base_hashes(key);
        (0..self.params.hashes).all(|i| {
            let idx = self.bit_index(h1, h2, i);
            self.blocks[idx / 64] & (1 << (idx % 64)) != 0
        })
    }

    /// Fraction of set bits.
    pub fn fill_ratio(&self) -> f64 {
        self.set_bits as f64 / self.params.bits as f64
    }

    /// Occupancy — the set-bit fraction in `[0, 1]`. This is the
    /// saturation-trajectory signal the in-flight sampler exports per
    /// tick; identical to [`fill_ratio`](Self::fill_ratio), named for the
    /// observability vocabulary.
    pub fn occupancy(&self) -> f64 {
        self.fill_ratio()
    }

    /// Number of bits currently set. Raw integer form of
    /// [`occupancy`](Self::occupancy) for deterministic (non-float)
    /// aggregation across routers and shards.
    pub fn set_bits(&self) -> usize {
        self.set_bits
    }

    /// Total bits in the filter (`params.bits`), the occupancy denominator.
    pub fn bit_count(&self) -> usize {
        self.params.bits
    }

    /// The current false-positive probability, estimated from the actual
    /// fill ratio: `fill^k`. This is the value TACTIC edge routers copy
    /// into the flag `F` of forwarded Interests.
    pub fn estimated_fpp(&self) -> f64 {
        self.fill_ratio().powi(self.params.hashes as i32)
    }

    /// True once the estimated FPP has reached the configured maximum; the
    /// owning router should [`reset`](Self::reset) the filter.
    ///
    /// Decided on the deterministic integer set-bit count against the
    /// precomputed [`BloomParams::saturation_set_bits`] boundary — by
    /// construction the same decision the historical float rule
    /// `estimated_fpp() >= max_fpp` makes, without evaluating floats on
    /// the insert path.
    pub fn is_saturated(&self) -> bool {
        self.set_bits >= self.saturation_bits
    }

    /// Clears all bits and bumps the reset counter.
    pub fn reset(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
        self.set_bits = 0;
        self.inserted_since_reset = 0;
        self.resets += 1;
    }

    /// Inserts and resets first if the filter is saturated. Returns `true`
    /// if a reset occurred.
    pub fn insert_with_reset(&mut self, key: &[u8]) -> bool {
        let reset = self.is_saturated();
        if reset {
            self.reset();
        }
        self.insert(key);
        reset
    }

    /// Keys inserted since the last reset.
    pub fn inserted_since_reset(&self) -> u64 {
        self.inserted_since_reset
    }

    /// Keys inserted over the filter's lifetime.
    pub fn lifetime_insertions(&self) -> u64 {
        self.lifetime_insertions
    }

    /// Number of resets performed.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

/// A counting Bloom filter supporting deletion (4-bit saturating counters).
///
/// Not used by the paper's protocols, but offered for the revocation
/// extension discussed in §9 (future work): routers could expunge expired
/// tags instead of resetting the whole filter.
#[derive(Debug, Clone, PartialEq)]
pub struct CountingBloomFilter {
    params: BloomParams,
    counters: Vec<u8>,
}

impl CountingBloomFilter {
    /// Creates an empty counting filter.
    pub fn new(params: BloomParams) -> Self {
        CountingBloomFilter {
            counters: vec![0; params.bits],
            params,
        }
    }

    fn hashes(&self, key: &[u8]) -> impl Iterator<Item = usize> + '_ {
        let mut h1 = Hasher64::with_seed(0xB100_F117_E500_0001);
        h1.update(key);
        let mut h2 = Hasher64::with_seed(0xB100_F117_E500_0002);
        h2.update(key);
        let (a, b) = (h1.finish(), h2.finish() | 1);
        let bits = self.params.bits as u64;
        (0..self.params.hashes)
            .map(move |i| (a.wrapping_add((i as u64).wrapping_mul(b)) % bits) as usize)
    }

    /// Inserts a key (counters saturate at 15 and then never decrement, to
    /// preserve the no-false-negative property).
    pub fn insert(&mut self, key: &[u8]) {
        let idxs: Vec<usize> = self.hashes(key).collect();
        for idx in idxs {
            if self.counters[idx] < 15 {
                self.counters[idx] += 1;
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.hashes(key).all(|idx| self.counters[idx] > 0)
    }

    /// Removes a key previously inserted. Deleting a key that was never
    /// inserted can introduce false negatives, as with any counting filter.
    pub fn remove(&mut self, key: &[u8]) {
        let idxs: Vec<usize> = self.hashes(key).collect();
        for idx in idxs {
            if self.counters[idx] > 0 && self.counters[idx] < 15 {
                self.counters[idx] -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("tag-{i}").into_bytes()
    }

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(BloomParams::paper(500));
        for i in 0..500 {
            bf.insert(&key(i));
        }
        for i in 0..500 {
            assert!(bf.contains(&key(i)), "false negative for {i}");
        }
    }

    #[test]
    fn empirical_fpp_matches_design() {
        let mut bf = BloomFilter::new(BloomParams::for_capacity(1000, 0.01));
        for i in 0..1000 {
            bf.insert(&key(i));
        }
        let fp = (1000..101_000).filter(|&i| bf.contains(&key(i))).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.02, "observed fpp {rate}");
        assert!(
            rate > 0.001,
            "suspiciously low fpp {rate} (hashing broken?)"
        );
        // The fill-based estimate should be in the same ballpark.
        let est = bf.estimated_fpp();
        assert!(
            (est / rate < 3.0) && (rate / est < 3.0),
            "estimate {est} vs observed {rate}"
        );
    }

    #[test]
    fn saturation_triggers_near_capacity() {
        let mut bf = BloomFilter::new(BloomParams::paper(500));
        let mut i = 0u64;
        while !bf.is_saturated() {
            bf.insert(&key(i));
            i += 1;
            assert!(i < 2_000, "filter never saturated");
        }
        // Saturation should happen in the vicinity of the design capacity.
        assert!(
            (250..1_000).contains(&i),
            "saturated after {i} insertions (capacity 500)"
        );
    }

    #[test]
    fn reset_clears_and_counts() {
        let mut bf = BloomFilter::new(BloomParams::paper(500));
        bf.insert(b"a");
        assert!(bf.contains(b"a"));
        bf.reset();
        assert!(!bf.contains(b"a"));
        assert_eq!(bf.resets(), 1);
        assert_eq!(bf.inserted_since_reset(), 0);
        assert_eq!(bf.lifetime_insertions(), 1);
        assert_eq!(bf.fill_ratio(), 0.0);
    }

    #[test]
    fn insert_with_reset_cycles() {
        let mut bf = BloomFilter::new(BloomParams::paper(100));
        let mut resets = 0;
        for i in 0..1_000 {
            if bf.insert_with_reset(&key(i)) {
                resets += 1;
            }
        }
        assert_eq!(bf.resets(), resets);
        assert!(resets >= 5, "expected several resets, got {resets}");
        assert_eq!(bf.lifetime_insertions(), 1_000);
    }

    /// The integer saturation decision must track the historical float
    /// rule at every step of a realistic insert/reset trajectory — the
    /// exact sequence the golden runs drive.
    #[test]
    fn integer_saturation_matches_float_rule_along_golden_trajectory() {
        for params in [
            BloomParams::paper(500),
            BloomParams::paper(100),
            BloomParams::for_capacity(1_000, 0.01),
        ] {
            let mut bf = BloomFilter::new(params);
            for i in 0..5_000u64 {
                let float_rule = bf.estimated_fpp() >= bf.params().max_fpp;
                assert_eq!(
                    bf.is_saturated(),
                    float_rule,
                    "decision diverged at insert {i} ({} set bits) for {params:?}",
                    bf.set_bits()
                );
                bf.insert_with_reset(&key(i));
            }
        }
    }

    #[test]
    fn insert_reports_freshness() {
        let mut bf = BloomFilter::new(BloomParams::paper(500));
        assert!(bf.insert(b"x"));
        assert!(!bf.insert(b"x"), "re-inserting must set no new bits");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bf = BloomFilter::new(BloomParams::paper(500));
        assert_eq!(bf.estimated_fpp(), 0.0);
        assert!(!bf.is_saturated());
        for i in 0..100 {
            assert!(!bf.contains(&key(i)));
        }
    }

    #[test]
    fn occupancy_tracks_set_bits_and_fpp_matches_params_math() {
        let params = BloomParams::for_capacity(1_000, 0.01);
        let mut bf = BloomFilter::new(params);
        assert_eq!(bf.occupancy(), 0.0);
        assert_eq!(bf.set_bits(), 0);
        assert_eq!(bf.bit_count(), params.bits);

        for i in 0..1_000 {
            bf.insert(&key(i));
        }
        assert_eq!(bf.occupancy(), bf.set_bits() as f64 / params.bits as f64);
        assert!(bf.occupancy() > 0.0 && bf.occupancy() < 1.0);
        assert!(bf.set_bits() <= params.bits);

        // The design-time prediction `fpp_after(n)` models the expected
        // fill `1 - e^(-kn/m)`; the observed occupancy must sit near it,
        // and the fill-based estimate must match `occupancy^k` exactly.
        let expected_fill = 1.0 - (-(params.hashes as f64) * 1_000.0 / params.bits as f64).exp();
        let occ = bf.occupancy();
        assert!(
            (occ - expected_fill).abs() < 0.02,
            "occupancy {occ} vs expected fill {expected_fill}"
        );
        let est = bf.estimated_fpp();
        assert!(
            (est - occ.powi(params.hashes as i32)).abs() < 1e-12,
            "estimated_fpp must be occupancy^k"
        );
        let predicted = params.fpp_after(1_000);
        assert!(
            est / predicted < 3.0 && predicted / est < 3.0,
            "estimate {est} vs params prediction {predicted}"
        );
    }

    #[test]
    fn occupancy_resets_with_the_filter() {
        let mut bf = BloomFilter::new(BloomParams::paper(100));
        for i in 0..100 {
            bf.insert(&key(i));
        }
        assert!(bf.set_bits() > 0);
        bf.reset();
        assert_eq!(bf.set_bits(), 0);
        assert_eq!(bf.occupancy(), 0.0);
    }

    #[test]
    fn counting_filter_supports_removal() {
        let mut cbf = CountingBloomFilter::new(BloomParams::paper(500));
        cbf.insert(b"a");
        cbf.insert(b"b");
        assert!(cbf.contains(b"a"));
        cbf.remove(b"a");
        assert!(!cbf.contains(b"a"));
        assert!(
            cbf.contains(b"b"),
            "removal must not disturb other keys sharing no bits"
        );
    }

    #[test]
    fn counting_filter_double_insert_single_remove() {
        let mut cbf = CountingBloomFilter::new(BloomParams::paper(500));
        cbf.insert(b"a");
        cbf.insert(b"a");
        cbf.remove(b"a");
        assert!(cbf.contains(b"a"));
        cbf.remove(b"a");
        assert!(!cbf.contains(b"a"));
    }
}
