//! # tactic-bloom
//!
//! Bloom filters for TACTIC's router-side tag caches.
//!
//! Every TACTIC router keeps a Bloom filter of tags whose provider
//! signatures it has already verified, turning most per-Interest
//! authorisations into O(1) filter lookups (paper §4.B). The filter's
//! estimated false-positive probability doubles as the cooperation flag `F`
//! that edge routers stamp on forwarded Interests, and its saturation/reset
//! cycle drives the paper's Fig. 8 and Table V.
//!
//! * [`BloomParams`] — sizing math (optimal and fixed-`k` forms, the
//!   paper's `k = 5`, max-FPP `1e-4` preset);
//! * [`BloomFilter`] — the filter with fill-based FPP estimation, reset
//!   accounting, and no-false-negative guarantees;
//! * [`ValidationCache`] — the router's validated-tag memory behind a
//!   policy-agnostic API: the paper's monolithic-reset filter (default)
//!   or `G` rotating generations with per-prefix partitioning;
//! * [`CountingBloomFilter`] — a deletable variant for the future-work
//!   revocation extension.
//!
//! # Examples
//!
//! ```
//! use tactic_bloom::{BloomFilter, BloomParams};
//!
//! // The paper's setup: 500-tag capacity, 5 hashes, max FPP 1e-4.
//! let mut bf = BloomFilter::new(BloomParams::paper(500));
//! bf.insert(b"validated-tag");
//! assert!(bf.contains(b"validated-tag"));
//!
//! // The flag F an edge router would stamp on a hit:
//! let f = bf.estimated_fpp();
//! assert!(f < 1e-4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod filter;
mod params;

pub use cache::{CacheChurn, CachePolicy, ValidationCache};
pub use filter::{BloomFilter, CountingBloomFilter};
pub use params::BloomParams;
