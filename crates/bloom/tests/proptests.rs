//! Property-based tests for the Bloom filters: the no-false-negative
//! invariant above all.

use proptest::prelude::*;

use tactic_bloom::{BloomFilter, BloomParams, CountingBloomFilter};

proptest! {
    #[test]
    fn no_false_negatives_ever(keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 1..200)) {
        let mut bf = BloomFilter::new(BloomParams::paper(500));
        for k in &keys {
            bf.insert(k);
        }
        for k in &keys {
            prop_assert!(bf.contains(k), "false negative");
        }
    }

    #[test]
    fn reset_clears_all_members(keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 1..100)) {
        let mut bf = BloomFilter::new(BloomParams::paper(500));
        for k in &keys {
            bf.insert(k);
        }
        bf.reset();
        prop_assert_eq!(bf.fill_ratio(), 0.0);
        prop_assert_eq!(bf.inserted_since_reset(), 0);
        // After a reset only hash-collision "ghosts" could remain — there
        // are none because all bits are zero.
        for k in &keys {
            prop_assert!(!bf.contains(k));
        }
    }

    #[test]
    fn fill_ratio_monotone_under_insertion(count in 1usize..300) {
        let mut bf = BloomFilter::new(BloomParams::paper(500));
        let mut last = 0.0;
        for i in 0..count {
            bf.insert(&(i as u64).to_le_bytes());
            let fill = bf.fill_ratio();
            prop_assert!(fill >= last);
            last = fill;
        }
        prop_assert!(last <= 1.0);
    }

    #[test]
    fn estimated_fpp_bounded(count in 0usize..2000) {
        let mut bf = BloomFilter::new(BloomParams::paper(100));
        for i in 0..count {
            bf.insert(&(i as u64).to_le_bytes());
        }
        let fpp = bf.estimated_fpp();
        prop_assert!((0.0..=1.0).contains(&fpp));
    }

    #[test]
    fn sizing_formulas_agree_with_fpp_prediction(capacity in 16usize..5_000, exp in 2u32..6) {
        let target = 10f64.powi(-(exp as i32));
        let p = BloomParams::with_fixed_hashes(capacity, 5, target);
        let predicted = p.fpp_after(capacity);
        // Sizing solves for exactly the target at design capacity.
        prop_assert!(predicted <= target * 1.05, "predicted {predicted} > target {target}");
        prop_assert!(predicted >= target * 0.5, "sized too generously: {predicted} vs {target}");
    }

    #[test]
    fn insert_with_reset_never_loses_the_latest_key(count in 1usize..2_000) {
        let mut bf = BloomFilter::new(BloomParams::paper(50));
        for i in 0..count {
            let key = (i as u64).to_le_bytes();
            bf.insert_with_reset(&key);
            prop_assert!(bf.contains(&key), "key inserted this round must be present");
        }
        prop_assert_eq!(bf.lifetime_insertions(), count as u64);
    }

    #[test]
    fn counting_filter_remove_restores_absence(keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 1..50)) {
        let mut unique = keys.clone();
        unique.sort();
        unique.dedup();
        let mut cbf = CountingBloomFilter::new(BloomParams::paper(500));
        for k in &unique {
            cbf.insert(k);
        }
        for k in &unique {
            prop_assert!(cbf.contains(k));
        }
        for k in &unique {
            cbf.remove(k);
        }
        // With all insertions removed, every counter that was touched is
        // back to its pre-insert value (saturation needs 15 overlaps,
        // which tiny key sets cannot produce).
        for k in &unique {
            prop_assert!(!cbf.contains(k));
        }
    }
}
