//! The [`InterestLifecycle`] tracer: follows each request from consumer
//! emission through per-hop forwarding decisions to Data/NACK receipt
//! (or timeout), and folds the journeys into hop-count and per-hop
//! latency histograms.
//!
//! Emission registers a flight keyed by `(consumer node, name)` — Data
//! packets carry no nonce, so completion is matched by name at the
//! consumer that asked. Hops are attributed to the flight by nonce
//! (every forwarded copy of the Interest keeps the consumer's nonce).
//! In-flight entries left at the end of a run are counted as
//! `incomplete` and excluded from the histograms.

use std::collections::BTreeMap;

use tactic_ndn::name::Name;

use crate::observer::{Hop, NodeRole, RetrievalOutcome};
use crate::registry::{Histogram, HOP_BOUNDS, LATENCY_BOUNDS};
use tactic_sim::time::SimTime;

#[derive(Debug, Clone)]
struct Flight {
    nonce: u64,
    emitted: SimTime,
    hops: u32,
    last_hop_at: SimTime,
}

/// Per-nonce Interest journey tracking (see module docs).
#[derive(Debug, Clone)]
pub struct InterestLifecycle {
    /// Active flights keyed by (consumer node, name).
    in_flight: BTreeMap<(u64, Name), Flight>,
    /// Router hops per completed journey.
    pub hop_counts: Histogram,
    /// Wire+processing latency between consecutive hops (seconds).
    pub hop_latency: Histogram,
    /// Emission-to-terminal latency per completed journey (seconds).
    pub total_latency: Histogram,
    /// Journeys completed, by terminal outcome.
    pub completed: [u64; 3],
    /// Emissions never matched to a terminal event.
    pub incomplete: u64,
}

impl Default for InterestLifecycle {
    fn default() -> Self {
        InterestLifecycle {
            in_flight: BTreeMap::new(),
            hop_counts: Histogram::new(&HOP_BOUNDS),
            hop_latency: Histogram::new(&LATENCY_BOUNDS),
            total_latency: Histogram::new(&LATENCY_BOUNDS),
            completed: [0; 3],
            incomplete: 0,
        }
    }
}

impl InterestLifecycle {
    /// An empty tracer.
    pub fn new() -> Self {
        InterestLifecycle::default()
    }

    /// Journeys that ended with the given outcome.
    pub fn completed_with(&self, outcome: RetrievalOutcome) -> u64 {
        self.completed[outcome as usize]
    }

    /// A consumer emitted a fresh Interest. A retry for the same name
    /// replaces the previous flight (the old one is counted incomplete).
    pub fn on_interest_emitted(&mut self, hop: Hop, nonce: u64, name: &Name) {
        let prev = self.in_flight.insert(
            (hop.node, name.clone()),
            Flight {
                nonce,
                emitted: hop.now,
                hops: 0,
                last_hop_at: hop.now,
            },
        );
        if prev.is_some() {
            self.incomplete += 1;
        }
    }

    /// The Interest reached a forwarding node; attributes the hop to the
    /// flight carrying this nonce.
    pub fn on_interest_hop(&mut self, hop: Hop, nonce: u64, name: &Name) {
        // The flight key holds the consumer's node id, which routers
        // don't know; find by (name, nonce). Names are unique per
        // consumer in flight, so this scan touches at most a handful of
        // same-name entries.
        for ((_, n), f) in self.in_flight.iter_mut() {
            if n == name && f.nonce == nonce {
                f.hops += 1;
                self.hop_latency
                    .record(hop.now.saturating_since(f.last_hop_at).as_secs_f64());
                f.last_hop_at = hop.now;
                return;
            }
        }
    }

    /// The consumer saw a terminal event for `name`.
    pub fn on_retrieval(&mut self, hop: Hop, name: &Name, outcome: RetrievalOutcome) {
        if let Some(f) = self.in_flight.remove(&(hop.node, name.clone())) {
            self.completed[outcome as usize] += 1;
            self.hop_counts.record(f.hops as f64);
            self.total_latency
                .record(hop.now.saturating_since(f.emitted).as_secs_f64());
        }
    }

    /// A request timer fired at the consumer. Completes the flight as a
    /// [`RetrievalOutcome::Timeout`] only when the timer belongs to the
    /// tracked emission (`sent` matches) — stale timers for requests that
    /// were answered and re-emitted in the meantime are ignored.
    pub fn on_timeout_expired(&mut self, hop: Hop, name: &Name, sent: SimTime) {
        let key = (hop.node, name.clone());
        if self.in_flight.get(&key).is_some_and(|f| f.emitted == sent) {
            let f = self.in_flight.remove(&key).expect("checked above");
            self.completed[RetrievalOutcome::Timeout as usize] += 1;
            self.hop_counts.record(f.hops as f64);
            self.total_latency
                .record(hop.now.saturating_since(f.emitted).as_secs_f64());
        }
    }

    /// Flights still pending (call after a run to account for tail loss).
    pub fn still_in_flight(&self) -> u64 {
        self.in_flight.len() as u64
    }

    /// Folds journeys into `registry` under `tactic.lifecycle.*` keys and
    /// drains nothing — callers may export repeatedly.
    pub fn export_into(&self, registry: &mut crate::registry::Registry) {
        registry.add(
            "tactic.lifecycle.completed.data",
            self.completed_with(RetrievalOutcome::Data),
        );
        registry.add(
            "tactic.lifecycle.completed.nack",
            self.completed_with(RetrievalOutcome::Nack),
        );
        registry.add(
            "tactic.lifecycle.completed.timeout",
            self.completed_with(RetrievalOutcome::Timeout),
        );
        registry.add(
            "tactic.lifecycle.incomplete",
            self.incomplete + self.still_in_flight(),
        );
        for (key, h) in [
            ("tactic.lifecycle.hops", &self.hop_counts),
            ("tactic.lifecycle.hop_latency", &self.hop_latency),
            ("tactic.lifecycle.total_latency", &self.total_latency),
        ] {
            registry.merge_histogram(key, h);
        }
    }
}

/// What one raw lifecycle observation was. Variant order is the
/// canonical same-instant rank (derived `Ord`): a consumer completes a
/// request (`Retrieval`/`TimeoutExpired`) before re-emitting for the
/// same name, and emissions precede hops.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum LifeKind {
    /// Terminal Data/NACK receipt at the consumer.
    Retrieval(RetrievalOutcome),
    /// Consumer request timer fired; payload is the emission time the
    /// timer belongs to.
    TimeoutExpired(SimTime),
    /// Fresh emission; payload is the nonce.
    Emitted(u64),
    /// Forwarding-node hop; payload is the nonce.
    Hop(u64),
}

/// One raw observation. The derived `Ord` over `(at, node, kind, name,
/// role)` is the canonical replay order — total over the event's entire
/// content, so sorting is deterministic no matter how the log was
/// assembled.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct LifeEvent {
    at: SimTime,
    node: u64,
    kind: LifeKind,
    name: Name,
    role: NodeRole,
}

/// An order-invariant log of raw lifecycle observations.
///
/// Shards record only what their owned nodes saw, but one Interest's
/// journey crosses shards — the consumer emits in one shard while
/// routers hop in others — so running the [`InterestLifecycle`] state
/// machine per shard would trace torn journeys. The log defers the
/// state machine instead: hooks append raw events during the run,
/// per-shard logs concatenate via [`merge`](LifecycleLog::merge), and
/// [`fold`](LifecycleLog::fold) sorts everything into the canonical
/// order and replays it into a fresh tracer. The sequential path uses
/// the *same* fold, so sharded lifecycle output is byte-identical by
/// construction.
///
/// Why the canonical order is safe: link and compute latencies are
/// strictly positive, so every cross-node causal pair (emit before
/// first hop, hop before next hop, last hop before retrieval) is
/// already separated by `at`; ties can only occur at one node, where
/// the internal event-kind rank resolves them the way the consumer state
/// machine does (complete, then re-emit).
#[derive(Debug, Clone, Default)]
pub struct LifecycleLog {
    events: Vec<LifeEvent>,
}

impl LifecycleLog {
    /// An empty log.
    pub fn new() -> Self {
        LifecycleLog::default()
    }

    /// Number of raw observations recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, hop: Hop, kind: LifeKind, name: &Name) {
        self.events.push(LifeEvent {
            at: hop.now,
            node: hop.node,
            kind,
            name: name.clone(),
            role: hop.role,
        });
    }

    /// Records a fresh consumer emission.
    pub fn on_interest_emitted(&mut self, hop: Hop, nonce: u64, name: &Name) {
        self.push(hop, LifeKind::Emitted(nonce), name);
    }

    /// Records a forwarding-node hop.
    pub fn on_interest_hop(&mut self, hop: Hop, nonce: u64, name: &Name) {
        self.push(hop, LifeKind::Hop(nonce), name);
    }

    /// Records a terminal Data/NACK receipt at the consumer.
    pub fn on_retrieval(&mut self, hop: Hop, name: &Name, outcome: RetrievalOutcome) {
        self.push(hop, LifeKind::Retrieval(outcome), name);
    }

    /// Records a consumer request-timer expiry.
    pub fn on_timeout_expired(&mut self, hop: Hop, name: &Name, sent: SimTime) {
        self.push(hop, LifeKind::TimeoutExpired(sent), name);
    }

    /// Appends another log's observations (shard merge). Order does not
    /// matter — [`fold`](LifecycleLog::fold) canonicalizes it.
    pub fn merge(&mut self, other: &LifecycleLog) {
        self.events.extend_from_slice(&other.events);
    }

    /// Sorts the observations into the canonical order and replays them
    /// through a fresh [`InterestLifecycle`].
    pub fn fold(&self) -> InterestLifecycle {
        let mut events = self.events.clone();
        events.sort();
        let mut lc = InterestLifecycle::new();
        for e in &events {
            let hop = Hop::new(e.node, e.role, e.at);
            match &e.kind {
                LifeKind::Emitted(nonce) => lc.on_interest_emitted(hop, *nonce, &e.name),
                LifeKind::Hop(nonce) => lc.on_interest_hop(hop, *nonce, &e.name),
                LifeKind::Retrieval(outcome) => lc.on_retrieval(hop, &e.name, *outcome),
                LifeKind::TimeoutExpired(sent) => lc.on_timeout_expired(hop, &e.name, *sent),
            }
        }
        lc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NodeRole;

    fn hop(node: u64, role: NodeRole, at: f64) -> Hop {
        Hop::new(node, role, SimTime::from_secs_f64(at))
    }

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn traces_emission_hops_and_completion() {
        let mut t = InterestLifecycle::new();
        let n = name("/p/obj0/c0");
        t.on_interest_emitted(hop(9, NodeRole::Consumer, 1.0), 77, &n);
        t.on_interest_hop(hop(2, NodeRole::EdgeRouter, 1.01), 77, &n);
        t.on_interest_hop(hop(3, NodeRole::CoreRouter, 1.02), 77, &n);
        t.on_retrieval(hop(9, NodeRole::Consumer, 1.05), &n, RetrievalOutcome::Data);
        assert_eq!(t.completed_with(RetrievalOutcome::Data), 1);
        assert_eq!(t.hop_counts.count, 1);
        assert_eq!(t.hop_latency.count, 2);
        assert_eq!(t.still_in_flight(), 0);
        assert!((t.total_latency.sum() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn retry_replaces_flight_and_counts_incomplete() {
        let mut t = InterestLifecycle::new();
        let n = name("/p/obj0/c1");
        t.on_interest_emitted(hop(9, NodeRole::Consumer, 1.0), 1, &n);
        t.on_interest_emitted(hop(9, NodeRole::Consumer, 2.0), 2, &n);
        assert_eq!(t.incomplete, 1);
        t.on_retrieval(hop(9, NodeRole::Consumer, 2.5), &n, RetrievalOutcome::Nack);
        assert_eq!(t.completed_with(RetrievalOutcome::Nack), 1);
    }

    #[test]
    fn unknown_retrievals_and_hops_are_ignored() {
        let mut t = InterestLifecycle::new();
        let n = name("/p/obj0/c2");
        t.on_interest_hop(hop(2, NodeRole::EdgeRouter, 1.0), 5, &n);
        t.on_retrieval(hop(9, NodeRole::Consumer, 1.1), &n, RetrievalOutcome::Data);
        assert_eq!(t.completed_with(RetrievalOutcome::Data), 0);
        assert_eq!(t.hop_latency.count, 0);
    }

    #[test]
    fn log_fold_matches_direct_tracing() {
        let n = name("/p/obj0/c0");
        let events = [
            (hop(9, NodeRole::Consumer, 1.0), LifeKind::Emitted(77)),
            (hop(2, NodeRole::EdgeRouter, 1.01), LifeKind::Hop(77)),
            (hop(3, NodeRole::CoreRouter, 1.02), LifeKind::Hop(77)),
            (
                hop(9, NodeRole::Consumer, 1.05),
                LifeKind::Retrieval(RetrievalOutcome::Data),
            ),
        ];

        let mut direct = InterestLifecycle::new();
        let mut log = LifecycleLog::new();
        for (h, kind) in &events {
            match kind {
                LifeKind::Emitted(nonce) => {
                    direct.on_interest_emitted(*h, *nonce, &n);
                    log.on_interest_emitted(*h, *nonce, &n);
                }
                LifeKind::Hop(nonce) => {
                    direct.on_interest_hop(*h, *nonce, &n);
                    log.on_interest_hop(*h, *nonce, &n);
                }
                LifeKind::Retrieval(o) => {
                    direct.on_retrieval(*h, &n, *o);
                    log.on_retrieval(*h, &n, *o);
                }
                LifeKind::TimeoutExpired(sent) => {
                    direct.on_timeout_expired(*h, &n, *sent);
                    log.on_timeout_expired(*h, &n, *sent);
                }
            }
        }

        let mut want = crate::registry::Registry::new();
        direct.export_into(&mut want);
        let mut got = crate::registry::Registry::new();
        log.fold().export_into(&mut got);
        assert_eq!(want.to_jsonl(), got.to_jsonl());
    }

    #[test]
    fn fold_is_invariant_to_log_assembly_order() {
        let n0 = name("/p/obj0/c0");
        let n1 = name("/p/obj1/c0");
        // Consumer 9's journey is observed in "shard A", the router hops
        // in "shard B"; consumer 11 re-emits after a timeout.
        let mut a = LifecycleLog::new();
        a.on_interest_emitted(hop(9, NodeRole::Consumer, 1.0), 77, &n0);
        a.on_retrieval(
            hop(9, NodeRole::Consumer, 1.05),
            &n0,
            RetrievalOutcome::Data,
        );
        a.on_interest_emitted(hop(11, NodeRole::Consumer, 1.0), 78, &n1);
        a.on_timeout_expired(
            hop(11, NodeRole::Consumer, 3.0),
            &n1,
            SimTime::from_secs_f64(1.0),
        );
        a.on_interest_emitted(hop(11, NodeRole::Consumer, 3.0), 79, &n1);
        let mut b = LifecycleLog::new();
        b.on_interest_hop(hop(2, NodeRole::EdgeRouter, 1.01), 77, &n0);
        b.on_interest_hop(hop(3, NodeRole::CoreRouter, 1.02), 77, &n0);
        b.on_interest_hop(hop(2, NodeRole::EdgeRouter, 1.02), 78, &n1);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.len(), 8);

        let (mut ab_reg, mut ba_reg) = (
            crate::registry::Registry::new(),
            crate::registry::Registry::new(),
        );
        ab.fold().export_into(&mut ab_reg);
        ba.fold().export_into(&mut ba_reg);
        assert_eq!(ab_reg.to_jsonl(), ba_reg.to_jsonl());

        // The interleaved journeys resolved correctly: one Data
        // completion with 2 hops, one timeout with 1 hop, one re-emission
        // still in flight.
        let folded = ab.fold();
        assert_eq!(folded.completed_with(RetrievalOutcome::Data), 1);
        assert_eq!(folded.completed_with(RetrievalOutcome::Timeout), 1);
        assert_eq!(folded.still_in_flight(), 1);
        assert_eq!(folded.hop_latency.count, 3);
    }
}
