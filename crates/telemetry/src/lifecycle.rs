//! The [`InterestLifecycle`] tracer: follows each request from consumer
//! emission through per-hop forwarding decisions to Data/NACK receipt
//! (or timeout), and folds the journeys into hop-count and per-hop
//! latency histograms.
//!
//! Emission registers a flight keyed by `(consumer node, name)` — Data
//! packets carry no nonce, so completion is matched by name at the
//! consumer that asked. Hops are attributed to the flight by nonce
//! (every forwarded copy of the Interest keeps the consumer's nonce).
//! In-flight entries left at the end of a run are counted as
//! `incomplete` and excluded from the histograms.

use std::collections::BTreeMap;

use tactic_ndn::name::Name;

use crate::observer::{Hop, RetrievalOutcome};
use crate::registry::{Histogram, HOP_BOUNDS, LATENCY_BOUNDS};
use tactic_sim::time::SimTime;

#[derive(Debug, Clone)]
struct Flight {
    nonce: u64,
    emitted: SimTime,
    hops: u32,
    last_hop_at: SimTime,
}

/// Per-nonce Interest journey tracking (see module docs).
#[derive(Debug, Clone)]
pub struct InterestLifecycle {
    /// Active flights keyed by (consumer node, name).
    in_flight: BTreeMap<(u64, Name), Flight>,
    /// Router hops per completed journey.
    pub hop_counts: Histogram,
    /// Wire+processing latency between consecutive hops (seconds).
    pub hop_latency: Histogram,
    /// Emission-to-terminal latency per completed journey (seconds).
    pub total_latency: Histogram,
    /// Journeys completed, by terminal outcome.
    pub completed: [u64; 3],
    /// Emissions never matched to a terminal event.
    pub incomplete: u64,
}

impl Default for InterestLifecycle {
    fn default() -> Self {
        InterestLifecycle {
            in_flight: BTreeMap::new(),
            hop_counts: Histogram::new(&HOP_BOUNDS),
            hop_latency: Histogram::new(&LATENCY_BOUNDS),
            total_latency: Histogram::new(&LATENCY_BOUNDS),
            completed: [0; 3],
            incomplete: 0,
        }
    }
}

impl InterestLifecycle {
    /// An empty tracer.
    pub fn new() -> Self {
        InterestLifecycle::default()
    }

    /// Journeys that ended with the given outcome.
    pub fn completed_with(&self, outcome: RetrievalOutcome) -> u64 {
        self.completed[outcome as usize]
    }

    /// A consumer emitted a fresh Interest. A retry for the same name
    /// replaces the previous flight (the old one is counted incomplete).
    pub fn on_interest_emitted(&mut self, hop: Hop, nonce: u64, name: &Name) {
        let prev = self.in_flight.insert(
            (hop.node, name.clone()),
            Flight {
                nonce,
                emitted: hop.now,
                hops: 0,
                last_hop_at: hop.now,
            },
        );
        if prev.is_some() {
            self.incomplete += 1;
        }
    }

    /// The Interest reached a forwarding node; attributes the hop to the
    /// flight carrying this nonce.
    pub fn on_interest_hop(&mut self, hop: Hop, nonce: u64, name: &Name) {
        // The flight key holds the consumer's node id, which routers
        // don't know; find by (name, nonce). Names are unique per
        // consumer in flight, so this scan touches at most a handful of
        // same-name entries.
        for ((_, n), f) in self.in_flight.iter_mut() {
            if n == name && f.nonce == nonce {
                f.hops += 1;
                self.hop_latency
                    .record(hop.now.saturating_since(f.last_hop_at).as_secs_f64());
                f.last_hop_at = hop.now;
                return;
            }
        }
    }

    /// The consumer saw a terminal event for `name`.
    pub fn on_retrieval(&mut self, hop: Hop, name: &Name, outcome: RetrievalOutcome) {
        if let Some(f) = self.in_flight.remove(&(hop.node, name.clone())) {
            self.completed[outcome as usize] += 1;
            self.hop_counts.record(f.hops as f64);
            self.total_latency
                .record(hop.now.saturating_since(f.emitted).as_secs_f64());
        }
    }

    /// A request timer fired at the consumer. Completes the flight as a
    /// [`RetrievalOutcome::Timeout`] only when the timer belongs to the
    /// tracked emission (`sent` matches) — stale timers for requests that
    /// were answered and re-emitted in the meantime are ignored.
    pub fn on_timeout_expired(&mut self, hop: Hop, name: &Name, sent: SimTime) {
        let key = (hop.node, name.clone());
        if self.in_flight.get(&key).is_some_and(|f| f.emitted == sent) {
            let f = self.in_flight.remove(&key).expect("checked above");
            self.completed[RetrievalOutcome::Timeout as usize] += 1;
            self.hop_counts.record(f.hops as f64);
            self.total_latency
                .record(hop.now.saturating_since(f.emitted).as_secs_f64());
        }
    }

    /// Flights still pending (call after a run to account for tail loss).
    pub fn still_in_flight(&self) -> u64 {
        self.in_flight.len() as u64
    }

    /// Folds journeys into `registry` under `tactic.lifecycle.*` keys and
    /// drains nothing — callers may export repeatedly.
    pub fn export_into(&self, registry: &mut crate::registry::Registry) {
        registry.add(
            "tactic.lifecycle.completed.data",
            self.completed_with(RetrievalOutcome::Data),
        );
        registry.add(
            "tactic.lifecycle.completed.nack",
            self.completed_with(RetrievalOutcome::Nack),
        );
        registry.add(
            "tactic.lifecycle.completed.timeout",
            self.completed_with(RetrievalOutcome::Timeout),
        );
        registry.add(
            "tactic.lifecycle.incomplete",
            self.incomplete + self.still_in_flight(),
        );
        for (key, h) in [
            ("tactic.lifecycle.hops", &self.hop_counts),
            ("tactic.lifecycle.hop_latency", &self.hop_latency),
            ("tactic.lifecycle.total_latency", &self.total_latency),
        ] {
            registry.merge_histogram(key, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NodeRole;

    fn hop(node: u64, role: NodeRole, at: f64) -> Hop {
        Hop::new(node, role, SimTime::from_secs_f64(at))
    }

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn traces_emission_hops_and_completion() {
        let mut t = InterestLifecycle::new();
        let n = name("/p/obj0/c0");
        t.on_interest_emitted(hop(9, NodeRole::Consumer, 1.0), 77, &n);
        t.on_interest_hop(hop(2, NodeRole::EdgeRouter, 1.01), 77, &n);
        t.on_interest_hop(hop(3, NodeRole::CoreRouter, 1.02), 77, &n);
        t.on_retrieval(hop(9, NodeRole::Consumer, 1.05), &n, RetrievalOutcome::Data);
        assert_eq!(t.completed_with(RetrievalOutcome::Data), 1);
        assert_eq!(t.hop_counts.count, 1);
        assert_eq!(t.hop_latency.count, 2);
        assert_eq!(t.still_in_flight(), 0);
        assert!((t.total_latency.sum - 0.05).abs() < 1e-9);
    }

    #[test]
    fn retry_replaces_flight_and_counts_incomplete() {
        let mut t = InterestLifecycle::new();
        let n = name("/p/obj0/c1");
        t.on_interest_emitted(hop(9, NodeRole::Consumer, 1.0), 1, &n);
        t.on_interest_emitted(hop(9, NodeRole::Consumer, 2.0), 2, &n);
        assert_eq!(t.incomplete, 1);
        t.on_retrieval(hop(9, NodeRole::Consumer, 2.5), &n, RetrievalOutcome::Nack);
        assert_eq!(t.completed_with(RetrievalOutcome::Nack), 1);
    }

    #[test]
    fn unknown_retrievals_and_hops_are_ignored() {
        let mut t = InterestLifecycle::new();
        let n = name("/p/obj0/c2");
        t.on_interest_hop(hop(2, NodeRole::EdgeRouter, 1.0), 5, &n);
        t.on_retrieval(hop(9, NodeRole::Consumer, 1.1), &n, RetrievalOutcome::Data);
        assert_eq!(t.completed_with(RetrievalOutcome::Data), 0);
        assert_eq!(t.hop_latency.count, 0);
    }
}
