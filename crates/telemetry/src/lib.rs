//! # tactic-telemetry
//!
//! Protocol-level observability for the TACTIC reproduction: a zero-cost
//! [`ProtocolObserver`] hook trait mirrored on `tactic-net`'s transport
//! observer, plus the recording layers built on top of it:
//!
//! - [`observer`] — the hook trait, the decision vocabulary (reject
//!   reasons, BF outcomes, re-validation verdicts), and the no-op default
//!   that monomorphises to nothing.
//! - [`registry`] — labeled [`Counter`]/[`Histogram`] metrics with
//!   deterministic bucket boundaries and byte-identical merge semantics,
//!   so per-thread registries fold to the same JSONL regardless of
//!   `--threads`.
//! - [`lifecycle`] — the [`InterestLifecycle`] tracer following each
//!   request from consumer emission through per-hop decisions to
//!   Data/NACK receipt.
//! - [`json`] — a hand-rolled JSON/JSONL encoder (the build is offline;
//!   no serde). The **only** string-escaping implementation in the
//!   workspace: every JSON artifact goes through it.
//! - [`manifest`] — the per-run provenance record the experiment runner
//!   writes next to each CSV.
//! - [`timeseries`] — the deterministic sim-time sampler's row type and
//!   golden `timeseries.jsonl` export (byte-identical across threads
//!   and shards).
//! - [`profile`] — the wall-clock span profiler and per-shard epoch
//!   accounting behind the non-golden `profile.jsonl`.
//! - [`perfetto`] — the Chrome/Perfetto `trace.json` exporter rendering
//!   shard lanes and sampled counter tracks.
//!
//! ## Determinism contract
//!
//! Observers receive `&mut self` plus references; they never mutate
//! simulation state and never draw from the simulation RNG, so a
//! recording run and a [`NoopProtocolObserver`] run of the same
//! (topology, scenario, seed) produce byte-identical reports. Recorder
//! state uses `BTreeMap` keys only — export order is label order, never
//! insertion or hash order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod lifecycle;
pub mod manifest;
pub mod observer;
pub mod perfetto;
pub mod profile;
pub mod registry;
pub mod timeseries;

pub use lifecycle::{InterestLifecycle, LifecycleLog};
pub use manifest::RunManifest;
pub use observer::{
    BfOutcome, Hop, NodeRole, NoopProtocolObserver, PrecheckStage, PrecheckVerdict,
    ProtocolObserver, ProtocolRecorder, RejectReason, RetrievalOutcome, RevalidationOutcome,
};
pub use perfetto::{run_trace_json, TraceBuilder};
pub use profile::{profile_to_jsonl, EpochSpan, SpanProfiler, SpanStats};
pub use registry::{Counter, Histogram, ProtocolMetrics, Registry};
pub use timeseries::{
    merge_timeseries, ratio_to_fp, timeseries_to_jsonl, SampleRow, TIMESERIES_KEYS,
};
