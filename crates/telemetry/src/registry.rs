//! Labeled metrics with deterministic merge and JSONL export.
//!
//! A [`Registry`] maps `(metric name, label)` pairs to [`Counter`]s and
//! [`Histogram`]s. Keys live in `BTreeMap`s so export order is label
//! order; [`Registry::merge`] adds counters and bucket counts
//! pointwise, so folding per-thread registries in job order yields
//! byte-identical JSONL regardless of how many threads produced them.

use std::collections::BTreeMap;

use tactic_ndn::name::Name;
use tactic_ndn::packet::NackReason;

use crate::json::JsonObject;
use crate::observer::{
    BfOutcome, Hop, PrecheckStage, PrecheckVerdict, RetrievalOutcome, RevalidationOutcome,
};

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
}

/// Fixed-point scale (2³² fractional bits) for the sample-sum
/// accumulator. Integer addition is associative, so per-shard partial
/// sums merge to the same value under any grouping — which `f64`
/// accumulation cannot guarantee, and byte-identical sharded output
/// requires.
const SUM_SCALE: f64 = 4_294_967_296.0;

/// A fixed-boundary histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`, with one implicit overflow bucket at the end.
///
/// Boundaries are fixed at construction and never adapt to data, so two
/// histograms built with the same bounds merge bucket-by-bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples, in `SUM_SCALE` fixed point.
    sum_fp: i128,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bucket edges
    /// (must be strictly increasing and finite).
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(bounds.iter().all(|b| b.is_finite()));
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum_fp: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_fp += (v * SUM_SCALE) as i128;
    }

    /// The configured bucket edges.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Folds `other` into `self`. Panics if bucket bounds differ — merge
    /// is only defined between histograms of the same metric.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge requires identical bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_fp += other.sum_fp;
    }

    /// Sum of recorded samples (quantized to the fixed-point grid, so
    /// exact to ~2⁻³² of the recorded unit).
    pub fn sum(&self) -> f64 {
        self.sum_fp as f64 / SUM_SCALE
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }
}

/// Labeled counters and histograms, exportable as JSONL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Increments the counter named `key`, creating it at zero first.
    pub fn inc(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Adds `n` to the counter named `key`.
    pub fn add(&mut self, key: &str, n: u64) {
        self.counters.entry(key.to_owned()).or_default().add(n);
    }

    /// Records `v` into the histogram named `key`, creating it with
    /// `bounds` on first use. `bounds` must be the same at every call
    /// site for a given key (the fixed-boundary determinism rule).
    pub fn observe(&mut self, key: &str, bounds: &[f64], v: f64) {
        self.histograms
            .entry(key.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .record(v);
    }

    /// Folds a standalone histogram into the one stored under `key`
    /// (installing a copy if the key is new). Bounds must match any
    /// existing histogram under that key.
    pub fn merge_histogram(&mut self, key: &str, h: &Histogram) {
        match self.histograms.get_mut(key) {
            Some(mine) => mine.merge(h),
            None => {
                self.histograms.insert(key.to_owned(), h.clone());
            }
        }
    }

    /// Reads a counter (0 if absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).map_or(0, |c| c.0)
    }

    /// Sums every counter whose key starts with `prefix` — e.g.
    /// `counter_prefix_sum("tactic.nack.")` totals NACKs across roles
    /// and reasons.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, c)| c.0)
            .sum()
    }

    /// Reads a histogram, if recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Number of distinct metric keys (counters + histograms).
    pub fn len(&self) -> usize {
        self.counters.len() + self.histograms.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, histograms merge
    /// bucket-wise. Because keys are ordered and addition is commutative
    /// over `u64`, folding per-thread registries in job order produces
    /// identical output no matter how work was distributed.
    pub fn merge(&mut self, other: &Registry) {
        for (k, c) in &other.counters {
            self.counters.entry(k.clone()).or_default().add(c.0);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Returns a copy with every key prefixed by `prefix` — used to fold
    /// per-plane registries into one export without key collisions.
    pub fn with_key_prefix(&self, prefix: &str) -> Registry {
        let mut out = Registry::new();
        for (k, c) in &self.counters {
            out.counters.insert(format!("{prefix}{k}"), *c);
        }
        for (k, h) in &self.histograms {
            out.histograms.insert(format!("{prefix}{k}"), h.clone());
        }
        out
    }

    /// Exports every metric as one JSON object per line, in key order.
    ///
    /// Counters: `{"kind":"counter","key":...,"value":...}`.
    /// Histograms: `{"kind":"histogram","key":...,"count":...,"sum":...,
    /// "bounds":[...],"buckets":[...]}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (k, c) in &self.counters {
            let mut o = JsonObject::new();
            o.field_str("kind", "counter")
                .field_str("key", k)
                .field_u64("value", c.0);
            out.push_str(&o.finish());
            out.push('\n');
        }
        for (k, h) in &self.histograms {
            let mut o = JsonObject::new();
            o.field_str("kind", "histogram")
                .field_str("key", k)
                .field_u64("count", h.count)
                .field_f64("sum", h.sum())
                .field_f64_array("bounds", &h.bounds)
                .field_u64_array("buckets", &h.counts);
            out.push_str(&o.finish());
            out.push('\n');
        }
        out
    }
}

/// Latency bucket edges (seconds) shared by every latency histogram so
/// merges line up: 1 ms to ~8 s in powers of two.
pub const LATENCY_BOUNDS: [f64; 14] = [
    0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512, 1.024, 2.048, 4.096,
    8.192,
];

/// Hop-count bucket edges shared by hop histograms.
pub const HOP_BOUNDS: [f64; 8] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0];

/// PIT aggregation-depth bucket edges.
pub const DEPTH_BOUNDS: [f64; 6] = [2.0, 3.0, 4.0, 6.0, 8.0, 16.0];

/// A [`Registry`]-backed recorder for every protocol decision hook.
///
/// Key scheme: `tactic.<decision>.<role>[.<qualifier>]` — e.g.
/// `tactic.precheck.edge.reject.expired`, `tactic.bf_lookup.core.hit`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProtocolMetrics {
    /// The backing registry (public so callers can merge and export it).
    pub registry: Registry,
}

impl ProtocolMetrics {
    /// An empty recorder.
    pub fn new() -> Self {
        ProtocolMetrics::default()
    }

    /// Records a pre-check verdict.
    pub fn on_precheck(&mut self, hop: Hop, stage: PrecheckStage, verdict: PrecheckVerdict) {
        let key = match verdict {
            PrecheckVerdict::Accepted => {
                format!(
                    "tactic.precheck.{}.{}.accept",
                    hop.role.as_str(),
                    stage.as_str()
                )
            }
            PrecheckVerdict::Rejected(r) => format!(
                "tactic.precheck.{}.{}.reject.{}",
                hop.role.as_str(),
                stage.as_str(),
                r.as_str()
            ),
        };
        self.registry.inc(&key);
    }

    /// Records a BF lookup outcome.
    pub fn on_bf_lookup(&mut self, hop: Hop, outcome: BfOutcome, revalidation: bool) {
        let phase = if revalidation { "reval" } else { "first" };
        self.registry.inc(&format!(
            "tactic.bf_lookup.{}.{}.{}",
            hop.role.as_str(),
            phase,
            outcome.as_str()
        ));
    }

    /// Records a BF insert (and whether it reset the filter).
    pub fn on_bf_insert(&mut self, hop: Hop, triggered_reset: bool) {
        self.registry
            .inc(&format!("tactic.bf_insert.{}", hop.role.as_str()));
        if triggered_reset {
            self.registry
                .inc(&format!("tactic.bf_reset.{}", hop.role.as_str()));
        }
    }

    /// Records a signature verification.
    pub fn on_sig_verify(&mut self, hop: Hop, valid: bool, revalidation: bool) {
        let phase = if revalidation { "reval" } else { "first" };
        let v = if valid { "valid" } else { "invalid" };
        self.registry.inc(&format!(
            "tactic.sig_verify.{}.{}.{}",
            hop.role.as_str(),
            phase,
            v
        ));
    }

    /// Records observed-vs-enforced flag-F values.
    pub fn on_flag_f(&mut self, hop: Hop, observed: f64, enforced: f64) {
        let role = hop.role.as_str();
        if observed > 0.0 {
            self.registry
                .inc(&format!("tactic.flag_f.{role}.observed_set"));
        }
        if enforced > 0.0 {
            self.registry
                .inc(&format!("tactic.flag_f.{role}.enforced_set"));
        }
        if observed > 0.0 && enforced == 0.0 {
            self.registry
                .inc(&format!("tactic.flag_f.{role}.discarded"));
        }
    }

    /// Records a probabilistic re-validation outcome.
    pub fn on_revalidation(&mut self, hop: Hop, outcome: RevalidationOutcome) {
        self.registry.inc(&format!(
            "tactic.revalidation.{}.{}",
            hop.role.as_str(),
            outcome.as_str()
        ));
    }

    /// Records a PIT aggregation and its depth.
    pub fn on_pit_aggregated(&mut self, hop: Hop, depth: usize) {
        let role = hop.role.as_str();
        self.registry.inc(&format!("tactic.pit_aggregated.{role}"));
        self.registry.observe(
            &format!("tactic.pit_depth.{role}"),
            &DEPTH_BOUNDS,
            depth as f64,
        );
    }

    /// Records a NACK emission by reason.
    pub fn on_nack(&mut self, hop: Hop, reason: NackReason) {
        let r = match reason {
            NackReason::NoRoute => "no_route",
            NackReason::Duplicate => "duplicate",
            NackReason::InvalidTag => "invalid_tag",
            NackReason::AccessPathMismatch => "access_path_mismatch",
        };
        self.registry
            .inc(&format!("tactic.nack.{}.{}", hop.role.as_str(), r));
    }

    /// Records a content-store hit.
    pub fn on_cache_hit(&mut self, hop: Hop, _name: &Name) {
        self.registry
            .inc(&format!("tactic.cache_hit.{}", hop.role.as_str()));
    }

    /// Records a retrieval outcome at the consumer.
    pub fn on_retrieval(&mut self, hop: Hop, outcome: RetrievalOutcome) {
        self.registry.inc(&format!(
            "tactic.retrieval.{}.{}",
            hop.role.as_str(),
            outcome.as_str()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{NodeRole, RejectReason};
    use tactic_sim::time::SimTime;

    fn hop(role: NodeRole) -> Hop {
        Hop::new(1, role, SimTime::from_secs_f64(0.5))
    }

    #[test]
    fn counters_accumulate_and_export_in_key_order() {
        let mut r = Registry::new();
        r.inc("z");
        r.inc("a");
        r.inc("z");
        assert_eq!(r.counter("z"), 2);
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""key":"a""#), "{jsonl}");
        assert!(lines[1].contains(r#""key":"z""#), "{jsonl}");
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.record(0.5);
        h.record(2.0);
        h.record(99.0);
        assert_eq!(h.bucket_counts(), &[1, 1, 1]);
        assert_eq!(h.count, 3);
        assert!((h.mean() - (0.5 + 2.0 + 99.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_order_insensitive_on_totals() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.inc("c");
        a.observe("h", &LATENCY_BOUNDS, 0.003);
        b.add("c", 4);
        b.observe("h", &LATENCY_BOUNDS, 0.100);
        b.inc("only_b");

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_jsonl(), ba.to_jsonl());
        assert_eq!(ab.counter("c"), 5);
        assert_eq!(ab.histogram("h").unwrap().count, 2);
    }

    #[test]
    fn prefix_sum_and_key_prefixing() {
        let mut r = Registry::new();
        r.add("tactic.nack.core.no_route", 2);
        r.add("tactic.nack.edge.invalid_tag", 3);
        r.add("tactic.cache_hit.edge", 7);
        r.observe("h", &[1.0], 0.5);
        assert_eq!(r.counter_prefix_sum("tactic.nack."), 5);
        assert_eq!(r.counter_prefix_sum("tactic."), 12);
        assert_eq!(r.counter_prefix_sum("zzz"), 0);
        let p = r.with_key_prefix("plane/");
        assert_eq!(p.counter("plane/tactic.cache_hit.edge"), 7);
        assert_eq!(p.histogram("plane/h").unwrap().count, 1);
        assert_eq!(p.len(), r.len());
    }

    #[test]
    #[should_panic(expected = "identical bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    fn protocol_metrics_key_scheme() {
        let mut m = ProtocolMetrics::new();
        m.on_precheck(
            hop(NodeRole::EdgeRouter),
            PrecheckStage::Edge,
            PrecheckVerdict::Rejected(RejectReason::Expired),
        );
        m.on_bf_lookup(hop(NodeRole::CoreRouter), BfOutcome::Hit, true);
        m.on_pit_aggregated(hop(NodeRole::CoreRouter), 3);
        assert_eq!(
            m.registry
                .counter("tactic.precheck.edge.edge.reject.expired"),
            1
        );
        assert_eq!(m.registry.counter("tactic.bf_lookup.core.reval.hit"), 1);
        assert_eq!(
            m.registry.histogram("tactic.pit_depth.core").unwrap().count,
            1
        );
    }
}
