//! Deterministic sim-time sampling: the in-flight counterpart of the
//! end-of-run [`RunManifest`](crate::manifest::RunManifest).
//!
//! A periodic `SampleTick` event in the transport snapshots one
//! [`SampleRow`] per tick. Every field is either a cumulative `u64`
//! counter (shard contributions **add**) or a fixed-point maximum
//! (shard contributions **max**), so the merged time series of a
//! K-sharded run is byte-identical to the sequential run's — the rows
//! are a golden artifact, exactly like reports and metric JSONL.
//! Ratios and per-tick deltas are derived only at export time, after
//! the merge, from integer fields; the float formatting itself is
//! Rust's shortest-round-trip `{}`, so equal integers always render
//! equal bytes.

use crate::json::JsonObject;

/// Fixed-point scale for ratios carried in `u64` fields (`2^32`).
pub const FP_ONE: u64 = 1 << 32;

/// Converts a ratio in `[0, 1]` to `2^32` fixed point.
pub fn ratio_to_fp(r: f64) -> u64 {
    (r * FP_ONE as f64) as u64
}

/// One sim-time sample. All counter fields are cumulative totals as of
/// the tick's timestamp; instantaneous gauges (queue depth, PIT/CS/BF
/// state) are the state *at* the tick.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampleRow {
    /// Sample index (0-based).
    pub tick: u64,
    /// Sim-time of the sample in nanoseconds.
    pub t_ns: u64,
    /// Events pending in the engine at the tick (sharded runs sum each
    /// shard's partition-invariant contribution).
    pub queue_depth: u64,
    /// Packets accepted onto links so far (cumulative).
    pub sent: u64,
    /// Packet deliveries handled so far (cumulative).
    pub delivered: u64,
    /// Cumulative drops: emitting face had no wired neighbour.
    pub drops_dangling_face: u64,
    /// Cumulative drops: reverse face torn down mid-flight.
    pub drops_reverse_face: u64,
    /// Cumulative drops: eaten by the loss model.
    pub drops_lossy: u64,
    /// Cumulative drops: link administratively down.
    pub drops_link_down: u64,
    /// Cumulative drops: destination node crashed.
    pub drops_node_down: u64,
    /// Cumulative drops: per-client token-bucket rate limit.
    pub drops_rate_limited: u64,
    /// Cumulative drops: per-face fairness cap.
    pub drops_face_capped: u64,
    /// Cumulative bounded-PIT evictions.
    pub drops_pit_full: u64,
    /// PIT records across owned routers at the tick.
    pub pit_records: u64,
    /// Content-store entries across owned routers at the tick.
    pub cs_entries: u64,
    /// Bloom-filter bits set across owned routers at the tick.
    pub bf_set_bits: u64,
    /// Total Bloom-filter bits across owned routers (the occupancy
    /// denominator; constant per run, summed per shard).
    pub bf_bits: u64,
    /// Sum over owned routers of estimated FPP in `2^32` fixed point.
    pub bf_fpp_fp: u64,
    /// Max over owned routers of BF occupancy in `2^32` fixed point
    /// (merged with `max`, not `+`).
    pub bf_occ_max_fp: u64,
    /// Bloom-filter resets so far across owned routers (cumulative).
    pub bf_resets: u64,
    /// Generation rotations so far across owned routers (cumulative;
    /// zero under the monolithic-reset validation-cache policy).
    pub bf_rotations: u64,
    /// Routers contributing BF fields (the `bf_fpp_fp` denominator).
    pub bf_routers: u64,
}

impl SampleRow {
    /// Interests/Data in flight at the tick: accepted onto a link but
    /// neither handled nor dropped in flight. Send-side drops
    /// (dangling face, lossy, link down, rate limited, face capped)
    /// happen *before* `sent` counts, and PIT evictions are state (not
    /// packets), so only the delivery-side reasons subtract.
    pub fn in_flight(&self) -> u64 {
        self.sent
            .saturating_sub(self.delivered)
            .saturating_sub(self.drops_reverse_face)
            .saturating_sub(self.drops_node_down)
    }

    /// Total cumulative drops across all reasons.
    pub fn drops_total(&self) -> u64 {
        self.drops_dangling_face
            + self.drops_reverse_face
            + self.drops_lossy
            + self.drops_link_down
            + self.drops_node_down
            + self.drops_rate_limited
            + self.drops_face_capped
            + self.drops_pit_full
    }

    /// Aggregate BF occupancy (set bits over total bits), 0 when no
    /// router contributed.
    pub fn bf_occupancy(&self) -> f64 {
        if self.bf_bits == 0 {
            0.0
        } else {
            self.bf_set_bits as f64 / self.bf_bits as f64
        }
    }

    /// Mean estimated FPP across contributing routers.
    pub fn bf_fpp_mean(&self) -> f64 {
        if self.bf_routers == 0 {
            0.0
        } else {
            self.bf_fpp_fp as f64 / self.bf_routers as f64 / FP_ONE as f64
        }
    }

    /// Max BF occupancy across contributing routers.
    pub fn bf_occ_max(&self) -> f64 {
        self.bf_occ_max_fp as f64 / FP_ONE as f64
    }

    /// Folds another shard's contribution for the same tick into this
    /// row: counters add, the occupancy high-water takes the max.
    ///
    /// # Panics
    ///
    /// Panics if the rows disagree on `tick` or `t_ns` — shards sample
    /// on the same deterministic cadence, so a mismatch is a
    /// synchronization bug, not data.
    pub fn merge_shard(&mut self, other: &SampleRow) {
        assert_eq!(self.tick, other.tick, "shards sampled different ticks");
        assert_eq!(self.t_ns, other.t_ns, "shards sampled different times");
        self.queue_depth += other.queue_depth;
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.drops_dangling_face += other.drops_dangling_face;
        self.drops_reverse_face += other.drops_reverse_face;
        self.drops_lossy += other.drops_lossy;
        self.drops_link_down += other.drops_link_down;
        self.drops_node_down += other.drops_node_down;
        self.drops_rate_limited += other.drops_rate_limited;
        self.drops_face_capped += other.drops_face_capped;
        self.drops_pit_full += other.drops_pit_full;
        self.pit_records += other.pit_records;
        self.cs_entries += other.cs_entries;
        self.bf_set_bits += other.bf_set_bits;
        self.bf_bits += other.bf_bits;
        self.bf_fpp_fp += other.bf_fpp_fp;
        self.bf_occ_max_fp = self.bf_occ_max_fp.max(other.bf_occ_max_fp);
        self.bf_resets += other.bf_resets;
        self.bf_rotations += other.bf_rotations;
        self.bf_routers += other.bf_routers;
    }
}

/// Merges per-shard time series element-wise (shard 0's rows first,
/// then each later shard folded in). All series must have the same
/// length — every shard takes every tick.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn merge_timeseries(series: &[Vec<SampleRow>]) -> Vec<SampleRow> {
    let Some((first, rest)) = series.split_first() else {
        return Vec::new();
    };
    let mut merged = first.clone();
    for shard in rest {
        assert_eq!(
            merged.len(),
            shard.len(),
            "shards took different sample counts"
        );
        for (row, other) in merged.iter_mut().zip(shard) {
            row.merge_shard(other);
        }
    }
    merged
}

/// Keys every `timeseries.jsonl` line carries, in field order (checked
/// by the CI smoke run).
pub const TIMESERIES_KEYS: [&str; 33] = [
    "label",
    "tick",
    "t_ns",
    "queue_depth",
    "in_flight",
    "sent",
    "delivered",
    "d_sent",
    "d_delivered",
    "drops_dangling_face",
    "drops_reverse_face",
    "drops_lossy",
    "drops_link_down",
    "drops_node_down",
    "drops_rate_limited",
    "drops_face_capped",
    "drops_pit_full",
    "d_drops_dangling_face",
    "d_drops_reverse_face",
    "d_drops_lossy",
    "d_drops_link_down",
    "d_drops_node_down",
    "d_drops_rate_limited",
    "d_drops_face_capped",
    "d_drops_pit_full",
    "pit_records",
    "cs_entries",
    "bf_set_bits",
    "bf_occupancy",
    "bf_fpp_mean",
    "bf_occ_max",
    "bf_resets",
    "bf_rotations",
];

/// Renders one labeled time series as JSONL (one line per tick, with a
/// trailing newline per line). Per-tick deltas are computed against
/// the previous row (the first row's deltas are its cumulative
/// values). Deterministic: integer fields and shortest-round-trip
/// float formatting only.
pub fn timeseries_to_jsonl(label: &str, rows: &[SampleRow]) -> String {
    let mut out = String::new();
    let mut prev: Option<&SampleRow> = None;
    for row in rows {
        let d = |cur: u64, sel: fn(&SampleRow) -> u64| cur - prev.map_or(0, sel);
        let mut o = JsonObject::new();
        o.field_str("label", label)
            .field_u64("tick", row.tick)
            .field_u64("t_ns", row.t_ns)
            .field_u64("queue_depth", row.queue_depth)
            .field_u64("in_flight", row.in_flight())
            .field_u64("sent", row.sent)
            .field_u64("delivered", row.delivered)
            .field_u64("d_sent", d(row.sent, |r| r.sent))
            .field_u64("d_delivered", d(row.delivered, |r| r.delivered))
            .field_u64("drops_dangling_face", row.drops_dangling_face)
            .field_u64("drops_reverse_face", row.drops_reverse_face)
            .field_u64("drops_lossy", row.drops_lossy)
            .field_u64("drops_link_down", row.drops_link_down)
            .field_u64("drops_node_down", row.drops_node_down)
            .field_u64("drops_rate_limited", row.drops_rate_limited)
            .field_u64("drops_face_capped", row.drops_face_capped)
            .field_u64("drops_pit_full", row.drops_pit_full)
            .field_u64(
                "d_drops_dangling_face",
                d(row.drops_dangling_face, |r| r.drops_dangling_face),
            )
            .field_u64(
                "d_drops_reverse_face",
                d(row.drops_reverse_face, |r| r.drops_reverse_face),
            )
            .field_u64("d_drops_lossy", d(row.drops_lossy, |r| r.drops_lossy))
            .field_u64(
                "d_drops_link_down",
                d(row.drops_link_down, |r| r.drops_link_down),
            )
            .field_u64(
                "d_drops_node_down",
                d(row.drops_node_down, |r| r.drops_node_down),
            )
            .field_u64(
                "d_drops_rate_limited",
                d(row.drops_rate_limited, |r| r.drops_rate_limited),
            )
            .field_u64(
                "d_drops_face_capped",
                d(row.drops_face_capped, |r| r.drops_face_capped),
            )
            .field_u64(
                "d_drops_pit_full",
                d(row.drops_pit_full, |r| r.drops_pit_full),
            )
            .field_u64("pit_records", row.pit_records)
            .field_u64("cs_entries", row.cs_entries)
            .field_u64("bf_set_bits", row.bf_set_bits)
            .field_f64("bf_occupancy", row.bf_occupancy())
            .field_f64("bf_fpp_mean", row.bf_fpp_mean())
            .field_f64("bf_occ_max", row.bf_occ_max())
            .field_u64("bf_resets", row.bf_resets)
            .field_u64("bf_rotations", row.bf_rotations);
        out.push_str(&o.finish());
        out.push('\n');
        prev = Some(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(tick: u64) -> SampleRow {
        SampleRow {
            tick,
            t_ns: tick * 1_000,
            queue_depth: 5,
            sent: 10 * (tick + 1),
            delivered: 8 * (tick + 1),
            drops_reverse_face: tick,
            pit_records: 3,
            cs_entries: 2,
            bf_set_bits: 100,
            bf_bits: 1_000,
            bf_fpp_fp: ratio_to_fp(0.25),
            bf_occ_max_fp: ratio_to_fp(0.1),
            bf_routers: 1,
            ..SampleRow::default()
        }
    }

    #[test]
    fn in_flight_subtracts_delivery_side_losses_only() {
        let r = SampleRow {
            sent: 100,
            delivered: 80,
            drops_reverse_face: 5,
            drops_node_down: 3,
            drops_lossy: 99, // send-side: already excluded from `sent`
            ..SampleRow::default()
        };
        assert_eq!(r.in_flight(), 12);
    }

    #[test]
    fn merge_adds_counters_and_maxes_occupancy() {
        let mut a = row(0);
        let mut b = row(0);
        b.bf_occ_max_fp = ratio_to_fp(0.9);
        a.merge_shard(&b);
        assert_eq!(a.sent, 20);
        assert_eq!(a.bf_bits, 2_000);
        assert_eq!(a.bf_routers, 2);
        assert_eq!(a.bf_occ_max_fp, ratio_to_fp(0.9));
        assert_eq!(a.bf_occupancy(), 0.1);
    }

    #[test]
    #[should_panic(expected = "different ticks")]
    fn merge_rejects_tick_mismatch() {
        row(0).merge_shard(&row(1));
    }

    #[test]
    fn merge_timeseries_is_elementwise() {
        let merged = merge_timeseries(&[vec![row(0), row(1)], vec![row(0), row(1)]]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].sent, 20);
        assert_eq!(merged[1].sent, 40);
        assert!(merge_timeseries(&[]).is_empty());
    }

    #[test]
    fn jsonl_carries_every_key_and_deltas() {
        let text = timeseries_to_jsonl("tactic", &[row(0), row(1)]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for key in TIMESERIES_KEYS {
            for line in &lines {
                assert!(line.contains(&format!("\"{key}\":")), "{key} in {line}");
            }
        }
        // First row's delta is its cumulative value; second is the diff.
        assert!(lines[0].contains("\"d_sent\":10"));
        assert!(lines[1].contains("\"d_sent\":10"));
        assert!(lines[0].contains("\"sent\":10"));
        assert!(lines[1].contains("\"sent\":20"));
    }

    #[test]
    fn ratios_derive_from_fixed_point() {
        let r = row(0);
        assert_eq!(r.bf_occupancy(), 0.1);
        assert!((r.bf_fpp_mean() - 0.25).abs() < 1e-9);
        assert!((r.bf_occ_max() - 0.1).abs() < 1e-9);
        assert_eq!(SampleRow::default().bf_occupancy(), 0.0);
        assert_eq!(SampleRow::default().bf_fpp_mean(), 0.0);
    }
}
